"""Setuptools shim.

The project is configured through ``pyproject.toml``.  This file exists so
that environments without the ``wheel`` package (where PEP 660 editable
installs cannot build) can still install the package in development mode via
the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
