"""Shared fixtures for the test suite.

Class-S analyses reproduce the paper but cost O(seconds) each, so they are
computed once per session and shared; most unit tests use the reduced "T"
problem class, which exercises identical code paths at a fraction of the
size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import scrutinize
from repro.experiments.runner import ExperimentRunner
from repro.npb import registry


@pytest.fixture(scope="session")
def runner_s() -> ExperimentRunner:
    """Session-wide class-S experiment runner (results cached across tests)."""
    return ExperimentRunner(problem_class="S")


@pytest.fixture(scope="session")
def runner_t() -> ExperimentRunner:
    """Session-wide class-T (reduced size) experiment runner."""
    return ExperimentRunner(problem_class="T")


@pytest.fixture(scope="session")
def bt_t():
    """A class-T BT benchmark instance."""
    return registry.create("BT", "T")


@pytest.fixture(scope="session")
def bt_t_result(bt_t):
    """Scrutiny result of the class-T BT benchmark."""
    return scrutinize(bt_t)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh fixed-seed generator per test."""
    return np.random.default_rng(12345)
