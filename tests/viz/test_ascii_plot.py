"""Tests of the text-mode mask rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viz import ascii_plot as ap


class TestDownsample:
    def test_short_masks_pass_through(self):
        mask = np.array([True, False, True])
        np.testing.assert_array_equal(ap.downsample_mask(mask, 10), mask)

    def test_bucket_is_critical_if_any_element_is(self):
        mask = np.zeros(100, dtype=bool)
        mask[55] = True
        buckets = ap.downsample_mask(mask, 10)
        assert buckets.size == 10
        assert buckets[5] and buckets.sum() == 1

    def test_uncritical_buckets_are_entirely_uncritical(self):
        rng = np.random.default_rng(3)
        mask = rng.random(1000) > 0.7
        buckets = ap.downsample_mask(mask, 37)
        edges = np.linspace(0, mask.size, 38).astype(int)
        for i, (a, b) in enumerate(zip(edges[:-1], edges[1:])):
            if not buckets[i]:
                assert not mask[a:b].any()

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            ap.downsample_mask(np.ones(4, dtype=bool), 0)


class TestRender1D:
    def test_uses_both_characters(self):
        text = ap.render_mask_1d(np.array([True, False]), show_counts=False)
        assert text == ap.CRITICAL_CHAR + ap.UNCRITICAL_CHAR

    def test_counts_suffix(self):
        text = ap.render_mask_1d(np.array([True, False, False]))
        assert "[1 critical / 2 uncritical of 3]" in text

    def test_flattens_multidimensional_masks(self):
        mask = np.ones((3, 4), dtype=bool)
        text = ap.render_mask_1d(mask, show_counts=False)
        assert text == ap.CRITICAL_CHAR * 12

    def test_long_masks_are_downsampled_to_width(self):
        mask = np.ones(10_000, dtype=bool)
        text = ap.render_mask_1d(mask, width=50, show_counts=False)
        assert len(text) == 50


class TestRender2D:
    def test_grid_shape(self):
        mask = np.zeros((3, 5), dtype=bool)
        mask[1, :] = True
        text = ap.render_mask_2d(mask)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[1].endswith(ap.CRITICAL_CHAR * 5)

    def test_row_and_column_labels(self):
        text = ap.render_mask_2d(np.ones((2, 2), dtype=bool),
                                 row_label="j", col_label="i")
        assert "i ->" in text
        assert "j=0" in text and "j=1" in text

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ap.render_mask_2d(np.ones(4, dtype=bool))


class TestRenderRuns:
    def test_no_critical_elements(self):
        assert "no critical elements" in ap.render_runs(np.zeros(5, bool))

    def test_lists_runs_and_counts(self):
        mask = np.array([True, True, False, True])
        text = ap.render_runs(mask)
        assert "2 critical runs" in text
        assert "[0, 2)" in text and "[3, 4)" in text

    def test_truncates_long_run_lists(self):
        mask = np.zeros(100, dtype=bool)
        mask[::2] = True
        text = ap.render_runs(mask, max_runs=5)
        assert "more runs" in text

    def test_legend_mentions_both_symbols(self):
        text = ap.legend()
        assert ap.CRITICAL_CHAR in text and ap.UNCRITICAL_CHAR in text
