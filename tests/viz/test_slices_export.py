"""Tests of mask slicing/description helpers and the file exporters."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.viz import export as ex
from repro.viz import slices as sl


@pytest.fixture()
def figure3_like_mask():
    """A 4-D mask shaped like BT's u with padded j/i faces uncritical."""
    mask = np.zeros((4, 5, 5, 3), dtype=bool)
    mask[:4, :4, :4, :] = True
    return mask


class TestComponentCubes:
    def test_split_and_identity(self, figure3_like_mask):
        cubes = sl.component_cubes(figure3_like_mask)
        assert len(cubes) == 3
        assert cubes[0].shape == (4, 5, 5)
        assert sl.identical_components(figure3_like_mask)

    def test_non_identical_components_detected(self, figure3_like_mask):
        mask = figure3_like_mask.copy()
        mask[0, 0, 0, 2] = False
        assert not sl.identical_components(mask)

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            sl.component_cubes(np.ones((2, 2), dtype=bool))


class TestCubePlanes:
    def test_planes_along_each_axis(self):
        mask = np.zeros((2, 3, 4), dtype=bool)
        planes = sl.cube_planes(mask, axis=2)
        assert len(planes) == 4
        assert planes[0].shape == (2, 3)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            sl.cube_planes(np.ones((2, 2), dtype=bool))

    def test_render_cube_mentions_every_plane(self):
        mask = np.ones((3, 2, 2), dtype=bool)
        text = sl.render_cube(mask)
        assert text.count("--- k =") == 3


class TestDescribeMask:
    def test_fully_critical(self):
        text = sl.describe_mask(np.ones((4,), dtype=bool))
        assert "every element is critical" in text

    def test_reports_uncritical_planes(self, figure3_like_mask):
        text = sl.describe_mask(figure3_like_mask[..., 0], ("k", "j", "i"))
        assert "j = 4" in text
        assert "i = 4" in text

    def test_reports_contiguous_prefix(self):
        mask = np.array([True] * 7 + [False] * 3)
        text = sl.describe_mask(mask)
        assert "contiguous critical prefix of 7" in text

    def test_counts_line(self):
        text = sl.describe_mask(np.array([True, False, False, False]))
        assert "1 critical, 3 uncritical of 4" in text
        assert "75.0%" in text


class TestExport:
    def test_csv_lists_every_element(self, tmp_path):
        mask = np.array([[True, False], [False, True]])
        path = ex.mask_to_csv(mask, tmp_path / "m.csv")
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["i0", "i1", "critical"]
        assert len(rows) == 5
        assert rows[1] == ["0", "0", "1"]
        assert rows[2] == ["0", "1", "0"]

    def test_json_summary_fields(self, tmp_path):
        mask = np.array([True, True, False])
        path = ex.mask_to_json(mask, tmp_path / "m.json", name="x",
                               metadata={"benchmark": "CG"})
        payload = json.loads(path.read_text())
        assert payload["critical"] == 2
        assert payload["uncritical"] == 1
        assert payload["critical_regions"] == [[0, 2]]
        assert payload["metadata"]["benchmark"] == "CG"

    def test_pgm_format(self, tmp_path):
        mask = np.array([[True, False]])
        path = ex.plane_to_pgm(mask, tmp_path / "m.pgm")
        lines = path.read_text().splitlines()
        assert lines[0] == "P2"
        assert lines[1] == "2 1"
        assert lines[3] == "255 0"

    def test_pgm_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            ex.plane_to_pgm(np.ones(3, dtype=bool), tmp_path / "x.pgm")

    def test_export_mask_writes_expected_artefacts(self, tmp_path):
        mask = np.zeros((3, 4, 5), dtype=bool)
        mask[0] = True
        artefacts = ex.export_mask(mask, tmp_path, "cube",
                                   metadata={"figure": "figure4"})
        assert set(artefacts) == {"json", "csv", "pgm"}
        for path in artefacts.values():
            assert path.exists()

    def test_export_mask_can_skip_csv(self, tmp_path):
        artefacts = ex.export_mask(np.ones((2, 2), dtype=bool), tmp_path,
                                   "small", write_csv=False)
        assert "csv" not in artefacts
