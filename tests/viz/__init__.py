"""Test package: viz — unique module paths for same-basename test files."""
