"""Snapshot-schedule plumbing: jobs, store keys, runner and CLI.

The snapshot schedule is an execution strategy of the segmented sweep --
masks are bitwise-identical across policies -- but every layer must carry
the choice: the picklable job description, the persistent store key (so
cached artefacts of different schedules can never alias, mirroring the
``probe_scale`` regression of PR 3), the experiment runner and the
``--snapshot-schedule``/``--snapshot-budget``/``--spill-dir`` CLI flags.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cli import build_parser, main
from repro.core.criticality import CriticalityAnalyzer
from repro.core.store import ResultStore, cache_key
from repro.experiments.parallel import ParallelRunner, ScrutinyJob, run_job
from repro.experiments.runner import ExperimentRunner


class TestScrutinyJobSchedule:
    def test_schedule_defaults_to_all(self):
        job = ScrutinyJob("CG", "T")
        assert job.snapshot_schedule == "all"
        assert job.snapshot_budget is None
        assert job.key_params()["snapshot_schedule"] == "all"
        assert job.key_params()["snapshot_budget"] is None

    def test_jobs_differing_only_in_schedule_are_distinct(self):
        jobs = {ScrutinyJob("CG", "T", sweep="segmented"),
                ScrutinyJob("CG", "T", sweep="segmented",
                            snapshot_schedule="binomial"),
                ScrutinyJob("CG", "T", sweep="segmented",
                            snapshot_schedule="binomial", snapshot_budget=4),
                ScrutinyJob("CG", "T", sweep="segmented",
                            snapshot_schedule="spill")}
        assert len(jobs) == 4

    def test_spill_dir_is_not_analysis_identity(self):
        job = ScrutinyJob("CG", "T", sweep="segmented",
                          snapshot_schedule="spill", spill_dir="/tmp/a")
        assert "spill_dir" not in job.key_params()
        # ... nor job identity: same analysis in a different scratch
        # location must deduplicate inside one batch
        other = ScrutinyJob("CG", "T", sweep="segmented",
                            snapshot_schedule="spill", spill_dir="/tmp/b")
        assert job == other
        assert len({job, other}) == 1

    @pytest.mark.parametrize("policy", ("binomial", "spill"))
    def test_run_job_matches_all_schedule(self, policy, tmp_path):
        knobs = {"snapshot_budget": 2} if policy == "binomial" \
            else {"spill_dir": str(tmp_path)}
        base = run_job(ScrutinyJob("FT", "T", sweep="segmented"))
        other = run_job(ScrutinyJob("FT", "T", sweep="segmented",
                                    snapshot_schedule=policy, **knobs))
        for name, crit in base.variables.items():
            np.testing.assert_array_equal(crit.mask,
                                          other.variables[name].mask)
        assert list(tmp_path.iterdir()) == []


class TestStoreScheduleKey:
    PARAMS = dict(benchmark="CG", problem_class="T", method="ad", n_probes=1,
                  sweep="segmented")

    def test_schedule_is_part_of_the_key(self):
        keys = {cache_key(**self.PARAMS, version="1"),
                cache_key(**self.PARAMS, snapshot_schedule="binomial",
                          version="1"),
                cache_key(**self.PARAMS, snapshot_schedule="spill",
                          version="1")}
        assert len(keys) == 3

    def test_budget_is_part_of_the_key(self):
        keys = {cache_key(**self.PARAMS, snapshot_schedule="binomial",
                          snapshot_budget=b, version="1")
                for b in (None, 2, 3, 8)}
        assert len(keys) == 4

    def test_default_schedule_key_is_all(self):
        assert cache_key(**self.PARAMS, version="1") == \
            cache_key(**self.PARAMS, snapshot_schedule="all",
                      snapshot_budget=None, version="1")

    def test_version_bumped_past_1_2_0(self):
        # the schedule/budget fields joined the key payload in 1.3.0 (and
        # trace_cache in 1.4.0); the version bumps guarantee no
        # pre-schedule entry can ever be read back under a newer key
        assert tuple(int(p) for p in repro.__version__.split(".")) >= (1, 3, 0)
        assert cache_key(**self.PARAMS) != cache_key(**self.PARAMS,
                                                     version="1.2.0")

    def test_put_fetch_roundtrip_under_schedule_key(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_job(ScrutinyJob("CG", "T", sweep="segmented",
                                     snapshot_schedule="binomial"))
        store.put(result, n_probes=1, sweep="segmented",
                  snapshot_schedule="binomial")
        assert store.fetch(**self.PARAMS,
                           snapshot_schedule="binomial") is not None
        assert store.fetch(**self.PARAMS) is None
        assert store.fetch(**self.PARAMS,
                           snapshot_schedule="spill") is None

    def test_parallel_runner_persists_under_job_schedule(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        engine = ParallelRunner(workers=1, store=store)
        job = ScrutinyJob("CG", "T", sweep="segmented",
                          snapshot_schedule="spill",
                          spill_dir=str(tmp_path / "scratch"))
        engine.run([job])
        assert store.fetch(**job.key_params()) is not None
        before = store.hits
        engine.run([job])
        assert store.hits == before + 1


class TestAnalyzerSchedule:
    def test_analyzer_validates_schedule(self):
        with pytest.raises(ValueError, match="snapshot_schedule"):
            CriticalityAnalyzer(snapshot_schedule="fifo")

    def test_analyzer_validates_budget(self):
        with pytest.raises(ValueError, match="snapshot_budget"):
            CriticalityAnalyzer(snapshot_schedule="binomial",
                                snapshot_budget=1)

    def test_analyzer_rejects_schedule_without_segmented_sweep(self):
        # silently ignoring the knob would still fork the cache key; every
        # entry point (scrutinize, jobs, runner) inherits this check
        with pytest.raises(ValueError, match="require sweep='segmented'"):
            CriticalityAnalyzer(snapshot_schedule="binomial")
        with pytest.raises(ValueError, match="require sweep='segmented'"):
            CriticalityAnalyzer(spill_dir="/tmp/scratch")

    def test_analyzer_rejects_inapplicable_budget_and_spill_dir(self):
        with pytest.raises(ValueError, match="snapshot_budget requires"):
            CriticalityAnalyzer(sweep="segmented",
                                snapshot_schedule="spill",
                                snapshot_budget=8)
        with pytest.raises(ValueError, match="spill_dir requires"):
            CriticalityAnalyzer(sweep="segmented",
                                snapshot_schedule="binomial",
                                spill_dir="/tmp/scratch")

    def test_run_job_surfaces_inapplicable_schedule(self):
        with pytest.raises(ValueError, match="require sweep='segmented'"):
            run_job(ScrutinyJob("CG", "T", snapshot_schedule="binomial"))

    def test_analyzer_defaults(self):
        analyzer = CriticalityAnalyzer()
        assert analyzer.snapshot_schedule == "all"
        assert analyzer.snapshot_budget is None
        assert analyzer.spill_dir is None


class TestRunnerSchedule:
    def test_runner_forwards_schedule_to_jobs(self, tmp_path):
        base = ExperimentRunner(problem_class="T",
                                sweep="segmented").result("CG")
        got = ExperimentRunner(problem_class="T", sweep="segmented",
                               snapshot_schedule="spill",
                               spill_dir=str(tmp_path)).result("CG")
        for name, crit in base.variables.items():
            np.testing.assert_array_equal(crit.mask,
                                          got.variables[name].mask)
        assert list(tmp_path.iterdir()) == []

    def test_legacy_rng_path_accepts_schedule(self):
        runner = ExperimentRunner(problem_class="T",
                                  rng=np.random.default_rng(3),
                                  sweep="segmented",
                                  snapshot_schedule="binomial")
        assert runner.result("CG").benchmark == "CG"


class TestCliSchedule:
    def test_parser_accepts_schedule_flags(self):
        args = build_parser().parse_args(
            ["--sweep", "segmented", "--snapshot-schedule", "binomial",
             "--snapshot-budget", "4", "--spill-dir", "/tmp/scratch",
             "analyze", "CG"])
        assert args.snapshot_schedule == "binomial"
        assert args.snapshot_budget == 4
        assert args.spill_dir == "/tmp/scratch"

    def test_parser_defaults(self):
        args = build_parser().parse_args(["analyze", "CG"])
        assert args.snapshot_schedule == "all"
        assert args.snapshot_budget is None
        assert args.spill_dir is None

    def test_parser_rejects_unknown_schedule(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--snapshot-schedule", "fifo", "analyze", "CG"])

    def test_schedule_flags_require_segmented_sweep(self, capsys):
        # a non-default schedule under the monolithic sweep would silently
        # do nothing while forking the cache key
        for flags in (["--snapshot-schedule", "spill"],
                      ["--snapshot-budget", "4"],
                      ["--spill-dir", "/tmp/scratch"]):
            with pytest.raises(SystemExit):
                main([*flags, "analyze", "CG"])
            assert "require --sweep segmented" in capsys.readouterr().err
        # the explicit default is fine either way
        assert main(["--class", "T", "--snapshot-schedule", "all",
                     "analyze", "CG"]) == 0
        capsys.readouterr()

    def test_budget_lower_bound_is_a_parser_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["--sweep", "segmented", "--snapshot-schedule", "binomial",
                  "--snapshot-budget", "1", "analyze", "CG"])
        assert "at least 2" in capsys.readouterr().err

    def test_budget_and_spill_dir_require_their_schedules(self, capsys):
        with pytest.raises(SystemExit):
            main(["--sweep", "segmented", "--snapshot-schedule", "spill",
                  "--snapshot-budget", "8", "analyze", "CG"])
        assert "--snapshot-budget requires" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["--sweep", "segmented", "--snapshot-schedule", "binomial",
                  "--spill-dir", "/tmp/scratch", "analyze", "CG"])
        assert "--spill-dir requires" in capsys.readouterr().err

    def test_analyze_runs_under_binomial(self, capsys):
        code = main(["--class", "T", "--sweep", "segmented",
                     "--snapshot-schedule", "binomial",
                     "--snapshot-budget", "3", "analyze", "CG"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CG" in out and "uncritical" in out

    def test_analyze_runs_under_spill(self, capsys, tmp_path):
        code = main(["--class", "T", "--sweep", "segmented",
                     "--snapshot-schedule", "spill",
                     "--spill-dir", str(tmp_path), "analyze", "CG"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CG" in out and "uncritical" in out
        assert list(tmp_path.iterdir()) == []
