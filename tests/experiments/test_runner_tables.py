"""Tests of the experiment runner and the Table I-III drivers."""

from __future__ import annotations

import pytest

from repro.experiments import paper, table1, table2, table3
from repro.experiments.runner import ExperimentReport, ExperimentRunner


class TestRunner:
    def test_results_are_cached(self):
        runner = ExperimentRunner(problem_class="T")
        first = runner.result("BT")
        second = runner.result("bt")
        assert first is second

    def test_benchmarks_are_cached(self):
        runner = ExperimentRunner(problem_class="T")
        assert runner.benchmark("CG") is runner.benchmark("CG")

    def test_clear_drops_caches(self):
        runner = ExperimentRunner(problem_class="T")
        first = runner.result("CG")
        runner.clear()
        assert runner.result("CG") is not first

    def test_criticality_view(self):
        runner = ExperimentRunner(problem_class="T")
        crit = runner.criticality(["CG"])
        assert set(crit) == {"CG"}
        assert "x" in crit["CG"]

    def test_runner_settings_are_forwarded(self):
        runner = ExperimentRunner(problem_class="T", method="activity",
                                  step=2)
        result = runner.result("CG")
        assert result.method == "activity"
        assert result.step == 2


class TestTable1:
    def test_report_structure(self):
        report = table1.run(ExperimentRunner(problem_class="S"))
        assert isinstance(report, ExperimentReport)
        assert report.matches_paper
        assert "Table I" in report.text
        assert set(report.data["rows"]) == set(
            ("BT", "SP", "MG", "CG", "LU", "FT", "EP", "IS"))

    def test_element_counts_recorded(self):
        report = table1.run(ExperimentRunner(problem_class="S"))
        counts = report.data["element_counts"]
        assert counts["BT"]["u"] == 10140
        assert counts["FT"]["y"] == 266240

    def test_reduced_class_reports_mismatches(self):
        report = table1.run(ExperimentRunner(problem_class="T"))
        # class T shapes deliberately differ from the paper's class S sizes
        assert not report.matches_paper
        assert report.data["mismatches"]


class TestTable2:
    def test_matches_paper_for_class_s(self, runner_s):
        report = table2.run(runner_s)
        assert report.matches_paper, report.text
        assert not report.data["mismatches"]

    def test_every_expected_row_is_present(self, runner_s):
        report = table2.run(runner_s)
        labels = {(row["benchmark"], row["variable"])
                  for row in report.data["rows"]}
        assert labels == set(paper.TABLE2_EXPECTED)

    def test_rates_match_paper_percentages(self, runner_s):
        report = table2.run(runner_s)
        for row in report.data["rows"]:
            expected = paper.TABLE2_EXPECTED[(row["benchmark"],
                                              row["variable"])]
            assert row["uncritical"] == expected[0]
            assert row["total"] == expected[1]

    def test_subset_of_benchmarks(self, runner_s):
        report = table2.run(runner_s, benchmarks=("BT",))
        assert {r["benchmark"] for r in report.data["rows"]} == {"BT"}


class TestTable3:
    def test_matches_paper_for_class_s(self, runner_s, tmp_path):
        report = table3.run(runner_s, measure_on_disk=True,
                            directory=tmp_path)
        assert report.matches_paper, report.text
        rows = {r["benchmark"]: r for r in report.data["rows"]}
        assert set(rows) == set(paper.TABLE3_EXPECTED)
        for name, expectation in paper.TABLE3_EXPECTED.items():
            assert rows[name]["saved_fraction"] == pytest.approx(
                expectation.saved_fraction, abs=0.002)

    def test_on_disk_measurement_close_to_model(self, runner_s, tmp_path):
        report = table3.run(runner_s, benchmarks=("BT",),
                            measure_on_disk=True, directory=tmp_path)
        row = report.data["rows"][0]
        assert row["disk_full_nbytes"] >= row["original_nbytes"]
        assert abs(row["disk_saved_fraction"] - row["saved_fraction"]) < 0.02

    def test_without_disk_measurement(self, runner_s):
        report = table3.run(runner_s, benchmarks=("BT",),
                            measure_on_disk=False)
        assert "disk_full_nbytes" not in report.data["rows"][0]
