"""Tests of the ``repro-scrutinize`` command-line interface."""

from __future__ import annotations

import pytest

from repro import cli


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_analyze_arguments(self):
        args = cli.build_parser().parse_args(
            ["--class", "T", "analyze", "BT", "--step", "3"])
        assert args.command == "analyze"
        assert args.benchmark == "BT"
        assert args.problem_class == "T"
        assert args.step == 3

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["analyze", "XX"])

    def test_figures_options(self):
        args = cli.build_parser().parse_args(
            ["figures", "--figure", "figure6", "--export-dir", "/tmp/x"])
        assert args.figure == "figure6"
        assert args.export_dir == "/tmp/x"

    def test_global_method_option(self):
        args = cli.build_parser().parse_args(
            ["--method", "activity", "table2"])
        assert args.method == "activity"

    def test_fault_flags_parse(self):
        args = cli.build_parser().parse_args(
            ["--max-retries", "5", "--job-timeout", "30", "--workers", "2",
             "--on-failure", "record", "--chaos", "worker-kill,transient",
             "--chaos-seed", "7", "table2"])
        assert args.max_retries == 5
        assert args.job_timeout == 30.0
        assert args.on_failure == "record"
        assert args.chaos == "worker-kill,transient"
        assert args.chaos_seed == 7


class TestFaultFlagValidation:
    @pytest.mark.parametrize("argv", [
        ["--max-retries", "-1", "analyze", "CG"],
        ["--retry-backoff", "-0.5", "analyze", "CG"],
        ["--job-timeout", "0", "--workers", "2", "analyze", "CG"],
        # the watchdog needs a pool to preempt
        ["--job-timeout", "10", "analyze", "CG"],
        ["--chaos-seed", "3", "analyze", "CG"],
        ["--chaos", "explode", "analyze", "CG"],
        ["--no-journal", "analyze", "CG"],
    ], ids=["negative-retries", "negative-backoff", "zero-timeout",
            "timeout-without-pool", "seed-without-chaos", "unknown-mode",
            "journal-without-cache"])
    def test_invalid_combinations_rejected(self, argv):
        with pytest.raises(SystemExit):
            cli.main(argv)


class TestMain:
    def test_analyze_prints_variable_summary(self, capsys):
        code = cli.main(["--class", "T", "analyze", "CG"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CG" in out and "uncritical" in out

    def test_analyze_show_masks(self, capsys):
        code = cli.main(["--class", "T", "analyze", "CG", "--show-masks"])
        out = capsys.readouterr().out
        assert code == 0
        assert "critical (red in the paper)" in out

    def test_table1_exit_code_reflects_class(self, capsys):
        assert cli.main(["table1"]) == 0
        # class T shapes do not match the paper, so the command signals it
        assert cli.main(["--class", "T", "table1"]) == 1

    def test_table2_single_class_s_subset_via_runner(self, capsys, runner_s):
        # exercise the full command on class S (results come from the
        # session cache inside the experiment layer is not shared with the
        # CLI, so keep this to the cheapest command: figures for CG only is
        # not exposed; use table1 + analyze instead of the heavy tables)
        code = cli.main(["analyze", "CG"])
        assert code == 0
        assert "0.1%" in capsys.readouterr().out

    def test_verify_subset_class_t(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        code = cli.main(["--class", "T", "verify", "--benchmarks", "CG"])
        out = capsys.readouterr().out
        assert code == 0
        assert "restart verification" in out

    def test_ablation_probes_class_t(self, capsys):
        code = cli.main(["--class", "T", "ablation", "probes"])
        assert code == 0
        assert "multi-probe" in capsys.readouterr().out

    def test_analyze_chaos_transient_recovers(self, capsys):
        code = cli.main(["--class", "T", "--chaos", "transient",
                         "--retry-backoff", "0", "analyze", "CG"])
        out = capsys.readouterr().out
        assert code == 0
        assert "uncritical" in out
        # the injected fault and its recovery show up in the epilogue
        assert "fault-tolerance:" in out
        assert "1 retr(ies)" in out
        assert "0 quarantined" in out

    def test_analyze_journal_written_and_confirmed(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert cli.main(["--class", "T", "--cache-dir", str(cache),
                         "analyze", "CG"]) == 0
        capsys.readouterr()
        assert (cache / "journal.jsonl").is_file()
        # the warm run is served from the store, confirmed by the journal
        assert cli.main(["--class", "T", "--cache-dir", str(cache),
                         "analyze", "CG"]) == 0
        out = capsys.readouterr().out
        assert "1 journal-confirmed" in out

    def test_analyze_no_journal_flag(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert cli.main(["--class", "T", "--cache-dir", str(cache),
                         "--no-journal", "analyze", "CG"]) == 0
        assert not (cache / "journal.jsonl").exists()
