"""Plumbing of ``trace_cache`` through analyzers, jobs, store and CLI."""

from __future__ import annotations

import pytest

import repro
from repro.cli import build_parser, main
from repro.core.criticality import CriticalityAnalyzer
from repro.core.store import cache_key
from repro.experiments.parallel import ScrutinyJob
from repro.experiments.runner import ExperimentRunner


class TestAnalyzerValidation:
    def test_unknown_trace_cache_rejected(self):
        with pytest.raises(ValueError, match="trace_cache"):
            CriticalityAnalyzer(sweep="segmented", trace_cache="maybe")

    def test_off_requires_segmented(self):
        # silently accepting the flag would do nothing while forking the
        # result-cache key
        with pytest.raises(ValueError, match="segmented"):
            CriticalityAnalyzer(sweep="monolithic", trace_cache="off")

    def test_defaults_construct(self):
        analyzer = CriticalityAnalyzer(sweep="segmented")
        assert analyzer.trace_cache == "plan"


class TestStoreKey:
    PARAMS = dict(benchmark="CG", problem_class="T", method="ad",
                  n_probes=1, sweep="segmented")

    def test_trace_cache_forks_the_key(self):
        on = cache_key(**self.PARAMS, trace_cache="plan")
        off = cache_key(**self.PARAMS, trace_cache="off")
        assert on != off

    def test_default_matches_explicit_plan(self):
        assert cache_key(**self.PARAMS) == cache_key(**self.PARAMS,
                                                     trace_cache="plan")

    def test_version_bumped_to_1_4(self):
        # trace_cache joined the key payload in 1.4.0; the bump guarantees
        # no pre-plan entry is ever read back under a post-plan key
        assert tuple(int(p) for p in
                     repro.__version__.split(".")) >= (1, 4, 0)
        assert cache_key(**self.PARAMS) != cache_key(**self.PARAMS,
                                                     version="1.3.0")


class TestJobAndRunner:
    def test_job_key_params_carry_trace_cache(self):
        job = ScrutinyJob(benchmark="cg", sweep="segmented",
                          trace_cache="off")
        assert job.key_params()["trace_cache"] == "off"
        # different policies are different analyses and must not dedupe
        assert job != ScrutinyJob(benchmark="cg", sweep="segmented",
                                  trace_cache="plan")

    def test_runner_threads_trace_cache_through(self):
        runner = ExperimentRunner(problem_class="T", sweep="segmented",
                                  trace_cache="off")
        assert runner.trace_cache == "off"
        result = runner.result("EP")
        assert result.benchmark == "EP"


class TestCLI:
    def test_flag_accepted_with_segmented(self):
        args = build_parser().parse_args(
            ["--sweep", "segmented", "--trace-cache", "off",
             "analyze", "CG"])
        assert args.trace_cache == "off"

    def test_off_requires_segmented_sweep(self, capsys):
        with pytest.raises(SystemExit):
            main(["--trace-cache", "off", "analyze", "CG"])
        assert "segmented" in capsys.readouterr().err

    def test_end_to_end_analyze_with_plan_off(self, capsys):
        code = main(["--class", "T", "--sweep", "segmented",
                     "--trace-cache", "off", "analyze", "EP"])
        assert code == 0
        assert "EP" in capsys.readouterr().out
