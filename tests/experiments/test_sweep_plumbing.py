"""Sweep-strategy plumbing: jobs, store keys, runner and CLI.

The segmented reverse sweep is an execution strategy, not a different
analysis -- its masks are bitwise-identical to the monolithic ones -- but
every layer between the analyzer and the user must carry the choice: the
picklable job description, the persistent store key (so cached artefacts of
the two strategies can be compared instead of assumed equal), the experiment
runner and the ``--sweep`` CLI flag.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.store import ResultStore, cache_key
from repro.experiments.parallel import ParallelRunner, ScrutinyJob, run_job
from repro.experiments.runner import ExperimentRunner


class TestScrutinyJobSweep:
    def test_sweep_defaults_to_monolithic(self):
        job = ScrutinyJob("CG", "T")
        assert job.sweep == "monolithic"
        assert job.key_params()["sweep"] == "monolithic"

    def test_jobs_differing_only_in_sweep_are_distinct(self):
        mono = ScrutinyJob("CG", "T")
        seg = ScrutinyJob("CG", "T", sweep="segmented")
        assert mono != seg
        assert len({mono, seg}) == 2

    def test_run_job_segmented_matches_monolithic(self):
        mono = run_job(ScrutinyJob("FT", "T"))
        seg = run_job(ScrutinyJob("FT", "T", sweep="segmented"))
        for name, crit in mono.variables.items():
            np.testing.assert_array_equal(crit.mask,
                                          seg.variables[name].mask)


class TestStoreSweepKey:
    PARAMS = dict(benchmark="CG", problem_class="T", method="ad", n_probes=1)

    def test_sweep_is_part_of_the_key(self):
        mono = cache_key(**self.PARAMS, sweep="monolithic", version="1")
        seg = cache_key(**self.PARAMS, sweep="segmented", version="1")
        assert mono != seg

    def test_default_sweep_key_is_monolithic(self):
        assert cache_key(**self.PARAMS, version="1") == \
            cache_key(**self.PARAMS, sweep="monolithic", version="1")

    def test_put_fetch_roundtrip_under_segmented_key(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_job(ScrutinyJob("CG", "T", sweep="segmented"))
        store.put(result, n_probes=1, sweep="segmented")
        assert store.fetch(**self.PARAMS, sweep="segmented") is not None
        assert store.fetch(**self.PARAMS, sweep="monolithic") is None

    def test_parallel_runner_persists_under_job_sweep(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ParallelRunner(workers=1, store=store)
        job = ScrutinyJob("CG", "T", sweep="segmented")
        engine.run([job])
        assert store.fetch(**job.key_params()) is not None
        # a second run must be served from the store
        before = store.hits
        engine.run([job])
        assert store.hits == before + 1


class TestRunnerSweep:
    def test_runner_forwards_sweep_to_jobs(self):
        runner = ExperimentRunner(problem_class="T", sweep="segmented")
        result = runner.result("CG")
        mono = ExperimentRunner(problem_class="T").result("CG")
        for name, crit in mono.variables.items():
            np.testing.assert_array_equal(crit.mask,
                                          result.variables[name].mask)

    def test_legacy_rng_path_accepts_sweep(self):
        runner = ExperimentRunner(problem_class="T",
                                  rng=np.random.default_rng(3),
                                  sweep="segmented")
        assert runner.result("CG").benchmark == "CG"


class TestCliSweep:
    def test_parser_accepts_sweep_flag(self):
        args = build_parser().parse_args(
            ["--sweep", "segmented", "analyze", "CG"])
        assert args.sweep == "segmented"

    def test_parser_default_is_monolithic(self):
        args = build_parser().parse_args(["analyze", "CG"])
        assert args.sweep == "monolithic"

    def test_parser_rejects_unknown_sweep(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--sweep", "diagonal", "analyze", "CG"])

    def test_analyze_runs_under_segmented_sweep(self, capsys):
        code = main(["--class", "T", "--sweep", "segmented", "analyze", "CG"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CG" in out and "uncritical" in out
