"""Fault-tolerance layer: policies, journal, retries, quarantine.

Unit-level coverage of :mod:`repro.experiments.faults` plus the
:class:`~repro.experiments.parallel.ParallelRunner` retry/quarantine
semantics on the in-process path (the pool path, worker kills and the
watchdog are exercised end-to-end in ``test_chaos.py``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.store import ResultStore
from repro.experiments.faults import (CHAOS_MODES, BatchJournal, ChaosConfig,
                                      ChaosError, FaultPolicy, FaultStats,
                                      JobFailure, JobPoisonedError,
                                      chaos_preamble, corrupt_file,
                                      failure_from_exception, parse_chaos)
from repro.experiments.parallel import (ParallelRunner, ScrutinyJob,
                                        job_token, run_job)


# ---------------------------------------------------------------------------
# FaultPolicy
# ---------------------------------------------------------------------------
class TestFaultPolicy:
    def test_delay_is_deterministic(self):
        policy = FaultPolicy(backoff=0.1, jitter=0.5)
        assert policy.delay("tok", 1) == policy.delay("tok", 1)

    def test_delay_decorrelates_jobs_and_attempts(self):
        policy = FaultPolicy(backoff=0.1, jitter=0.5)
        assert policy.delay("tok-a", 1) != policy.delay("tok-b", 1)
        assert policy.delay("tok-a", 1) != policy.delay("tok-a", 2)

    def test_delay_grows_exponentially_up_to_cap(self):
        policy = FaultPolicy(backoff=0.1, backoff_factor=2.0,
                             backoff_cap=0.3, jitter=0.0)
        assert policy.delay("t", 1) == pytest.approx(0.1)
        assert policy.delay("t", 2) == pytest.approx(0.2)
        assert policy.delay("t", 3) == pytest.approx(0.3)   # capped
        assert policy.delay("t", 9) == pytest.approx(0.3)

    def test_jitter_bounded_by_fraction(self):
        policy = FaultPolicy(backoff=1.0, backoff_factor=1.0, jitter=0.25)
        for attempt in range(1, 20):
            delay = policy.delay("t", attempt)
            assert 1.0 <= delay < 1.25

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1}, {"timeout": 0.0}, {"timeout": -1.0},
        {"backoff": -0.1}, {"backoff_factor": 0.5}, {"jitter": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)


# ---------------------------------------------------------------------------
# JobFailure
# ---------------------------------------------------------------------------
class TestJobFailure:
    def _failure(self) -> JobFailure:
        try:
            raise ValueError("boom")
        except ValueError as exc:
            return failure_from_exception(benchmark="CG", job_token="abc",
                                          exc=exc, attempts=3)

    def test_fields_from_exception(self):
        failure = self._failure()
        assert failure.exception_type == "ValueError"
        assert failure.message == "boom"
        assert failure.kind == "exception"
        assert failure.attempts == 3
        assert len(failure.traceback_digest) == 12

    def test_payload_roundtrip(self):
        failure = self._failure()
        assert JobFailure.from_payload(failure.to_payload()) == failure

    def test_describe_names_the_essentials(self):
        text = self._failure().describe()
        assert "CG" in text and "ValueError" in text and "boom" in text
        assert "3 failed attempt" in text

    def test_poisoned_error_wraps_failure(self):
        failure = self._failure()
        err = JobPoisonedError(failure)
        assert err.failure is failure
        assert "ValueError" in str(err)


# ---------------------------------------------------------------------------
# BatchJournal
# ---------------------------------------------------------------------------
class TestBatchJournal:
    def test_done_roundtrip_across_instances(self, tmp_path):
        journal = BatchJournal(tmp_path / "journal.jsonl")
        assert not journal.is_done("tok")
        journal.mark_done("tok", "CG")
        assert journal.is_done("tok")
        # a fresh instance reads the same file
        assert BatchJournal(tmp_path / "journal.jsonl").is_done("tok")

    def test_poisoned_roundtrip(self, tmp_path):
        journal = BatchJournal(tmp_path / "journal.jsonl")
        failure = failure_from_exception(
            benchmark="EP", job_token="tok", exc=ValueError("bad"),
            attempts=2)
        journal.mark_poisoned(failure)
        reread = BatchJournal(tmp_path / "journal.jsonl")
        assert reread.status("tok") == "poisoned"
        assert reread.failure_for("tok") == failure
        assert reread.failure_for("other") is None

    def test_torn_last_line_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = BatchJournal(path)
        journal.mark_done("a", "CG")
        journal.mark_done("b", "EP")
        with open(path, "a") as fh:
            fh.write('{"token": "c", "status": "do')   # torn append
        reread = BatchJournal(path)
        assert reread.is_done("a") and reread.is_done("b")
        assert reread.status("c") is None

    def test_later_entries_win(self, tmp_path):
        journal = BatchJournal(tmp_path / "journal.jsonl")
        failure = failure_from_exception(
            benchmark="CG", job_token="tok", exc=ValueError("flaky"),
            attempts=1)
        journal.mark_poisoned(failure)
        journal.mark_done("tok", "CG")  # a later run succeeded after all
        assert BatchJournal(tmp_path / "journal.jsonl").is_done("tok")

    def test_unwritable_journal_degrades_silently(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        journal = BatchJournal(blocker / "journal.jsonl")  # parent is a file
        journal.mark_done("tok", "CG")   # must not raise
        assert not journal.is_done("tok")

    def test_lines_are_valid_jsonl(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = BatchJournal(path)
        journal.mark_done("a", "CG")
        journal.mark_poisoned(failure_from_exception(
            benchmark="EP", job_token="b", exc=ValueError("x"), attempts=1))
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        assert [r["status"] for r in records] == ["done", "poisoned"]


# ---------------------------------------------------------------------------
# ChaosConfig
# ---------------------------------------------------------------------------
class TestChaosConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosConfig(modes=("explode",))

    def test_parse_chaos(self):
        config = parse_chaos("worker-kill, corrupt-cache", seed=7)
        assert config.modes == ("worker-kill", "corrupt-cache")
        assert config.seed == 7

    def test_parse_chaos_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one mode"):
            parse_chaos(" , ")

    def test_targeting_is_deterministic(self):
        config = ChaosConfig(modes=CHAOS_MODES, rate=0.5, seed=3)
        draws = [config.wants("transient", f"tok{i}", 0) for i in range(32)]
        assert draws == [config.wants("transient", f"tok{i}", 0)
                         for i in range(32)]
        assert any(draws) and not all(draws)  # rate=0.5 splits the tokens

    def test_injections_stop_after_max_attempts(self):
        config = ChaosConfig(modes=("transient",), rate=1.0, max_attempts=1)
        assert config.wants("transient", "tok", 0)
        assert not config.wants("transient", "tok", 1)

    def test_disabled_mode_never_fires(self):
        config = ChaosConfig(modes=("transient",), rate=1.0)
        assert not config.wants("worker-kill", "tok", 0)

    def test_preamble_in_process_degrades_kill_and_hang(self):
        kill = ChaosConfig(modes=("worker-kill",), rate=1.0)
        with pytest.raises(ChaosError):
            chaos_preamble(kill, "tok", 0, in_worker=False)
        hang = ChaosConfig(modes=("hang",), rate=1.0)
        with pytest.raises(ChaosError):
            chaos_preamble(hang, "tok", 0, in_worker=False)
        chaos_preamble(hang, "tok", 5, in_worker=False)  # past max_attempts

    def test_corrupt_file_changes_content_deterministically(self, tmp_path):
        for token in ("a", "b", "c", "d"):
            path = tmp_path / f"{token}.bin"
            original = bytes(range(256)) * 8
            path.write_bytes(original)
            kind = corrupt_file(path, token, seed=0)
            assert kind in ("truncated", "garbled")
            assert path.read_bytes() != original
            # deterministic: same token+seed -> same damage
            path.write_bytes(original)
            assert corrupt_file(path, token, seed=0) == kind


# ---------------------------------------------------------------------------
# FaultStats
# ---------------------------------------------------------------------------
class TestFaultStats:
    def test_quiet_stats_are_uneventful(self):
        stats = FaultStats(jobs=5, completed=5, cache_hits=0)
        assert not stats.eventful()

    def test_retries_make_stats_eventful(self):
        assert FaultStats(retries=1).eventful()
        assert FaultStats(store_corrupt_entries=1).eventful()
        assert FaultStats(journal_skips=1).eventful()

    def test_summary_mentions_failures(self):
        stats = FaultStats(jobs=2, quarantined=1)
        stats.failures.append(failure_from_exception(
            benchmark="CG", job_token="t", exc=ValueError("dead"),
            attempts=3))
        text = stats.summary()
        assert "1 quarantined" in text and "ValueError" in text


# ---------------------------------------------------------------------------
# retry/quarantine semantics (in-process backend)
# ---------------------------------------------------------------------------
class TestInProcessRetries:
    def test_transient_chaos_recovers_and_matches(self, monkeypatch):
        job = ScrutinyJob("CG", "T")
        plain = run_job(job)
        engine = ParallelRunner(
            workers=1, chaos=ChaosConfig(modes=("transient",), rate=1.0),
            fault_policy=FaultPolicy(max_retries=2, backoff=0.0))
        result = engine.run_one(job)
        assert engine.stats.retries == 1
        assert engine.stats.transient_failures == 1
        assert engine.stats.completed == 1
        for name, crit in plain.variables.items():
            assert np.array_equal(crit.mask, result.variables[name].mask)

    def test_poisoned_job_raises_original_by_default(self):
        engine = ParallelRunner(
            workers=1, fault_policy=FaultPolicy(max_retries=1, backoff=0.0))
        with pytest.raises(KeyError):
            engine.run([ScrutinyJob("NOPE", "T")])
        assert engine.stats.quarantined == 1
        assert engine.stats.transient_failures == 2   # 1 + 1 retry

    def test_poisoned_job_recorded_when_asked(self):
        engine = ParallelRunner(
            workers=1, on_failure="record",
            fault_policy=FaultPolicy(max_retries=1, backoff=0.0))
        good = ScrutinyJob("CG", "T")
        bad = ScrutinyJob("NOPE", "T")
        results = engine.run([good, bad])
        assert results[0].ok and results[0].benchmark == "CG"
        assert not results[1].ok
        failure = results[1].failure
        assert failure.exception_type == "KeyError"
        assert failure.attempts == 2
        assert failure.kind == "exception"
        assert "ANALYSIS FAILED" in results[1].describe()
        assert engine.stats.quarantined == 1
        assert engine.stats.failures == [failure]

    def test_zero_retries_fails_fast(self):
        engine = ParallelRunner(
            workers=1, on_failure="record",
            fault_policy=FaultPolicy(max_retries=0))
        results = engine.run([ScrutinyJob("NOPE", "T")])
        assert results[0].failure.attempts == 1
        assert engine.stats.retries == 0

    def test_on_failure_validated(self):
        with pytest.raises(ValueError, match="on_failure"):
            ParallelRunner(on_failure="explode")

    def test_failure_marker_refused_by_store(self, tmp_path):
        engine = ParallelRunner(
            workers=1, on_failure="record",
            fault_policy=FaultPolicy(max_retries=0))
        marker = engine.run([ScrutinyJob("NOPE", "T")])[0]
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="failure-marker"):
            store.save("0" * 20, marker)


# ---------------------------------------------------------------------------
# journal integration (in-process backend, real store)
# ---------------------------------------------------------------------------
class TestJournalIntegration:
    JOBS = [ScrutinyJob("CG", "T"), ScrutinyJob("EP", "T")]

    def _engine(self, tmp_path, **kwargs):
        store = ResultStore(tmp_path / "cache")
        journal = BatchJournal(tmp_path / "cache" / "journal.jsonl")
        return ParallelRunner(workers=1, store=store, journal=journal,
                              **kwargs)

    def test_completions_are_journalled(self, tmp_path):
        engine = self._engine(tmp_path)
        engine.run(self.JOBS)
        journal = BatchJournal(tmp_path / "cache" / "journal.jsonl")
        for job in self.JOBS:
            assert journal.is_done(job_token(job))

    def test_resume_recomputes_nothing(self, tmp_path, monkeypatch):
        self._engine(tmp_path).run(self.JOBS)
        calls: list[ScrutinyJob] = []
        import repro.experiments.parallel as parallel_mod
        real = parallel_mod.run_job
        monkeypatch.setattr(parallel_mod, "run_job",
                            lambda job: (calls.append(job), real(job))[1])
        engine = self._engine(tmp_path)
        results = engine.run(self.JOBS)
        assert calls == []                       # zero re-executions
        assert engine.stats.journal_skips == len(self.JOBS)
        assert all(result.ok for result in results)

    def test_poisoned_jobs_are_journalled_and_skipped_on_resume(
            self, tmp_path):
        bad = ScrutinyJob("NOPE", "T")
        engine = self._engine(tmp_path, on_failure="record",
                              fault_policy=FaultPolicy(max_retries=0))
        engine.run([bad])
        journal = BatchJournal(tmp_path / "cache" / "journal.jsonl")
        assert journal.status(job_token(bad)) == "poisoned"
        resumed = self._engine(tmp_path, on_failure="record",
                               fault_policy=FaultPolicy(max_retries=0))
        results = resumed.run([bad])
        assert not results[0].ok
        assert resumed.stats.journal_poisoned_skips == 1
        assert resumed.stats.quarantined == 0    # not re-attempted

    def test_raise_mode_retries_poisoned_jobs_on_resume(self, tmp_path):
        # "raise" semantics never serve a failure from the journal: the
        # caller asked for an exception, and the fault may have been fixed
        bad = ScrutinyJob("NOPE", "T")
        record = self._engine(tmp_path, on_failure="record",
                              fault_policy=FaultPolicy(max_retries=0))
        record.run([bad])
        strict = self._engine(tmp_path,
                              fault_policy=FaultPolicy(max_retries=0))
        with pytest.raises(KeyError):
            strict.run([bad])
