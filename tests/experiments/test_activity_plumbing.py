"""Activity-method plumbing: the sweep knobs must be honoured, not ignored.

Before repro 1.6.0 ``method="activity"`` silently ignored
``sweep="segmented"``, the snapshot schedules and ``trace_cache`` -- the
analysis always traced the monolithic tape, while the ignored knobs still
forked the result-cache key.  These are the regression tests: the knobs now
take effect (the segmented/chained path actually runs, with identical
masks), unsupported combinations raise instead of silently degrading, and
every layer -- analyzer, scrutinize, jobs, store key, CLI -- carries the
choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import activity as activity_mod
from repro.cli import build_parser, main
from repro.core import criticality as criticality_mod
from repro.core.analysis import scrutinize
from repro.core.criticality import CriticalityAnalyzer
from repro.core.store import ResultStore, cache_key
from repro.experiments.parallel import ScrutinyJob, run_job
from repro.npb import registry


class TestAnalyzerHonoursSweepKnobs:
    @pytest.mark.parametrize("name", ["CG", "MG", "LU", "IS"])
    def test_segmented_activity_masks_match_monolithic(self, name):
        mono = scrutinize(registry.create(name, "T"), method="activity")
        seg = scrutinize(registry.create(name, "T"), method="activity",
                         sweep="segmented")
        planned = scrutinize(registry.create(name, "T"), method="activity",
                             sweep="segmented", trace_cache="plan")
        for var, crit in mono.variables.items():
            np.testing.assert_array_equal(crit.mask,
                                          seg.variables[var].mask,
                                          err_msg=f"{name}.{var} segmented")
            np.testing.assert_array_equal(crit.mask,
                                          planned.variables[var].mask,
                                          err_msg=f"{name}.{var} planned")

    def test_segmented_route_actually_runs_the_chained_sweep(self, monkeypatch):
        """The knobs must reach the chained driver -- the original bug."""
        calls = []
        original = activity_mod.segmented_read_masks

        def spy(bench, state, **kwargs):
            calls.append(kwargs)
            return original(bench, state, **kwargs)

        monkeypatch.setattr(criticality_mod.activity_mod,
                            "segmented_read_masks", spy)
        analyzer = CriticalityAnalyzer(method="activity", sweep="segmented",
                                       snapshot_schedule="binomial",
                                       snapshot_budget=3,
                                       trace_cache="off")
        analyzer.analyze(registry.create("CG", "T"))
        assert len(calls) == 1
        assert calls[0]["snapshot_schedule"] == "binomial"
        assert calls[0]["snapshot_budget"] == 3
        assert calls[0]["trace_cache"] == "off"
        assert calls[0]["plan_cache"] is None

    def test_monolithic_route_does_not_run_the_chained_sweep(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not be hit
            raise AssertionError("monolithic activity used the chained sweep")

        monkeypatch.setattr(criticality_mod.activity_mod,
                            "segmented_read_masks", boom)
        result = CriticalityAnalyzer(method="activity").analyze(
            registry.create("CG", "T"))
        assert result

    def test_activity_rejects_probes(self):
        with pytest.raises(ValueError, match="value-independent"):
            CriticalityAnalyzer(method="activity", n_probes=2)

    def test_activity_rejects_snapshot_knobs_without_segmented(self):
        with pytest.raises(ValueError, match="require sweep='segmented'"):
            CriticalityAnalyzer(method="activity",
                                snapshot_schedule="binomial")

    def test_activity_rejects_trace_cache_off_without_segmented(self):
        with pytest.raises(ValueError, match="segmented"):
            CriticalityAnalyzer(method="activity", trace_cache="off")


class TestActivityJobsAndStoreKeys:
    def test_segmented_activity_job_roundtrip(self):
        mono = run_job(ScrutinyJob("CG", "T", method="activity"))
        seg = run_job(ScrutinyJob("CG", "T", method="activity",
                                  sweep="segmented",
                                  snapshot_schedule="binomial",
                                  trace_cache="plan"))
        for name, crit in mono.variables.items():
            np.testing.assert_array_equal(crit.mask,
                                          seg.variables[name].mask)

    def test_activity_sweep_keys_never_alias(self):
        base = dict(benchmark="CG", problem_class="T", method="activity",
                    n_probes=1, version="1")
        mono = cache_key(**base, sweep="monolithic")
        seg = cache_key(**base, sweep="segmented")
        planned = cache_key(**base, sweep="segmented", trace_cache="off")
        assert len({mono, seg, planned}) == 3

    def test_version_bump_invalidates_pre_refactor_entries(self):
        # entries written while the knobs were ignored carry the old
        # version; the 1.6.0 bump must address them differently
        base = dict(benchmark="CG", problem_class="T", method="activity",
                    n_probes=1, sweep="segmented")
        old = cache_key(**base, version="1.5.0")
        new = cache_key(**base, version="1.6.0")
        assert old != new

    def test_store_roundtrip_under_segmented_activity_key(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_job(ScrutinyJob("CG", "T", method="activity",
                                     sweep="segmented"))
        store.put(result, n_probes=1, sweep="segmented")
        assert store.fetch(benchmark="CG", problem_class="T",
                           method="activity", n_probes=1,
                           sweep="segmented") is not None
        assert store.fetch(benchmark="CG", problem_class="T",
                           method="activity", n_probes=1,
                           sweep="monolithic") is None


class TestActivityCLI:
    def test_segmented_activity_smoke(self, capsys):
        code = main(["--class", "T", "--method", "activity",
                     "--sweep", "segmented", "--trace-cache", "plan",
                     "analyze", "CG"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CG" in out

    def test_activity_with_probes_is_a_parser_error(self):
        with pytest.raises(SystemExit):
            main(["--class", "T", "--method", "activity", "--probes", "2",
                  "analyze", "CG"])

    def test_activity_snapshot_schedule_without_segmented_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["--class", "T", "--method", "activity",
                  "--snapshot-schedule", "binomial", "analyze", "CG"])
