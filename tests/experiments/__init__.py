"""Test package: experiments — unique module paths for same-basename test files."""
