"""End-to-end chaos suite for the fault-tolerant scrutiny engine.

Acceptance criteria of the fault-tolerance layer: under injected worker
kills, job hangs (caught by the wall-clock watchdog), transient exceptions
and corrupt cache entries, a multi-job batch run on a real process pool

* completes,
* quarantines only the genuinely poisoned jobs, and
* produces results bitwise identical to a fault-free run;

and a batch killed mid-run (SIGKILL, no cleanup) resumes from its journal
without re-executing a single already-completed job.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.store import ResultStore
from repro.experiments.faults import (BatchJournal, ChaosConfig, FaultPolicy,
                                      FaultStats)
from repro.experiments.parallel import (ParallelRunner, ScrutinyJob,
                                        job_token, run_job)

JOBS = [ScrutinyJob("CG", "T"), ScrutinyJob("EP", "T"),
        ScrutinyJob("IS", "T")]

#: retries are free (zero backoff) so the chaos tests stay fast
FAST = dict(backoff=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def baseline():
    """Fault-free reference results, computed once, in process."""
    return {job: run_job(job) for job in JOBS}


def _assert_bitwise(expected, actual) -> None:
    """Results must match bit for bit: masks, gradients and state."""
    assert actual.ok
    assert actual.benchmark == expected.benchmark
    assert set(actual.variables) == set(expected.variables)
    for name, crit in expected.variables.items():
        other = actual.variables[name]
        assert np.array_equal(crit.mask, other.mask), name
        assert set(other.gradients) == set(crit.gradients)
        for key, grad in crit.gradients.items():
            assert np.array_equal(grad, other.gradients[key],
                                  equal_nan=True), (name, key)
    assert set(actual.state) == set(expected.state)
    for key, array in expected.state.items():
        assert np.array_equal(array, actual.state[key],
                              equal_nan=True), key


class TestPoolChaos:
    """Injected faults on a real (fork) process pool."""

    def test_worker_kill_recovers_bitwise(self, baseline):
        engine = ParallelRunner(
            workers=2,
            chaos=ChaosConfig(modes=("worker-kill",), rate=1.0,
                              kill_delay=0.1),
            fault_policy=FaultPolicy(max_retries=3, **FAST))
        results = engine.run(JOBS)
        assert engine.stats.worker_deaths >= 1
        assert engine.stats.requeued >= 1
        assert engine.stats.completed == len(JOBS)
        assert engine.stats.quarantined == 0
        for job, result in zip(JOBS, results):
            _assert_bitwise(baseline[job], result)

    def test_hang_watchdog_recovers_bitwise(self, baseline):
        engine = ParallelRunner(
            workers=2,
            chaos=ChaosConfig(modes=("hang",), rate=1.0, hang_seconds=60.0),
            fault_policy=FaultPolicy(max_retries=3, timeout=1.0, **FAST))
        start = time.monotonic()
        results = engine.run(JOBS)
        elapsed = time.monotonic() - start
        assert engine.stats.timeouts >= 1
        assert engine.stats.completed == len(JOBS)
        assert engine.stats.quarantined == 0
        # the watchdog, not the 60 s nap, must have ended the hangs
        assert elapsed < 30.0
        for job, result in zip(JOBS, results):
            _assert_bitwise(baseline[job], result)

    def test_transient_exceptions_recover_bitwise(self, baseline):
        engine = ParallelRunner(
            workers=2,
            chaos=ChaosConfig(modes=("transient",), rate=1.0),
            fault_policy=FaultPolicy(max_retries=2, **FAST))
        results = engine.run(JOBS)
        assert engine.stats.transient_failures == len(JOBS)
        assert engine.stats.retries == len(JOBS)
        assert engine.stats.completed == len(JOBS)
        assert engine.stats.quarantined == 0
        for job, result in zip(JOBS, results):
            _assert_bitwise(baseline[job], result)

    def test_poison_job_quarantined_rest_completes(self, baseline):
        jobs = [JOBS[0], ScrutinyJob("NOPE", "T"), JOBS[1]]
        engine = ParallelRunner(
            workers=2, on_failure="record",
            fault_policy=FaultPolicy(max_retries=1, **FAST))
        results = engine.run(jobs)
        assert engine.stats.quarantined == 1
        assert engine.stats.completed == 2
        _assert_bitwise(baseline[JOBS[0]], results[0])
        _assert_bitwise(baseline[JOBS[1]], results[2])
        failure = results[1].failure
        assert failure is not None
        assert failure.exception_type == "KeyError"
        assert failure.attempts == 2
        assert engine.stats.failures == [failure]

    def test_chaos_summary_is_eventful(self):
        engine = ParallelRunner(
            workers=2,
            chaos=ChaosConfig(modes=("transient",), rate=1.0),
            fault_policy=FaultPolicy(max_retries=2, **FAST))
        engine.run(JOBS[:2])
        assert isinstance(engine.stats, FaultStats)
        assert engine.stats.eventful()
        text = engine.stats.summary()
        assert "retr" in text and "quarantined" in text


class TestCorruptCacheChaos:
    """Chaos-corrupted store entries are quarantined and recomputed."""

    def test_corrupt_entries_detected_and_recomputed(self, tmp_path,
                                                     baseline):
        store = ResultStore(tmp_path / "cache")
        writer = ParallelRunner(
            workers=1, store=store,
            chaos=ChaosConfig(modes=("corrupt-cache",), rate=1.0))
        writer.run(JOBS)
        assert writer.stats.chaos_corrupted_files == len(JOBS)

        reader = ParallelRunner(workers=1,
                                store=ResultStore(tmp_path / "cache"))
        with pytest.warns(RuntimeWarning, match="corrupt"):
            results = reader.run(JOBS)
        assert reader.store.corrupt_entries == len(JOBS)
        assert reader.stats.store_corrupt_entries == len(JOBS)
        assert reader.stats.cache_hits == 0
        assert reader.stats.completed == len(JOBS)
        for job, result in zip(JOBS, results):
            _assert_bitwise(baseline[job], result)

        # the recomputed results were re-cached and are clean this time
        final = ParallelRunner(workers=1,
                               store=ResultStore(tmp_path / "cache"))
        final.run(JOBS)
        assert final.stats.cache_hits == len(JOBS)
        assert final.store.corrupt_entries == 0


class TestKilledBatchResume:
    """SIGKILL a CLI batch; the journal makes the re-run skip its jobs.

    The killed process is the real CLI (``repro.cli``), and so is the
    resume -- ``cli.main`` runs in process with a spy on the job executor,
    proving that a re-invoked CLI batch re-executes zero journalled jobs.
    """

    BENCHMARKS = ("CG", "EP", "IS")

    def _spawn_cli(self, tmp_path) -> tuple[subprocess.Popen, Path]:
        cache = tmp_path / "cache"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "--class", "T",
             "--cache-dir", str(cache), "verify", "--benchmarks",
             *self.BENCHMARKS], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        return proc, cache

    def test_killed_batch_resumes_without_recompute(self, tmp_path,
                                                    baseline, monkeypatch):
        proc, cache = self._spawn_cli(tmp_path)
        journal_path = cache / "journal.jsonl"
        journal = None
        deadline = time.monotonic() + 120.0
        try:
            # wait for at least one journalled completion, then SIGKILL --
            # no atexit handlers, no cleanup, as a crash would have it
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # batch finished before we got to kill it
                if journal_path.is_file() and any(
                        BatchJournal(journal_path).entries()):
                    proc.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.01)
            else:
                pytest.fail("driver made no progress within 120s")
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=60)

        journal = BatchJournal(journal_path)
        done_before = {token for token, record in journal.entries().items()
                       if record.get("status") == "done"}
        assert done_before, "no completion was journalled before the kill"

        executed: list[str] = []
        import repro.experiments.parallel as parallel_mod
        real = parallel_mod.run_job
        monkeypatch.setattr(
            parallel_mod, "run_job",
            lambda job: (executed.append(job_token(job)), real(job))[1])

        # resume through the real CLI (workers=1 -> in-process, so the
        # spy above observes every job execution)
        from repro import cli
        assert cli.main(["--class", "T", "--cache-dir", str(cache),
                         "verify", "--benchmarks", *self.BENCHMARKS]) == 0

        # zero re-execution of journalled-complete jobs (a job stored but
        # killed before its journal append may legally be served from the
        # cache too, hence <=)
        assert not set(executed) & done_before
        assert len(executed) <= len(JOBS) - len(done_before)
        # the resumed jobs' cached results are bitwise clean
        store = ResultStore(cache)
        for job in JOBS:
            cached = store.fetch(**job.key_params())
            assert cached is not None
            _assert_bitwise(baseline[job], cached)
        # and the journal now records the whole batch
        final = BatchJournal(journal_path)
        assert all(final.is_done(job_token(job)) for job in JOBS)
