"""Tests of the mixed-precision extension experiment driver."""

from __future__ import annotations

import pytest

from repro import cli
from repro.experiments import precision
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    runner = ExperimentRunner(problem_class="T")
    return precision.run(runner, benchmarks=("BT", "MG", "CG"),
                         directory=tmp_path_factory.mktemp("precision"))


class TestPrecisionExperiment:
    def test_every_tuned_restart_verifies(self, report):
        assert report.matches_paper, report.text
        assert all(entry["verified"] for entry in report.data.values())

    def test_mixed_never_larger_than_pruned_plus_header(self, report):
        for entry in report.data.values():
            assert entry["mixed_nbytes"] <= entry["pruned_nbytes"] + 2048

    def test_tier_counts_partition_the_elements(self, report):
        for name, entry in report.data.items():
            total = sum(entry["tier_counts"].values())
            plans = entry["plans"]
            assert total == sum(p.tiers.size for p in plans.values())

    def test_aggressive_plan_is_reported(self, report):
        for entry in report.data.values():
            assert entry["aggressive_nbytes"] is not None
            assert entry["aggressive_verified"] is not None
        # on the benchmark with a real floating-point payload the aggressive
        # plan undercuts even the pruned checkpoint (container headers
        # dominate the tiny class-T CG files, so only MG is meaningful here)
        assert report.data["MG"]["aggressive_nbytes"] \
            < report.data["MG"]["pruned_nbytes"]

    def test_text_report_lists_every_benchmark(self, report):
        for name in ("BT", "MG", "CG"):
            assert name in report.text

    def test_aggressive_can_be_skipped(self, tmp_path):
        runner = ExperimentRunner(problem_class="T")
        small = precision.run(runner, benchmarks=("CG",),
                              include_aggressive=False, directory=tmp_path)
        assert small.data["CG"]["aggressive_nbytes"] is None


class TestPrecisionCli:
    def test_precision_subcommand(self, capsys):
        code = cli.main(["--class", "T", "precision", "--benchmarks", "CG",
                         "--no-aggressive"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mixed-precision" in out
