"""Seeded determinism regression tests.

The AD tape must not depend on dict/set iteration order or on hidden global
random state: two independent runs of the same analysis have to produce
identical criticality masks, or the persistent result store and the
parallel engine's bitwise-equivalence guarantee both collapse.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import ExperimentRunner
from repro.npb import registry

ALL_BENCHMARKS = registry.available_benchmarks()


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_two_runner_runs_identical_masks(name):
    first = ExperimentRunner(problem_class="T").result(name)
    second = ExperimentRunner(problem_class="T").result(name)
    assert list(first.variables) == list(second.variables)
    for var, crit in first.variables.items():
        assert np.array_equal(crit.mask, second.variables[var].mask), \
            f"{name}({var}): masks differ between identical runs"
    assert first.n_uncritical == second.n_uncritical


def test_multi_probe_runs_identical():
    # probes draw from the analyzer's own fixed-seed generator, so even the
    # probed masks must reproduce exactly across runner instances
    first = ExperimentRunner(problem_class="T", n_probes=3).result("BT")
    second = ExperimentRunner(problem_class="T", n_probes=3).result("BT")
    for var, crit in first.variables.items():
        assert np.array_equal(crit.mask, second.variables[var].mask)


def test_determinism_survives_interleaved_other_work():
    # global RNG noise between runs must not leak into the analysis
    first = ExperimentRunner(problem_class="T", n_probes=2).result("CG")
    np.random.seed(0)
    np.random.standard_normal(1000)
    second = ExperimentRunner(problem_class="T", n_probes=2).result("CG")
    for var, crit in first.variables.items():
        assert np.array_equal(crit.mask, second.variables[var].mask)
