"""Tests of the incremental-checkpointing extension experiment driver."""

from __future__ import annotations

import pytest

from repro import cli
from repro.experiments import incremental
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    runner = ExperimentRunner(problem_class="T")
    return incremental.run(runner, benchmarks=("BT", "MG", "FT"),
                           directory=tmp_path_factory.mktemp("incremental"))


class TestIncrementalExperiment:
    def test_every_chain_restart_verifies(self, report):
        assert report.matches_paper, report.text
        assert all(entry["verified"] for entry in report.data.values())

    def test_pruned_never_larger_than_full(self, report):
        for entry in report.data.values():
            assert entry["pruned_nbytes"] <= entry["full_nbytes"] + 64

    def test_combined_never_larger_than_incremental(self, report):
        for entry in report.data.values():
            assert entry["combined_nbytes"] <= entry["incremental_nbytes"] \
                + 64

    def test_ft_delta_collapses_to_the_accumulators(self, report):
        # FT never rewrites its spectrum, so a per-step delta is dominated
        # by the container header even at the tiny class-T size
        entry = report.data["FT"]
        assert entry["incremental_nbytes"] < 0.2 * entry["full_nbytes"]

    def test_text_lists_every_benchmark(self, report):
        for name in ("BT", "MG", "FT"):
            assert name in report.text


class TestIncrementalCli:
    def test_incremental_subcommand(self, capsys):
        code = cli.main(["--class", "T", "incremental",
                         "--benchmarks", "CG"])
        out = capsys.readouterr().out
        assert code == 0
        assert "incremental" in out
