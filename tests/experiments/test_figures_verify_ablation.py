"""Tests of the figure, verification and ablation experiment drivers."""

from __future__ import annotations

import pytest

from repro.experiments import ablation, figures, verify
from repro.experiments.runner import ExperimentRunner


class TestFigures:
    @pytest.mark.parametrize("figure", sorted(figures.FIGURES))
    def test_every_figure_matches_the_paper(self, runner_s, figure):
        report = figures.run(figure, runner_s)
        assert report.matches_paper, report.text
        result = report.data["figure"]
        assert result.benchmark == figures.FIGURES[figure][0]
        assert result.rendering and result.description

    def test_unknown_figure_rejected(self, runner_s):
        with pytest.raises(KeyError):
            figures.run("figure99", runner_s)

    def test_run_all_aggregates(self, runner_s):
        report = figures.run_all(runner_s)
        assert report.matches_paper
        assert set(report.data["figures"]) == set(figures.FIGURES)

    def test_export_writes_artefacts(self, runner_s, tmp_path):
        report = figures.run("figure6", runner_s, export_dir=tmp_path)
        assert report.matches_paper
        assert list(tmp_path.glob("figure6_cg_x.json"))

    def test_figure_checks_are_all_booleans(self, runner_s):
        report = figures.run("figure3", runner_s)
        assert all(isinstance(v, bool) for v in
                   report.data["checks"].values())


class TestVerify:
    def test_reduced_class_suite_passes(self, tmp_path):
        runner = ExperimentRunner(problem_class="T")
        report = verify.run(runner, benchmarks=("BT", "CG", "FT", "IS"),
                            directory=tmp_path)
        assert report.matches_paper, report.text
        scenarios = report.data["scenarios"]
        assert len(scenarios) == 4
        assert all(s.verification_passed for s in scenarios)

    def test_negative_control_fails_verification(self, tmp_path):
        runner = ExperimentRunner(problem_class="T")
        report = verify.run(runner, benchmarks=("BT",), directory=tmp_path,
                            include_negative_control=True)
        negative = report.data["negative_control"]
        assert negative is not None
        assert not negative.verification_passed
        assert report.matches_paper

    def test_negative_control_can_be_skipped(self, tmp_path):
        runner = ExperimentRunner(problem_class="T")
        report = verify.run(runner, benchmarks=("CG",), directory=tmp_path,
                            include_negative_control=False)
        assert report.data["negative_control"] is None


class TestAblation:
    def test_ad_and_read_set_masks_coincide_for_bt_and_cg(self):
        report = ablation.run_methods(benchmarks=("BT", "CG"),
                                      problem_class="T")
        assert report.matches_paper
        for agreement in report.data["agreement"].values():
            assert agreement["only_a"] == 0 and agreement["only_b"] == 0

    def test_read_set_analysis_misses_impact_through_copies_for_lu(self):
        report = ablation.run_methods(benchmarks=("LU",), problem_class="T")
        agreement = report.data["agreement"][("LU", "u")]
        # elements of u that only influence the output via the copied state
        # of later iterations: invisible to the read-set, caught by AD
        assert agreement["only_a"] > 0

    def test_multi_probe_is_stable(self):
        report = ablation.run_probes(benchmarks=("CG",), n_probes=2,
                                     problem_class="T")
        assert report.matches_paper

    def test_encoding_comparison_lists_pruned_variables(self):
        report = ablation.run_encoding(benchmarks=("BT", "CG"),
                                       problem_class="T")
        rows = report.data["rows"]
        assert ("BT", "u") in rows
        assert ("CG", "x") in rows
        for entry in rows.values():
            assert entry["region_bytes"] == 16 * entry["n_regions"]
            assert entry["payload_saved"] > 0
