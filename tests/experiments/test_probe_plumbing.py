"""Probe-batching plumbing: jobs, store keys, runner and CLI.

The batched multi-probe sweep is an execution strategy (identical masks to
the per-probe loop), and ``probe_scale`` is a genuine analysis parameter;
every layer between the analyzer and the user must carry both: the
picklable job description, the persistent store key (``probe_scale`` keyed
so different perturbation magnitudes never alias; ``probe_batching`` keyed
so the equivalence can be checked from cached artefacts), the experiment
runner and the ``--probe-batching`` / ``--probe-scale`` CLI flags.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.store import ResultStore, cache_key
from repro.experiments.parallel import ParallelRunner, ScrutinyJob, run_job
from repro.experiments.runner import ExperimentRunner


class TestScrutinyJobProbes:
    def test_defaults(self):
        job = ScrutinyJob("CG", "T")
        assert job.probe_batching == "batched"
        assert job.probe_scale == pytest.approx(1.0e-3)
        params = job.key_params()
        assert params["probe_batching"] == "batched"
        assert params["probe_scale"] == pytest.approx(1.0e-3)

    def test_jobs_differing_only_in_probe_knobs_are_distinct(self):
        base = ScrutinyJob("CG", "T", n_probes=3)
        looped = ScrutinyJob("CG", "T", n_probes=3,
                             probe_batching="per-probe")
        wider = ScrutinyJob("CG", "T", n_probes=3, probe_scale=1.0e-2)
        assert len({base, looped, wider}) == 3

    def test_run_job_batched_matches_per_probe(self):
        batched = run_job(ScrutinyJob("CG", "T", n_probes=3))
        looped = run_job(ScrutinyJob("CG", "T", n_probes=3,
                                     probe_batching="per-probe"))
        for name, crit in batched.variables.items():
            np.testing.assert_array_equal(crit.mask,
                                          looped.variables[name].mask)

    def test_run_job_batched_matches_per_probe_segmented(self):
        batched = run_job(ScrutinyJob("FT", "T", n_probes=2,
                                      sweep="segmented"))
        looped = run_job(ScrutinyJob("FT", "T", n_probes=2,
                                     sweep="segmented",
                                     probe_batching="per-probe"))
        for name, crit in batched.variables.items():
            np.testing.assert_array_equal(crit.mask,
                                          looped.variables[name].mask)


class TestStoreProbeKeys:
    PARAMS = dict(benchmark="CG", problem_class="T", method="ad", n_probes=2)

    def test_probe_knobs_are_part_of_the_key(self):
        base = cache_key(**self.PARAMS, version="1")
        assert base != cache_key(**self.PARAMS, probe_scale=5.0e-3,
                                 version="1")
        assert base != cache_key(**self.PARAMS,
                                 probe_batching="per-probe", version="1")

    def test_put_fetch_roundtrip_under_probe_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_job(ScrutinyJob("CG", "T", n_probes=2,
                                     probe_scale=5.0e-3))
        store.put(result, n_probes=2, probe_scale=5.0e-3)
        assert store.fetch(**self.PARAMS, probe_scale=5.0e-3) is not None
        assert store.fetch(**self.PARAMS) is None          # default scale
        assert store.fetch(**self.PARAMS, probe_scale=5.0e-3,
                           probe_batching="per-probe") is None

    def test_parallel_runner_persists_under_job_probe_knobs(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ParallelRunner(workers=1, store=store)
        job = ScrutinyJob("CG", "T", n_probes=2, probe_scale=2.0e-3,
                          probe_batching="per-probe")
        engine.run([job])
        assert store.fetch(**job.key_params()) is not None
        before = store.hits
        engine.run([job])
        assert store.hits == before + 1


class TestRunnerProbes:
    def test_runner_forwards_probe_knobs_to_jobs(self):
        batched = ExperimentRunner(problem_class="T", n_probes=3)
        looped = ExperimentRunner(problem_class="T", n_probes=3,
                                  probe_batching="per-probe")
        a = batched.result("CG")
        b = looped.result("CG")
        for name, crit in a.variables.items():
            np.testing.assert_array_equal(crit.mask,
                                          b.variables[name].mask)

    def test_legacy_rng_path_accepts_probe_knobs(self):
        runner = ExperimentRunner(problem_class="T",
                                  rng=np.random.default_rng(3),
                                  n_probes=2, probe_batching="batched",
                                  probe_scale=2.0e-3)
        assert runner.result("CG").benchmark == "CG"


class TestCliProbes:
    def test_parser_accepts_probe_flags(self):
        args = build_parser().parse_args(
            ["--probes", "4", "--probe-batching", "per-probe",
             "--probe-scale", "0.01", "analyze", "CG"])
        assert args.probes == 4
        assert args.probe_batching == "per-probe"
        assert args.probe_scale == pytest.approx(0.01)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["analyze", "CG"])
        assert args.probe_batching == "batched"
        assert args.probe_scale == pytest.approx(1.0e-3)

    def test_parser_rejects_unknown_probe_batching(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--probe-batching", "vector", "analyze", "CG"])

    def test_analyze_runs_with_batched_probes(self, capsys):
        code = main(["--class", "T", "--probes", "3", "analyze", "CG"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CG" in out and "uncritical" in out
