"""Parallel scrutiny engine: equivalence with the sequential path.

The guarantee the engine makes is bitwise identity: distributing the
per-benchmark jobs over worker processes must not change a single mask
element, uncritical count or region, for any registered benchmark and any
worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import ScrutinyResult
from repro.experiments.parallel import (ParallelRunner, ScrutinyJob,
                                        default_workers, run_job)
from repro.experiments.runner import ExperimentRunner
from repro.npb import registry

ALL_BENCHMARKS = registry.available_benchmarks()


def assert_results_identical(a: ScrutinyResult, b: ScrutinyResult) -> None:
    assert a.benchmark == b.benchmark
    assert a.problem_class == b.problem_class
    assert a.step == b.step
    assert a.method == b.method
    assert list(a.variables) == list(b.variables)
    for name, crit in a.variables.items():
        other = b.variables[name]
        assert np.array_equal(crit.mask, other.mask), \
            f"{a.benchmark}({name}): masks differ"
        assert crit.uncritical_rate == other.uncritical_rate
        assert crit.regions() == other.regions()
    assert a.n_uncritical == b.n_uncritical


class TestJob:
    def test_benchmark_name_normalised(self):
        assert ScrutinyJob("bt").benchmark == "BT"

    def test_jobs_deduplicate_as_keys(self):
        assert ScrutinyJob("BT", "T") == ScrutinyJob("bt", "T")
        assert len({ScrutinyJob("BT", "T"), ScrutinyJob("bt", "T")}) == 1

    def test_run_job_matches_direct_scrutinize(self, bt_t_result):
        result = run_job(ScrutinyJob("BT", "T"))
        assert_results_identical(result, bt_t_result)


class TestParallelEqualsSequential:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_all_benchmarks_identical(self, workers):
        jobs = [ScrutinyJob(name, "T") for name in ALL_BENCHMARKS]
        sequential = [run_job(job) for job in jobs]
        engine = ParallelRunner(workers=workers)
        parallel = engine.run(jobs)
        assert len(parallel) == len(jobs)
        for seq, par in zip(sequential, parallel):
            assert_results_identical(seq, par)

    def test_class_s_identical_with_two_workers(self, runner_s):
        """Acceptance check: class S, workers=2, every benchmark."""
        parallel = ExperimentRunner(problem_class="S", workers=2)
        results = parallel.results(ALL_BENCHMARKS)
        for name in ALL_BENCHMARKS:
            assert_results_identical(runner_s.result(name), results[name])

    def test_order_is_input_order(self):
        names = ["CG", "EP", "CG", "IS"]
        engine = ParallelRunner(workers=2)
        results = engine.run([ScrutinyJob(n, "T") for n in names])
        assert [r.benchmark for r in results] == names

    def test_duplicate_jobs_share_one_result(self):
        engine = ParallelRunner(workers=1)
        first, second = engine.run([ScrutinyJob("CG", "T")] * 2)
        assert first is second

    def test_multi_probe_identical(self):
        jobs = [ScrutinyJob(name, "T", n_probes=3)
                for name in ("BT", "CG", "FT")]
        sequential = [run_job(job) for job in jobs]
        parallel = ParallelRunner(workers=2).run(jobs)
        for seq, par in zip(sequential, parallel):
            assert_results_identical(seq, par)

    def test_mixed_methods_fan_out_together(self):
        jobs = [ScrutinyJob("CG", "T", method=m)
                for m in ("ad", "activity", "rule")]
        results = ParallelRunner(workers=2).run(jobs)
        assert [r.method for r in results] == ["ad", "activity", "rule"]
        for job, result in zip(jobs, results):
            assert_results_identical(run_job(job), result)


class TestFallbacks:
    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_bogus_context_falls_back_in_process(self):
        engine = ParallelRunner(workers=2, mp_context="no-such-method")
        results = engine.run([ScrutinyJob("CG", "T"), ScrutinyJob("EP", "T")])
        assert [r.benchmark for r in results] == ["CG", "EP"]

    def test_spawn_context_works(self):
        # spawn is the start method every platform has; jobs must survive it
        engine = ParallelRunner(workers=2, mp_context="spawn")
        results = engine.run([ScrutinyJob("CG", "T"), ScrutinyJob("EP", "T")])
        for result in results:
            assert_results_identical(run_job(ScrutinyJob(result.benchmark,
                                                         "T")), result)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_exception_surfaces(self, workers):
        # a failing job must raise from the pool path too, not be mistaken
        # for a platform limitation and silently retried sequentially
        with pytest.raises(KeyError):
            ParallelRunner(workers=workers).run(
                [ScrutinyJob("CG", "T"), ScrutinyJob("NOPE", "T")])


class TestRunnerFanOut:
    def test_results_batch_uses_engine(self, monkeypatch):
        seen = []
        runner = ExperimentRunner(problem_class="T", workers=2)
        original = runner.engine.run

        def spying(jobs):
            seen.append([job.benchmark for job in jobs])
            return original(jobs)

        monkeypatch.setattr(runner.engine, "run", spying)
        runner.results(["CG", "EP", "IS"])
        assert seen == [["CG", "EP", "IS"]]  # one batch, not three

    def test_explicit_rng_stays_sequential(self):
        rng = np.random.default_rng(7)
        runner = ExperimentRunner(problem_class="T", workers=2, rng=rng,
                                  n_probes=2)
        result = runner.result("CG")
        assert result.benchmark == "CG"
        assert runner.store is None
