"""End-to-end integration tests: analysis -> pruned checkpoint -> failure ->
restart -> verification, plus the public package surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import ckpt
from repro.core import scrutinize
from repro.npb import registry


class TestPackageSurface:
    def test_version_and_subpackages(self):
        assert repro.__version__
        for name in ("ad", "core", "npb", "ckpt", "viz", "experiments"):
            assert hasattr(repro, name)

    def test_scrutinize_reexported_at_top_level(self):
        assert repro.scrutinize is scrutinize


@pytest.mark.parametrize("name", ["BT", "LU", "MG", "CG", "FT"])
def test_full_pipeline_restart_matches_uninterrupted_run(name, tmp_path):
    """The paper's workflow end to end on the reduced problem class."""
    bench = registry.create(name, "T")
    result = scrutinize(bench)

    # 1. write a pruned checkpoint of the analysed state
    written = ckpt.write_pruned_checkpoint(
        tmp_path / f"{name}.ckpt", bench, result.state, result.variables,
        step=result.step)
    assert written.nbytes < result.full_nbytes + 4096  # header overhead only

    # 2. restart from it on top of a garbage base and finish the run
    base = ckpt.corrupt_state(bench.initial_state(), result.variables,
                              where="uncritical",
                              rng=np.random.default_rng(0))
    outcome = ckpt.restart_benchmark(bench, written.path, base_state=base)
    assert outcome.passed

    # 3. the final state matches the uninterrupted run on every critical
    #    element of every checkpoint variable
    reference = bench.run_full()
    for crit in result.variables.values():
        for key in crit.variable.state_keys():
            got = np.asarray(outcome.final_state[key], dtype=np.float64)
            ref = np.asarray(reference[key], dtype=np.float64)
            np.testing.assert_allclose(got[crit.mask], ref[crit.mask],
                                       rtol=1e-10, atol=1e-12)


def test_storage_saving_equals_uncritical_byte_fraction(tmp_path):
    """Table III's identity: saved fraction == uncritical payload fraction."""
    bench = registry.create("BT", "T")
    result = scrutinize(bench)
    comparison = ckpt.measure_checkpoint_storage(bench, result, tmp_path)
    float_bytes = result.variables["u"].full_nbytes
    uncritical_bytes = result.variables["u"].n_uncritical * 8
    expected = uncritical_bytes / (float_bytes + 8)  # + the step counter
    assert comparison.payload_saved_fraction == pytest.approx(expected,
                                                              abs=1e-6)


def test_ad_and_activity_masks_coincide_for_simple_access_patterns():
    """Where variables are consumed through direct slices of the leaf, the
    two analyses agree exactly (BT, CG)."""
    for name in ("BT", "CG"):
        bench = registry.create(name, "T")
        ad_result = scrutinize(bench, method="ad")
        act_result = scrutinize(bench, method="activity")
        for var_name, ad_crit in ad_result.variables.items():
            np.testing.assert_array_equal(
                ad_crit.mask, act_result.variables[var_name].mask,
                err_msg=f"{name}({var_name}) AD and activity masks differ")
