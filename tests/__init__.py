"""Top-level test package; see pytest.ini for the collection setup."""
