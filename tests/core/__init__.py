"""Test package: core — unique module paths for same-basename test files."""
