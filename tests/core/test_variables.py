"""Tests of checkpoint-variable descriptions and state validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.variables import (CheckpointVariable, RestartableApplication,
                                  VariableKind, state_nbytes, validate_state)
from repro.npb.bt import BT


class TestCheckpointVariable:
    def test_scalar_properties(self):
        var = CheckpointVariable("step", (), VariableKind.INTEGER,
                                 dtype=np.int64)
        assert var.is_scalar
        assert var.n_elements == 1
        assert var.nbytes == 8
        assert var.state_keys() == ("step",)
        assert str(var) == "int step"

    def test_float_array_properties(self):
        var = CheckpointVariable("u", (12, 13, 13, 5))
        assert var.n_elements == 10140
        assert var.element_nbytes == 8
        assert var.nbytes == 81120
        assert str(var) == "double u[12][13][13][5]"

    def test_complex_pair_counts_both_components(self):
        var = CheckpointVariable("y", (4, 4), VariableKind.COMPLEX_PAIR)
        assert var.element_nbytes == 16
        assert var.nbytes == 16 * 16
        assert var.state_keys() == ("y_re", "y_im")
        assert str(var) == "dcomplex y[4][4]"

    def test_shape_coerced_to_ints(self):
        var = CheckpointVariable("a", (np.int64(3), np.int64(2)))
        assert var.shape == (3, 2)
        assert all(isinstance(s, int) for s in var.shape)

    def test_extract_pulls_component_arrays(self):
        var = CheckpointVariable("y", (2,), VariableKind.COMPLEX_PAIR)
        state = {"y_re": np.array([1.0, 2.0]), "y_im": np.array([3.0, 4.0])}
        re, im = var.extract(state)
        np.testing.assert_array_equal(re, [1.0, 2.0])
        np.testing.assert_array_equal(im, [3.0, 4.0])

    def test_extract_missing_component_raises(self):
        var = CheckpointVariable("y", (2,), VariableKind.COMPLEX_PAIR)
        with pytest.raises(KeyError, match="y_im"):
            var.extract({"y_re": np.zeros(2)})


class TestStateHelpers:
    def test_state_nbytes_sums_variables(self):
        variables = (CheckpointVariable("a", (10,)),
                     CheckpointVariable("b", (), VariableKind.INTEGER,
                                        dtype=np.int32))
        assert state_nbytes(variables) == 80 + 4

    def test_validate_state_accepts_matching_state(self):
        variables = (CheckpointVariable("a", (3,)),
                     CheckpointVariable("n", (), VariableKind.INTEGER,
                                        dtype=np.int64))
        validate_state(variables, {"a": np.zeros(3), "n": 7})

    def test_validate_state_reports_missing_entry(self):
        variables = (CheckpointVariable("a", (3,)),)
        with pytest.raises(ValueError, match="missing state entry 'a'"):
            validate_state(variables, {})

    def test_validate_state_reports_wrong_shape(self):
        variables = (CheckpointVariable("a", (3,)),)
        with pytest.raises(ValueError, match="expected shape"):
            validate_state(variables, {"a": np.zeros(4)})

    def test_validate_state_reports_non_scalar_for_scalar_variable(self):
        variables = (CheckpointVariable("n", (), VariableKind.INTEGER),)
        with pytest.raises(ValueError, match="expected scalar"):
            validate_state(variables, {"n": np.zeros(3)})


class TestProtocol:
    def test_npb_ports_satisfy_the_protocol(self):
        assert isinstance(BT(problem_class="T"), RestartableApplication)
