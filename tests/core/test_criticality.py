"""Tests of the criticality analysis (AD / activity / rule methods)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import ops
from repro.core.criticality import (CriticalityAnalyzer, VariableCriticality,
                                    criticality_from_gradient,
                                    element_criticality)
from repro.core.variables import CheckpointVariable, VariableKind
from repro.npb import registry


class TestCriticalityFromGradient:
    def test_nonzero_is_critical(self):
        mask = criticality_from_gradient(np.array([0.0, 1.0, -2.0, 0.0]))
        np.testing.assert_array_equal(mask, [False, True, True, False])

    def test_non_finite_is_critical(self):
        mask = criticality_from_gradient(np.array([np.nan, np.inf, 0.0]))
        np.testing.assert_array_equal(mask, [True, True, False])

    def test_element_criticality_free_function(self):
        def fun(x):
            return ops.sum(x[:3] * x[:3]) + x[4]

        mask = element_criticality(fun, np.arange(1.0, 7.0))
        np.testing.assert_array_equal(mask, [True, True, True, False, True,
                                             False])


class TestVariableCriticality:
    def test_counts_and_regions(self):
        var = CheckpointVariable("v", (6,))
        crit = VariableCriticality(var, np.array([True, True, False, False,
                                                  True, False]))
        assert crit.n_elements == 6
        assert crit.n_critical == 3
        assert crit.n_uncritical == 3
        assert crit.uncritical_rate == pytest.approx(0.5)
        assert len(crit.regions()) == 2
        assert crit.critical_nbytes == 24
        assert crit.full_nbytes == 48
        assert crit.summary().uncritical == 3

    def test_shape_mismatch_rejected(self):
        var = CheckpointVariable("v", (4,))
        with pytest.raises(ValueError):
            VariableCriticality(var, np.ones((5,), dtype=bool))

    def test_complex_pair_byte_accounting(self):
        var = CheckpointVariable("y", (4,), VariableKind.COMPLEX_PAIR)
        crit = VariableCriticality(var, np.array([True, True, True, False]))
        assert crit.full_nbytes == 64
        assert crit.critical_nbytes == 48


class TestAnalyzerConstruction:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            CriticalityAnalyzer(method="magic")

    def test_bad_probe_count_rejected(self):
        with pytest.raises(ValueError):
            CriticalityAnalyzer(n_probes=0)

    def test_unknown_probe_batching_rejected(self):
        with pytest.raises(ValueError, match="probe_batching"):
            CriticalityAnalyzer(probe_batching="vectorised")

    def test_probe_batching_defaults_to_batched(self):
        assert CriticalityAnalyzer().probe_batching == "batched"


class TestPerturbStateDtypes:
    """Regression: probe states must keep each entry's declared dtype."""

    def _perturb(self, state, watch):
        analyzer = CriticalityAnalyzer(n_probes=2)
        return analyzer._perturb_state(state, watch, probe=1,
                                       rng=np.random.default_rng(42))

    def test_float32_entry_stays_float32(self):
        state = {"a": np.linspace(0.0, 1.0, 8, dtype=np.float32),
                 "b": np.ones(4, dtype=np.float64)}
        perturbed = self._perturb(state, ["a", "b"])
        assert perturbed["a"].dtype == np.float32
        assert perturbed["b"].dtype == np.float64

    def test_scalar_entries_keep_dtype(self):
        state = {"s": np.float32(1.5), "t": np.float64(2.5)}
        perturbed = self._perturb(state, ["s", "t"])
        assert np.asarray(perturbed["s"]).dtype == np.float32
        assert np.asarray(perturbed["t"]).dtype == np.float64

    def test_non_float_watch_upcasts_to_float64(self):
        # probing an integer-typed entry (possible for traced-as-float
        # integer data) falls back to float64, never an integer dtype
        state = {"i": np.arange(4)}
        perturbed = self._perturb(state, ["i"])
        assert perturbed["i"].dtype == np.float64

    def test_draws_unchanged_by_dtype_fix(self):
        # the noise stream must be identical to the historical float64
        # behaviour (cast happens after the draw), or cached multi-probe
        # masks would silently change
        state = {"a": np.ones(8, dtype=np.float64)}
        analyzer = CriticalityAnalyzer(n_probes=2)
        new = analyzer._perturb_state(state, ["a"], 1,
                                      np.random.default_rng(7))
        rng = np.random.default_rng(7)
        base = np.asarray(state["a"], dtype=np.float64)
        rms = float(np.sqrt(np.mean(base ** 2)))
        legacy = base + analyzer.probe_scale * rms \
            * rng.standard_normal(base.shape)
        np.testing.assert_array_equal(new["a"], legacy)


@pytest.fixture(scope="module")
def bench():
    return registry.create("BT", "T")


class TestAnalyzerMethods:
    def test_ad_and_activity_agree_on_bt(self, bench):
        state = bench.checkpoint_state(4)
        ad_masks = CriticalityAnalyzer("ad").analyze(bench, state=state)
        act_masks = CriticalityAnalyzer("activity").analyze(bench,
                                                            state=state)
        np.testing.assert_array_equal(ad_masks["u"].mask,
                                      act_masks["u"].mask)
        assert ad_masks["u"].method == "ad"
        assert act_masks["u"].method == "activity"

    def test_rule_method_marks_everything_critical(self, bench):
        masks = CriticalityAnalyzer("rule").analyze(bench, step=2)
        for crit in masks.values():
            assert crit.n_uncritical == 0

    def test_integer_variables_always_rule_critical(self, bench):
        masks = CriticalityAnalyzer("ad").analyze(bench, step=2)
        assert masks["step"].method == "rule"
        assert masks["step"].n_uncritical == 0

    def test_default_step_is_mid_run(self, bench):
        masks = CriticalityAnalyzer("ad").analyze(bench)
        assert masks["u"].mask.shape == bench.params.u_shape

    def test_multi_probe_matches_single_probe_on_bt(self, bench):
        state = bench.checkpoint_state(4)
        single = CriticalityAnalyzer("ad", n_probes=1).analyze(bench,
                                                               state=state)
        multi = CriticalityAnalyzer("ad", n_probes=3).analyze(bench,
                                                              state=state)
        np.testing.assert_array_equal(single["u"].mask, multi["u"].mask)

    def test_gradients_are_exposed_for_ad_method(self, bench):
        masks = CriticalityAnalyzer("ad").analyze(bench, step=2)
        grads = masks["u"].gradients
        assert set(grads) == {"u"}
        assert grads["u"].shape == bench.params.u_shape

    def test_step_limited_analysis_is_a_subset(self, bench):
        # analysing only one remaining iteration can only shrink the
        # critical set relative to the full remaining computation
        state = bench.checkpoint_state(2)
        full = CriticalityAnalyzer("ad").analyze(bench, state=state)
        short = CriticalityAnalyzer("ad", steps=1).analyze(bench, state=state)
        assert not np.any(short["u"].mask & ~full["u"].mask)

    def test_preserves_table1_variable_order(self, bench):
        masks = CriticalityAnalyzer("ad").analyze(bench, step=2)
        assert list(masks) == [v.name for v in bench.checkpoint_variables()]


class TestMultiProbeCatchesCoincidentalZero:
    def test_probing_reveals_masked_dependence(self):
        """A derivative that vanishes at the base point but not nearby."""

        class Coincidental:
            """f(v) = v0^2 / 2 with v0 = 0 at the checkpoint state."""

            name = "COINC"
            total_steps = 2

            class params:  # noqa: D106 - minimal stand-in
                problem_class = "T"
                niter = 2

            def checkpoint_variables(self):
                return (CheckpointVariable("v", (2,)),)

            def checkpoint_state(self, step):
                return {"v": np.array([0.0, 1.0])}

            def traced_restart(self, state, watch=None, steps=None):
                from repro.ad.tape import Tape

                with Tape() as tape:
                    leaf = tape.watch(np.asarray(state["v"],
                                                 dtype=np.float64), name="v")
                    out = ops.sum(leaf * leaf) * 0.5
                return tape, {"v": leaf}, out

        bench = Coincidental()
        single = CriticalityAnalyzer("ad", n_probes=1).analyze(bench, step=1)
        multi = CriticalityAnalyzer("ad", n_probes=4).analyze(bench, step=1)
        # the single sweep misses v[0] (gradient v0 == 0 at the base point)
        assert not single["v"].mask[0]
        # probing perturbs the base point and recovers the dependence
        assert multi["v"].mask[0]
        assert multi["v"].mask[1]


class TestPerAnalysisProbeGenerator:
    """The probe noise must depend only on *what* is analysed.

    Regression for a reuse bug: the analyzer used to draw probe noise from
    one mutable generator shared across ``analyze()`` calls, so with
    ``n_probes > 1`` a benchmark's mask depended on what the same analyzer
    instance had analysed before it.  A reused sequential analyzer must be
    indistinguishable from the parallel engine's fresh-analyzer-per-job
    path.
    """

    @staticmethod
    def _masks(result):
        return {name: crit.mask for name, crit in result.items()}

    def test_reused_analyzer_matches_fresh_analyzers(self):
        cg = registry.create("CG", "T")
        ep = registry.create("EP", "T")

        reused = CriticalityAnalyzer("ad", n_probes=3)
        first_cg = reused.analyze(cg, step=2)
        _ = reused.analyze(ep, step=2)       # interleaved other work
        second_cg = reused.analyze(cg, step=2)

        fresh_cg = CriticalityAnalyzer("ad", n_probes=3).analyze(cg, step=2)

        for name in fresh_cg:
            np.testing.assert_array_equal(first_cg[name].mask,
                                          fresh_cg[name].mask)
            np.testing.assert_array_equal(second_cg[name].mask,
                                          fresh_cg[name].mask)

    def test_analysis_order_does_not_leak_between_benchmarks(self):
        cg = registry.create("CG", "T")
        ep = registry.create("EP", "T")

        forward_order = CriticalityAnalyzer("ad", n_probes=2)
        a_then_b = (forward_order.analyze(cg, step=1),
                    forward_order.analyze(ep, step=1))

        reverse_order = CriticalityAnalyzer("ad", n_probes=2)
        b_second = reverse_order.analyze(ep, step=1)
        a_second = reverse_order.analyze(cg, step=1)

        for name in a_then_b[0]:
            np.testing.assert_array_equal(a_then_b[0][name].mask,
                                          a_second[name].mask)
        for name in a_then_b[1]:
            np.testing.assert_array_equal(a_then_b[1][name].mask,
                                          b_second[name].mask)

    def test_explicit_generator_keeps_legacy_stateful_behaviour(self):
        bench = registry.create("CG", "T")
        rng = np.random.default_rng(7)
        analyzer = CriticalityAnalyzer("ad", n_probes=2, rng=rng)
        result = analyzer.analyze(bench, step=1)
        assert analyzer.rng is rng           # caller still owns the stream
        assert result["x"].mask.shape == (bench.params.x_len,)


class TestSweepOption:
    def test_unknown_sweep_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep"):
            CriticalityAnalyzer(sweep="sideways")

    def test_segmented_analyzer_masks_match_monolithic(self, bench):
        state = bench.checkpoint_state(4)
        mono = CriticalityAnalyzer("ad").analyze(bench, state=state)
        seg = CriticalityAnalyzer("ad", sweep="segmented").analyze(
            bench, state=state)
        for name in mono:
            np.testing.assert_array_equal(mono[name].mask, seg[name].mask)

    def test_scrutinize_with_explicit_state_matches_direct_analyze(self):
        # both public entry points must derive the same probe noise for
        # the same analysis (scrutinize must not inject its mid-run
        # default step into the rng derivation when given a state)
        from repro.core.analysis import scrutinize

        bench = registry.create("CG", "T")
        state = bench.checkpoint_state(3)
        via_scrutinize = scrutinize(bench, state=state, n_probes=3)
        direct = CriticalityAnalyzer("ad", n_probes=3).analyze(bench,
                                                               state=state)
        for name in direct:
            np.testing.assert_array_equal(
                via_scrutinize.variables[name].mask, direct[name].mask)
