"""Property-based tests of the region encoding (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core import regions as reg

masks = npst.arrays(dtype=np.bool_, shape=st.integers(0, 300))


@given(mask=masks)
@settings(max_examples=200, deadline=None)
def test_encode_decode_roundtrip(mask):
    runs = reg.encode_mask(mask)
    np.testing.assert_array_equal(reg.decode_regions(runs, mask.size), mask)


@given(mask=masks)
@settings(max_examples=200, deadline=None)
def test_encoded_runs_are_sorted_disjoint_and_maximal(mask):
    runs = reg.encode_mask(mask)
    reg.validate_regions(runs, size=mask.size)
    # maximality: consecutive runs never touch
    for a, b in zip(runs, runs[1:]):
        assert a.stop < b.start


@given(mask=masks)
@settings(max_examples=200, deadline=None)
def test_element_count_matches_mask_popcount(mask):
    runs = reg.encode_mask(mask)
    assert reg.n_elements(runs) == int(mask.sum())


@given(mask=masks)
@settings(max_examples=200, deadline=None)
def test_invert_covers_the_complement(mask):
    runs = reg.encode_mask(mask)
    inverted = reg.invert_regions(runs, mask.size)
    np.testing.assert_array_equal(reg.decode_regions(inverted, mask.size),
                                  ~mask)


@given(mask=masks)
@settings(max_examples=100, deadline=None)
def test_array_serialisation_roundtrip(mask):
    runs = reg.encode_mask(mask)
    assert reg.regions_from_array(reg.regions_to_array(runs)) == runs


@given(mask=npst.arrays(dtype=np.bool_,
                        shape=npst.array_shapes(min_dims=2, max_dims=4,
                                                max_side=6)))
@settings(max_examples=100, deadline=None)
def test_multidimensional_masks_flatten_in_c_order(mask):
    runs = reg.encode_mask(mask)
    np.testing.assert_array_equal(
        reg.decode_regions(runs, mask.size), mask.reshape(-1))
