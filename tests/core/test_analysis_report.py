"""Tests of the scrutinize orchestration and the Table II/III reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import ScrutinyResult, scrutinize
from repro.core.report import (StorageRow, UncriticalRow, format_bytes,
                               format_table, pruned_variable_nbytes,
                               storage_rows, uncritical_rows)
from repro.npb import registry


class TestScrutinize:
    def test_result_metadata(self, bt_t, bt_t_result):
        assert bt_t_result.benchmark == "BT"
        assert bt_t_result.problem_class == "T"
        assert bt_t_result.step == bt_t.total_steps // 2
        assert bt_t_result.method == "ad"
        assert set(bt_t_result.variables) == {"u", "step"}

    def test_result_carries_the_checkpoint_state(self, bt_t, bt_t_result):
        assert set(bt_t_result.state) == {"u", "step"}
        assert bt_t_result.state["u"].shape == bt_t.params.u_shape

    def test_aggregate_counts(self, bt_t_result):
        total = sum(c.n_elements for c in bt_t_result.variables.values())
        uncritical = sum(c.n_uncritical
                         for c in bt_t_result.variables.values())
        assert bt_t_result.n_elements == total
        assert bt_t_result.n_uncritical == uncritical
        assert bt_t_result.uncritical_rate == pytest.approx(
            uncritical / total)

    def test_storage_accounting(self, bt_t_result):
        assert bt_t_result.pruned_nbytes < bt_t_result.full_nbytes
        assert bt_t_result.pruned_total_nbytes == (
            bt_t_result.pruned_nbytes + bt_t_result.aux_nbytes)
        assert 0.0 < bt_t_result.storage_saved_fraction < 1.0
        # saved fraction equals the uncritical byte fraction of the
        # floating-point payload
        saved_bytes = bt_t_result.full_nbytes - bt_t_result.pruned_nbytes
        expected = bt_t_result.variables["u"].n_uncritical * 8
        assert saved_bytes == expected

    def test_masks_and_regions_views(self, bt_t_result):
        masks = bt_t_result.masks()
        regions = bt_t_result.regions()
        assert set(masks) == set(regions) == {"u", "step"}
        assert masks["u"].dtype == bool

    def test_to_dict_is_json_serialisable(self, bt_t_result):
        import json

        payload = bt_t_result.to_dict()
        text = json.dumps(payload)
        assert "benchmark" in text
        assert payload["variables"]["u"]["uncritical"] \
            == bt_t_result.variables["u"].n_uncritical

    def test_describe_mentions_every_variable(self, bt_t_result):
        text = bt_t_result.describe()
        assert "BT" in text and "u[" in text and "step" in text

    def test_explicit_state_overrides_step(self, bt_t):
        state = bt_t.checkpoint_state(1)
        result = scrutinize(bt_t, step=3, state=state)
        assert result.step == 3  # reported step is the caller's label
        assert np.array_equal(result.state["u"], state["u"])

    def test_summaries_match_variables(self, bt_t_result):
        summaries = {s.name: s for s in bt_t_result.summaries()}
        for name, crit in bt_t_result.variables.items():
            assert summaries[name].uncritical == crit.n_uncritical


class TestUncriticalRows:
    def test_rows_skip_integers_scalars_and_fully_critical(self):
        results = {"CG": scrutinize(registry.create("CG", "T")).variables,
                   "EP": scrutinize(registry.create("EP", "T")).variables}
        rows = uncritical_rows(results)
        labels = [row.label for row in rows]
        assert labels == ["CG(x)"]

    def test_include_fully_critical_flag(self):
        results = {"EP": scrutinize(registry.create("EP", "T")).variables}
        rows = uncritical_rows(results, include_fully_critical=True)
        assert {r.variable for r in rows} == {"q"}

    def test_row_properties(self):
        row = UncriticalRow("BT", "u", 25, 100)
        assert row.uncritical_rate == pytest.approx(0.25)
        assert row.label == "BT(u)"
        assert row.as_cells()[-1] == "25.0%"


class TestStorageRows:
    def test_rows_cover_every_benchmark(self, bt_t_result):
        rows = storage_rows({"BT": bt_t_result.variables})
        assert len(rows) == 1
        row = rows[0]
        assert row.benchmark == "BT"
        assert row.optimized_nbytes < row.original_nbytes
        assert row.aux_nbytes > 0
        assert 0.0 < row.saved_fraction < 1.0
        assert row.net_saved_fraction < row.saved_fraction

    def test_storage_row_zero_division_guard(self):
        row = StorageRow("X", 0, 0)
        assert row.saved_fraction == 0.0
        assert row.net_saved_fraction == 0.0

    def test_pruned_variable_nbytes_includes_region_records(self, bt_t_result):
        crit = bt_t_result.variables["u"]
        assert pruned_variable_nbytes(crit) \
            == crit.critical_nbytes + 16 * len(crit.regions())


class TestFormatting:
    def test_format_bytes_units(self):
        assert format_bytes(512) == "512b"
        assert format_bytes(81120) == "79.2kb"
        assert format_bytes(5 * 1024 ** 2) == "5.0Mb"
        assert format_bytes(3 * 1024 ** 3) == "3.00Gb"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [("1", "2"), ("333", "4")],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5
        # all data rows have the same width
        assert len(lines[3]) == len(lines[4])
