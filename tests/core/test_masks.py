"""Tests of criticality-mask statistics and decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import masks as m


class TestMaskSummary:
    def test_counts_and_rates(self):
        summary = m.summarize_mask("u", np.array([True, True, False, False]))
        assert summary.total == 4
        assert summary.critical == 2
        assert summary.uncritical == 2
        assert summary.uncritical_rate == pytest.approx(0.5)
        assert summary.critical_rate == pytest.approx(0.5)

    def test_empty_mask(self):
        summary = m.summarize_mask("e", np.zeros((0,), dtype=bool))
        assert summary.total == 0
        assert summary.uncritical_rate == 0.0

    def test_str_mentions_counts(self):
        text = str(m.summarize_mask("u", np.array([True, False])))
        assert "u" in text and "1/2" in text


class TestCombinators:
    def test_combine_or(self):
        a = np.array([True, False, False])
        b = np.array([False, True, False])
        np.testing.assert_array_equal(m.combine_or([a, b]),
                                      [True, True, False])

    def test_combine_and(self):
        a = np.array([True, True, False])
        b = np.array([True, False, False])
        np.testing.assert_array_equal(m.combine_and([a, b]),
                                      [True, False, False])

    def test_combine_requires_at_least_one(self):
        with pytest.raises(ValueError):
            m.combine_or([])
        with pytest.raises(ValueError):
            m.combine_and([])

    def test_combine_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            m.combine_or([np.zeros(2, bool), np.zeros(3, bool)])

    def test_combine_does_not_mutate_inputs(self):
        a = np.array([True, False])
        b = np.array([False, True])
        m.combine_or([a, b])
        np.testing.assert_array_equal(a, [True, False])


class TestDecomposition:
    def test_component_masks_split_last_axis(self):
        mask = np.zeros((2, 3, 4), dtype=bool)
        mask[..., 0] = True
        cubes = m.component_masks(mask)
        assert len(cubes) == 4
        assert cubes[0].all()
        assert not cubes[1].any()

    def test_component_masks_other_axis(self):
        mask = np.zeros((2, 3), dtype=bool)
        mask[1, :] = True
        rows = m.component_masks(mask, axis=0)
        assert not rows[0].any() and rows[1].all()

    def test_uncritical_planes_finds_padded_faces(self):
        mask = np.ones((4, 5, 5), dtype=bool)
        mask[:, 4, :] = False
        mask[:, :, 4] = False
        assert m.uncritical_planes(mask) == {1: [4], 2: [4]}

    def test_uncritical_planes_empty_for_fully_critical(self):
        assert m.uncritical_planes(np.ones((3, 3), dtype=bool)) == {}

    def test_uncritical_planes_1d(self):
        mask = np.array([True, False, True])
        assert m.uncritical_planes(mask) == {0: [1]}


class TestAgreement:
    def test_confusion_counts(self):
        a = np.array([True, True, False, False])
        b = np.array([True, False, True, False])
        counts = m.mask_agreement(a, b)
        assert counts == {"both_critical": 1, "both_uncritical": 1,
                          "only_a": 1, "only_b": 1}

    def test_agreement_shape_mismatch(self):
        with pytest.raises(ValueError):
            m.mask_agreement(np.zeros(2, bool), np.zeros(3, bool))

    def test_counts_partition_the_elements(self):
        rng = np.random.default_rng(7)
        a = rng.random(50) > 0.5
        b = rng.random(50) > 0.5
        counts = m.mask_agreement(a, b)
        assert sum(counts.values()) == 50
