"""Tests of impact scoring and mixed-precision planning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import impact as imp
from repro.core.criticality import VariableCriticality
from repro.core.variables import CheckpointVariable, VariableKind


def _crit_with_gradient(gradient: np.ndarray,
                        name: str = "v") -> VariableCriticality:
    gradient = np.asarray(gradient, dtype=np.float64)
    var = CheckpointVariable(name, gradient.shape)
    return VariableCriticality(var, gradient != 0.0,
                               gradients={name: gradient})


class TestVariableImpact:
    def test_impact_is_absolute_gradient(self):
        crit = _crit_with_gradient([1.0, -2.0, 0.0, 4.0])
        impact = imp.variable_impact(crit)
        np.testing.assert_array_equal(impact.impact, [1.0, 2.0, 0.0, 4.0])
        assert impact.max_impact == 4.0

    def test_complex_pair_takes_elementwise_maximum(self):
        var = CheckpointVariable("y", (3,), VariableKind.COMPLEX_PAIR)
        crit = VariableCriticality(var, np.array([True, True, False]),
                                   gradients={
                                       "y_re": np.array([1.0, 0.5, 0.0]),
                                       "y_im": np.array([0.2, 3.0, 0.0])})
        impact = imp.variable_impact(crit)
        np.testing.assert_array_equal(impact.impact, [1.0, 3.0, 0.0])

    def test_rule_critical_variables_get_infinite_impact(self):
        var = CheckpointVariable("step", (), VariableKind.INTEGER,
                                 dtype=np.int64, critical_by_rule=True)
        crit = VariableCriticality(var, np.ones((), dtype=bool),
                                   method="rule")
        impact = imp.variable_impact(crit)
        assert np.isinf(impact.impact)

    def test_nonzero_quantile_ignores_zeros(self):
        crit = _crit_with_gradient([0.0, 0.0, 1.0, 2.0, 3.0, 4.0])
        impact = imp.variable_impact(crit)
        assert impact.nonzero_quantile(0.0) == 1.0
        assert impact.nonzero_quantile(1.0) == 4.0

    def test_shape_mismatch_rejected(self):
        var = CheckpointVariable("v", (3,))
        with pytest.raises(ValueError):
            imp.VariableImpact(var, np.zeros(4))


class TestPrecisionPlan:
    def test_tier_counts_and_bytes(self):
        var = CheckpointVariable("v", (4,))
        plan = imp.PrecisionPlan(var, np.array([0, 1, 2, 3], dtype=np.int8))
        counts = plan.tier_counts()
        assert counts == {0: 1, 1: 1, 2: 1, 3: 1}
        assert plan.nbytes == 2 + 4 + 8
        assert plan.full_nbytes == 32
        assert plan.saved_fraction == pytest.approx(1.0 - 14 / 32)

    def test_complex_pair_counts_both_components(self):
        var = CheckpointVariable("y", (2,), VariableKind.COMPLEX_PAIR)
        plan = imp.PrecisionPlan(var, np.array([3, 1], dtype=np.int8))
        assert plan.nbytes == 2 * (8 + 2)

    def test_invalid_tier_rejected(self):
        var = CheckpointVariable("v", (2,))
        with pytest.raises(ValueError, match="unknown precision tiers"):
            imp.PrecisionPlan(var, np.array([0, 7], dtype=np.int8))

    def test_shape_mismatch_rejected(self):
        var = CheckpointVariable("v", (2,))
        with pytest.raises(ValueError):
            imp.PrecisionPlan(var, np.zeros(3, dtype=np.int8))


class TestQuantilePlanning:
    def test_uncritical_elements_are_dropped(self):
        crit = {"v": _crit_with_gradient([0.0, 1.0, 2.0, 3.0, 4.0])}
        plans = imp.plan_precision(crit)
        assert plans["v"].tiers[0] == imp.TIER_DROP
        assert (plans["v"].tiers[1:] != imp.TIER_DROP).all()

    def test_quantiles_order_the_tiers_by_impact(self):
        gradient = np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
        plans = imp.plan_precision({"v": _crit_with_gradient(gradient)},
                                   half_quantile=0.25, single_quantile=0.75)
        tiers = plans["v"].tiers
        # the smallest nonzero impacts go to half, the largest stay double
        assert tiers[1] == imp.TIER_HALF
        assert tiers[-1] == imp.TIER_DOUBLE
        # tiers are monotone in the impact
        assert np.all(np.diff(tiers[1:]) >= 0)

    def test_rule_variables_stay_double(self):
        var = CheckpointVariable("step", (), VariableKind.INTEGER,
                                 dtype=np.int64, critical_by_rule=True)
        crit = {"step": VariableCriticality(var, np.ones((), dtype=bool),
                                            method="rule")}
        plans = imp.plan_precision(crit)
        assert plans["step"].tiers == imp.TIER_DOUBLE

    def test_invalid_quantiles_rejected(self):
        crit = {"v": _crit_with_gradient([1.0, 2.0])}
        with pytest.raises(ValueError):
            imp.plan_precision(crit, half_quantile=0.9, single_quantile=0.5)


class TestBudgetPlanning:
    def test_zero_budget_keeps_every_critical_element_double(self):
        crit = {"v": _crit_with_gradient([0.0, 1.0, 2.0])}
        state = {"v": np.array([1.0, 1.0, 1.0])}
        plans = imp.plan_precision_for_budget(crit, state, budget=0.0)
        tiers = plans["v"].tiers
        assert tiers[0] == imp.TIER_DROP
        assert (tiers[1:] == imp.TIER_DOUBLE).all()

    def test_huge_budget_demotes_everything_to_half(self):
        crit = {"v": _crit_with_gradient([0.0, 1.0, 2.0])}
        state = {"v": np.array([1.0, 1.0, 1.0])}
        plans = imp.plan_precision_for_budget(crit, state, budget=1e9)
        tiers = plans["v"].tiers
        assert (tiers[1:] == imp.TIER_HALF).all()

    def test_budget_bound_is_respected(self, rng):
        gradient = rng.random(200)
        gradient[rng.random(200) < 0.2] = 0.0
        values = 10.0 * rng.random(200)
        crit = {"v": _crit_with_gradient(gradient)}
        state = {"v": values}
        for budget in (1e-6, 1e-4, 1e-2):
            plans = imp.plan_precision_for_budget(crit, state, budget)
            bound = imp.estimate_roundoff_impact(plans, crit, state)
            assert bound <= budget * (1.0 + 1e-12)

    def test_larger_budget_never_stores_more_bytes(self, rng):
        gradient = rng.random(300)
        state = {"v": rng.random(300)}
        crit = {"v": _crit_with_gradient(gradient)}
        sizes = []
        for budget in (0.0, 1e-8, 1e-4, 1e-2, 1e2):
            plans = imp.plan_precision_for_budget(crit, state, budget)
            sizes.append(plans["v"].nbytes)
        assert sizes == sorted(sizes, reverse=True)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            imp.plan_precision_for_budget({}, {}, budget=-1.0)

    def test_rule_only_analysis_stays_double(self):
        var = CheckpointVariable("it", (), VariableKind.INTEGER,
                                 dtype=np.int64, critical_by_rule=True)
        crit = {"it": VariableCriticality(var, np.ones((), dtype=bool),
                                          method="rule")}
        plans = imp.plan_precision_for_budget(crit, {"it": 3}, budget=1.0)
        assert plans["it"].tiers == imp.TIER_DOUBLE


class TestRoundoffEstimate:
    def test_all_double_plan_has_zero_bound(self):
        crit = {"v": _crit_with_gradient([1.0, 2.0])}
        state = {"v": np.array([3.0, 4.0])}
        plans = imp.plan_precision_for_budget(crit, state, budget=0.0)
        assert imp.estimate_roundoff_impact(plans, crit, state) == 0.0

    def test_bound_is_first_order_sum(self):
        var = CheckpointVariable("v", (2,))
        crit = {"v": VariableCriticality(var, np.array([True, True]),
                                         gradients={"v": np.array([2.0,
                                                                   3.0])})}
        state = {"v": np.array([5.0, 7.0])}
        plan = imp.PrecisionPlan(var, np.array([imp.TIER_HALF,
                                                imp.TIER_SINGLE],
                                               dtype=np.int8))
        bound = imp.estimate_roundoff_impact({"v": plan}, crit, state)
        expected = 2.0 * 5.0 * 2.0 ** -11 + 3.0 * 7.0 * 2.0 ** -24
        assert bound == pytest.approx(expected)
