"""Tests of the critical-region run-length encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import regions as reg
from repro.core.regions import Region


class TestRegion:
    def test_length_and_contains(self):
        r = Region(3, 7)
        assert len(r) == 4
        assert 3 in r and 6 in r
        assert 7 not in r and 2 not in r

    def test_invalid_region_rejected(self):
        with pytest.raises(ValueError):
            Region(5, 3)
        with pytest.raises(ValueError):
            Region(-1, 3)

    def test_empty_region_allowed(self):
        assert len(Region(4, 4)) == 0

    def test_overlaps(self):
        assert Region(0, 5).overlaps(Region(4, 8))
        assert not Region(0, 5).overlaps(Region(5, 8))

    def test_as_slice(self):
        arr = np.arange(10)
        np.testing.assert_array_equal(arr[Region(2, 5).as_slice()], [2, 3, 4])

    def test_ordering(self):
        assert sorted([Region(5, 8), Region(0, 2)])[0] == Region(0, 2)


class TestEncodeDecode:
    def test_all_true_is_single_run(self):
        assert reg.encode_mask(np.ones(10, dtype=bool)) == [Region(0, 10)]

    def test_all_false_is_empty(self):
        assert reg.encode_mask(np.zeros(10, dtype=bool)) == []

    def test_empty_mask(self):
        assert reg.encode_mask(np.zeros(0, dtype=bool)) == []

    def test_alternating_pattern(self):
        mask = np.array([True, False, True, True, False, True])
        assert reg.encode_mask(mask) == [Region(0, 1), Region(2, 4),
                                         Region(5, 6)]

    def test_multidimensional_mask_uses_c_order(self):
        mask = np.array([[True, True], [False, True]])
        assert reg.encode_mask(mask) == [Region(0, 2), Region(3, 4)]

    def test_decode_inverts_encode(self):
        mask = np.array([False, True, True, False, True])
        runs = reg.encode_mask(mask)
        np.testing.assert_array_equal(reg.decode_regions(runs, 5), mask)

    def test_decode_rejects_out_of_range_region(self):
        with pytest.raises(ValueError):
            reg.decode_regions([Region(0, 6)], 5)


class TestRegionAlgebra:
    def test_n_elements(self):
        assert reg.n_elements([Region(0, 3), Region(5, 6)]) == 4

    def test_validate_accepts_sorted_disjoint(self):
        reg.validate_regions([Region(0, 2), Region(4, 6)], size=6)

    def test_validate_rejects_overlap(self):
        with pytest.raises(ValueError):
            reg.validate_regions([Region(0, 4), Region(3, 6)])

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            reg.validate_regions([Region(0, 4)], size=3)

    def test_merge_regions(self):
        merged = reg.merge_regions([Region(4, 6), Region(0, 2), Region(2, 5)])
        assert merged == [Region(0, 6)]

    def test_merge_keeps_disjoint_runs(self):
        merged = reg.merge_regions([Region(5, 7), Region(0, 2)])
        assert merged == [Region(0, 2), Region(5, 7)]

    def test_invert_regions(self):
        inverted = reg.invert_regions([Region(2, 4), Region(6, 8)], 10)
        assert inverted == [Region(0, 2), Region(4, 6), Region(8, 10)]

    def test_invert_of_full_coverage_is_empty(self):
        assert reg.invert_regions([Region(0, 5)], 5) == []

    def test_array_roundtrip(self):
        runs = [Region(0, 3), Region(7, 9)]
        array = reg.regions_to_array(runs)
        assert array.shape == (2, 2)
        assert reg.regions_from_array(array) == runs

    def test_empty_array_roundtrip(self):
        array = reg.regions_to_array([])
        assert array.shape == (0, 2)
        assert reg.regions_from_array(array) == []

    def test_aux_record_nbytes(self):
        assert reg.aux_record_nbytes([Region(0, 1), Region(2, 3)]) == 32
        assert reg.aux_record_nbytes([], offset_nbytes=4) == 0
