"""Tests of the persistent result store (:mod:`repro.core.store`)."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

import repro
from repro.core import analysis
from repro.core.store import ResultStore, cache_key
from repro.experiments.runner import ExperimentRunner


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "cache")


KEY_PARAMS = dict(benchmark="BT", problem_class="T", method="ad", n_probes=1)


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key(**KEY_PARAMS) == cache_key(**KEY_PARAMS)

    def test_depends_on_every_parameter(self):
        base = cache_key(**KEY_PARAMS)
        variants = [
            dict(KEY_PARAMS, benchmark="MG"),
            dict(KEY_PARAMS, problem_class="S"),
            dict(KEY_PARAMS, method="activity"),
            dict(KEY_PARAMS, n_probes=2),
            dict(KEY_PARAMS, step=3),
            dict(KEY_PARAMS, steps=1),
            dict(KEY_PARAMS, sweep="segmented"),
            dict(KEY_PARAMS, probe_scale=1.0e-2),
            dict(KEY_PARAMS, probe_batching="per-probe"),
            dict(KEY_PARAMS, snapshot_schedule="binomial"),
            dict(KEY_PARAMS, snapshot_schedule="spill"),
            dict(KEY_PARAMS, snapshot_budget=4),
            dict(KEY_PARAMS, version="0.0.0-other"),
        ]
        keys = [cache_key(**params) for params in variants]
        assert base not in keys
        assert len(set(keys)) == len(keys)

    def test_probe_scale_never_aliases(self):
        # regression: runs with different perturbation magnitudes probe
        # different base states and must never share a cache entry
        scales = (1.0e-3, 1.0e-2, 2.0e-3, 1.0e-3 + 1.0e-12)
        keys = {cache_key(**KEY_PARAMS, probe_scale=s) for s in scales}
        assert len(keys) == len(scales)

    def test_probe_scale_defaults_to_analyzer_default(self):
        from repro.core.criticality import CriticalityAnalyzer

        default = CriticalityAnalyzer().probe_scale
        assert cache_key(**KEY_PARAMS) \
            == cache_key(**KEY_PARAMS, probe_scale=default)

    def test_defaults_to_package_version(self):
        assert cache_key(**KEY_PARAMS) == cache_key(
            **KEY_PARAMS, version=repro.__version__)

    def test_benchmark_name_case_insensitive(self):
        assert cache_key(**dict(KEY_PARAMS, benchmark="bt")) \
            == cache_key(**KEY_PARAMS)


class TestRoundTrip:
    def test_result_survives_save_load(self, store, bt_t_result):
        key = store.key(**KEY_PARAMS)
        store.save(key, bt_t_result)
        loaded = store.load("BT", key)

        assert loaded is not None
        assert loaded.benchmark == bt_t_result.benchmark
        assert loaded.problem_class == bt_t_result.problem_class
        assert loaded.step == bt_t_result.step
        assert loaded.method == bt_t_result.method
        assert list(loaded.variables) == list(bt_t_result.variables)
        for name, crit in bt_t_result.variables.items():
            got = loaded.variables[name]
            assert got.variable == crit.variable
            assert got.method == crit.method
            assert np.array_equal(got.mask, crit.mask)
            assert set(got.gradients) == set(crit.gradients)
            for state_key, grad in crit.gradients.items():
                assert np.array_equal(got.gradients[state_key], grad)

    def test_state_types_and_values_preserved(self, store, bt_t_result):
        key = store.key(**KEY_PARAMS)
        store.save(key, bt_t_result)
        loaded = store.load("BT", key)
        assert set(loaded.state) == set(bt_t_result.state)
        for state_key, value in bt_t_result.state.items():
            restored = loaded.state[state_key]
            assert type(restored) is type(value)
            assert np.array_equal(np.asarray(restored), np.asarray(value))

    def test_derived_quantities_identical(self, store, bt_t_result):
        key = store.key(**KEY_PARAMS)
        store.save(key, bt_t_result)
        loaded = store.load("BT", key)
        assert loaded.n_uncritical == bt_t_result.n_uncritical
        assert loaded.pruned_nbytes == bt_t_result.pruned_nbytes
        assert loaded.regions() == bt_t_result.regions()
        assert loaded.to_dict() == bt_t_result.to_dict()

    def test_contains(self, store, bt_t_result):
        key = store.key(**KEY_PARAMS)
        assert not store.contains("BT", key)
        store.save(key, bt_t_result)
        assert store.contains("BT", key)


class TestMissBehaviour:
    def test_empty_store_misses(self, store):
        assert store.load("BT", store.key(**KEY_PARAMS)) is None
        assert store.misses == 1 and store.hits == 0

    def test_corrupt_metadata_is_a_miss(self, store, bt_t_result):
        key = store.key(**KEY_PARAMS)
        meta_path = store.save(key, bt_t_result)
        meta_path.write_text("{ not json")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.load("BT", key) is None

    def test_missing_array_file_is_a_miss(self, store, bt_t_result):
        key = store.key(**KEY_PARAMS)
        store.save(key, bt_t_result)
        (store.root / "BT" / f"{key}.npz").unlink()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.load("BT", key) is None

    def test_truncated_array_file_is_a_miss(self, store, bt_t_result):
        key = store.key(**KEY_PARAMS)
        store.save(key, bt_t_result)
        npz_path = store.root / "BT" / f"{key}.npz"
        npz_path.write_bytes(npz_path.read_bytes()[:100])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.load("BT", key) is None

    def test_unwritable_store_does_not_lose_results(self, tmp_path):
        # cache dir path occupied by a regular file: computation must
        # succeed anyway, persistence silently degrades
        blocker = tmp_path / "notadir"
        blocker.write_text("")
        runner = ExperimentRunner(problem_class="T", cache_dir=blocker)
        result = runner.result("CG")
        assert result.benchmark == "CG"

    def test_format_bump_is_a_miss(self, store, bt_t_result):
        key = store.key(**KEY_PARAMS)
        meta_path = store.save(key, bt_t_result)
        meta = json.loads(meta_path.read_text())
        meta["format"] = 999
        meta_path.write_text(json.dumps(meta))
        assert store.load("BT", key) is None


class TestCorruptionQuarantine:
    """Corrupt entries are counted, warned about once and renamed aside."""

    def _entry(self, store, bt_t_result):
        key = store.key(**KEY_PARAMS)
        store.save(key, bt_t_result)
        return key, store.root / "BT" / f"{key}.json", \
            store.root / "BT" / f"{key}.npz"

    def _flip_byte(self, path):
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))

    def test_digest_mismatch_counts_warns_and_quarantines(
            self, store, bt_t_result):
        key, meta_path, npz_path = self._entry(store, bt_t_result)
        self._flip_byte(npz_path)
        damaged = npz_path.read_bytes()

        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.load("BT", key) is None
        assert store.corrupt_entries == 1
        # both files renamed aside, content preserved for post-mortem
        assert not meta_path.exists() and not npz_path.exists()
        aside = npz_path.with_name(f"{npz_path.name}.corrupt-0")
        assert aside.read_bytes() == damaged
        assert aside in store.quarantined_paths
        assert meta_path.with_name(f"{meta_path.name}.corrupt-0").is_file()
        # the key now re-misses cleanly and can be re-populated
        assert store.load("BT", key) is None
        assert store.corrupt_entries == 1
        store.save(key, bt_t_result)
        assert store.load("BT", key) is not None

    def test_warning_fires_once_counter_keeps_counting(
            self, store, bt_t_result):
        key1, _, npz1 = self._entry(store, bt_t_result)
        key2 = store.key(**dict(KEY_PARAMS, n_probes=2))
        store.save(key2, bt_t_result)
        npz2 = store.root / "BT" / f"{key2}.npz"
        self._flip_byte(npz1)
        self._flip_byte(npz2)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert store.load("BT", key1) is None
            assert store.load("BT", key2) is None
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert store.corrupt_entries == 2

    def test_quarantine_suffix_never_clobbers(self, store, bt_t_result):
        key, _, npz_path = self._entry(store, bt_t_result)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for _ in range(2):
                self._flip_byte(npz_path)
                assert store.load("BT", key) is None
                store.save(key, bt_t_result)
        for counter in range(2):
            assert npz_path.with_name(
                f"{npz_path.name}.corrupt-{counter}").is_file()
        assert store.corrupt_entries == 2

    def test_truncation_and_bad_json_count_too(self, store, bt_t_result):
        key, meta_path, npz_path = self._entry(store, bt_t_result)
        npz_path.write_bytes(npz_path.read_bytes()[:100])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert store.load("BT", key) is None
            store.save(key, bt_t_result)
            meta_path.write_text("{ not json")
            assert store.load("BT", key) is None
        assert store.corrupt_entries == 2

    def test_plain_misses_stay_uncounted(self, store, bt_t_result):
        key = store.key(**KEY_PARAMS)
        assert store.load("BT", key) is None          # absent entry
        meta_path = store.save(key, bt_t_result)
        meta = json.loads(meta_path.read_text())
        meta["format"] = 999
        meta_path.write_text(json.dumps(meta))
        assert store.load("BT", key) is None          # format bump
        store.save(key, bt_t_result)
        (store.root / "BT" / f"{key}.npz").unlink()
        meta_path.unlink()
        assert store.load("BT", key) is None          # deleted entry
        assert store.corrupt_entries == 0
        assert store.quarantined_paths == []

    def test_failure_marker_results_are_refused(self, store):
        from repro.experiments.faults import failure_from_exception
        from repro.experiments.parallel import (ScrutinyJob,
                                                _failure_result, job_token)

        job = ScrutinyJob("BT", "T")
        failure = failure_from_exception(
            benchmark="BT", job_token=job_token(job),
            exc=ValueError("poisoned"), attempts=3)
        with pytest.raises(ValueError, match="failure-marker"):
            store.save(store.key(**KEY_PARAMS),
                       _failure_result(job, failure))


class TestRunnerIntegration:
    def _counting_runner(self, tmp_path, monkeypatch, **kwargs):
        calls = []
        real = analysis.scrutinize

        def counting(bench, **kw):
            calls.append(bench.name)
            return real(bench, **kw)

        # the parallel module resolves scrutinize at call time via run_job
        monkeypatch.setattr("repro.experiments.parallel.scrutinize",
                            counting)
        runner = ExperimentRunner(problem_class="T",
                                  cache_dir=tmp_path / "cache", **kwargs)
        return runner, calls

    def test_cache_hit_skips_recomputation(self, tmp_path, monkeypatch):
        cold, cold_calls = self._counting_runner(tmp_path, monkeypatch)
        first = cold.result("CG")
        assert cold_calls == ["CG"]

        warm, warm_calls = self._counting_runner(tmp_path, monkeypatch)
        second = warm.result("CG")
        assert warm_calls == []          # served entirely from disk
        assert warm.store.hits == 1
        assert np.array_equal(first.variables["x"].mask,
                              second.variables["x"].mask)

    def test_no_cache_flag_disables_store(self, tmp_path, monkeypatch):
        cold, _ = self._counting_runner(tmp_path, monkeypatch)
        cold.result("CG")

        runner, calls = self._counting_runner(tmp_path, monkeypatch,
                                              use_cache=False)
        assert runner.store is None
        runner.result("CG")
        assert calls == ["CG"]           # recomputed despite the warm dir

    def test_method_change_invalidates(self, tmp_path, monkeypatch):
        ad, _ = self._counting_runner(tmp_path, monkeypatch)
        ad.result("CG")

        activity, calls = self._counting_runner(tmp_path, monkeypatch,
                                                method="activity")
        result = activity.result("CG")
        assert calls == ["CG"]           # different method -> different key
        assert result.method == "activity"

    def test_n_probes_change_invalidates(self, tmp_path, monkeypatch):
        one, _ = self._counting_runner(tmp_path, monkeypatch)
        one.result("CG")

        three, calls = self._counting_runner(tmp_path, monkeypatch,
                                             n_probes=3)
        three.result("CG")
        assert calls == ["CG"]

    def test_probe_scale_change_invalidates(self, tmp_path, monkeypatch):
        # regression: probe_scale used to be missing from the cache key,
        # so two runs with different perturbation magnitudes aliased
        default, _ = self._counting_runner(tmp_path, monkeypatch,
                                           n_probes=2)
        default.result("CG")

        wider, calls = self._counting_runner(tmp_path, monkeypatch,
                                             n_probes=2, probe_scale=1.0e-1)
        wider.result("CG")
        assert calls == ["CG"]           # different scale -> different key

        again, calls = self._counting_runner(tmp_path, monkeypatch,
                                             n_probes=2, probe_scale=1.0e-1)
        again.result("CG")
        assert calls == []               # same scale hits its own entry

    def test_probe_batching_change_invalidates(self, tmp_path, monkeypatch):
        batched, _ = self._counting_runner(tmp_path, monkeypatch,
                                           n_probes=2)
        batched.result("CG")

        looped, calls = self._counting_runner(tmp_path, monkeypatch,
                                              n_probes=2,
                                              probe_batching="per-probe")
        looped.result("CG")
        assert calls == ["CG"]           # kept separate so the equivalence
        #                                  can be checked from cached
        #                                  artefacts rather than assumed

    def test_version_change_invalidates(self, tmp_path, bt_t_result):
        v1 = ResultStore(tmp_path / "cache", version="1.0.0")
        v1.put(bt_t_result, n_probes=1)
        assert v1.fetch(**KEY_PARAMS) is not None

        v2 = ResultStore(tmp_path / "cache", version="2.0.0")
        assert v2.fetch(**KEY_PARAMS) is None
