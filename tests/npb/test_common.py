"""Tests of the shared NPB infrastructure (random stream, norms, records)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.npb import common


class TestRandlc:
    def test_returns_uniform_in_unit_interval(self):
        x = common.DEFAULT_SEED
        for _ in range(100):
            u, x = common.randlc(x, common.LCG_MULTIPLIER)
            assert 0.0 < u < 1.0

    def test_state_stays_in_46_bit_range(self):
        x = common.DEFAULT_SEED
        for _ in range(100):
            _, x = common.randlc(x, common.LCG_MULTIPLIER)
            assert 0.0 <= x < 2.0 ** 46
            assert x == float(int(x))  # exactly representable integer

    def test_deterministic(self):
        u1, x1 = common.randlc(common.DEFAULT_SEED, common.LCG_MULTIPLIER)
        u2, x2 = common.randlc(common.DEFAULT_SEED, common.LCG_MULTIPLIER)
        assert u1 == u2 and x1 == x2

    def test_matches_modular_arithmetic_reference(self):
        # the generator is x' = a * x mod 2**46 computed exactly
        x = common.DEFAULT_SEED
        a = common.LCG_MULTIPLIER
        for _ in range(50):
            expected = (int(a) * int(x)) % (2 ** 46)
            u, x = common.randlc(x, a)
            assert int(x) == expected
            assert u == pytest.approx(expected * 2.0 ** -46)


class TestVranlcAndStream:
    def test_vranlc_matches_sequential_randlc(self):
        seq, state = common.vranlc(32, common.DEFAULT_SEED,
                                   common.LCG_MULTIPLIER)
        x = common.DEFAULT_SEED
        expected = []
        for _ in range(32):
            u, x = common.randlc(x, common.LCG_MULTIPLIER)
            expected.append(u)
        assert np.allclose(seq, expected, rtol=0, atol=0)
        assert state == x

    def test_stream_matches_vranlc(self):
        stream = common.RandlcStream(block=64)
        got, got_state = stream.uniforms(common.DEFAULT_SEED)
        ref, ref_state = common.vranlc(64, common.DEFAULT_SEED,
                                       common.LCG_MULTIPLIER)
        np.testing.assert_array_equal(got, ref)
        assert got_state == ref_state

    def test_stream_partial_block(self):
        stream = common.RandlcStream(block=64)
        got, _ = stream.uniforms(common.DEFAULT_SEED, n=10)
        ref, _ = common.vranlc(10, common.DEFAULT_SEED,
                               common.LCG_MULTIPLIER)
        np.testing.assert_array_equal(got, ref)

    def test_stream_chaining_matches_one_shot(self):
        stream = common.RandlcStream(block=32)
        first, state = stream.uniforms(common.DEFAULT_SEED)
        second, _ = stream.uniforms(state)
        ref, _ = common.vranlc(64, common.DEFAULT_SEED,
                               common.LCG_MULTIPLIER)
        np.testing.assert_array_equal(np.concatenate([first, second]), ref)

    def test_stream_rejects_oversized_request(self):
        stream = common.RandlcStream(block=8)
        with pytest.raises(ValueError):
            stream.uniforms(common.DEFAULT_SEED, n=9)

    def test_stream_rejects_bad_block(self):
        with pytest.raises(ValueError):
            common.RandlcStream(block=0)


class TestIpow46:
    def test_zero_exponent_is_identity(self):
        assert common.ipow46(common.LCG_MULTIPLIER, 0) == 1.0

    @pytest.mark.parametrize("exponent", [1, 2, 3, 7, 16, 33, 100])
    def test_matches_repeated_multiplication(self, exponent):
        a = common.LCG_MULTIPLIER
        expected = pow(int(a), exponent, 2 ** 46)
        assert int(common.ipow46(a, exponent)) == expected

    def test_jump_ahead_matches_sequential_stream(self):
        # advancing the seed by ipow46(a, n) equals n sequential draws
        n = 37
        t = common.ipow46(common.LCG_MULTIPLIER, n)
        _, jumped = common.randlc(common.DEFAULT_SEED, t)
        x = common.DEFAULT_SEED
        for _ in range(n):
            _, x = common.randlc(x, common.LCG_MULTIPLIER)
        assert jumped == x


class TestNorms:
    def test_rms_norm_of_constant_field(self):
        field = np.full((4, 4, 4), 2.0)
        # denominator is prod(n - 2) = 2*2*2 = 8
        value = common.rms_norm(field, (4, 4, 4))
        assert value == pytest.approx(np.sqrt(np.sum(field ** 2) / 8.0))

    def test_weighted_abs_sum(self):
        field = np.array([-1.0, 2.0, -3.0])
        weights = np.array([1.0, 0.5, 2.0])
        assert common.weighted_abs_sum(field, weights) == pytest.approx(8.0)


class TestVerificationResult:
    def test_bool_reflects_passed(self):
        good = common.VerificationResult("BT", True, 1e-8)
        bad = common.VerificationResult("BT", False, 1e-8)
        assert good and not bad

    def test_summary_mentions_status_and_details(self):
        result = common.VerificationResult("MG", False, 1e-8,
                                           {"rnm2": 0.5}, notes="blew up")
        text = result.summary()
        assert "UNSUCCESSFUL" in text
        assert "rnm2" in text
        assert "blew up" in text

    def test_relative_error_handles_zero_reference(self):
        assert common.relative_error(0.5, 0.0) == 0.5
        assert common.relative_error(1.0, 2.0) == pytest.approx(0.5)

    def test_within_epsilon(self):
        assert common.within_epsilon(1.0 + 1e-9, 1.0, 1e-8)
        assert not common.within_epsilon(1.1, 1.0, 1e-8)
