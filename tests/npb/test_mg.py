"""Tests of the MG (multigrid) port."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import scrutinize
from repro.npb.mg import MG


@pytest.fixture(scope="module")
def bench():
    return MG(problem_class="T")


@pytest.fixture(scope="module")
def result(bench):
    return scrutinize(bench)


class TestSetup:
    def test_right_hand_side_is_deterministic(self):
        a = MG(problem_class="T")
        b = MG(problem_class="T")
        np.testing.assert_array_equal(a._v, b._v)

    def test_transfer_matrices_have_positive_rows_summing_to_one(self, bench):
        for matrix in bench._restriction + bench._prolongation:
            assert np.all(matrix > 0.0)
            np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_initial_residual_equals_rhs_minus_operator(self, bench):
        state = bench.initial_state()
        n = bench._fine
        u0 = state["u"][: n ** 3].reshape(n, n, n)
        r0 = state["r"][: n ** 3].reshape(n, n, n)
        np.testing.assert_allclose(r0, bench._v - bench._apply_operator(u0))

    def test_operator_annihilates_constants_on_interior(self, bench):
        n = bench._fine
        out = bench._apply_operator(np.ones((n, n, n)))
        # weights sum to -3 + 6*0.25 + 12*0.125 + 8*0.0625 = 0.5 per point
        interior = out[1:n - 1, 1:n - 1, 1:n - 1]
        np.testing.assert_allclose(interior, 0.5)
        # boundary rows are written as zero, not left untouched
        assert np.all(out[0] == 0.0)


class TestDynamics:
    def test_advance_increments_iteration(self, bench):
        new = bench._advance(bench.initial_state())
        assert new["it"] == 1

    def test_residual_norm_decreases_over_the_run(self, bench):
        state = bench.initial_state()
        initial = float(bench._residual_norm(state["u"]))
        final = bench.run_full()
        assert float(bench._residual_norm(final["u"])) < initial

    def test_allocation_tail_never_touched(self, bench):
        state = bench.initial_state()
        used = bench.params.used_elements
        final = bench.run_full()
        np.testing.assert_array_equal(final["u"][used:], state["u"][used:])
        np.testing.assert_array_equal(final["r"][used:], state["r"][used:])

    def test_run_and_verify_passes(self, bench):
        assert bench.run_and_verify().passed

    def test_verification_fails_on_corrupted_solution(self, bench):
        final = bench.run_full()
        final["u"] = np.array(final["u"], copy=True)
        final["u"][5] += 1.0
        assert not bench.verify(final).passed


class TestCriticality:
    def test_u_critical_prefix_is_finest_level(self, bench, result):
        n = bench._fine
        mask = result.variables["u"].mask
        assert mask[: n ** 3].all()
        assert not mask[n ** 3:].any()

    def test_r_critical_region_is_restriction_read_set(self, bench, result):
        n = bench._fine
        mask = result.variables["r"].mask
        cube = mask[: n ** 3].reshape(n, n, n)
        expected = np.zeros((n, n, n), dtype=bool)
        expected[: n - 1, : n - 1, : n - 1] = True
        np.testing.assert_array_equal(cube, expected)
        assert not mask[n ** 3:].any()

    def test_r_has_more_uncritical_than_u(self, result):
        assert result.variables["r"].n_uncritical \
            > result.variables["u"].n_uncritical

    def test_iteration_counter_rule_critical(self, result):
        assert result.variables["it"].method == "rule"
        assert result.variables["it"].n_uncritical == 0


class TestClassS:
    def test_paper_table2_rows(self, runner_s):
        variables = runner_s.result("MG").variables
        assert variables["u"].n_uncritical == 7176
        assert variables["r"].n_uncritical == 10543
        assert variables["u"].n_elements == 46480

    def test_figure4_prefix_structure(self, runner_s):
        mask = runner_s.result("MG").variables["u"].mask
        assert mask[: 34 ** 3].all()
        assert not mask[34 ** 3:].any()
