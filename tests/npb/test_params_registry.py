"""Tests of the problem-class parameters and the benchmark registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.variables import VariableKind
from repro.npb import params as params_mod
from repro.npb import registry
from repro.npb.params import params_for


class TestParamsFor:
    @pytest.mark.parametrize("name", registry.available_benchmarks())
    @pytest.mark.parametrize("cls", ["S", "T"])
    def test_every_benchmark_has_both_classes(self, name, cls):
        params = params_for(name, cls)
        assert params.problem_class == cls

    def test_unknown_benchmark_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            params_for("XX")

    def test_unknown_class_raises_valueerror(self):
        with pytest.raises(ValueError, match="unknown problem class"):
            params_for("BT", "Z")

    def test_lower_case_names_accepted(self):
        assert params_for("bt").u_shape == (12, 13, 13, 5)


class TestClassSShapes:
    """The class-S shapes must match the paper's Table I exactly."""

    def test_bt_sp_lu_solution_shape(self):
        for name in ("BT", "SP", "LU"):
            assert params_for(name).u_shape == (12, 13, 13, 5)

    def test_lu_scalar_field_shape(self):
        assert params_for("LU").scalar_field_shape == (12, 13, 13)

    def test_mg_flat_length_and_levels(self):
        params = params_for("MG")
        assert params.nr == 46480
        assert params.level_sizes() == [34, 18, 10, 6, 4]
        assert params.level_offsets()[0] == 0
        assert params.level_offsets()[1] == 34 ** 3
        assert params.used_elements == sum(n ** 3 for n in (34, 18, 10, 6, 4))
        assert params.used_elements <= params.nr

    def test_cg_lengths(self):
        params = params_for("CG")
        assert params.na == 1400
        assert params.x_len == 1402

    def test_ft_shape(self):
        params = params_for("FT")
        assert params.y_shape == (64, 64, 65)
        assert params.nz == 64

    def test_ep_batches(self):
        params = params_for("EP")
        assert params.n_batches == 2 ** (params.m - params.nk)

    def test_is_sizes(self):
        params = params_for("IS")
        assert params.total_keys == 65536
        assert params.num_buckets == 512


class TestRegistry:
    def test_available_benchmarks_order(self):
        assert registry.available_benchmarks() == (
            "BT", "SP", "MG", "CG", "LU", "FT", "EP", "IS")

    def test_create_is_case_insensitive(self):
        assert registry.create("bt", "T").name == "BT"

    def test_create_unknown_raises_with_known_names(self):
        with pytest.raises(KeyError, match="BT"):
            registry.create("nope")

    def test_iter_benchmarks_subset(self):
        names = [b.name for b in registry.iter_benchmarks("T", ["CG", "EP"])]
        assert names == ["CG", "EP"]

    def test_table1_rows_cover_all_benchmarks(self):
        rows = registry.table1_rows("T")
        assert [r.name for r in rows] == list(registry.available_benchmarks())
        for row in rows:
            assert row.declaration  # non-empty C-style declaration string

    def test_table1_class_s_declarations_match_paper(self):
        rows = {r.name: r.declaration for r in registry.table1_rows("S")}
        assert rows["BT"] == "double u[12][13][13][5], int step"
        assert rows["CG"] == "double x[1402], int it"
        assert "dcomplex y[64][64][65]" in rows["FT"]
        assert "int key_array[65536]" in rows["IS"]

    @pytest.mark.parametrize("name", registry.available_benchmarks())
    def test_every_benchmark_declares_one_main_loop_counter(self, name):
        bench = registry.create(name, "T")
        counters = [v for v in bench.checkpoint_variables()
                    if v.kind is VariableKind.INTEGER and v.is_scalar]
        assert len(counters) >= 1
        assert all(v.critical_by_rule for v in counters)

    @pytest.mark.parametrize("name", registry.available_benchmarks())
    def test_initial_state_matches_declared_variables(self, name):
        bench = registry.create(name, "T")
        state = bench.initial_state()
        for var in bench.checkpoint_variables():
            for key in var.state_keys():
                assert key in state
                if not var.is_scalar:
                    assert np.asarray(state[key]).shape == var.shape
