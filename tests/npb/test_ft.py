"""Tests of the FT (3-D FFT) port."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import scrutinize
from repro.npb.ft import FT


@pytest.fixture(scope="module")
def bench():
    return FT(problem_class="T")


@pytest.fixture(scope="module")
def result(bench):
    return scrutinize(bench)


class TestTransforms:
    def test_inverse_transform_matches_numpy_ifftn(self, bench, rng):
        p = bench.params
        field = rng.random((p.nx, p.ny, p.nz)) \
            + 1j * rng.random((p.nx, p.ny, p.nz))
        out_re, out_im = bench._inverse_transform(field.real.copy(),
                                                  field.imag.copy())
        expected = np.fft.ifftn(field)
        np.testing.assert_allclose(out_re, expected.real, atol=1e-10)
        np.testing.assert_allclose(out_im, expected.imag, atol=1e-10)

    def test_inverse_of_initial_spectrum_recovers_initial_field(self, bench):
        spec_re, spec_im = bench._initial_spectrum
        out_re, out_im = bench._inverse_transform(spec_re.copy(),
                                                  spec_im.copy())
        # the initial field is real, so the imaginary part must vanish
        np.testing.assert_allclose(out_im, 0.0, atol=1e-9)

    def test_evolution_factor_decays_with_time(self, bench):
        f1 = bench._evolution_factor(1)
        f2 = bench._evolution_factor(2)
        assert np.all(f2 <= f1)
        assert f1.max() <= 1.0


class TestDynamics:
    def test_initial_state_pads_last_plane(self, bench):
        state = bench.initial_state()
        p = bench.params
        assert state["y_re"].shape == p.y_shape
        assert np.all(state["y_re"][:, :, p.nz] == state["y_re"][0, 0, p.nz])

    def test_spectrum_is_never_modified(self, bench):
        state = bench.initial_state()
        final = bench.run_full()
        np.testing.assert_array_equal(final["y_re"], state["y_re"])
        np.testing.assert_array_equal(final["y_im"], state["y_im"])

    def test_sums_accumulate_one_entry_per_iteration(self, bench):
        state = bench.initial_state()
        for t in range(1, bench.total_steps + 1):
            state = bench._advance(state)
            filled = np.flatnonzero(state["sums_re"])
            assert filled.max() == t - 1

    def test_checksums_are_additive_in_the_checkpointed_sums(self, bench):
        # sums is read-modify-write: pre-loading it shifts the final value
        state = bench.initial_state()
        state["sums_re"] = state["sums_re"] + 1.0
        final = bench.run(state, bench.total_steps)
        reference = bench.run_full()
        np.testing.assert_allclose(final["sums_re"],
                                   reference["sums_re"] + 1.0)

    def test_run_and_verify_passes(self, bench):
        assert bench.run_and_verify().passed

    def test_verification_fails_on_corrupted_checksums(self, bench):
        final = bench.run_full()
        final["sums_re"] = np.array(final["sums_re"], copy=True)
        final["sums_re"][0] *= 1.1
        assert not bench.verify(final).passed


class TestSampling:
    def test_checksum_samples_are_a_proper_subset(self, bench):
        # regression: with n_samples >= grid size the old code sampled
        # every grid point, so the checksum only saw the DC coefficient
        # and every other spectral weight was *mathematically* zero --
        # criticality there was decided by round-off noise
        p = bench.params
        ki, _, _ = bench._sample_indices
        assert len(ki) < p.nx * p.ny * p.nz

    def test_no_spectral_coefficient_has_zero_weight(self, bench):
        # the structural weight of coefficient (i, j, k) is the (i, j, k)
        # Fourier coefficient of the sample-indicator field
        p = bench.params
        ki, kj, kk = bench._sample_indices
        indicator = np.zeros((p.nx, p.ny, p.nz))
        np.add.at(indicator, (ki, kj, kk), 1.0)
        assert np.all(indicator <= 1.0)          # no repeated samples
        weights = np.fft.fftn(indicator)
        assert np.abs(weights).min() > 1.0e-6


class TestCriticality:
    def test_only_padding_plane_uncritical(self, bench, result):
        mask = result.variables["y"].mask
        p = bench.params
        assert mask[:, :, : p.nz].all()
        assert not mask[:, :, p.nz:].any()
        assert result.variables["y"].n_uncritical == p.nx * p.ny

    def test_sums_fully_critical(self, result):
        assert result.variables["sums"].n_uncritical == 0

    def test_kt_rule_critical(self, result):
        assert result.variables["kt"].method == "rule"


class TestClassS:
    def test_paper_table2_row(self, runner_s):
        crit = runner_s.result("FT").variables["y"]
        assert (crit.n_uncritical, crit.n_elements) == (4096, 266240)
