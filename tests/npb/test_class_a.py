"""Class A: the enlarged scenario unlocked by the segmented reverse sweep.

Class A is deliberately sized so the *monolithic* tape of a full remaining
loop is an order of magnitude larger than one iteration's tape; the
segmented sweep analyses it with per-iteration memory.  The smoke tests run
one class-A analysis end-to-end and check that the paper's structural
findings survive the larger size (CG's two trailing slack slots, FT's
padding plane).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad.segmented import SweepStats, segmented_gradients
from repro.core.analysis import scrutinize
from repro.npb import registry
from repro.npb.params import CLASSES, params_for


class TestClassARegistration:
    def test_class_a_is_a_known_class(self):
        assert "A" in CLASSES

    @pytest.mark.parametrize("name", ["CG", "FT", "MG", "SP", "EP", "IS"])
    def test_class_a_params_registered(self, name):
        params = params_for(name, "A")
        assert params.problem_class == "A"

    def test_class_a_is_larger_than_class_s(self):
        assert params_for("CG", "A").na > params_for("CG", "S").na
        assert params_for("CG", "A").niter > params_for("CG", "S").niter
        a, s = params_for("FT", "A"), params_for("FT", "S")
        assert a.nx * a.ny * a.nz_pad > s.nx * s.ny * s.nz_pad

    def test_class_a_mg_is_larger_than_class_t(self):
        # MG's class A grows the stencil hierarchy (not past class S, whose
        # 46480-slot tape is out of reach for a pure-numpy port) and doubles
        # the V-cycle count -- the dense-tape regime the segmented sweep is
        # for
        a, t = params_for("MG", "A"), params_for("MG", "T")
        assert a.used_elements > t.used_elements
        assert a.niter > t.niter
        assert a.levels > t.levels
        assert a.used_elements <= a.nr

    def test_class_a_sp_is_larger_than_class_s(self):
        # SP's class A grows the ADI grid past class S (same one-plane
        # padding layout) and keeps a longer loop than class T
        a = params_for("SP", "A")
        s = params_for("SP", "S")
        t = params_for("SP", "T")
        assert a.grid_points > s.grid_points
        assert a.jmax == a.grid_points + 1 and a.imax == a.grid_points + 1
        assert a.niter > t.niter

    def test_class_a_simple_ports_have_longer_loops(self):
        # EP and IS scale by main-loop length (the snapshot-schedule
        # regime), not by array size
        assert params_for("EP", "A").n_batches > params_for("EP", "S").n_batches
        assert params_for("IS", "A").niter > params_for("IS", "S").niter
        assert params_for("IS", "A").total_keys \
            > params_for("IS", "S").total_keys

    def test_unregistered_benchmark_gets_actionable_error(self):
        with pytest.raises(KeyError, match="no class-A parameters"):
            params_for("BT", "A")

    def test_truly_unknown_benchmark_still_reported_as_unknown(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            params_for("XX", "A")


class TestClassAEndToEnd:
    def test_cg_class_a_segmented_scrutiny(self):
        """Full end-to-end class-A analysis under the segmented sweep."""
        bench = registry.create("CG", "A")
        result = scrutinize(bench, sweep="segmented")
        assert result.problem_class == "A"
        # the paper's CG finding scales with NA: the two trailing slots of
        # the declared NA + 2 iterate are still the only uncritical elements
        assert result.variables["x"].n_uncritical == 2
        assert not result.variables["x"].mask[-2:].any()
        assert result.variables["x"].mask[: bench.params.na].all()

    def test_ft_class_a_padding_plane_uncritical(self):
        """FT's structural finding at class A (analysis depth limited to
        keep the suite fast; the padding plane is step-independent)."""
        bench = registry.create("FT", "A")
        state = bench.checkpoint_state(bench.total_steps - 2)
        result = scrutinize(bench, state=state, steps=2, sweep="segmented")
        p = bench.params
        for comp in ("y_re", "y_im"):
            grad = result.variables["y"].gradients[comp]
            assert grad.shape == p.y_shape
        mask = result.variables["y"].mask
        assert not mask[:, :, p.nz:].any()      # padding plane uncritical
        assert result.variables["sums"].mask.all()

    def test_cg_class_a_peak_tape_is_per_iteration(self):
        bench = registry.create("CG", "A")
        state = bench.checkpoint_state(bench.total_steps - 5)
        stats = SweepStats()
        segmented_gradients(bench, state, stats=stats)
        assert stats.n_segments == 6            # 5 iterations + output
        # a monolithic tape would hold all segments at once; the segmented
        # peak must stay close to the largest single segment
        assert stats.peak_nodes <= max(stats.segment_nodes)
        assert stats.peak_nodes * 3 < stats.total_nodes

    def test_mg_class_a_segmented_scrutiny(self):
        """MG's stencil class A under the segmented sweep (analysis depth
        limited to keep the suite fast; the declared-but-unused tail of the
        flat hierarchy is step-independent)."""
        bench = registry.create("MG", "A")
        assert bench.total_steps == 8
        state = bench.checkpoint_state(bench.total_steps - 2)
        result = scrutinize(bench, state=state, steps=2, sweep="segmented")
        assert result.problem_class == "A"
        p = bench.params
        # the class-S structural finding survives the resize: the slack
        # slots past the flat level layout are never touched
        for name in ("u", "r"):
            mask = result.variables[name].mask
            assert mask.shape == (p.nr,)
            assert not mask[p.used_elements:].any()
        assert result.variables["u"].mask[: p.used_elements].any()

    def test_mg_class_a_peak_tape_is_per_iteration(self):
        bench = registry.create("MG", "A")
        state = bench.checkpoint_state(bench.total_steps - 2)
        stats = SweepStats()
        segmented_gradients(bench, state, stats=stats)
        assert stats.n_segments == 3            # 2 V-cycles + output
        assert stats.peak_nodes <= max(stats.segment_nodes)
        assert stats.peak_nodes * 2 < stats.total_nodes

    @pytest.mark.parametrize("trace_cache", ["off", "plan"])
    def test_mg_class_a_segmented_activity_matches_monolithic(
            self, trace_cache):
        """The chained activity sweep on the stencil class A: bitwise the
        same read masks as the monolithic tape walk."""
        mono = registry.create("MG", "A")
        state = mono.checkpoint_state(mono.total_steps - 2)
        mono_result = scrutinize(mono, state=dict(state), steps=2,
                                 method="activity")
        seg = registry.create("MG", "A")
        seg_result = scrutinize(seg, state=dict(state), steps=2,
                                method="activity", sweep="segmented",
                                trace_cache=trace_cache)
        for name, crit in mono_result.variables.items():
            np.testing.assert_array_equal(
                crit.mask, seg_result.variables[name].mask, err_msg=name)

    def test_sp_class_a_segmented_scrutiny(self):
        """SP's ADI class A under the segmented sweep (analysis depth
        limited to keep the suite fast; the padding planes are
        step-independent)."""
        bench = registry.create("SP", "A")
        assert bench.total_steps == 20
        state = bench.checkpoint_state(bench.total_steps - 2)
        result = scrutinize(bench, state=state, steps=2, sweep="segmented")
        assert result.problem_class == "A"
        p = bench.params
        mask = result.variables["u"].mask.reshape(p.u_shape)
        # the class-S/T structural finding survives the resize: the one
        # jmax/imax padding plane past the used grid is never read
        assert not mask[:, p.grid_points:, :, :].any()
        assert not mask[:, :, p.grid_points:, :].any()
        assert mask[: p.grid_points, : p.grid_points,
                    : p.grid_points, :].all()

    def test_sp_class_a_segmented_activity_matches_monolithic(self):
        """The chained activity sweep on the ADI class A: bitwise the same
        read masks as the monolithic tape walk, with plan replay on."""
        mono = registry.create("SP", "A")
        state = mono.checkpoint_state(mono.total_steps - 2)
        mono_result = scrutinize(mono, state=dict(state), steps=2,
                                 method="activity")
        seg = registry.create("SP", "A")
        seg_result = scrutinize(seg, state=dict(state), steps=2,
                                method="activity", sweep="segmented")
        for name, crit in mono_result.variables.items():
            np.testing.assert_array_equal(
                crit.mask, seg_result.variables[name].mask, err_msg=name)

    def test_ep_class_a_segmented_smoke(self):
        """EP's long-loop class A end-to-end under the segmented sweep
        (analysis depth limited to keep the suite fast; EP's accumulators
        are structurally critical at every step)."""
        bench = registry.create("EP", "A")
        assert bench.total_steps == 512
        state = bench.checkpoint_state(bench.total_steps - 3)
        result = scrutinize(bench, state=state, steps=3, sweep="segmented")
        assert result.problem_class == "A"
        # sums and annulus counts are read-modify-write accumulators:
        # every element stays critical, exactly as at class S
        for name in ("sx", "sy", "q"):
            assert result.variables[name].mask.all()

    def test_is_class_a_segmented_smoke(self):
        """IS's enlarged class A: integer-only state stays critical by
        rule and the segmented sweep degrades gracefully to zeros."""
        bench = registry.create("IS", "A")
        assert bench.total_steps == 40
        state = bench.checkpoint_state(bench.total_steps - 2)
        result = scrutinize(bench, state=state, steps=2, sweep="segmented")
        assert result.problem_class == "A"
        for name, crit in result.variables.items():
            assert crit.method == "rule", name
            assert crit.mask.all(), name
