"""Checkpoint/restart equivalence: restarting from a mid-run state and
finishing must reproduce the uninterrupted run bit-for-bit.

This is the fundamental property the whole checkpoint library relies on --
the benchmarks are deterministic functions of their checkpoint variables, so
a restart from the saved state continues the identical trajectory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.npb import registry
from repro.npb.base import concrete_state


def _final_states(bench, split_step):
    full = concrete_state(bench.run_full())
    mid = bench.checkpoint_state(split_step)
    resumed = concrete_state(bench.run(mid, bench.total_steps - split_step))
    return full, resumed


@pytest.mark.parametrize("name", registry.available_benchmarks())
def test_restart_reproduces_full_run_exactly(name):
    bench = registry.create(name, "T")
    split = bench.total_steps // 2
    full, resumed = _final_states(bench, split)
    assert set(full) == set(resumed)
    for key, value in full.items():
        np.testing.assert_array_equal(
            np.asarray(value), np.asarray(resumed[key]),
            err_msg=f"{name}: state entry {key!r} diverged after restart")


@pytest.mark.parametrize("name", ["BT", "MG", "CG", "FT"])
def test_restart_from_every_step_is_exact(name):
    bench = registry.create(name, "T")
    full = concrete_state(bench.run_full())
    for split in range(1, bench.total_steps, max(bench.total_steps // 3, 1)):
        mid = bench.checkpoint_state(split)
        resumed = concrete_state(bench.run(mid, bench.total_steps - split))
        for key in full:
            np.testing.assert_array_equal(np.asarray(full[key]),
                                          np.asarray(resumed[key]))


@pytest.mark.parametrize("name", registry.available_benchmarks())
def test_verification_passes_after_restart(name):
    bench = registry.create(name, "T")
    split = max(bench.total_steps - 2, 1)
    mid = bench.checkpoint_state(split)
    final = bench.run(mid, bench.total_steps - split)
    assert bench.verify(final).passed
