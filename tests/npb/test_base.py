"""Tests of the NPBBenchmark base class using a minimal toy benchmark."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.ad import ops
from repro.core.variables import CheckpointVariable, VariableKind
from repro.npb.base import NPBBenchmark, concrete_state, copy_state
from repro.npb.common import VerificationResult


@dataclass(frozen=True)
class ToyParams:
    problem_class: str = "T"
    niter: int = 4
    n: int = 6


class ToyBenchmark(NPBBenchmark):
    """Doubles the first half of a vector each step; second half unused."""

    name = "TOY"

    def checkpoint_variables(self):
        return (
            CheckpointVariable("v", (self.params.n,), VariableKind.FLOAT),
            CheckpointVariable("it", (), VariableKind.INTEGER,
                               dtype=np.int64, critical_by_rule=True),
        )

    def initial_state(self):
        return {"v": np.arange(1.0, self.params.n + 1.0), "it": 0}

    def _advance(self, state):
        half = self.params.n // 2
        v = state["v"]
        updated = ops.index_update(v, slice(0, half), v[0:half] * 1.5)
        return {"v": updated, "it": int(state["it"]) + 1}

    def output(self, state):
        half = self.params.n // 2
        return ops.sum(state["v"][0:half])

    def verify(self, state):
        value = float(ops.to_numpy(self.output(state)))
        expected = 1.5 ** self.params.niter * sum(
            range(1, self.params.n // 2 + 1))
        passed = abs(value - expected) / expected < 1e-12
        return VerificationResult(self.name, passed, 1e-12)


@pytest.fixture()
def toy():
    return ToyBenchmark(ToyParams())


class TestStateHelpers:
    def test_concrete_state_copies_arrays(self):
        state = {"a": np.ones(3), "n": 5}
        out = concrete_state(state)
        out["a"][0] = 99.0
        assert state["a"][0] == 1.0
        assert out["n"] == 5

    def test_copy_state_equivalent(self):
        state = {"a": np.ones(3)}
        assert np.array_equal(copy_state(state)["a"], state["a"])


class TestMainLoopDrivers:
    def test_run_zero_steps_is_identity(self, toy):
        state = toy.initial_state()
        out = toy.run(state, 0)
        np.testing.assert_array_equal(out["v"], state["v"])

    def test_run_negative_steps_rejected(self, toy):
        with pytest.raises(ValueError):
            toy.run(toy.initial_state(), -1)

    def test_run_full_and_verify(self, toy):
        assert toy.run_and_verify().passed

    def test_checkpoint_state_bounds(self, toy):
        with pytest.raises(ValueError):
            toy.checkpoint_state(-1)
        with pytest.raises(ValueError):
            toy.checkpoint_state(toy.total_steps + 1)

    def test_checkpoint_state_is_concrete(self, toy):
        state = toy.checkpoint_state(2)
        assert isinstance(state["v"], np.ndarray)
        assert state["it"] == 2

    def test_step_variable_detected(self, toy):
        assert toy.step_variable() == "it"

    def test_remaining_steps(self, toy):
        assert toy.remaining_steps(1) == toy.total_steps - 1

    def test_restart_output_defaults_to_remaining_steps(self, toy):
        # restarting from step k and finishing must give the full-run output
        full = float(ops.to_numpy(toy.output(toy.run_full())))
        mid = toy.checkpoint_state(2)
        restarted = float(ops.to_numpy(toy.restart_output(mid)))
        assert restarted == pytest.approx(full)

    def test_describe_lists_variables(self, toy):
        text = toy.describe()
        assert "TOY" in text
        assert "v" in text and "it" in text


class TestTracedRestart:
    def test_traced_restart_returns_gradients_for_watched_keys(self, toy):
        state = toy.checkpoint_state(2)
        tape, leaves, out = toy.traced_restart(state)
        assert set(leaves) == {"v"}
        (grad,) = tape.gradient(out, [leaves["v"]])
        half = toy.params.n // 2
        assert np.all(grad[:half] != 0.0)
        assert np.all(grad[half:] == 0.0)

    def test_traced_restart_unknown_watch_key(self, toy):
        with pytest.raises(KeyError):
            toy.traced_restart(toy.checkpoint_state(1), watch=["nope"])

    def test_traced_restart_explicit_steps(self, toy):
        state = toy.checkpoint_state(1)
        tape, leaves, out = toy.traced_restart(state, steps=1)
        (grad,) = tape.gradient(out, [leaves["v"]])
        # one step of x *= 1.5 followed by a sum: derivative is exactly 1.5
        assert np.allclose(grad[: toy.params.n // 2], 1.5)


class TestHooksAreAbstract:
    def test_base_class_raises_not_implemented(self):
        bench = NPBBenchmark(ToyParams())
        with pytest.raises(NotImplementedError):
            bench.checkpoint_variables()
        with pytest.raises(NotImplementedError):
            bench.initial_state()
        with pytest.raises(NotImplementedError):
            bench._advance({})
        with pytest.raises(NotImplementedError):
            bench.output({})
