"""Validating the AD engine against independent derivative estimates on the
actual benchmark computations.

The whole study hinges on the reverse-mode derivatives being right, so this
module cross-checks them on the real kernels (reduced problem class) with
two independent oracles:

* central finite differences of the restart output with respect to a sample
  of individual elements (the definition of the derivative);
* a central finite difference of the output along a random *direction*,
  which must equal the inner product of the reverse-mode gradient with that
  direction.

These are the benchmark-level counterparts of the synthetic checks in
``tests/ad``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import ops
from repro.ad.reverse import backward
from repro.npb import registry


def _restart_scalar(bench, state, key, steps):
    """Scalar restart output as a plain function of one state entry."""

    def fun(values: np.ndarray) -> float:
        probe_state = dict(state)
        probe_state[key] = values.reshape(np.shape(state[key]))
        return float(ops.to_numpy(bench.restart_output(probe_state,
                                                       steps=steps)))

    return fun


def _reverse_gradient(bench, state, key, steps):
    tape, leaves, out = bench.traced_restart(state, watch=[key], steps=steps)
    (grad,) = backward(tape, out, [leaves[key]], strict=False)
    return grad


@pytest.mark.parametrize("name,key", [("BT", "u"), ("LU", "rsd"),
                                      ("MG", "r"), ("CG", "x")])
def test_reverse_gradient_matches_finite_differences(name, key, rng):
    """Sampled elements: d(output)/d(element) vs central differences."""
    bench = registry.create(name, "T")
    state = bench.checkpoint_state(bench.total_steps // 2)
    steps = 2  # keep the finite-difference truncation error manageable
    grad = _reverse_gradient(bench, state, key, steps)
    fun = _restart_scalar(bench, state, key, steps)

    base = np.asarray(state[key], dtype=np.float64).reshape(-1)
    flat_grad = grad.reshape(-1)
    # check a mix of the largest-gradient elements and random ones
    candidates = np.concatenate([
        np.argsort(np.abs(flat_grad))[-3:],
        rng.choice(base.size, size=5, replace=False),
    ])
    for index in candidates:
        h = 1.0e-6 * max(abs(base[index]), 1.0)
        plus = base.copy()
        plus[index] += h
        minus = base.copy()
        minus[index] -= h
        fd = (fun(plus) - fun(minus)) / (2.0 * h)
        scale = max(abs(fd), abs(flat_grad[index]), 1.0e-8)
        assert abs(fd - flat_grad[index]) / scale < 5.0e-4, \
            f"{name}.{key}[{index}]: fd={fd}, ad={flat_grad[index]}"


@pytest.mark.parametrize("name,key", [("BT", "u"), ("MG", "u"), ("CG", "x")])
def test_reverse_gradient_matches_directional_derivative(name, key, rng):
    """<grad, v> must equal the directional derivative along a random v."""
    bench = registry.create(name, "T")
    state = bench.checkpoint_state(bench.total_steps // 2)
    steps = 1
    grad = _reverse_gradient(bench, state, key, steps)
    fun = _restart_scalar(bench, state, key, steps)

    base = np.asarray(state[key], dtype=np.float64)
    direction = rng.standard_normal(base.shape)
    direction /= np.linalg.norm(direction)
    scale = max(float(np.max(np.abs(base))), 1.0)
    h = 1.0e-6 * scale
    directional = (fun((base + h * direction).reshape(-1))
                   - fun((base - h * direction).reshape(-1))) / (2.0 * h)
    pairing = float(np.sum(grad * direction))
    denom = max(abs(directional), abs(pairing), 1.0e-8)
    assert abs(directional - pairing) / denom < 5.0e-4


@pytest.mark.parametrize("name", ["BT", "LU", "MG", "CG", "FT"])
def test_zero_gradient_elements_truly_do_not_change_the_output(name, rng):
    """Perturbing an uncritical element must leave the output bit-identical
    (not merely close): those elements are never read."""
    bench = registry.create(name, "T")
    state = bench.checkpoint_state(bench.total_steps // 2)
    from repro.core.analysis import scrutinize

    result = scrutinize(bench, state=state)
    baseline = float(ops.to_numpy(bench.restart_output(dict(state))))
    for crit in result.variables.values():
        if crit.n_uncritical == 0 or not crit.gradients:
            continue
        flat_mask = crit.mask.reshape(-1)
        uncritical_indices = np.flatnonzero(~flat_mask)
        picks = rng.choice(uncritical_indices,
                           size=min(5, uncritical_indices.size),
                           replace=False)
        for key in crit.variable.state_keys():
            perturbed = dict(state)
            arr = np.array(np.asarray(state[key], dtype=np.float64),
                           copy=True).reshape(-1)
            arr[picks] += 1.0e6
            perturbed[key] = arr.reshape(np.shape(state[key]))
            output = float(ops.to_numpy(bench.restart_output(perturbed)))
            assert output == baseline, \
                f"{name}.{key}: uncritical element changed the output"


@pytest.mark.parametrize("name", ["BT", "MG"])
def test_critical_elements_do_change_the_output(name, rng):
    """The complementary check: perturbing a critical element moves the
    output."""
    bench = registry.create(name, "T")
    state = bench.checkpoint_state(bench.total_steps // 2)
    from repro.core.analysis import scrutinize

    result = scrutinize(bench, state=state)
    baseline = float(ops.to_numpy(bench.restart_output(dict(state))))
    for crit in result.variables.values():
        if not crit.gradients:
            continue
        key = crit.variable.state_keys()[0]
        grad = np.abs(crit.gradients[key]).reshape(-1)
        index = int(np.argmax(grad))
        perturbed = dict(state)
        arr = np.array(np.asarray(state[key], dtype=np.float64),
                       copy=True).reshape(-1)
        arr[index] += 1.0e-3 * max(abs(arr[index]), 1.0)
        perturbed[key] = arr.reshape(np.shape(state[key]))
        output = float(ops.to_numpy(bench.restart_output(perturbed)))
        assert output != baseline
