"""Test package: npb — unique module paths for same-basename test files."""
