"""Tests of the BT and SP structured-grid ports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import scrutinize
from repro.core.masks import uncritical_planes
from repro.npb.bt import BT
from repro.npb.pde_common import (PADDING_FILL, exact_field, forcing_field,
                                  initial_field, laplacian_interior)
from repro.npb.sp import SP


@pytest.fixture(scope="module", params=[BT, SP], ids=["BT", "SP"])
def bench(request):
    return request.param(problem_class="T")


class TestPdeCommon:
    def test_exact_field_pads_outside_used_grid(self):
        field = exact_field((6, 7, 7, 5), 6)
        assert np.all(field[:, 6, :, :] == PADDING_FILL)
        assert np.all(field[:, :, 6, :] == PADDING_FILL)
        # the used block is a smooth non-constant field
        assert field[:6, :6, :6, :].std() > 0.0

    def test_exact_field_rejects_oversized_grid(self):
        with pytest.raises(ValueError):
            exact_field((6, 7, 7, 5), 8)

    def test_initial_field_differs_from_exact_everywhere_used(self):
        exact = exact_field((6, 7, 7, 5), 6)
        init = initial_field((6, 7, 7, 5), 6)
        assert np.all(init[:6, :6, :6, :] != exact[:6, :6, :6, :])
        # padding identical (never touched)
        assert np.array_equal(init[:, 6, :, :], exact[:, 6, :, :])

    def test_laplacian_of_linear_field_is_zero(self):
        gp = 6
        axis = np.arange(gp, dtype=np.float64)
        linear = np.zeros((gp, gp, gp, 2))
        linear += axis[:, None, None, None]
        linear += 2.0 * axis[None, :, None, None]
        lap = laplacian_interior(linear, gp)
        assert np.allclose(lap, 0.0)

    def test_forcing_makes_exact_field_a_fixed_point(self):
        shape, gp, nl = (6, 7, 7, 5), 6, 0.1
        exact = exact_field(shape, gp)
        forcing = forcing_field(shape, gp, nl)
        lap = laplacian_interior(exact, gp)
        q = 0.5 * (exact[1:gp - 1, 1:gp - 1, 1:gp - 1, 1:2] ** 2
                   + exact[1:gp - 1, 1:gp - 1, 1:gp - 1, 2:3] ** 2)
        nonlinear = nl * exact[1:gp - 1, 1:gp - 1, 1:gp - 1, :] * (
            q - exact[1:gp - 1, 1:gp - 1, 1:gp - 1, :])
        rhs = lap + nonlinear + forcing[1:gp - 1, 1:gp - 1, 1:gp - 1, :]
        assert np.allclose(rhs, 0.0, atol=1e-12)


class TestDynamics:
    def test_advance_increments_step_and_keeps_shapes(self, bench):
        state = bench.initial_state()
        new = bench._advance(state)
        assert new["step"] == 1
        assert new["u"].shape == bench.params.u_shape

    def test_advance_never_touches_padding(self, bench):
        state = bench.initial_state()
        final = bench.run(state, 3)
        gp = bench.params.grid_points
        np.testing.assert_array_equal(final["u"][:, gp:, :, :],
                                      state["u"][:, gp:, :, :])
        np.testing.assert_array_equal(final["u"][:, :, gp:, :],
                                      state["u"][:, :, gp:, :])

    def test_advance_does_not_mutate_input_state(self, bench):
        state = bench.initial_state()
        before = state["u"].copy()
        bench._advance(state)
        np.testing.assert_array_equal(state["u"], before)

    def test_solution_stays_bounded(self, bench):
        final = bench.run(bench.initial_state(), bench.total_steps)
        assert np.all(np.isfinite(final["u"]))
        assert np.max(np.abs(final["u"])) < 1e3

    def test_run_and_verify_passes(self, bench):
        assert bench.run_and_verify().passed

    def test_verification_fails_on_corrupted_interior(self, bench):
        final = bench.run_full()
        final["u"] = np.array(final["u"], copy=True)
        final["u"][2, 2, 2, 0] *= 1.5
        assert not bench.verify(final).passed


class TestCriticality:
    def test_uncritical_exactly_on_padded_planes(self, bench):
        result = scrutinize(bench)
        mask = result.variables["u"].mask
        gp = bench.params.grid_points
        # the used sub-grid is fully critical
        assert mask[:gp, :gp, :gp, :].all()
        # the padded j/i planes are fully uncritical
        assert not mask[:, gp:, :, :].any()
        assert not mask[:, :, gp:, :].any()

    def test_uncritical_count_formula(self, bench):
        result = scrutinize(bench)
        crit = result.variables["u"]
        gp = bench.params.grid_points
        kmax, jmax, imax, ncomp = bench.params.u_shape
        expected_critical = kmax * gp * gp * ncomp
        assert crit.n_critical == expected_critical
        assert crit.n_uncritical == crit.n_elements - expected_critical

    def test_all_five_components_share_the_pattern(self, bench):
        mask = scrutinize(bench).variables["u"].mask
        for m in range(1, 5):
            np.testing.assert_array_equal(mask[..., m], mask[..., 0])

    def test_step_counter_is_rule_critical(self, bench):
        result = scrutinize(bench)
        step_crit = result.variables["step"]
        assert step_crit.method == "rule"
        assert step_crit.n_uncritical == 0

    def test_uncritical_planes_helper_reports_padded_faces(self, bench):
        mask = scrutinize(bench).variables["u"].mask[..., 0]
        gp = bench.params.grid_points
        assert uncritical_planes(mask) == {1: [gp], 2: [gp]}


class TestClassS:
    """Spot checks at the paper's scale (shared session cache keeps it to
    one analysis per benchmark)."""

    def test_bt_paper_numbers(self, runner_s):
        crit = runner_s.result("BT").variables["u"]
        assert (crit.n_uncritical, crit.n_elements) == (1500, 10140)

    def test_sp_matches_bt_pattern(self, runner_s):
        bt_mask = runner_s.result("BT").variables["u"].mask
        sp_mask = runner_s.result("SP").variables["u"].mask
        np.testing.assert_array_equal(bt_mask, sp_mask)
