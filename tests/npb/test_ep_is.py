"""Tests of the EP (random deviates) and IS (integer sort) ports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import scrutinize
from repro.npb.ep import EP
from repro.npb.is_ import IS


@pytest.fixture(scope="module")
def ep():
    return EP(problem_class="T")


@pytest.fixture(scope="module")
def is_bench():
    return IS(problem_class="T")


class TestEPBatches:
    def test_batch_seed_zero_is_default_seed(self, ep):
        from repro.npb.common import DEFAULT_SEED

        assert ep._batch_seed(0) == DEFAULT_SEED

    def test_batch_seeds_match_sequential_stream(self, ep):
        # batch k's seed equals the state after k * batch_draws draws
        from repro.npb.common import DEFAULT_SEED, LCG_MULTIPLIER, randlc

        x = DEFAULT_SEED
        for _ in range(ep._batch_draws):
            _, x = randlc(x, LCG_MULTIPLIER)
        assert ep._batch_seed(1) == x

    def test_batch_sums_are_deterministic(self, ep):
        a = ep._batch_sums(3)
        b = ep._batch_sums(3)
        assert a[0] == b[0] and a[1] == b[1]
        np.testing.assert_array_equal(a[2], b[2])

    def test_annulus_counts_do_not_exceed_pairs(self, ep):
        _, _, counts = ep._batch_sums(0)
        assert counts.sum() <= 2 ** ep.params.nk
        assert np.all(counts >= 0)

    def test_gaussian_sums_have_plausible_magnitude(self, ep):
        # the mean of ~0.78 * 2**nk standard normals is O(sqrt(n))
        sx, sy, counts = ep._batch_sums(0)
        n_accepted = counts.sum()
        assert abs(sx) < 10.0 * np.sqrt(n_accepted)
        assert abs(sy) < 10.0 * np.sqrt(n_accepted)


class TestEPDynamics:
    def test_total_steps_is_batch_count(self, ep):
        assert ep.total_steps == ep.params.n_batches

    def test_accumulators_are_additive_across_a_checkpoint(self, ep):
        # run all batches in one go vs. restart from a mid-run checkpoint
        full = ep.run_full()
        mid = ep.checkpoint_state(ep.total_steps // 2)
        resumed = ep.run(mid, ep.total_steps - ep.total_steps // 2)
        assert resumed["sx"] == pytest.approx(full["sx"], rel=1e-12)
        assert resumed["sy"] == pytest.approx(full["sy"], rel=1e-12)
        np.testing.assert_allclose(resumed["q"], full["q"])

    def test_run_and_verify_passes(self, ep):
        assert ep.run_and_verify().passed

    def test_verification_fails_on_corrupted_sums(self, ep):
        final = ep.run_full()
        final["sx"] = float(final["sx"]) * 1.01
        assert not ep.verify(final).passed

    def test_all_elements_critical(self, ep):
        result = scrutinize(ep, step=ep.total_steps // 2)
        for crit in result.variables.values():
            assert crit.n_uncritical == 0


class TestISRanking:
    def test_bucket_pointers_are_exclusive_prefix_sums(self, is_bench):
        keys = is_bench.initial_state()["key_array"]
        ptrs = is_bench._bucket_pointers(keys)
        buckets = keys >> is_bench._shift
        counts = np.bincount(buckets, minlength=is_bench.params.num_buckets)
        np.testing.assert_array_equal(np.diff(ptrs), counts[:-1])
        assert ptrs[0] == 0

    def test_rank_counts_strictly_smaller_keys(self, is_bench, rng):
        keys = rng.integers(0, is_bench.params.max_key, size=200)
        ranks = is_bench._rank(keys)
        for idx in rng.choice(200, size=10, replace=False):
            assert ranks[idx] == np.count_nonzero(keys < keys[idx])

    def test_sorting_by_rank_orders_the_keys(self, is_bench):
        keys = is_bench.run_full()["key_array"]
        ranks = is_bench._rank(keys)
        ordered = keys[np.argsort(ranks, kind="stable")]
        assert np.all(np.diff(ordered) >= 0)


class TestISDynamics:
    def test_advance_updates_two_keys(self, is_bench):
        state = is_bench.initial_state()
        new = is_bench._advance(state)
        changed = np.flatnonzero(new["key_array"] != state["key_array"])
        assert changed.size <= 2
        assert new["iteration"] == 1

    def test_partial_verification_increments_every_iteration(self, is_bench):
        final = is_bench.run_full()
        assert final["passed_verification"] == is_bench.total_steps

    def test_run_and_verify_passes(self, is_bench):
        assert is_bench.run_and_verify().passed

    def test_verification_fails_if_partial_checks_missed(self, is_bench):
        final = is_bench.run_full()
        final["passed_verification"] = 0
        assert not is_bench.verify(final).passed

    def test_all_variables_rule_critical(self, is_bench):
        result = scrutinize(is_bench, step=is_bench.total_steps // 2)
        for crit in result.variables.values():
            assert crit.method == "rule"
            assert crit.n_uncritical == 0
