"""Tests of the LU (SSOR) port."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import scrutinize
from repro.npb.lu import LU


@pytest.fixture(scope="module")
def bench():
    return LU(problem_class="T")


@pytest.fixture(scope="module")
def result(bench):
    return scrutinize(bench)


class TestDynamics:
    def test_initial_state_has_all_table1_variables(self, bench):
        state = bench.initial_state()
        assert set(state) == {"u", "rho_i", "qs", "rsd", "istep"}

    def test_auxiliary_fields_consistent_with_u(self, bench):
        state = bench.initial_state()
        gp = bench.params.grid_points
        rho_i, qs = bench._auxiliary_fields(state["u"])
        block = state["u"][:gp, :gp, :gp, :]
        np.testing.assert_allclose(rho_i[:gp, :gp, :gp], 1.0 / block[..., 0])
        expected_q = 0.5 * (block[..., 1] ** 2 + block[..., 2] ** 2
                            + block[..., 3] ** 2) / block[..., 0]
        np.testing.assert_allclose(qs[:gp, :gp, :gp], expected_q)

    def test_advance_refreshes_auxiliary_fields(self, bench):
        state = bench.initial_state()
        new = bench._advance(state)
        rho_expected, qs_expected = bench._auxiliary_fields(new["u"])
        np.testing.assert_allclose(new["rho_i"], rho_expected)
        np.testing.assert_allclose(new["qs"], qs_expected)

    def test_solution_stays_bounded(self, bench):
        final = bench.run_full()
        assert np.all(np.isfinite(final["u"]))
        assert np.max(np.abs(final["u"])) < 1e3

    def test_run_and_verify_passes(self, bench):
        assert bench.run_and_verify().passed

    def test_verification_fails_on_corrupted_solution(self, bench):
        final = bench.run_full()
        final["u"] = np.array(final["u"], copy=True)
        final["u"][1, 1, 1, :] += 0.5
        assert not bench.verify(final).passed


class TestCriticality:
    def test_scalar_fields_critical_on_full_used_grid(self, bench, result):
        gp = bench.params.grid_points
        for name in ("rho_i", "qs"):
            mask = result.variables[name].mask
            assert mask[:gp, :gp, :gp].all()
            assert not mask[:, gp:, :].any()
            assert not mask[:, :, gp:].any()

    def test_rsd_follows_figure3_pattern(self, bench, result):
        gp = bench.params.grid_points
        mask = result.variables["rsd"].mask
        assert mask[:gp, :gp, :gp, :].all()
        assert not mask[:, gp:, :, :].any()
        assert not mask[:, :, gp:, :].any()

    def test_u_components_0_to_3_follow_figure3(self, bench, result):
        gp = bench.params.grid_points
        mask = result.variables["u"].mask
        for m in range(4):
            assert mask[:gp, :gp, :gp, m].all()
            assert not mask[:, gp:, :, m].any()

    def test_u_energy_component_is_union_of_flux_boxes(self, bench, result):
        gp = bench.params.grid_points
        energy = result.variables["u"].mask[..., 4]
        expected = np.zeros_like(energy)
        expected[1:gp - 1, 1:gp - 1, 0:gp] = True
        expected[1:gp - 1, 0:gp, 1:gp - 1] = True
        expected[0:gp, 1:gp - 1, 1:gp - 1] = True
        np.testing.assert_array_equal(energy, expected)

    def test_u_has_more_uncritical_than_rsd(self, result):
        # the energy component's extra edge elements (Figure 7)
        assert result.variables["u"].n_uncritical \
            > result.variables["rsd"].n_uncritical

    def test_istep_critical_by_rule(self, result):
        assert result.variables["istep"].method == "rule"
        assert result.variables["istep"].n_uncritical == 0


class TestClassS:
    def test_paper_table2_rows(self, runner_s):
        variables = runner_s.result("LU").variables
        assert variables["u"].n_uncritical == 1628
        assert variables["rho_i"].n_uncritical == 300
        assert variables["qs"].n_uncritical == 300
        assert variables["rsd"].n_uncritical == 1500

    def test_energy_component_has_128_extra_uncritical(self, runner_s):
        mask = runner_s.result("LU").variables["u"].mask
        figure3_critical = 12 ** 3
        energy_critical = int(np.count_nonzero(mask[..., 4]))
        assert figure3_critical - energy_critical == 128
