"""Tests of the CG (conjugate gradient) port."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import ops
from repro.core.analysis import scrutinize
from repro.npb.cg import CG


@pytest.fixture(scope="module")
def bench():
    return CG(problem_class="T")


@pytest.fixture(scope="module")
def result(bench):
    return scrutinize(bench)


class TestMatrix:
    def test_matrix_is_symmetric(self, bench):
        np.testing.assert_allclose(bench._matrix, bench._matrix.T)

    def test_matrix_is_strictly_diagonally_dominant(self, bench):
        a = bench._matrix
        diag = np.abs(np.diag(a))
        off = np.abs(a).sum(axis=1) - diag
        assert np.all(diag > off)

    def test_matrix_is_positive_definite(self, bench):
        eigenvalues = np.linalg.eigvalsh(bench._matrix)
        assert np.all(eigenvalues > 0.0)

    def test_matrix_is_deterministic(self):
        a = CG(problem_class="T")._matrix
        b = CG(problem_class="T")._matrix
        np.testing.assert_array_equal(a, b)


class TestSolver:
    def test_conj_grad_solves_the_system(self, bench):
        x = bench.initial_state()["x"][: bench.params.na]
        z, rnorm = bench._conj_grad(x)
        residual = x - bench._matrix @ np.asarray(ops.to_numpy(z))
        assert float(ops.to_numpy(rnorm)) == pytest.approx(
            np.linalg.norm(residual))
        assert np.linalg.norm(residual) < 1e-6 * np.linalg.norm(x)

    def test_advance_normalises_the_iterate(self, bench):
        new = bench._advance(bench.initial_state())
        na = bench.params.na
        assert np.linalg.norm(new["x"][:na]) == pytest.approx(1.0)

    def test_advance_keeps_unused_tail_untouched(self, bench):
        state = bench.initial_state()
        final = bench.run_full()
        na = bench.params.na
        np.testing.assert_array_equal(final["x"][na:], state["x"][na:])

    def test_zeta_stays_above_the_shift(self, bench):
        # zeta = shift + 1/(x . z) with A SPD, so x . z = x . A^{-1} x > 0
        state = bench.initial_state()
        for _ in range(bench.total_steps):
            state = bench._advance(state)
            zeta = float(ops.to_numpy(bench.output(state)))
            assert np.isfinite(zeta)
            assert zeta > bench.params.shift

    def test_run_and_verify_passes(self, bench):
        assert bench.run_and_verify().passed

    def test_verification_fails_on_corrupted_iterate(self, bench):
        final = bench.run_full()
        final["x"] = np.array(final["x"], copy=True)
        final["x"][10] += 0.05
        assert not bench.verify(final).passed


class TestCriticality:
    def test_only_declared_tail_uncritical(self, bench, result):
        mask = result.variables["x"].mask
        na = bench.params.na
        assert mask[:na].all()
        assert not mask[na:].any()
        assert result.variables["x"].n_uncritical == 2

    def test_it_counter_rule_critical(self, result):
        assert result.variables["it"].method == "rule"
        assert result.variables["it"].n_uncritical == 0


class TestClassS:
    def test_paper_table2_row(self, runner_s):
        crit = runner_s.result("CG").variables["x"]
        assert (crit.n_uncritical, crit.n_elements) == (2, 1402)
