"""Property-based tests of the mixed-precision tier pipeline (hypothesis)."""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.criticality import VariableCriticality
from repro.core.impact import (TIER_DOUBLE, TIER_DROP, TIER_HALF,
                               TIER_SINGLE, PrecisionPlan,
                               estimate_roundoff_impact,
                               plan_precision_for_budget)
from repro.core.variables import CheckpointVariable


@st.composite
def gradient_value_pairs(draw):
    size = draw(st.integers(1, 120))
    gradients = draw(npst.arrays(
        np.float64, size,
        elements=st.floats(0.0, 1e3, allow_nan=False)))
    values = draw(npst.arrays(
        np.float64, size,
        elements=st.floats(-1e3, 1e3, allow_nan=False)))
    return gradients, values


@given(data=gradient_value_pairs(),
       budget=st.floats(0.0, 1e6, allow_nan=False))
@settings(max_examples=150, deadline=None)
def test_budget_plans_respect_their_budget(data, budget):
    gradients, values = data
    var = CheckpointVariable("v", gradients.shape)
    crit = {"v": VariableCriticality(var, gradients != 0.0,
                                     gradients={"v": gradients})}
    state = {"v": values}
    plans = plan_precision_for_budget(crit, state, budget)
    bound = estimate_roundoff_impact(plans, crit, state)
    assert bound <= budget * (1.0 + 1e-9) + 1e-300


@given(data=gradient_value_pairs(),
       budget=st.floats(0.0, 1e6, allow_nan=False))
@settings(max_examples=150, deadline=None)
def test_budget_plans_drop_exactly_the_uncritical_elements(data, budget):
    gradients, values = data
    var = CheckpointVariable("v", gradients.shape)
    crit = {"v": VariableCriticality(var, gradients != 0.0,
                                     gradients={"v": gradients})}
    plans = plan_precision_for_budget(crit, {"v": values}, budget)
    tiers = plans["v"].tiers
    np.testing.assert_array_equal(tiers == TIER_DROP, gradients == 0.0)


@given(data=gradient_value_pairs())
@settings(max_examples=100, deadline=None)
def test_plan_byte_accounting_matches_tier_counts(data):
    gradients, _ = data
    rng = np.random.default_rng(int(gradients.sum() * 1000) % 2 ** 31)
    tiers = rng.integers(0, 4, size=gradients.shape).astype(np.int8)
    plan = PrecisionPlan(CheckpointVariable("v", gradients.shape), tiers)
    counts = plan.tier_counts()
    expected = (2 * counts[TIER_HALF] + 4 * counts[TIER_SINGLE]
                + 8 * counts[TIER_DOUBLE])
    assert plan.nbytes == expected
    assert sum(counts.values()) == gradients.size


@given(values=npst.arrays(np.float64, st.integers(1, 80),
                          elements=st.floats(-1e4, 1e4, allow_nan=False,
                                             allow_infinity=False)),
       seed=st.integers(0, 2 ** 16))
@settings(max_examples=100, deadline=None)
def test_mixed_precision_roundtrip_error_is_bounded_per_tier(values, seed):
    """Half/single/double tiers introduce at most their unit roundoff."""
    from repro.ckpt.precision import (read_mixed_precision_checkpoint,
                                      write_mixed_precision_checkpoint)

    tmp_path = Path(tempfile.mkdtemp(prefix="repro_prec_prop_"))
    rng = np.random.default_rng(seed)
    tiers = rng.choice([TIER_HALF, TIER_SINGLE, TIER_DOUBLE],
                       size=values.shape).astype(np.int8)
    plan = PrecisionPlan(CheckpointVariable("v", values.shape), tiers)

    class Bench:
        name = "PROP"

        class params:  # noqa: D106 - minimal stand-in
            problem_class = "T"

        def step_variable(self):
            return None

    path = tmp_path / f"prop_{seed}.ckpt"
    write_mixed_precision_checkpoint(path, Bench(), {"v": values}, {"v": plan},
                                     step=0)
    loaded = read_mixed_precision_checkpoint(path)
    restored = loaded.materialize({"v": np.zeros_like(values)})["v"]

    half = tiers == TIER_HALF
    single = tiers == TIER_SINGLE
    double = tiers == TIER_DOUBLE
    np.testing.assert_array_equal(restored[double], values[double])
    # absolute floors cover values below each format's smallest normal
    np.testing.assert_allclose(restored[single], values[single],
                               rtol=1.3e-7, atol=1.5e-38)
    np.testing.assert_allclose(restored[half], values[half],
                               rtol=1e-3, atol=7.0e-5)
