"""Tests of failure injection, the Section IV-C harness and storage
measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.failure import (SimulatedFailure, corrupt_state,
                                run_failure_scenario)
from repro.ckpt.manager import CheckpointManager, run_with_checkpoints
from repro.ckpt.storage import measure_checkpoint_storage
from repro.core.analysis import scrutinize
from repro.npb import registry


@pytest.fixture(scope="module")
def bench():
    return registry.create("BT", "T")


@pytest.fixture(scope="module")
def analysis(bt_t_result):
    return bt_t_result


class TestCorruptState:
    def test_uncritical_corruption_leaves_critical_untouched(self, bench,
                                                             analysis, rng):
        state = bench.checkpoint_state(2)
        corrupted = corrupt_state(state, analysis.variables,
                                  where="uncritical", rng=rng)
        mask = analysis.variables["u"].mask
        np.testing.assert_array_equal(corrupted["u"][mask],
                                      state["u"][mask])
        assert np.any(corrupted["u"][~mask] != state["u"][~mask])

    def test_critical_corruption_leaves_uncritical_untouched(self, bench,
                                                             analysis, rng):
        state = bench.checkpoint_state(2)
        corrupted = corrupt_state(state, analysis.variables,
                                  where="critical", rng=rng)
        mask = analysis.variables["u"].mask
        np.testing.assert_array_equal(corrupted["u"][~mask],
                                      state["u"][~mask])
        assert np.any(corrupted["u"][mask] != state["u"][mask])

    def test_all_corruption_touches_everything(self, bench, analysis, rng):
        state = bench.checkpoint_state(2)
        corrupted = corrupt_state(state, analysis.variables, where="all",
                                  rng=rng)
        assert np.all(corrupted["u"] != state["u"])

    def test_unknown_target_rejected(self, bench, analysis):
        with pytest.raises(ValueError):
            corrupt_state(bench.initial_state(), analysis.variables,
                          where="nothing")

    def test_original_state_is_not_modified(self, bench, analysis, rng):
        state = bench.checkpoint_state(2)
        before = state["u"].copy()
        corrupt_state(state, analysis.variables, where="all", rng=rng)
        np.testing.assert_array_equal(state["u"], before)


class TestSimulatedFailure:
    def test_exception_carries_step_and_state(self, tmp_path, bench):
        manager = CheckpointManager(tmp_path, bench, interval=1)
        with pytest.raises(SimulatedFailure) as info:
            run_with_checkpoints(bench, manager, fail_at_step=3)
        assert info.value.step == 3
        assert "u" in info.value.state


class TestFailureScenario:
    def test_pruned_restart_with_garbage_uncritical_passes(self, tmp_path,
                                                           bench, analysis):
        result = run_failure_scenario(bench, tmp_path / "ok",
                                      analysis.variables, interval=2,
                                      corrupt="uncritical")
        assert result.verification_passed
        assert result.restart_step < result.fail_step
        assert "PASSED" in result.summary()

    def test_unrecovered_critical_elements_fail_verification(self, tmp_path,
                                                             bench, analysis):
        result = run_failure_scenario(bench, tmp_path / "bad",
                                      analysis.variables, interval=2,
                                      corrupt="uncritical",
                                      unrecovered="critical")
        assert not result.verification_passed
        assert "FAILED" in result.summary()

    def test_full_checkpoints_also_recover(self, tmp_path, bench, analysis):
        result = run_failure_scenario(bench, tmp_path / "full",
                                      analysis.variables, interval=2,
                                      mode="full", corrupt="all")
        assert result.verification_passed

    def test_failure_before_first_checkpoint_rejected(self, tmp_path, bench,
                                                      analysis):
        with pytest.raises(ValueError, match="before the first checkpoint"):
            run_failure_scenario(bench, tmp_path / "early",
                                 analysis.variables, interval=4,
                                 fail_at_step=2)

    def test_pruned_restart_works_for_complex_pair_variables(self, tmp_path):
        ft = registry.create("FT", "T")
        result = scrutinize(ft)
        scenario = run_failure_scenario(ft, tmp_path / "ft",
                                        result.variables, interval=1,
                                        corrupt="uncritical")
        assert scenario.verification_passed


class TestStorageMeasurement:
    def test_measured_sizes_are_consistent(self, tmp_path, bench, analysis):
        comparison = measure_checkpoint_storage(bench, analysis, tmp_path)
        assert comparison.full_nbytes > comparison.pruned_nbytes
        assert 0.0 < comparison.saved_fraction < 1.0
        assert comparison.net_saved_fraction <= comparison.saved_fraction
        assert comparison.payload_saved_fraction == pytest.approx(
            analysis.storage_saved_fraction)
        assert bench.name in comparison.summary()

    def test_missing_state_rejected(self, tmp_path, bench, analysis):
        import dataclasses

        empty = dataclasses.replace(analysis, state={})
        with pytest.raises(ValueError, match="no state"):
            measure_checkpoint_storage(bench, empty, tmp_path)


class TestStorageMeasurementCleanup:
    def test_default_removes_measurement_files(self, tmp_path, bench,
                                               analysis):
        before = set(tmp_path.iterdir())
        measure_checkpoint_storage(bench, analysis, tmp_path)
        assert set(tmp_path.iterdir()) == before   # no stale ckpt/aux files

    def test_keep_files_leaves_checkpoints_behind(self, tmp_path, bench,
                                                  analysis):
        measure_checkpoint_storage(bench, analysis, tmp_path,
                                   keep_files=True)
        names = {p.name for p in tmp_path.iterdir()}
        stem = bench.name.lower()
        assert f"{stem}_full.ckpt" in names
        assert f"{stem}_pruned.ckpt" in names

    def test_no_directory_measures_in_a_tempdir(self, bench, analysis,
                                                tmp_path, monkeypatch):
        import tempfile as _tempfile

        monkeypatch.setenv("TMPDIR", str(tmp_path))
        monkeypatch.setattr(_tempfile, "tempdir", None)
        comparison = measure_checkpoint_storage(bench, analysis)
        assert comparison.full_nbytes > comparison.pruned_nbytes
        assert list(tmp_path.iterdir()) == []      # tempdir fully removed

    def test_keep_files_without_directory_rejected(self, bench, analysis):
        with pytest.raises(ValueError, match="keep_files"):
            measure_checkpoint_storage(bench, analysis, keep_files=True)

    def test_repeated_measurements_are_stable(self, tmp_path, bench,
                                              analysis):
        first = measure_checkpoint_storage(bench, analysis, tmp_path)
        second = measure_checkpoint_storage(bench, analysis, tmp_path)
        assert first == second
