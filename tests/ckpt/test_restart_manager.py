"""Tests of benchmark restart and the versioned checkpoint manager."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.manager import CheckpointManager, run_with_checkpoints
from repro.ckpt.restart import restart_benchmark, restore_state
from repro.ckpt.writer import write_full_checkpoint, write_pruned_checkpoint
from repro.npb import registry
from repro.npb.base import concrete_state


@pytest.fixture(scope="module")
def bench():
    return registry.create("BT", "T")


@pytest.fixture(scope="module")
def analysis(bt_t_result):
    return bt_t_result


class TestRestart:
    def test_restart_from_full_checkpoint_matches_uninterrupted_run(
            self, tmp_path, bench):
        step = bench.total_steps // 2
        state = bench.checkpoint_state(step)
        written = write_full_checkpoint(tmp_path / "f.ckpt", bench, state)
        outcome = restart_benchmark(bench, written.path)
        assert outcome.passed
        assert outcome.steps_replayed == bench.total_steps - step
        reference = concrete_state(bench.run_full())
        np.testing.assert_array_equal(outcome.final_state["u"],
                                      reference["u"])

    def test_restart_from_pruned_checkpoint_passes_verification(
            self, tmp_path, bench, analysis):
        written = write_pruned_checkpoint(tmp_path / "p.ckpt", bench,
                                          analysis.state, analysis.variables,
                                          step=analysis.step)
        outcome = restart_benchmark(bench, written.path)
        assert outcome.mode == "pruned"
        assert outcome.passed

    def test_restore_state_defaults_to_initial_state_base(self, tmp_path,
                                                          bench, analysis):
        written = write_pruned_checkpoint(tmp_path / "p.ckpt", bench,
                                          analysis.state, analysis.variables,
                                          step=analysis.step)
        state = restore_state(written.path, bench)
        mask = analysis.variables["u"].mask
        np.testing.assert_array_equal(state["u"][mask],
                                      analysis.state["u"][mask])

    def test_benchmark_mismatch_rejected(self, tmp_path, bench):
        state = bench.checkpoint_state(1)
        written = write_full_checkpoint(tmp_path / "f.ckpt", bench, state)
        other = registry.create("CG", "T")
        with pytest.raises(ValueError, match="written by"):
            restart_benchmark(other, written.path)

    def test_outcome_summary_mentions_status(self, tmp_path, bench):
        state = bench.checkpoint_state(1)
        written = write_full_checkpoint(tmp_path / "f.ckpt", bench, state)
        outcome = restart_benchmark(bench, written.path)
        assert "PASSED" in outcome.summary()


class TestManager:
    def test_constructor_validation(self, tmp_path, bench):
        with pytest.raises(ValueError, match="mode"):
            CheckpointManager(tmp_path, bench, mode="weird")
        with pytest.raises(ValueError, match="criticality"):
            CheckpointManager(tmp_path, bench, mode="pruned")
        with pytest.raises(ValueError, match="interval"):
            CheckpointManager(tmp_path, bench, interval=0)
        with pytest.raises(ValueError, match="keep"):
            CheckpointManager(tmp_path, bench, keep=0)

    def test_interval_controls_when_checkpoints_happen(self, tmp_path, bench):
        manager = CheckpointManager(tmp_path, bench, interval=3)
        assert not manager.should_checkpoint(0)
        assert not manager.should_checkpoint(2)
        assert manager.should_checkpoint(3)
        assert manager.should_checkpoint(6)

    def test_rotation_keeps_the_newest_versions(self, tmp_path, bench):
        manager = CheckpointManager(tmp_path, bench, interval=1, keep=2)
        state = bench.initial_state()
        for step in range(1, 5):
            manager.checkpoint(state, step)
        paths = manager.list_checkpoints()
        assert len(paths) == 2
        assert paths[-1].name.endswith("step000004.ckpt")
        assert manager.latest().step == 4

    def test_rotation_removes_aux_files_too(self, tmp_path, bench,
                                            analysis):
        manager = CheckpointManager(tmp_path, bench, interval=1, keep=1,
                                    mode="pruned",
                                    criticality=analysis.variables)
        for step in range(1, 4):
            manager.checkpoint(analysis.state, step)
        assert len(list(tmp_path.glob("*.aux"))) == 1

    def test_latest_is_none_without_checkpoints(self, tmp_path, bench):
        manager = CheckpointManager(tmp_path / "empty", bench)
        assert manager.latest() is None
        assert manager.total_nbytes == 0

    def test_total_nbytes_counts_checkpoints_and_aux(self, tmp_path, bench,
                                                     analysis):
        manager = CheckpointManager(tmp_path, bench, mode="pruned",
                                    criticality=analysis.variables)
        written = manager.checkpoint(analysis.state, 2)
        assert manager.total_nbytes == written.total_nbytes

    def test_maybe_checkpoint_respects_interval(self, tmp_path, bench):
        manager = CheckpointManager(tmp_path, bench, interval=2)
        state = bench.initial_state()
        assert manager.maybe_checkpoint(state, 1) is None
        assert manager.maybe_checkpoint(state, 2) is not None


class TestRunWithCheckpoints:
    def test_periodic_checkpoints_are_written(self, tmp_path, bench):
        manager = CheckpointManager(tmp_path, bench, interval=2, keep=10)
        final = run_with_checkpoints(bench, manager)
        assert len(manager.list_checkpoints()) == bench.total_steps // 2
        reference = concrete_state(bench.run_full())
        np.testing.assert_array_equal(np.asarray(final["u"]), reference["u"])

    def test_resuming_from_state_continues_the_step_numbering(self, tmp_path,
                                                              bench):
        manager = CheckpointManager(tmp_path, bench, interval=1, keep=100)
        mid = bench.checkpoint_state(3)
        run_with_checkpoints(bench, manager, state=mid, start_step=3)
        steps = [int(p.stem.split("step")[-1])
                 for p in manager.list_checkpoints()]
        assert steps == list(range(4, bench.total_steps + 1))
