"""Tests of full/pruned checkpoint writing and reading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.reader import read_checkpoint, scatter_regions
from repro.ckpt.writer import (gather_regions, write_full_checkpoint,
                               write_pruned_checkpoint)
from repro.core.criticality import VariableCriticality
from repro.core.regions import Region, encode_mask
from repro.core.variables import CheckpointVariable, VariableKind


class DummyBench:
    """Minimal stand-in implementing only what the writer consumes."""

    name = "DUMMY"

    class params:  # noqa: D106 - minimal stand-in
        problem_class = "T"

    def step_variable(self):
        return "it"


@pytest.fixture()
def bench():
    return DummyBench()


@pytest.fixture()
def state(rng):
    return {
        "v": rng.random((4, 5)),
        "y_re": rng.random(6),
        "y_im": rng.random(6),
        "it": 3,
    }


@pytest.fixture()
def criticality(state):
    v_mask = np.ones((4, 5), dtype=bool)
    v_mask[:, 4] = False
    y_mask = np.array([True, True, False, True, False, False])
    return {
        "v": VariableCriticality(CheckpointVariable("v", (4, 5)), v_mask),
        "y": VariableCriticality(
            CheckpointVariable("y", (6,), VariableKind.COMPLEX_PAIR), y_mask),
        "it": VariableCriticality(
            CheckpointVariable("it", (), VariableKind.INTEGER,
                               dtype=np.int64, critical_by_rule=True),
            np.ones((), dtype=bool), method="rule"),
    }


class TestGatherScatter:
    def test_gather_concatenates_runs(self):
        arr = np.arange(10.0)
        runs = [Region(0, 3), Region(7, 9)]
        np.testing.assert_array_equal(gather_regions(arr, runs),
                                      [0, 1, 2, 7, 8])

    def test_gather_empty_regions(self):
        assert gather_regions(np.arange(5.0), []).size == 0

    def test_scatter_inverts_gather(self, rng):
        arr = rng.random(20)
        mask = rng.random(20) > 0.4
        runs = encode_mask(mask)
        packed = gather_regions(arr, runs)
        base = np.zeros(20)
        restored = scatter_regions(base, runs, packed)
        np.testing.assert_array_equal(restored[mask], arr[mask])
        np.testing.assert_array_equal(restored[~mask], 0.0)

    def test_scatter_rejects_wrong_value_count(self):
        with pytest.raises(Exception, match="regions cover"):
            scatter_regions(np.zeros(5), [Region(0, 2)], np.zeros(3))


class TestFullCheckpoint:
    def test_roundtrip_restores_every_entry(self, tmp_path, bench, state):
        written = write_full_checkpoint(tmp_path / "full.ckpt", bench, state)
        assert written.mode == "full"
        assert written.aux_path is None
        loaded = read_checkpoint(written.path)
        restored = loaded.materialize()
        np.testing.assert_array_equal(restored["v"], state["v"])
        np.testing.assert_array_equal(restored["y_im"], state["y_im"])
        assert restored["it"] == 3 and isinstance(restored["it"], int)

    def test_exact_scalars_materialisation(self, tmp_path, bench):
        # the default convention coerces 0-d non-integer records to
        # float64; exact_scalars=True hands back the declared dtypes with
        # the exact stored bits (the AD spill schedule relies on this)
        state = {"s": np.float32(0.1), "flag": np.True_, "it": 3}
        written = write_full_checkpoint(tmp_path / "full.ckpt", bench, state)
        loaded = read_checkpoint(written.path)
        lax = loaded.materialize()
        assert np.asarray(lax["s"]).dtype == np.float64
        exact = loaded.materialize(exact_scalars=True)
        assert np.asarray(exact["s"]).dtype == np.float32
        assert exact["s"] == np.float32(0.1)
        assert np.asarray(exact["flag"]).dtype == np.bool_
        assert exact["it"] == 3 and isinstance(exact["it"], int)

    def test_step_recorded_from_state(self, tmp_path, bench, state):
        written = write_full_checkpoint(tmp_path / "full.ckpt", bench, state)
        assert written.step == 3
        assert read_checkpoint(written.path).step == 3

    def test_explicit_step_overrides(self, tmp_path, bench, state):
        written = write_full_checkpoint(tmp_path / "full.ckpt", bench, state,
                                        step=7)
        assert written.step == 7

    def test_object_state_rejected(self, tmp_path, bench):
        with pytest.raises(TypeError):
            write_full_checkpoint(tmp_path / "x.ckpt", bench,
                                  {"bad": object(), "it": 0})


class TestPrunedCheckpoint:
    def test_pruned_is_smaller_than_full(self, tmp_path, bench, state,
                                         criticality):
        full = write_full_checkpoint(tmp_path / "full.ckpt", bench, state)
        pruned = write_pruned_checkpoint(tmp_path / "pruned.ckpt", bench,
                                         state, criticality)
        assert pruned.nbytes < full.nbytes
        assert pruned.aux_nbytes > 0
        assert pruned.total_nbytes == pruned.nbytes + pruned.aux_nbytes

    def test_roundtrip_restores_critical_elements(self, tmp_path, bench,
                                                  state, criticality, rng):
        written = write_pruned_checkpoint(tmp_path / "p.ckpt", bench, state,
                                          criticality)
        loaded = read_checkpoint(written.path)
        base = {"v": rng.random((4, 5)), "y_re": rng.random(6),
                "y_im": rng.random(6), "it": 0}
        restored = loaded.materialize(base)
        v_mask = criticality["v"].mask
        y_mask = criticality["y"].mask
        np.testing.assert_array_equal(restored["v"][v_mask],
                                      state["v"][v_mask])
        np.testing.assert_array_equal(restored["v"][~v_mask],
                                      base["v"][~v_mask])
        # both components of the complex pair share the variable's mask
        np.testing.assert_array_equal(restored["y_re"][y_mask],
                                      state["y_re"][y_mask])
        np.testing.assert_array_equal(restored["y_im"][~y_mask],
                                      base["y_im"][~y_mask])
        # unpruned integer record comes back exactly
        assert restored["it"] == 3

    def test_materialize_without_base_state_rejected(self, tmp_path, bench,
                                                     state, criticality):
        written = write_pruned_checkpoint(tmp_path / "p.ckpt", bench, state,
                                          criticality)
        loaded = read_checkpoint(written.path)
        with pytest.raises(ValueError, match="base"):
            loaded.materialize()

    def test_base_state_shape_mismatch_rejected(self, tmp_path, bench, state,
                                                criticality):
        written = write_pruned_checkpoint(tmp_path / "p.ckpt", bench, state,
                                          criticality)
        loaded = read_checkpoint(written.path)
        bad_base = {"v": np.zeros((5, 4)), "y_re": np.zeros(6),
                    "y_im": np.zeros(6), "it": 0}
        with pytest.raises(ValueError, match="shape"):
            loaded.materialize(bad_base)

    def test_mask_shape_mismatch_rejected(self, tmp_path, bench, state):
        bad = {"v": VariableCriticality(CheckpointVariable("v", (3, 5)),
                                        np.zeros((3, 5), dtype=bool))}
        with pytest.raises(ValueError, match="mask shape"):
            write_pruned_checkpoint(tmp_path / "p.ckpt", bench, state, bad)

    def test_fully_critical_variables_stored_verbatim(self, tmp_path, bench,
                                                      state, criticality):
        written = write_pruned_checkpoint(tmp_path / "p.ckpt", bench, state,
                                          criticality)
        loaded = read_checkpoint(written.path)
        # "it" is fully critical -> not pruned -> needs no base entry
        assert not loaded.header.record("it").pruned
        assert loaded.header.record("v").pruned

    def test_custom_aux_path(self, tmp_path, bench, state, criticality):
        aux = tmp_path / "custom.regions"
        written = write_pruned_checkpoint(tmp_path / "p.ckpt", bench, state,
                                          criticality, aux_path=aux)
        assert written.aux_path == aux
        loaded = read_checkpoint(written.path, aux_path=aux)
        assert "v" in loaded.regions
