"""Tests of mixed-precision checkpoint writing, reading and restart."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.format import CheckpointFormatError
from repro.ckpt.precision import (read_mixed_precision_checkpoint, tier_key,
                                  write_mixed_precision_checkpoint)
from repro.core.analysis import scrutinize
from repro.core.impact import (TIER_DOUBLE, TIER_DROP, TIER_HALF,
                               TIER_SINGLE, PrecisionPlan, plan_precision,
                               plan_precision_for_budget)
from repro.core.variables import CheckpointVariable, VariableKind
from repro.npb import registry


class DummyBench:
    name = "DUMMY"

    class params:  # noqa: D106 - minimal stand-in
        problem_class = "T"

    def step_variable(self):
        return "it"


@pytest.fixture()
def bench():
    return DummyBench()


@pytest.fixture()
def state(rng):
    return {"v": 100.0 * rng.random(16) + 1.0, "it": 2}


@pytest.fixture()
def plans():
    tiers = np.array([TIER_DROP] * 4 + [TIER_HALF] * 4 + [TIER_SINGLE] * 4
                     + [TIER_DOUBLE] * 4, dtype=np.int8)
    return {"v": PrecisionPlan(CheckpointVariable("v", (16,)), tiers)}


class TestTierKey:
    def test_format(self):
        assert tier_key("y_re", TIER_HALF) == "y_re@1"


class TestWriteRead:
    def test_roundtrip_precision_per_tier(self, tmp_path, bench, state,
                                          plans):
        written = write_mixed_precision_checkpoint(
            tmp_path / "m.ckpt", bench, state, plans)
        assert written.mode == "mixed"
        loaded = read_mixed_precision_checkpoint(written.path)
        base = {"v": np.zeros(16), "it": 0}
        restored = loaded.materialize(base)
        v = restored["v"]
        # dropped elements keep the base value
        np.testing.assert_array_equal(v[:4], 0.0)
        # half precision: correct to ~3 decimal digits, not exact
        np.testing.assert_allclose(v[4:8], state["v"][4:8], rtol=1e-3)
        assert not np.array_equal(v[4:8], state["v"][4:8])
        # single precision: correct to ~7 digits
        np.testing.assert_allclose(v[8:12], state["v"][8:12], rtol=1e-6)
        # double precision: exact
        np.testing.assert_array_equal(v[12:], state["v"][12:])
        # unplanned integer record restored exactly
        assert restored["it"] == 2

    def test_mixed_is_smaller_than_full_payload(self, tmp_path, bench, state,
                                                plans):
        written = write_mixed_precision_checkpoint(
            tmp_path / "m.ckpt", bench, state, plans)
        # payload: 4*2 + 4*4 + 4*8 = 56 bytes vs 128 for the full array
        assert written.nbytes < 128 + 1024  # container header allowance
        loaded = read_mixed_precision_checkpoint(written.path)
        stored = sum(rec.nbytes for rec in loaded.header.records
                     if rec.pruned)
        assert stored == 56

    def test_all_double_lossless_plan_stores_verbatim(self, tmp_path, bench,
                                                      state):
        plans = {"v": PrecisionPlan(CheckpointVariable("v", (16,)),
                                    np.full(16, TIER_DOUBLE, dtype=np.int8))}
        written = write_mixed_precision_checkpoint(
            tmp_path / "m.ckpt", bench, state, plans)
        loaded = read_mixed_precision_checkpoint(written.path)
        assert not loaded.header.record("v").pruned
        restored = loaded.materialize({})
        np.testing.assert_array_equal(restored["v"], state["v"])

    def test_plan_shape_mismatch_rejected(self, tmp_path, bench, state):
        bad = {"v": PrecisionPlan(CheckpointVariable("v", (8,)),
                                  np.full(8, TIER_DOUBLE, dtype=np.int8))}
        bad["v"].tiers[0] = TIER_HALF
        with pytest.raises(ValueError, match="does not match"):
            write_mixed_precision_checkpoint(tmp_path / "m.ckpt", bench,
                                             state, bad)

    def test_reading_wrong_mode_rejected(self, tmp_path, bench, state):
        from repro.ckpt.writer import write_full_checkpoint

        written = write_full_checkpoint(tmp_path / "f.ckpt", bench, state)
        with pytest.raises(CheckpointFormatError, match="mixed"):
            read_mixed_precision_checkpoint(written.path)

    def test_materialize_requires_base_for_planned_keys(self, tmp_path,
                                                        bench, state, plans):
        written = write_mixed_precision_checkpoint(
            tmp_path / "m.ckpt", bench, state, plans)
        loaded = read_mixed_precision_checkpoint(written.path)
        with pytest.raises(ValueError, match="base state"):
            loaded.materialize({"it": 0})


class TestComplexPairVariables:
    def test_both_components_share_the_plan(self, tmp_path, bench, rng):
        state = {"y_re": rng.random(8), "y_im": rng.random(8), "it": 1}
        var = CheckpointVariable("y", (8,), VariableKind.COMPLEX_PAIR)
        tiers = np.array([TIER_DROP] * 2 + [TIER_HALF] * 2
                         + [TIER_DOUBLE] * 4, dtype=np.int8)
        plans = {"y": PrecisionPlan(var, tiers)}
        written = write_mixed_precision_checkpoint(tmp_path / "m.ckpt",
                                                   bench, state, plans)
        loaded = read_mixed_precision_checkpoint(written.path)
        base = {"y_re": np.zeros(8), "y_im": np.zeros(8), "it": 0}
        restored = loaded.materialize(base)
        for key in ("y_re", "y_im"):
            np.testing.assert_array_equal(restored[key][:2], 0.0)
            np.testing.assert_allclose(restored[key][2:4], state[key][2:4],
                                       rtol=1e-3)
            np.testing.assert_array_equal(restored[key][4:], state[key][4:])


class TestEndToEndOnBenchmarks:
    @pytest.mark.parametrize("name", ["BT", "MG", "FT"])
    def test_tolerance_driven_restart_passes_verification(self, name,
                                                          tmp_path):
        bench = registry.create(name, "T")
        result = scrutinize(bench)
        plans = plan_precision_for_budget(result.variables, result.state,
                                          budget=0.0)
        written = write_mixed_precision_checkpoint(
            tmp_path / f"{name}.ckpt", bench, result.state, plans,
            step=result.step)
        loaded = read_mixed_precision_checkpoint(written.path)
        restored = loaded.materialize(bench.initial_state())
        final = bench.run(restored, bench.total_steps - loaded.step)
        assert bench.verify(final).passed

    def test_aggressive_plan_saves_more_bytes_than_pruning(self, tmp_path):
        from repro.ckpt.writer import write_pruned_checkpoint

        bench = registry.create("MG", "T")
        result = scrutinize(bench)
        pruned = write_pruned_checkpoint(tmp_path / "p.ckpt", bench,
                                         result.state, result.variables,
                                         step=result.step)
        plans = plan_precision(result.variables)
        mixed = write_mixed_precision_checkpoint(tmp_path / "m.ckpt", bench,
                                                 result.state, plans,
                                                 step=result.step)
        assert mixed.nbytes < pruned.nbytes
