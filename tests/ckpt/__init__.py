"""Test package: ckpt — unique module paths for same-basename test files."""
