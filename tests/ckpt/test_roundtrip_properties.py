"""Property-based tests of the pruned-checkpoint gather/scatter pipeline."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.ckpt.reader import scatter_regions
from repro.ckpt.writer import gather_regions
from repro.core.regions import decode_regions, encode_mask


@st.composite
def array_and_mask(draw):
    size = draw(st.integers(1, 200))
    values = draw(npst.arrays(np.float64, size,
                              elements=st.floats(-1e6, 1e6,
                                                 allow_nan=False)))
    mask = draw(npst.arrays(np.bool_, size))
    return values, mask


@given(data=array_and_mask())
@settings(max_examples=200, deadline=None)
def test_gather_then_scatter_recovers_critical_elements(data):
    values, mask = data
    runs = encode_mask(mask)
    packed = gather_regions(values, runs)
    assert packed.size == int(mask.sum())
    base = np.full(values.shape, -12345.0)
    restored = scatter_regions(base, runs, packed)
    np.testing.assert_array_equal(restored[mask], values[mask])
    np.testing.assert_array_equal(restored[~mask], -12345.0)


@given(data=array_and_mask())
@settings(max_examples=100, deadline=None)
def test_scatter_never_touches_uncritical_slots(data):
    values, mask = data
    runs = encode_mask(mask)
    packed = gather_regions(values, runs)
    base = np.arange(values.size, dtype=np.float64)
    restored = scatter_regions(base, runs, packed)
    decoded = decode_regions(runs, values.size)
    np.testing.assert_array_equal(restored[~decoded], base[~decoded])


@given(data=array_and_mask(), seed=st.integers(0, 2 ** 16))
@settings(max_examples=100, deadline=None)
def test_restored_state_is_independent_of_the_garbage_base(data, seed):
    values, mask = data
    runs = encode_mask(mask)
    packed = gather_regions(values, runs)
    rng = np.random.default_rng(seed)
    base_a = rng.random(values.shape)
    base_b = rng.random(values.shape)
    restored_a = scatter_regions(base_a, runs, packed)
    restored_b = scatter_regions(base_b, runs, packed)
    np.testing.assert_array_equal(restored_a[mask], restored_b[mask])
