"""Tests of incremental (delta) checkpointing and its combination with
criticality pruning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.format import CheckpointFormatError
from repro.ckpt.incremental import (apply_incremental, changed_mask,
                                    read_incremental_checkpoint,
                                    restore_chain,
                                    write_incremental_checkpoint)
from repro.ckpt.writer import write_full_checkpoint, write_pruned_checkpoint
from repro.npb import registry
from repro.npb.base import concrete_state


@pytest.fixture(scope="module")
def bench():
    return registry.create("BT", "T")


@pytest.fixture(scope="module")
def states(bench):
    """Consecutive checkpoint states at steps 2, 3 and 4."""
    return {step: bench.checkpoint_state(step) for step in (2, 3, 4)}


class TestChangedMask:
    def test_detects_exact_changes_only(self):
        previous = {"v": np.array([1.0, 2.0, 3.0])}
        current = {"v": np.array([1.0, 2.5, 3.0])}
        np.testing.assert_array_equal(changed_mask(previous, current, "v"),
                                      [False, True, False])

    def test_nan_to_nan_counts_as_unchanged(self):
        previous = {"v": np.array([np.nan, 1.0])}
        current = {"v": np.array([np.nan, 2.0])}
        np.testing.assert_array_equal(changed_mask(previous, current, "v"),
                                      [False, True])

    def test_shape_change_rejected(self):
        with pytest.raises(ValueError):
            changed_mask({"v": np.zeros(3)}, {"v": np.zeros(4)}, "v")

    def test_benchmark_updates_only_the_interior(self, bench, states):
        mask = changed_mask(states[2], states[3], "u").reshape(
            bench.params.u_shape)
        gp = bench.params.grid_points
        assert mask[1:gp - 1, 1:gp - 1, 1:gp - 1, :].all()
        assert not mask[:, gp:, :, :].any()
        assert not mask[0, :, :, :].any()  # boundary plane never rewritten


class TestWriteApply:
    def test_delta_roundtrip_reproduces_the_state(self, tmp_path, bench,
                                                  states):
        written = write_incremental_checkpoint(
            tmp_path / "d3.ckpt", bench, states[3], states[2], step=3,
            base_step=2)
        delta = read_incremental_checkpoint(written.path)
        rebuilt = apply_incremental(states[2], delta)
        for key in states[3]:
            np.testing.assert_array_equal(np.asarray(rebuilt[key]),
                                          np.asarray(states[3][key]))

    def test_delta_is_smaller_than_a_full_checkpoint(self, tmp_path, bench,
                                                     states):
        full = write_full_checkpoint(tmp_path / "full.ckpt", bench, states[3])
        delta = write_incremental_checkpoint(tmp_path / "d.ckpt", bench,
                                             states[3], states[2])
        assert delta.nbytes < full.nbytes

    def test_combining_with_criticality_never_stores_more(self, tmp_path,
                                                          bench, states,
                                                          bt_t_result):
        # equal-length file names so the header sizes match and the
        # comparison is purely about payload bytes
        plain = write_incremental_checkpoint(tmp_path / "a.ckpt", bench,
                                             states[3], states[2])
        combined = write_incremental_checkpoint(
            tmp_path / "b.ckpt", bench, states[3], states[2],
            criticality=bt_t_result.variables)
        assert combined.nbytes <= plain.nbytes

    def test_scalar_counters_are_always_stored(self, tmp_path, bench,
                                               states):
        written = write_incremental_checkpoint(tmp_path / "d.ckpt", bench,
                                               states[3], states[2])
        delta = read_incremental_checkpoint(written.path)
        assert not delta.header.record("step").pruned
        rebuilt = apply_incremental(states[2], delta)
        assert rebuilt["step"] == 3

    def test_missing_previous_entry_rejected(self, tmp_path, bench, states):
        previous = dict(states[2])
        del previous["u"]
        with pytest.raises(KeyError):
            write_incremental_checkpoint(tmp_path / "d.ckpt", bench,
                                         states[3], previous)

    def test_reading_wrong_mode_rejected(self, tmp_path, bench, states):
        full = write_full_checkpoint(tmp_path / "full.ckpt", bench, states[3])
        with pytest.raises(CheckpointFormatError, match="incremental"):
            read_incremental_checkpoint(full.path)


class TestRestoreChain:
    def test_full_base_plus_deltas(self, tmp_path, bench, states):
        base = write_full_checkpoint(tmp_path / "base.ckpt", bench,
                                     states[2], step=2)
        d3 = write_incremental_checkpoint(tmp_path / "d3.ckpt", bench,
                                          states[3], states[2], step=3,
                                          base_step=2)
        d4 = write_incremental_checkpoint(tmp_path / "d4.ckpt", bench,
                                          states[4], states[3], step=4,
                                          base_step=3)
        restored = restore_chain(bench, base.path, [d3.path, d4.path])
        np.testing.assert_array_equal(restored["u"], states[4]["u"])
        # finishing the run from the restored state passes verification
        final = bench.run(restored, bench.total_steps - 4)
        assert bench.verify(final).passed

    def test_pruned_base_plus_deltas(self, tmp_path, bench, states,
                                     bt_t_result):
        base = write_pruned_checkpoint(tmp_path / "base.ckpt", bench,
                                       states[2], bt_t_result.variables,
                                       step=2)
        d3 = write_incremental_checkpoint(
            tmp_path / "d3.ckpt", bench, states[3], states[2],
            criticality=bt_t_result.variables, step=3, base_step=2)
        restored = restore_chain(bench, base.path, [d3.path])
        final = bench.run(restored, bench.total_steps - 3)
        assert bench.verify(final).passed

    def test_out_of_order_chain_rejected(self, tmp_path, bench, states):
        base = write_full_checkpoint(tmp_path / "base.ckpt", bench,
                                     states[2], step=2)
        d4 = write_incremental_checkpoint(tmp_path / "d4.ckpt", bench,
                                          states[4], states[3], step=4,
                                          base_step=3)
        with pytest.raises(CheckpointFormatError, match="chain"):
            restore_chain(bench, base.path, [d4.path])


class TestReductionComparison:
    @pytest.mark.parametrize("name", ["MG", "FT"])
    def test_combined_reduction_on_other_benchmarks(self, name, tmp_path):
        from repro.core.analysis import scrutinize

        bench = registry.create(name, "T")
        result = scrutinize(bench)
        step = result.step
        previous = bench.checkpoint_state(step - 1)
        current = result.state
        full = write_full_checkpoint(tmp_path / "full.ckpt", bench, current)
        pruned = write_pruned_checkpoint(tmp_path / "pruned.ckpt", bench,
                                         current, result.variables)
        combined = write_incremental_checkpoint(
            tmp_path / "inc.ckpt", bench, current, previous,
            criticality=result.variables, step=step, base_step=step - 1)
        assert pruned.nbytes < full.nbytes
        assert combined.nbytes <= pruned.nbytes
        # the delta must still restore correctly on top of the previous state
        delta = read_incremental_checkpoint(combined.path)
        rebuilt = apply_incremental(previous, delta)
        for crit in result.variables.values():
            for key in crit.variable.state_keys():
                got = np.asarray(rebuilt[key], dtype=np.float64)
                want = np.asarray(current[key], dtype=np.float64)
                np.testing.assert_array_equal(
                    got.reshape(-1)[crit.mask.reshape(-1)],
                    want.reshape(-1)[crit.mask.reshape(-1)])


class TestChainFailureModes:
    """Broken chains must fail loudly, never restore a silently-wrong state."""

    def _chain(self, tmp_path, bench, states):
        base = write_full_checkpoint(tmp_path / "base.ckpt", bench,
                                     states[2], step=2)
        d3 = write_incremental_checkpoint(tmp_path / "d3.ckpt", bench,
                                          states[3], states[2], step=3,
                                          base_step=2)
        d4 = write_incremental_checkpoint(tmp_path / "d4.ckpt", bench,
                                          states[4], states[3], step=4,
                                          base_step=3)
        return base, d3, d4

    def test_missing_base_checkpoint(self, tmp_path, bench, states):
        _, d3, _ = self._chain(tmp_path, bench, states)
        with pytest.raises(FileNotFoundError):
            restore_chain(bench, tmp_path / "never_written.ckpt", [d3.path])

    def test_missing_delta_file(self, tmp_path, bench, states):
        base, _, _ = self._chain(tmp_path, bench, states)
        with pytest.raises(FileNotFoundError):
            restore_chain(bench, base.path,
                          [tmp_path / "never_written_delta.ckpt"])

    def test_swapped_delta_order_rejected(self, tmp_path, bench, states):
        base, d3, d4 = self._chain(tmp_path, bench, states)
        with pytest.raises(CheckpointFormatError, match="chain"):
            restore_chain(bench, base.path, [d4.path, d3.path])

    def test_same_delta_applied_twice_rejected(self, tmp_path, bench,
                                               states):
        base, d3, _ = self._chain(tmp_path, bench, states)
        with pytest.raises(CheckpointFormatError, match="chain"):
            restore_chain(bench, base.path, [d3.path, d3.path])

    def test_shape_mismatched_delta_rejected(self, tmp_path, bench, states):
        _, d3, _ = self._chain(tmp_path, bench, states)
        delta = read_incremental_checkpoint(d3.path)
        wrong = {key: np.zeros((3,) + np.asarray(value).shape)
                 if np.ndim(value) else value
                 for key, value in states[2].items()}
        with pytest.raises(CheckpointFormatError, match="shape"):
            apply_incremental(wrong, delta)

    def test_cross_class_delta_rejected_at_apply(self, tmp_path, states):
        # a class-T delta chained onto a class-S base reaches the right
        # step but carries the wrong array shapes: it must not apply
        bench_t = registry.create("BT", "T")
        bench_s = registry.create("BT", "S")
        base_s = write_full_checkpoint(tmp_path / "base_s.ckpt", bench_s,
                                       bench_s.checkpoint_state(2), step=2)
        d3_t = write_incremental_checkpoint(
            tmp_path / "d3_t.ckpt", bench_t, states[3], states[2], step=3,
            base_step=2)
        with pytest.raises(CheckpointFormatError, match="shape"):
            restore_chain(bench_s, base_s.path, [d3_t.path])

    def test_delta_onto_state_missing_the_entry(self, tmp_path, bench,
                                                states):
        _, d3, _ = self._chain(tmp_path, bench, states)
        delta = read_incremental_checkpoint(d3.path)
        partial = {key: value for key, value in states[2].items()
                   if key != "u"}
        with pytest.raises(KeyError, match="no entry"):
            apply_incremental(partial, delta)
