"""Tests of the checkpoint container and auxiliary-file formats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt import auxfile, format as fmt
from repro.core.regions import Region


def _sample_header() -> fmt.CheckpointHeader:
    records = [
        fmt.RecordSpec("u", "<f8", (2, 3), False, 0, 48, 6),
        fmt.RecordSpec("step", "<i8", (), False, 0, 8, 1),
    ]
    return fmt.CheckpointHeader("BT", "T", 4, "full", records)


class TestRecordSpec:
    def test_json_roundtrip(self):
        rec = fmt.RecordSpec("u", "<f8", (2, 3), True, 16, 24, 3)
        assert fmt.RecordSpec.from_json(rec.to_json()) == rec

    def test_numpy_dtype_and_element_count(self):
        rec = fmt.RecordSpec("u", "<f8", (2, 3), False, 0, 48, 6)
        assert rec.numpy_dtype == np.dtype("<f8")
        assert rec.n_elements == 6
        assert fmt.RecordSpec("s", "<i8", (), False, 0, 8, 1).n_elements == 1


class TestHeader:
    def test_json_roundtrip(self):
        header = _sample_header()
        clone = fmt.CheckpointHeader.from_json(header.to_json())
        assert clone.benchmark == "BT"
        assert clone.records == header.records

    def test_version_mismatch_rejected(self):
        payload = _sample_header().to_json()
        payload["version"] = 99
        with pytest.raises(fmt.CheckpointFormatError, match="version"):
            fmt.CheckpointHeader.from_json(payload)

    def test_record_lookup(self):
        header = _sample_header()
        assert header.record("step").dtype == "<i8"
        assert header.keys == ["u", "step"]
        with pytest.raises(KeyError):
            header.record("nope")


class TestContainerRoundtrip:
    def test_write_and_read_back(self, tmp_path):
        header = _sample_header()
        u = np.arange(6.0).reshape(2, 3)
        step = np.array(4, dtype=np.int64)
        path = tmp_path / "test.ckpt"
        nbytes = fmt.write_container(path, header,
                                     {"u": u.tobytes(), "step": step.tobytes()})
        assert nbytes == path.stat().st_size
        read_header, arrays = fmt.read_container(path)
        assert read_header.benchmark == "BT"
        np.testing.assert_array_equal(arrays["u"], u)
        assert arrays["step"].reshape(()) == 4

    def test_offsets_are_recomputed(self, tmp_path):
        header = _sample_header()
        path = tmp_path / "test.ckpt"
        fmt.write_container(path, header, {"u": b"x" * 48, "step": b"y" * 8})
        read_header, _ = fmt.read_header(path)
        assert read_header.record("u").offset == 0
        assert read_header.record("step").offset == 48

    def test_missing_payload_rejected(self, tmp_path):
        header = _sample_header()
        with pytest.raises(ValueError, match="missing"):
            fmt.write_container(tmp_path / "x.ckpt", header, {"u": b""})

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"NOTACKPT" + b"\0" * 32)
        with pytest.raises(fmt.CheckpointFormatError, match="magic"):
            fmt.read_header(path)

    def test_truncated_payload_rejected(self, tmp_path):
        header = _sample_header()
        path = tmp_path / "trunc.ckpt"
        fmt.write_container(path, header, {"u": b"x" * 48, "step": b"y" * 8})
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(fmt.CheckpointFormatError, match="truncated"):
            fmt.read_container(path)


class TestAuxFile:
    def test_roundtrip(self, tmp_path):
        regions = {"u": [Region(0, 10), Region(20, 25)],
                   "r": [Region(5, 6)]}
        path = tmp_path / "a.aux"
        nbytes = auxfile.write_aux_file(path, regions)
        assert nbytes == path.stat().st_size
        assert auxfile.read_aux_file(path) == regions

    def test_empty_region_lists(self, tmp_path):
        path = tmp_path / "empty.aux"
        auxfile.write_aux_file(path, {"u": []})
        assert auxfile.read_aux_file(path) == {"u": []}

    def test_payload_nbytes(self):
        regions = {"u": [Region(0, 1), Region(2, 3)], "r": [Region(0, 5)]}
        assert auxfile.aux_payload_nbytes(regions) == 48

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.aux"
        path.write_bytes(b"NOTANAUX" + b"\0" * 16)
        with pytest.raises(fmt.CheckpointFormatError, match="magic"):
            auxfile.read_aux_file(path)

    def test_invalid_regions_rejected_at_write(self, tmp_path):
        with pytest.raises(ValueError):
            auxfile.write_aux_file(tmp_path / "bad.aux",
                                   {"u": [Region(5, 10), Region(0, 6)]})

    def test_truncated_regions_rejected(self, tmp_path):
        path = tmp_path / "t.aux"
        auxfile.write_aux_file(path, {"u": [Region(0, 10)]})
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(fmt.CheckpointFormatError, match="truncated"):
            auxfile.read_aux_file(path)
