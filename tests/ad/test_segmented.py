"""Segmented reverse sweep: bitwise equivalence and bounded tape memory.

The acceptance bar of the segmented subsystem is *bitwise* identity with the
monolithic sweep -- not approximate agreement -- because the criticality
criterion is "derivative exactly 0.0"; any rounding drift between the two
strategies could flip an element between critical and uncritical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import ops
from repro.ad.reverse import backward, backward_from_seeds
from repro.ad.segmented import (SweepStats, float_state_keys,
                                segmented_gradients)
from repro.ad.tape import Tape
from repro.core.analysis import scrutinize
from repro.npb import registry

ALL_BENCHMARKS = registry.available_benchmarks()


def _monolithic_gradients(bench, state, watch):
    tape, leaves, out = bench.traced_restart(state, watch=list(watch))
    grads = backward(tape, out, [leaves[k] for k in watch], strict=False)
    return dict(zip(watch, grads)), len(tape)


def _assert_bitwise_equal(a, b, label):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    assert a.shape == b.shape, label
    # view as raw bits so -0.0 vs 0.0 or NaN payload drift also fails
    assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), \
        f"{label}: gradients differ bitwise"


# ---------------------------------------------------------------------------
# gradient-level equivalence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_segmented_gradients_bitwise_equal_monolithic(name):
    bench = registry.create(name, "T")
    watch = bench.default_watch_keys()
    if not watch:  # IS is all-integer: nothing for the AD sweep to do
        pytest.skip(f"{name} has no floating point checkpoint variables")
    state = bench.checkpoint_state(bench.total_steps // 2)
    mono, _ = _monolithic_gradients(bench, state, watch)
    seg = segmented_gradients(bench, state, watch=watch)
    assert list(seg) == list(watch)
    for key in watch:
        _assert_bitwise_equal(mono[key], seg[key], f"{name}[{key}]")


def test_segmented_matches_for_watch_subset():
    # chaining must cover unwatched float auxiliaries (LU recomputes
    # rho_i/qs from u), so asking only for "u" still matches exactly
    bench = registry.create("LU", "T")
    state = bench.checkpoint_state(2)
    mono, _ = _monolithic_gradients(bench, state, ["u"])
    seg = segmented_gradients(bench, state, watch=["u"])
    assert list(seg) == ["u"]
    _assert_bitwise_equal(mono["u"], seg["u"], "LU[u] (watch subset)")


def test_segmented_explicit_steps_and_zero_steps():
    bench = registry.create("CG", "T")
    state = bench.checkpoint_state(1)
    for steps in (0, 1, 2):
        tape, leaves, out = bench.traced_restart(state, watch=["x"],
                                                 steps=steps)
        mono = backward(tape, out, [leaves["x"]], strict=False)[0]
        seg = segmented_gradients(bench, state, watch=["x"], steps=steps)
        _assert_bitwise_equal(mono, seg["x"], f"CG steps={steps}")


def test_segmented_default_steps_follow_state_counter():
    bench = registry.create("EP", "T")
    state = bench.checkpoint_state(bench.total_steps - 3)
    stats = SweepStats()
    segmented_gradients(bench, state, stats=stats)
    # 3 remaining iterations + the output segment
    assert stats.n_segments == 4


def test_segmented_rejects_negative_steps_and_unknown_watch():
    bench = registry.create("CG", "T")
    state = bench.checkpoint_state(1)
    with pytest.raises(ValueError):
        segmented_gradients(bench, state, steps=-1)
    with pytest.raises(KeyError, match="unknown state entry"):
        segmented_gradients(bench, state, watch=["nope"])


def test_segmented_requires_per_iteration_api():
    class NotABenchmark:
        name = "NOPE"

    with pytest.raises(TypeError, match="traced_step"):
        segmented_gradients(NotABenchmark(), {"x": np.ones(3)}, watch=["x"])


def test_float_state_keys_filters_integers():
    state = {"x": np.ones(3), "it": 4, "keys": np.arange(5),
             "s": np.float64(2.0)}
    assert float_state_keys(state) == ["x", "s"]


# ---------------------------------------------------------------------------
# mask-level equivalence (the acceptance criterion)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_segmented_masks_bitwise_identical_all_benchmarks(name):
    bench = registry.create(name, "T")
    mono = scrutinize(bench, sweep="monolithic")
    seg = scrutinize(registry.create(name, "T"), sweep="segmented")
    assert list(mono.variables) == list(seg.variables)
    for var in mono.variables:
        assert np.array_equal(mono.variables[var].mask,
                              seg.variables[var].mask), \
            f"{name}({var}): masks differ between sweeps"
        for key, grad in mono.variables[var].gradients.items():
            _assert_bitwise_equal(grad, seg.variables[var].gradients[key],
                                  f"{name}({var}/{key})")
    assert mono.n_uncritical == seg.n_uncritical


def test_segmented_multi_probe_masks_identical():
    mono = scrutinize(registry.create("CG", "T"), n_probes=3,
                      sweep="monolithic")
    seg = scrutinize(registry.create("CG", "T"), n_probes=3,
                     sweep="segmented")
    for var in mono.variables:
        assert np.array_equal(mono.variables[var].mask,
                              seg.variables[var].mask)


# ---------------------------------------------------------------------------
# memory bound
# ---------------------------------------------------------------------------

def test_peak_tape_bounded_by_single_iteration():
    bench = registry.create("CG", "T")
    state = bench.checkpoint_state(0)  # analyse the whole main loop
    steps = bench.total_steps

    _, mono_nodes = _monolithic_gradients(bench, state,
                                          bench.default_watch_keys())
    stats = SweepStats()
    segmented_gradients(bench, state, stats=stats)

    assert stats.n_segments == steps + 1
    # every per-segment tape must be no bigger than the largest single
    # iteration, i.e. peak ~ monolithic / steps (with slack for the output
    # segment, which re-runs one solve for CG)
    assert stats.peak_nodes * steps <= mono_nodes * 2
    assert stats.peak_nodes < mono_nodes
    # and the total work recorded is the same order as the monolithic tape
    assert stats.total_nodes >= mono_nodes


def test_sweep_stats_observe_tracks_peaks():
    stats = SweepStats()
    with Tape() as t1:
        x = t1.watch(np.ones(4))
        (x * 2.0).sum()
    with Tape() as t2:
        y = t2.watch(np.ones(8))
        ops.sum(ops.square(y) + y)
    stats.observe(t1)
    stats.observe(t2)
    assert stats.n_segments == 2
    assert stats.peak_nodes == max(len(t1), len(t2))
    assert stats.total_nodes == len(t1) + len(t2)
    assert stats.segment_nodes == [len(t1), len(t2)]
    assert stats.peak_nbytes >= 8 * 8


# ---------------------------------------------------------------------------
# backward_from_seeds
# ---------------------------------------------------------------------------

class TestBackwardFromSeeds:
    def test_single_seed_matches_backward(self):
        with Tape() as tape:
            x = tape.watch(np.arange(1.0, 5.0), name="x")
            y = ops.sum(ops.square(x))
        expected = backward(tape, y, [x], seed=3.0)[0]
        got = backward_from_seeds(tape, [(y, np.float64(3.0))], [x])[0]
        np.testing.assert_array_equal(expected, got)

    def test_multiple_outputs_accumulate(self):
        with Tape() as tape:
            x = tape.watch(np.arange(1.0, 4.0), name="x")
            a = x * 2.0
            b = ops.square(x)
        ga = backward_from_seeds(tape, [(a, np.ones(3))], [x])[0]
        gb = backward_from_seeds(tape, [(b, np.ones(3))], [x])[0]
        both = backward_from_seeds(tape, [(a, np.ones(3)), (b, np.ones(3))],
                                   [x])[0]
        np.testing.assert_array_equal(both, ga + gb)

    def test_same_output_seeded_twice_accumulates(self):
        with Tape() as tape:
            x = tape.watch(np.ones(3), name="x")
            y = x * 5.0
        g = backward_from_seeds(tape, [(y, np.ones(3)), (y, np.ones(3))],
                                [x])[0]
        np.testing.assert_array_equal(g, np.full(3, 10.0))

    def test_seeding_a_leaf_directly(self):
        # the pass-through case: the seeded "output" is the leaf itself
        with Tape() as tape:
            x = tape.watch(np.ones(4), name="x")
            ops.sum(x * 3.0)  # extra consumer, not seeded
        g = backward_from_seeds(tape, [(x, np.arange(4.0))], [x])[0]
        np.testing.assert_array_equal(g, np.arange(4.0))

    def test_caller_seed_array_not_mutated(self):
        seed = np.ones(3)
        with Tape() as tape:
            x = tape.watch(np.ones(3), name="x")
            y = x + x
        g = backward_from_seeds(tape, [(x, seed), (y, seed)], [x])[0]
        np.testing.assert_array_equal(seed, np.ones(3))
        np.testing.assert_array_equal(g, np.full(3, 3.0))

    def test_untraced_output_rejected(self):
        with Tape() as tape:
            x = tape.watch(np.ones(2), name="x")
        with pytest.raises(ValueError, match="traced"):
            backward_from_seeds(tape, [(np.ones(2), np.ones(2))], [x])

    def test_foreign_tape_rejected(self):
        with Tape() as tape:
            x = tape.watch(np.ones(2), name="x")
            y = x * 2.0
        with Tape() as other:
            z = other.watch(np.ones(2), name="z")
        with pytest.raises(ValueError, match="different tape"):
            backward_from_seeds(other, [(y, np.ones(2))], [z])

    def test_no_seeds_yield_zeros(self):
        with Tape() as tape:
            x = tape.watch(np.ones(3), name="x")
            x * 2.0
        g = backward_from_seeds(tape, [], [x])[0]
        np.testing.assert_array_equal(g, np.zeros(3))
