"""Unit tests for shape-manipulation and indexing primitives."""

import numpy as np
import pytest

from repro import ad
from repro.ad import ops

X = np.linspace(-1.0, 2.0, 24).reshape(2, 3, 4)


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        def f(x):
            return ops.sum(ops.reshape(x, (6, 4)) * 2.0)

        g = ad.grad(f)(X)
        assert g.shape == X.shape
        assert np.allclose(g, 2.0)

    def test_transpose_gradient(self):
        def f(x):
            return ops.sum(ops.transpose(x, (2, 0, 1))[0])

        g = ad.grad(f)(X)
        expected = np.zeros_like(X)
        expected[:, :, 0] = 1.0
        assert np.allclose(g, expected)

    def test_transpose_default_reverses_axes(self):
        with ad.Tape() as t:
            x = t.watch(X)
            y = x.T
        assert y.shape == X.T.shape
        assert np.allclose(y.to_numpy(), X.T)

    def test_swapaxes_and_moveaxis_values(self):
        assert np.allclose(ops.swapaxes(X, 0, 2), np.swapaxes(X, 0, 2))
        assert np.allclose(ops.moveaxis(X, 0, -1), np.moveaxis(X, 0, -1))

    def test_swapaxes_gradient_shape(self):
        g = ad.grad(lambda x: ops.sum(ops.swapaxes(x, 0, 1) * 3.0))(X)
        assert g.shape == X.shape
        assert np.allclose(g, 3.0)

    def test_broadcast_to_gradient_sums_over_broadcast_axes(self):
        v = np.arange(1.0, 5.0)
        g = ad.grad(lambda x: ops.sum(ops.broadcast_to(x, (3, 4))))(v)
        assert np.allclose(g, 3.0)

    def test_squeeze_expand_dims_inverse(self):
        v = np.arange(6.0).reshape(1, 6)
        g = ad.grad(lambda x: ops.sum(ops.squeeze(x, axis=0) * 2.0))(v)
        assert g.shape == v.shape
        assert np.allclose(g, 2.0)
        g2 = ad.grad(lambda x: ops.sum(ops.expand_dims(x, 0) * 5.0))(v)
        assert g2.shape == v.shape

    def test_concatenate_gradient_splits(self):
        a = np.ones((2, 3))
        b = np.full((2, 2), 2.0)

        def f(x, y):
            joined = ops.concatenate([x, y], axis=1)
            return ops.sum(joined * np.arange(1.0, 6.0))

        ga, gb = ad.grad(f, argnums=(0, 1))(a, b)
        assert np.allclose(ga, np.tile([1.0, 2.0, 3.0], (2, 1)))
        assert np.allclose(gb, np.tile([4.0, 5.0], (2, 1)))

    def test_concatenate_with_untraced_operand(self):
        a = np.ones((2, 2))

        def f(x):
            joined = ops.concatenate([x, np.zeros((2, 2))], axis=0)
            return ops.sum(joined)

        g = ad.grad(f)(a)
        assert np.allclose(g, 1.0)

    def test_stack_gradient(self):
        a = np.ones(3)
        b = np.full(3, 2.0)

        def f(x, y):
            s = ops.stack([x, y], axis=0)
            return ops.sum(s[1] * 10.0) + ops.sum(s[0])

        ga, gb = ad.grad(f, argnums=(0, 1))(a, b)
        assert np.allclose(ga, 1.0)
        assert np.allclose(gb, 10.0)

    def test_flip_and_roll_gradients(self):
        v = np.arange(5.0)
        g = ad.grad(lambda x: ops.sum(ops.flip(x) * np.arange(5.0)))(v)
        assert np.allclose(g, np.arange(5.0)[::-1])
        g2 = ad.grad(lambda x: ops.sum(ops.roll(x, 2) * np.arange(5.0)))(v)
        assert np.allclose(g2, np.roll(np.arange(5.0), -2))

    def test_pad_zero_gradient_extracts_interior(self):
        v = np.ones((2, 3))
        g = ad.grad(lambda x: ops.sum(ops.pad_zero(x, 1) * 2.0))(v)
        assert g.shape == v.shape
        assert np.allclose(g, 2.0)


class TestIndexing:
    def test_getitem_basic_slice_gradient(self):
        g = ad.grad(lambda x: ops.sum(x[0, 1:3, :2]))(X)
        expected = np.zeros_like(X)
        expected[0, 1:3, :2] = 1.0
        assert np.allclose(g, expected)

    def test_getitem_leaves_untouched_elements_at_zero(self):
        g = ad.grad(lambda x: ops.sum(x[:, :, :2] ** 2))(X)
        assert np.all(g[:, :, 2:] == 0.0)
        assert np.all(g[:, :, :2] == 2.0 * X[:, :, :2])

    def test_getitem_advanced_integer_index(self):
        idx = np.array([0, 2, 2, 3])
        v = np.arange(5.0)
        g = ad.grad(lambda x: ops.sum(x[idx]))(v)
        assert np.allclose(g, [1.0, 0.0, 2.0, 1.0, 0.0])

    def test_getitem_negative_index(self):
        v = np.arange(4.0)
        g = ad.grad(lambda x: ops.sum(x[-1] * 7.0))(v)
        assert np.allclose(g, [0.0, 0.0, 0.0, 7.0])

    def test_take_flat_and_axis(self):
        v = np.arange(12.0).reshape(3, 4)
        g = ad.grad(lambda x: ops.sum(ops.take(x, np.array([0, 5]))))(v)
        expected = np.zeros(12)
        expected[[0, 5]] = 1.0
        assert np.allclose(g, expected.reshape(3, 4))

        g2 = ad.grad(lambda x: ops.sum(ops.take(x, np.array([1, 1]), axis=1)))(v)
        expected2 = np.zeros((3, 4))
        expected2[:, 1] = 2.0
        assert np.allclose(g2, expected2)

    def test_index_update_gradient_zeroes_overwritten_region(self):
        v = np.arange(6.0)

        def f(x):
            y = ops.index_update(x, slice(2, 4), np.array([10.0, 20.0]))
            return ops.sum(y * y)

        g = ad.grad(f)(v)
        expected = 2.0 * v
        expected[2:4] = 0.0
        assert np.allclose(g, expected)

    def test_index_update_gradient_wrt_update_value(self):
        v = np.arange(6.0)

        def f(u):
            y = ops.index_update(ad.ops.asarray(v), slice(2, 4), u)
            return ops.sum(y * y)

        # y[2:4] = u so d/du sum(y*y) = 2*u
        u0 = np.array([10.0, 20.0])
        with ad.Tape() as t:
            uu = t.watch(u0)
            out = f(uu)
        g = t.gradient(out, [uu])[0]
        assert np.allclose(g, 2.0 * u0)

    def test_setitem_sugar_matches_index_update(self):
        v = np.arange(6.0)

        def f(x):
            y = x.copy()
            y[2:4] = 0.0
            return ops.sum(y * y)

        g = ad.grad(f)(v)
        expected = 2.0 * v
        expected[2:4] = 0.0
        assert np.allclose(g, expected)

    def test_index_add_accumulates_repeated_indices(self):
        v = np.zeros(4)
        idx = np.array([1, 1, 3])

        def f(x):
            y = ops.index_add(x, idx, np.array([1.0, 2.0, 3.0]))
            return ops.sum(y * np.arange(4.0))

        g = ad.grad(f)(v)
        assert np.allclose(g, np.arange(4.0))

    def test_index_add_gradient_wrt_added_values(self):
        base = np.zeros(4)
        add = np.array([1.0, 2.0, 3.0])
        idx = np.array([1, 1, 3])

        with ad.Tape() as t:
            a = t.watch(add)
            y = ops.index_add(base, idx, a)
            out = ops.sum(y * np.arange(4.0))
        g = t.gradient(out, [a])[0]
        assert np.allclose(g, [1.0, 1.0, 3.0])

    def test_where_routes_gradient_by_condition(self):
        cond = np.array([True, False, True])
        a = np.ones(3)
        b = np.full(3, 5.0)

        def f(x, y):
            return ops.sum(ops.where(cond, x, y) * np.array([1.0, 2.0, 3.0]))

        ga, gb = ad.grad(f, argnums=(0, 1))(a, b)
        assert np.allclose(ga, [1.0, 0.0, 3.0])
        assert np.allclose(gb, [0.0, 2.0, 0.0])

    def test_copy_is_identity_for_gradient(self):
        g = ad.grad(lambda x: ops.sum(ops.copy(x) * 4.0))(X)
        assert np.allclose(g, 4.0)

    def test_astype_to_int_detaches(self):
        with ad.Tape() as t:
            x = t.watch(np.array([1.2, 3.7]))
            y = ops.astype(x, np.int64)
        assert not isinstance(y, ad.ADArray)
        assert y.dtype == np.int64

    def test_astype_to_float_keeps_trace(self):
        g = ad.grad(lambda x: ops.sum(ops.astype(x, np.float32) * 2.0))(
            np.ones(3))
        assert np.allclose(g, 2.0)

    def test_detach_cuts_graph(self):
        def f(x):
            d = ops.detach(x)           # constant from here on
            return ops.sum(x * d)

        x0 = np.array([1.0, 2.0, 3.0])
        g = ad.grad(f)(x0)
        assert np.allclose(g, x0)       # only the traced factor contributes


class TestInPlaceOperators:
    def test_iadd_matches_functional(self):
        def f(x):
            y = x.copy()
            y += 3.0
            return ops.sum(y * y)

        x0 = np.array([1.0, -2.0])
        g = ad.grad(f)(x0)
        assert np.allclose(g, 2.0 * (x0 + 3.0))

    def test_imul_matches_functional(self):
        def f(x):
            y = x.copy()
            y *= 2.0
            return ops.sum(y * y)

        x0 = np.array([1.0, -2.0])
        g = ad.grad(f)(x0)
        assert np.allclose(g, 8.0 * x0)

    def test_isub_and_idiv(self):
        def f(x):
            y = x.copy()
            y -= 1.0
            y /= 2.0
            return ops.sum(y)

        g = ad.grad(f)(np.ones(4))
        assert np.allclose(g, 0.5)

    def test_index_add_method_on_adarray(self):
        def f(x):
            y = x.copy()
            y.index_add(np.array([0, 0, 1]), np.array([1.0, 1.0, 1.0]))
            return ops.sum(y * np.array([2.0, 3.0, 4.0]))

        g = ad.grad(f)(np.zeros(3))
        assert np.allclose(g, [2.0, 3.0, 4.0])
