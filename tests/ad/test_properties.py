"""Property-based tests (hypothesis) for the AD engine invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import ad
from repro.ad import activity, ops
from repro.ad.tape import Tape

finite_floats = st.floats(min_value=-10.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False, width=64)


def small_arrays(min_size=1, max_size=30):
    return hnp.arrays(dtype=np.float64, elements=finite_floats,
                      shape=st.integers(min_value=min_size,
                                        max_value=max_size))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_gradient_of_sum_is_ones(x):
    g = ad.grad(lambda v: ops.sum(v))(x)
    assert np.allclose(g, 1.0)


@settings(max_examples=40, deadline=None)
@given(small_arrays(), finite_floats)
def test_gradient_linearity_in_constant_scale(x, c):
    """grad(c * f) == c * grad(f) for f = sum of squares."""
    g1 = ad.grad(lambda v: ops.sum(v * v) * c)(x)
    g2 = c * ad.grad(lambda v: ops.sum(v * v))(x)
    assert np.allclose(g1, g2, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_of_parts_equals_whole(x):
    """Splitting an array and summing the parts must give the same gradient
    as summing the whole (gradient accumulation correctness)."""
    if x.size < 2:
        return
    k = x.size // 2

    def split_sum(v):
        return ops.sum(v[:k]) + ops.sum(v[k:])

    g_split = ad.grad(split_sum)(x)
    g_whole = ad.grad(lambda v: ops.sum(v))(x)
    assert np.allclose(g_split, g_whole)


@settings(max_examples=40, deadline=None)
@given(small_arrays(min_size=4))
def test_unused_suffix_has_exactly_zero_gradient(x):
    """The core property the paper relies on: untouched elements have a
    derivative of exactly zero (no numerical noise)."""
    k = x.size // 2

    def f(v):
        return ops.sum(ops.square(v[:k]))

    g = ad.grad(f)(x)
    assert np.all(g[k:] == 0.0)


@settings(max_examples=40, deadline=None)
@given(small_arrays(min_size=4))
def test_activity_mask_is_superset_of_ad_mask(x):
    """Every AD-critical element must also be marked read by the activity
    analysis (activity is a conservative over-approximation)."""
    k = max(1, x.size // 3)

    with Tape() as t:
        v = t.watch(x)
        out = ops.sum(v[:k] * np.arange(k, dtype=np.float64))
    g = t.gradient(out, [v])[0]
    res = activity.read_mask(t, v)
    ad_mask = g != 0.0
    assert np.all(res.read | ~ad_mask)


@settings(max_examples=30, deadline=None)
@given(small_arrays(min_size=2, max_size=20), small_arrays(min_size=2, max_size=20))
def test_product_rule(x, y):
    """d/dx sum(x*y) == y and d/dy sum(x*y) == x with broadcasting off."""
    n = min(x.size, y.size)
    x, y = x[:n], y[:n]
    gx, gy = ad.grad(lambda a, b: ops.sum(a * b), argnums=(0, 1))(x, y)
    assert np.allclose(gx, y)
    assert np.allclose(gy, x)


@settings(max_examples=30, deadline=None)
@given(small_arrays(min_size=3, max_size=25),
       st.integers(min_value=0, max_value=2))
def test_setitem_removes_influence_of_overwritten_elements(x, start):
    """After y[start:start+1] = const, x[start] cannot influence sum(y*y)."""
    def f(v):
        y = v.copy()
        y[start:start + 1] = 2.5
        return ops.sum(y * y)

    g = ad.grad(f)(x)
    assert g[start] == 0.0


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(dtype=np.float64, elements=finite_floats,
                  shape=hnp.array_shapes(min_dims=2, max_dims=3,
                                         min_side=2, max_side=6)))
def test_reshape_transpose_preserve_total_gradient_mass(x):
    """Pure data-movement ops must not change the gradient of sum()."""
    def f(v):
        moved = ops.transpose(ops.reshape(v, (-1,)).reshape(v.shape[::-1][0], -1))
        return ops.sum(moved)

    g = ad.grad(f)(x)
    assert np.allclose(g, 1.0)


@settings(max_examples=30, deadline=None)
@given(small_arrays(min_size=2, max_size=16))
def test_gradient_check_against_finite_differences(x):
    """Random smooth function agrees with central finite differences."""
    from repro.ad import checks

    res = checks.check_gradient(
        lambda v: ops.sum(ops.tanh(v) + 0.5 * v * v),
        x, n_samples=8, atol=1e-4, rtol=1e-3)
    assert res.passed


@settings(max_examples=30, deadline=None)
@given(small_arrays(min_size=1, max_size=16))
def test_forward_reverse_agreement_random_direction(x):
    """Dual-number JVP equals the dot product of the reverse gradient with
    the direction, for a nontrivial smooth function."""
    from repro.ad import forward

    rng = np.random.default_rng(x.size)
    v = rng.standard_normal(x.shape)

    def f_rev(z):
        return ops.sum(ops.exp(z * 0.1) * z)

    def f_fwd(z):
        return forward.sum((z * 0.1).exp() * z)

    g = ad.grad(f_rev)(x)
    jvp = forward.jvp(f_fwd, x, v)
    assert np.isclose(jvp, float(np.dot(np.ravel(g), np.ravel(v))),
                      rtol=1e-8, atol=1e-8)
