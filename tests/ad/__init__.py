"""Test package: ad — unique module paths for same-basename test files."""
