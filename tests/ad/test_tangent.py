"""Tests of the forward-mode (JVP) tangent sweep and its method plumbing."""

from __future__ import annotations

import importlib

import numpy as np
import pytest

from repro.ad import ops
from repro.ad.dual import TangentArray
from repro.ad.segmented import SweepStats, segmented_gradients
from repro.ad.tangent import tangent_gradients
from repro.ad.tape import Tape
from repro.core.analysis import scrutinize
from repro.core.criticality import (METHODS, CriticalityAnalyzer,
                                    criticality_from_gradient)
from repro.core.store import cache_key
from repro.npb.cg import CG
from repro.npb.ep import EP


def bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact bit-pattern equality of two float64 arrays."""
    a = np.ascontiguousarray(np.asarray(a, dtype=np.float64))
    b = np.ascontiguousarray(np.asarray(b, dtype=np.float64))
    return a.shape == b.shape and np.array_equal(a.view(np.uint64),
                                                 b.view(np.uint64))


class TestTangentArray:
    def test_stacking_validated(self):
        with pytest.raises(ValueError, match="stack directions"):
            TangentArray(np.ones((2, 3)), np.ones((4, 3, 2)))

    def test_metadata_hides_direction_axis(self):
        ta = TangentArray(np.ones((2, 3)), np.zeros((5, 2, 3)))
        assert ta.shape == (2, 3)
        assert ta.ndim == 2
        assert ta.n_directions == 5

    def test_setitem_rebinds_copy_on_write(self):
        ta = TangentArray(np.arange(4.0), np.eye(4))
        original_tangent = ta.tangent
        ta[1:3] = 0.0
        assert ta.value[1] == 0.0
        assert ta.tangent[1, 1] == 0.0 and ta.tangent[0, 0] == 1.0
        # the old buffer is untouched (functional update)
        assert original_tangent[1, 1] == 1.0


class TestTangentOpsAgainstReverse:
    """Composite chains: stacked-tangent JVP vs reverse-mode gradient.

    The two modes accumulate the same per-primitive rules in opposite
    association orders, so generic chains agree to rounding (and exactly on
    the zero pattern -- the criticality criterion); chains whose rules are
    exact 0/1 gates (tie masks, clip, where, indexing) agree bitwise.
    """

    def assert_same_gradient(self, gr, gt):
        np.testing.assert_array_equal(gr == 0.0, gt == 0.0)
        np.testing.assert_allclose(gt, gr, rtol=1e-13, atol=0.0)

    def reverse_gradient(self, f, x):
        with Tape() as t:
            leaf = t.watch(np.array(x, copy=True), name="x")
            out = f(leaf)
        return t.gradient(out, [leaf])[0]

    def tangent_gradient(self, f, x):
        x = np.asarray(x, dtype=np.float64)
        seed = np.eye(x.size).reshape((x.size,) + x.shape)
        out = f(TangentArray(np.array(x, copy=True), seed))
        return np.asarray(out.tangent).reshape(x.shape)

    def test_elementwise_unary_reduction_chain(self):
        x = np.linspace(0.3, 1.8, 7)

        def f(z):
            return ops.sum(ops.sqrt(z) * ops.sin(z) + ops.exp(-z) / (z + 1.0))

        self.assert_same_gradient(self.reverse_gradient(f, x),
                                  self.tangent_gradient(f, x))

    def test_minmax_clip_where_conventions(self):
        x = np.array([-2.0, -1.0, 0.0, 0.5, 1.0, 1.0, 3.0])

        def f(z):
            a = ops.maximum(z, 1.0)          # ties -> first operand
            b = ops.minimum(z, 0.5)
            c = ops.clip(z, -1.0, 1.0)       # inclusive bounds
            d = ops.where(z > 0.0, z * 2.0, z * 3.0)
            return ops.sum(a + b + c + d)

        assert bitwise_equal(self.reverse_gradient(f, x),
                             self.tangent_gradient(f, x))

    def test_matmul_and_shape_ops(self):
        rng = np.random.default_rng(7)
        m = rng.standard_normal((4, 4))
        x = rng.standard_normal(8)

        def f(z):
            y = ops.reshape(z, (4, 2))
            w = ops.matmul(m, y)
            return ops.sum(ops.transpose(w) * 0.5) + ops.sum(z * z)

        self.assert_same_gradient(self.reverse_gradient(f, x),
                                  self.tangent_gradient(f, x))

    def test_index_update_add_getitem_chain(self):
        x = np.arange(1.0, 7.0)

        def f(z):
            acc = ops.index_update(z, slice(0, 2), 0.25)
            acc = ops.index_add(acc, np.array([2, 3]), z[4:6])
            return ops.sum(acc[1:5] * np.array([1.0, 2.0, 3.0, 4.0]))

        assert bitwise_equal(self.reverse_gradient(f, x),
                             self.tangent_gradient(f, x))

    def test_reductions_with_ties(self):
        x = np.array([1.0, 3.0, 3.0, 0.0, 2.0])

        def f(z):
            return ops.max(z) + ops.min(z) + ops.prod(z) + ops.mean(z)

        assert bitwise_equal(self.reverse_gradient(f, x),
                             self.tangent_gradient(f, x))


#: per-port step counts for the bitwise agreement sweep: the heavy stencil
#: ports (and MG's 2800-element state) analyse one iteration -- identical
#: code paths, fraction of the runtime; None = the port's own default
PORT_STEPS = {"EP": None, "CG": None, "MG": 1, "FT": None,
              "IS": None, "BT": 1, "SP": 1, "LU": 1}
PORT_MODULES = {"EP": "repro.npb.ep", "CG": "repro.npb.cg",
                "MG": "repro.npb.mg", "FT": "repro.npb.ft",
                "IS": "repro.npb.is_", "BT": "repro.npb.bt",
                "SP": "repro.npb.sp", "LU": "repro.npb.lu"}


class TestTangentSweep:
    @pytest.mark.parametrize("name", sorted(PORT_STEPS))
    def test_masks_bitwise_match_reverse_all_ports(self, name):
        bench = getattr(importlib.import_module(PORT_MODULES[name]),
                        name)(problem_class="T")
        state = bench.checkpoint_state(1)
        watch = list(bench.default_watch_keys())
        steps = PORT_STEPS[name]
        reverse = segmented_gradients(bench, state, watch=watch, steps=steps)
        tangent = tangent_gradients(bench, state, watch=watch, steps=steps)
        assert sorted(reverse) == sorted(tangent)
        for key in watch:
            np.testing.assert_array_equal(
                criticality_from_gradient(reverse[key]),
                criticality_from_gradient(tangent[key]),
                err_msg=f"{name}:{key} tangent mask diverges from reverse")

    def test_chunked_directions_bitwise_identical(self):
        bench = CG(problem_class="T")
        state = bench.checkpoint_state(1)
        full = tangent_gradients(bench, state)
        for max_directions in (1, 5):
            chunked = tangent_gradients(bench, state,
                                        max_directions=max_directions)
            for key in full:
                assert bitwise_equal(full[key], chunked[key]), \
                    f"max_directions={max_directions} changed {key!r}"

    def test_no_tape_nodes_recorded(self):
        bench = EP(problem_class="T")
        state = bench.checkpoint_state(1)
        with Tape() as tape:
            tangent_gradients(bench, state, steps=2)
        assert len(tape.nodes) == 0

    def test_peak_memory_independent_of_steps(self):
        bench = EP(problem_class="T")
        state = bench.checkpoint_state(0)
        peaks = []
        for steps in (1, bench.total_steps):
            stats = SweepStats()
            tangent_gradients(bench, state, steps=steps, stats=stats)
            peaks.append(stats.tangent_peak_state_nbytes)
        assert peaks[0] == peaks[1] > 0

    def test_stats_record_passes_and_directions(self):
        bench = EP(problem_class="T")
        state = bench.checkpoint_state(1)
        n = sum(np.size(state[k]) for k in bench.default_watch_keys())
        stats = SweepStats()
        tangent_gradients(bench, state, stats=stats, max_directions=5)
        assert stats.tangent_passes == -(-n // 5)
        assert stats.tangent_directions == n

    def test_unknown_watch_key_raises(self):
        bench = EP(problem_class="T")
        with pytest.raises(KeyError, match="unknown state entry"):
            tangent_gradients(bench, bench.checkpoint_state(1),
                              watch=["nope"])

    def test_negative_steps_and_bad_chunk_raise(self):
        bench = EP(problem_class="T")
        state = bench.checkpoint_state(1)
        with pytest.raises(ValueError, match="non-negative"):
            tangent_gradients(bench, state, steps=-1)
        with pytest.raises(ValueError, match="max_directions"):
            tangent_gradients(bench, state, max_directions=0)

    def test_non_restartable_object_raises(self):
        with pytest.raises(TypeError, match="run"):
            tangent_gradients(object(), {"x": np.ones(2)})

    def test_vector_output_names_shape(self):
        class VectorBench:
            name = "VEC"

            def run(self, state, steps):
                return dict(state)

            def output(self, state):
                return state["x"] * 2.0

        with pytest.raises(ValueError, match=r"output shape \(3,\)"):
            tangent_gradients(VectorBench(), {"x": np.ones(3)},
                              watch=["x"], steps=1)

    def test_float32_state_gets_float32_gradient(self):
        class TinyBench:
            name = "TINY"

            def run(self, state, steps):
                return {"x": state["x"] * 2.0}

            def output(self, state):
                return ops.sum(state["x"])

        grads = tangent_gradients(TinyBench(),
                                  {"x": np.ones(3, dtype=np.float32)},
                                  watch=["x"], steps=1)
        assert grads["x"].dtype == np.float32


class TestTangentMethodPlumbing:
    def test_method_registered(self):
        assert "tangent" in METHODS

    def test_analyzer_rejects_unknown_method_still(self):
        with pytest.raises(ValueError, match="unknown method"):
            CriticalityAnalyzer(method="jvp")

    @pytest.mark.parametrize("bench_cls", [EP, CG])
    def test_scrutinize_tangent_masks_match_ad(self, bench_cls):
        ref = scrutinize(bench_cls(problem_class="T"), method="ad")
        res = scrutinize(bench_cls(problem_class="T"), method="tangent")
        for name, crit in res.variables.items():
            np.testing.assert_array_equal(crit.mask,
                                          ref.variables[name].mask)
            if ref.variables[name].method == "ad":
                assert crit.method == "tangent"

    def test_multi_probe_draws_match_ad(self):
        # probe states are drawn in the same (probe, key) order with the
        # same per-analysis generator, so OR-of-probes masks agree too
        ref = scrutinize(CG(problem_class="T"), method="ad", n_probes=3)
        res = scrutinize(CG(problem_class="T"), method="tangent", n_probes=3)
        for name, crit in res.variables.items():
            np.testing.assert_array_equal(crit.mask,
                                          ref.variables[name].mask)

    def test_store_key_never_aliases_ad(self):
        common = dict(benchmark="EP", problem_class="T", n_probes=1)
        assert cache_key(method="tangent", **common) \
            != cache_key(method="ad", **common)

    def test_version_bump_invalidates_old_entries(self):
        common = dict(benchmark="EP", problem_class="T", method="tangent",
                      n_probes=1)
        assert cache_key(version="1.5.0", **common) \
            != cache_key(version="1.4.0", **common)
