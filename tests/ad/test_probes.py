"""Batched multi-probe sweep: equivalence with the per-probe path.

The acceptance bar mirrors the segmented sweep's: the batched probe axis
must reproduce the per-probe gradients *bitwise* (not just the masks) in
both the monolithic and the segmented sweep, because the criticality
criterion is "derivative exactly 0.0".  The one sanctioned exception is
the multi-RHS matvec shortcut (plain matrix @ probe vectors as a single
GEMM, exercised by CG): its regrouped accumulation may move nonzero values
by a few ulps, so there the pin is exact-zero-pattern identity -- the mask
criterion itself -- plus ulp-level closeness.  Masks are asserted identical
for every port either way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import ops
from repro.ad.probes import (ProbeBatchingError, batched_gradients,
                             probe_axis, probe_axis_size,
                             segmented_batched_gradients, stack_states)
from repro.ad.reverse import backward
from repro.ad.segmented import SweepStats, segmented_gradients
from repro.ad.tape import Tape
from repro.ad.tensor import value_of
from repro.core.criticality import CriticalityAnalyzer
from repro.npb import registry

ALL_BENCHMARKS = registry.available_benchmarks()


def _probe_states(bench, watch, n_probes, seed=1234):
    """Base state plus ``n_probes - 1`` perturbed copies."""
    state = bench.checkpoint_state(bench.total_steps // 2)
    rng = np.random.default_rng(seed)
    states = [dict(state)]
    for _ in range(n_probes - 1):
        probed = dict(state)
        for key in watch:
            base = np.asarray(probed[key], dtype=np.float64)
            probed[key] = base + 1.0e-3 * rng.standard_normal(base.shape)
        states.append(probed)
    return states


def _per_probe_monolithic(bench, states, watch):
    grads = []
    for state in states:
        tape, leaves, out = bench.traced_restart(state, watch=list(watch))
        grads.append(dict(zip(watch, backward(
            tape, out, [leaves[k] for k in watch], strict=False))))
    return grads


def _assert_bitwise(a, b, label):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    assert a.shape == b.shape, label
    assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), \
        f"{label}: gradients differ bitwise"


def _assert_same_criticality(a, b, label):
    """Identical zero pattern (the mask criterion) plus ~ulp closeness.

    Used where the batched path takes the multi-RHS GEMM shortcut for
    plain-matrix @ probe-vector products (CG's matvecs): the GEMM regroups
    each dot product's accumulation, so nonzero values may differ from the
    per-probe gemv by a few ulps, while structural zeros -- the criticality
    signal -- stay exactly 0.0 in both formulations (their buffers are
    never touched by arithmetic).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    assert a.shape == b.shape, label
    assert np.array_equal(a == 0.0, b == 0.0), \
        f"{label}: zero patterns (criticality masks) differ"
    assert np.allclose(a, b, rtol=1.0e-7, atol=0.0), \
        f"{label}: gradients differ beyond accumulation-order noise"


#: ports whose kernels hit the multi-RHS matvec shortcut (see above);
#: every other port's batched gradients are pinned bitwise
MULTIRHS_PORTS = frozenset({"CG"})


def _assert_grads_match(name, a, b, label):
    if name in MULTIRHS_PORTS:
        _assert_same_criticality(a, b, label)
    else:
        _assert_bitwise(a, b, label)


# ---------------------------------------------------------------------------
# the probe-axis context
# ---------------------------------------------------------------------------

class TestProbeAxisContext:
    def test_inactive_by_default(self):
        assert probe_axis_size() is None

    def test_active_inside_context(self):
        with probe_axis(3):
            assert probe_axis_size() == 3
        assert probe_axis_size() is None

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with probe_axis(2):
                raise RuntimeError("boom")
        assert probe_axis_size() is None

    def test_rejects_nesting_and_bad_sizes(self):
        with pytest.raises(ValueError):
            with probe_axis(0):
                pass
        with probe_axis(2):
            with pytest.raises(ProbeBatchingError):
                with probe_axis(2):
                    pass

    def test_plain_numpy_unaffected_inside_context(self):
        # ops on untraced data must behave exactly like numpy even while a
        # batched trace is active (constants carry no probe axis)
        with probe_axis(4):
            assert ops.sum(np.ones((2, 3))) == 6.0
            assert ops.reshape(np.arange(6.0), (2, 3)).shape == (2, 3)
            assert np.shape(ops.matmul(np.ones((2, 2)),
                                       np.ones(2))) == (2,)


class TestStackStates:
    def test_stacks_watch_keys_and_shares_rest(self):
        states = [{"a": np.ones(3), "k": 7}, {"a": np.zeros(3), "k": 7}]
        stacked = stack_states(states, ["a"])
        assert stacked["a"].shape == (2, 3)
        assert stacked["k"] == 7

    def test_rejects_empty_and_missing_keys(self):
        with pytest.raises(ValueError):
            stack_states([], ["a"])
        with pytest.raises(KeyError):
            stack_states([{"a": 1.0}, {}], ["a"])


# ---------------------------------------------------------------------------
# primitive-level equivalence on a synthetic kernel medley
# ---------------------------------------------------------------------------

def _medley(x, y, mat):
    """Exercises every probe-sensitive primitive family in one function.

    The traced-matrix matmul keeps the medley on the bitwise (stacked)
    path; the multi-RHS matvec shortcut has its own dedicated test.
    """
    g = x[1:5] * 2.0                                # basic getitem
    h = ops.reshape(g, (2, 2))                       # reshape
    t = ops.transpose(h)                             # transpose
    m = ops.ravel(ops.matmul(t, mat[:2, :2]))        # traced matrix @ plain
    s = ops.index_update(x, slice(0, 4), m)          # indexed write
    s2 = ops.index_add(s, np.array([1, 1, 3]), y)    # scatter-add, addend
    fancy = s2[np.array([0, 2, 4, 6])]               # advanced getitem
    mv = ops.moveaxis(ops.reshape(s2, (2, 2, 2)), 2, 0)
    red = ops.sum(ops.square(mv), axis=(0, 2))       # axis reduction
    rolled = ops.roll(s2, 3)                         # axis=None roll
    flipped = ops.flip(ops.reshape(s2, (2, 4)), axis=1)
    padded = ops.pad_zero(fancy, (1, 2))             # pad
    mx = ops.max(ops.reshape(s2, (4, 2)), axis=0)    # minmax reduction
    w = ops.where(value_of(s2) > 0.5, s2, 0.25 * s2)
    taken = ops.take(s2, np.array([0, 3, 5]))        # take, axis=None
    dotv = ops.matmul(ops.ravel(h), ops.ravel(t))    # vector . vector
    em = ops.mean(s2)                                # full mean
    return (ops.sum(red) + ops.sum(rolled * rolled) + ops.sum(flipped)
            + ops.sum(padded) + ops.sum(mx) + ops.sum(w) + ops.sum(taken)
            + ops.sum(fancy) + dotv + em + ops.norm(s2))


def test_medley_batched_matches_per_probe():
    rng = np.random.default_rng(5)
    mat = rng.random((4, 4))
    xs = [rng.random(8) for _ in range(3)]
    ys = [rng.random(3) for _ in range(3)]

    per = []
    for x0, y0 in zip(xs, ys):
        with Tape() as tape:
            x = tape.watch(x0, name="x")
            y = tape.watch(y0, name="y")
            out = _medley(x, y, mat)
        per.append(backward(tape, out, [x, y]))

    with Tape() as tape, probe_axis(3):
        x = tape.watch(np.stack(xs), name="x")
        y = tape.watch(np.stack(ys), name="y")
        out = _medley(x, y, mat)
        assert value_of(out).shape == (3,)
    gx, gy = backward(tape, out, [x, y])

    for p in range(3):
        _assert_bitwise(per[p][0], gx[p], f"medley x probe {p}")
        _assert_bitwise(per[p][1], gy[p], f"medley y probe {p}")


def _medley2(x, y):
    """Second primitive medley: the shape/joining ops _medley leaves out."""
    a = ops.expand_dims(x, 0)                         # (1, 8)
    b = ops.broadcast_to(x, (3, 8))                   # broadcast
    c = ops.concatenate([a, b, np.ones((2, 8))], axis=0)
    d = ops.stack([x, 0.5 * x, np.arange(8.0)], axis=1)
    e = ops.squeeze(ops.expand_dims(y, 1), axis=1)
    f = ops.swapaxes(ops.reshape(x, (2, 4)), 0, 1)
    g = ops.take(ops.reshape(x, (2, 4)), np.array([1, 0, 1]), axis=1)
    h = ops.prod(ops.reshape(1.0 + 0.1 * x, (2, 4)), axis=1)
    i = ops.min(d, axis=0)
    j = ops.clip(x, 0.2, 0.8)
    k = ops.minimum(x, y[0])
    return (ops.sum(c) + ops.sum(d) + ops.sum(e) + ops.sum(f * f)
            + ops.sum(g) + ops.sum(h) + ops.sum(i) + ops.sum(j)
            + ops.sum(k) + ops.mean(f, axis=1).sum())


def test_medley2_batched_matches_per_probe():
    rng = np.random.default_rng(11)
    xs = [rng.random(8) for _ in range(3)]
    ys = [rng.random(3) for _ in range(3)]

    per = []
    for x0, y0 in zip(xs, ys):
        with Tape() as tape:
            x = tape.watch(x0, name="x")
            y = tape.watch(y0, name="y")
            out = _medley2(x, y)
        per.append(backward(tape, out, [x, y]))

    with Tape() as tape, probe_axis(3):
        x = tape.watch(np.stack(xs), name="x")
        y = tape.watch(np.stack(ys), name="y")
        out = _medley2(x, y)
        assert value_of(out).shape == (3,)
    gx, gy = backward(tape, out, [x, y])

    for p in range(3):
        _assert_bitwise(per[p][0], gx[p], f"medley2 x probe {p}")
        _assert_bitwise(per[p][1], gy[p], f"medley2 y probe {p}")


def test_separated_advanced_indices_rejected():
    # numpy places the subspace of slice-separated advanced indices in
    # front of the prepended probe slice, which would silently transpose
    # the probe axis away -- must abort the batched trace instead, even
    # when the subspace length happens to equal the probe count
    idx = (np.array([0, 1]), slice(None), np.array([0, 1]))
    with pytest.raises(ProbeBatchingError, match="separated"):
        with Tape() as tape, probe_axis(2):
            x = tape.watch(np.ones((2, 3, 4, 3)), name="x")
            ops.getitem(x, idx)
    # ... while adjacent advanced groups and int+slice basic indexing are
    # fine (the patterns the NPB kernels actually use)
    with Tape() as tape, probe_axis(2):
        x = tape.watch(np.ones((2, 3, 4, 3)), name="x")
        assert ops.getitem(x, (np.array([0, 1]), np.array([0, 1]))).shape \
            == (2, 2, 3)
        assert ops.getitem(x, (slice(None), 1, np.array([0, 2]))).shape \
            == (2, 3, 2)
        assert ops.getitem(x, (0, slice(None), 1)).shape == (2, 4)


def test_probe_axis_guard_rejects_axis_loss():
    # a primitive that reduces away the probe axis must abort the batched
    # trace (that is what triggers the analyzer's per-probe fallback)
    with pytest.raises(ProbeBatchingError):
        with Tape() as tape, probe_axis(2):
            x = tape.watch(np.ones((2, 3)), name="x")
            ops.sum(x, axis=(-2, -1))  # explicitly reduces the probe axis


def test_matvec_multirhs_matches_per_probe_criticality():
    """The plain-matrix @ probe-vector shortcut: one GEMM for all probes.

    Values may differ from the per-probe gemv by accumulation order only;
    the zero pattern -- what the masks are built from -- must be identical.
    """
    rng = np.random.default_rng(3)
    A = rng.random((6, 6))
    A[:, 4:] = 0.0                  # structural zeros: columns never read
    vs = [rng.random(6) for _ in range(3)]

    per = []
    for v0 in vs:
        with Tape() as tape:
            v = tape.watch(v0, name="v")
            out = ops.sum(ops.square(ops.matmul(A, v)))
        per.append(backward(tape, out, [v])[0])

    with Tape() as tape, probe_axis(3):
        v = tape.watch(np.stack(vs), name="v")
        out = ops.sum(ops.square(ops.matmul(A, v)))
    (gv,) = backward(tape, out, [v])

    for p in range(3):
        _assert_same_criticality(per[p], gv[p], f"matvec probe {p}")
        assert per[p][4:].tolist() == [0.0, 0.0]     # structural zeros
        assert gv[p][4:].tolist() == [0.0, 0.0]


def test_scalar_times_array_alignment():
    # a traced logical scalar times a plain array needs the probe axis
    # lifted past the array's dims: (P,) x (m, n) -> (P, m, n)
    c = np.arange(6.0).reshape(2, 3)
    with Tape() as tape, probe_axis(2):
        x = tape.watch(np.array([2.0, 3.0]), name="x")
        out = ops.sum(x * c)
    assert value_of(out).shape == (2,)
    assert np.allclose(value_of(out), [2.0 * c.sum(), 3.0 * c.sum()])
    (gx,) = backward(tape, out, [x])
    assert np.allclose(gx, [c.sum(), c.sum()])


# ---------------------------------------------------------------------------
# per-benchmark equivalence: monolithic and segmented
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_batched_gradients_bitwise_equal_per_probe(name):
    bench = registry.create(name, "T")
    watch = bench.default_watch_keys()
    if not watch:  # IS is all-integer: nothing for the AD sweep to do
        pytest.skip(f"{name} has no floating point checkpoint variables")
    states = _probe_states(bench, watch, n_probes=3)
    per = _per_probe_monolithic(bench, states, watch)
    stacked = batched_gradients(bench, states, watch=watch)
    for key in watch:
        assert stacked[key].shape == (3,) + np.shape(states[0][key])
        for p in range(3):
            _assert_grads_match(name, per[p][key], stacked[key][p],
                                f"{name}[{key}] probe {p} (monolithic)")


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_segmented_batched_gradients_bitwise_equal_per_probe(name):
    bench = registry.create(name, "T")
    watch = bench.default_watch_keys()
    if not watch:
        pytest.skip(f"{name} has no floating point checkpoint variables")
    states = _probe_states(bench, watch, n_probes=2)
    per = [segmented_gradients(bench, s, watch=watch) for s in states]
    stacked = segmented_batched_gradients(bench, states, watch=watch)
    for key in watch:
        for p in range(2):
            _assert_grads_match(name, per[p][key], stacked[key][p],
                                f"{name}[{key}] probe {p} (segmented)")


def test_segmented_batched_peak_tape_is_one_batched_iteration():
    bench = registry.create("CG", "T")
    watch = bench.default_watch_keys()
    states = _probe_states(bench, watch, n_probes=4)
    stats = SweepStats()
    segmented_batched_gradients(bench, states, watch=watch, stats=stats)
    steps = bench.total_steps - bench.total_steps // 2
    # one tape per iteration plus the output segment, regardless of probes
    assert stats.n_segments == steps + 1
    assert stats.peak_nodes * steps <= stats.total_nodes * 2


def test_batched_requires_probe_tracing_api():
    class Opaque:
        name = "OPAQUE"

    with pytest.raises(ProbeBatchingError):
        batched_gradients(Opaque(), [{"x": np.ones(2)}], watch=["x"])
    with pytest.raises(ProbeBatchingError):
        segmented_batched_gradients(Opaque(), [{"x": np.ones(2)}],
                                    watch=["x"])


# ---------------------------------------------------------------------------
# analyzer-level equivalence: masks identical for every port and sweep
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("sweep", ("monolithic", "segmented"))
@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_masks_identical_batched_vs_per_probe(name, sweep):
    bench = registry.create(name, "T")
    step = bench.total_steps // 2
    state = bench.checkpoint_state(step)
    kwargs = dict(method="ad", n_probes=3, sweep=sweep)
    batched = CriticalityAnalyzer(probe_batching="batched", **kwargs) \
        .analyze(bench, state=state, step=step)
    per_probe = CriticalityAnalyzer(probe_batching="per-probe", **kwargs) \
        .analyze(bench, state=state, step=step)
    assert list(batched) == list(per_probe)
    for var_name, crit in batched.items():
        ref = per_probe[var_name]
        assert np.array_equal(crit.mask, ref.mask), \
            f"{name}({var_name}) mask differs between probe modes ({sweep})"
        for key in crit.gradients:
            _assert_grads_match(name, crit.gradients[key],
                                ref.gradients[key],
                                f"{name}({var_name})[{key}] base gradient")


def test_analyzer_falls_back_without_probe_api(recwarn):
    """A benchmark without the probe-tracing API uses the per-probe loop
    silently and still produces the per-probe masks."""
    from repro.core.variables import CheckpointVariable, VariableKind

    class Minimal:
        """Bare RestartableApplication: no NPBBenchmark inheritance."""

        name = "MINI"
        total_steps = 2

        def checkpoint_variables(self):
            return (CheckpointVariable("x", (3,), VariableKind.FLOAT,
                                       description="state"),)

        def traced_restart(self, state, watch=None, steps=None):
            tape = Tape()
            with tape:
                x = tape.watch(state["x"], name="x")
                out = ops.sum(x[:2] * x[:2])
            return tape, {"x": x}, out

    bench = Minimal()
    state = {"x": np.array([1.0, 2.0, 3.0])}
    masks = CriticalityAnalyzer(n_probes=3, probe_batching="batched") \
        .analyze(bench, state=state, step=1)
    assert masks["x"].mask.tolist() == [True, True, False]
    assert not [w for w in recwarn.list
                if issubclass(w.category, RuntimeWarning)]


def test_analyzer_warns_and_falls_back_on_broadcast_failure():
    """A kernel that breaks the probe axis mid-trace falls back with a
    RuntimeWarning and still produces the per-probe masks."""
    from repro.npb.base import NPBBenchmark
    from repro.core.variables import CheckpointVariable, VariableKind

    class Hostile(NPBBenchmark):
        name = "HOSTILE"

        def __init__(self):
            pass

        @property
        def total_steps(self):
            return 2

        def checkpoint_variables(self):
            return (CheckpointVariable("x", (3,), VariableKind.FLOAT,
                                       description="state"),)

        def initial_state(self):
            return {"x": np.array([1.0, 2.0, 3.0])}

        def _advance(self, state):
            x = state["x"]
            # float() on a traced scalar cannot broadcast over probes
            shift = float(value_of(ops.sum(x[:2] * x[:2])))
            return {"x": x + 0.001 * shift}

        def output(self, state):
            return ops.sum(state["x"][:2])

    bench = Hostile()
    state = bench.initial_state()
    with pytest.warns(RuntimeWarning, match="falling back"):
        batched = CriticalityAnalyzer(n_probes=2, probe_batching="batched") \
            .analyze(bench, state=state, step=0)
    per_probe = CriticalityAnalyzer(n_probes=2,
                                    probe_batching="per-probe") \
        .analyze(bench, state=state, step=0)
    assert np.array_equal(batched["x"].mask, per_probe["x"].mask)
