"""Tests for forward mode, activity analysis, gradient checks and seeding."""

import numpy as np
import pytest

from repro import ad
from repro.ad import activity, checks, forward, ops, seeding
from repro.ad.tape import Tape


class TestForwardMode:
    def test_dual_basic_arithmetic(self):
        d = forward.Dual(np.array([2.0]), np.array([1.0]))
        out = d * d + 3.0 * d + 1.0
        assert np.isclose(out.value[0], 11.0)
        assert np.isclose(out.tangent[0], 2 * 2.0 + 3.0)

    def test_dual_division(self):
        d = forward.Dual(np.array([4.0]), np.array([1.0]))
        out = 1.0 / d
        assert np.isclose(out.tangent[0], -1.0 / 16.0)

    def test_dual_chain_of_functions(self):
        d = forward.Dual(np.array([0.5]), np.array([1.0]))
        out = forward.exp(forward.sin(d))
        expected = np.exp(np.sin(0.5)) * np.cos(0.5)
        assert np.isclose(out.tangent[0], expected)

    def test_dual_matmul(self):
        A = np.arange(6.0).reshape(2, 3)
        d = forward.Dual(np.ones(3), np.array([1.0, 0.0, 0.0]))
        out = A @ d
        assert np.allclose(out.tangent, A[:, 0])

    def test_dual_power_and_abs(self):
        d = forward.Dual(np.array([-2.0]), np.array([1.0]))
        assert np.isclose((d ** 2).tangent[0], -4.0)
        assert np.isclose(abs(d).tangent[0], -1.0)

    def test_dual_getitem_and_sum(self):
        d = forward.Dual(np.arange(4.0), np.array([1.0, 2.0, 3.0, 4.0]))
        out = forward.sum(d[1:3])
        assert np.isclose(out.tangent, 5.0)

    def test_jvp_matches_reverse_gradient(self):
        x = np.linspace(0.2, 1.5, 8)
        v = np.random.default_rng(3).standard_normal(8)

        def f_rev(z):
            return ops.sum(ops.sqrt(z) * ops.sin(z))

        def f_fwd(z):
            return forward.sum(z.sqrt() * z.sin())

        g = ad.grad(f_rev)(x)
        assert np.isclose(forward.jvp(f_fwd, x, v), float(np.dot(g, v)))

    def test_jvp_scalar_requirement(self):
        with pytest.raises(ValueError):
            forward.jvp(lambda d: d, np.ones(3), np.ones(3))

    def test_jvp_constant_function_is_zero(self):
        assert forward.jvp(lambda d: 3.0, np.ones(2), np.ones(2)) == 0.0

    def test_dual_shape_broadcast_tangent(self):
        d = forward.Dual(np.ones((2, 3)), 0.0)
        assert d.tangent.shape == (2, 3)


class TestForwardModeFixes:
    def test_dual_preserves_float32(self):
        # regression: Dual used to force-cast every entry to float64
        d = forward.Dual(np.ones(3, dtype=np.float32),
                         np.ones(3, dtype=np.float32))
        assert d.value.dtype == np.float32
        assert d.tangent.dtype == np.float32
        out = d * d + 1.0
        assert out.value.dtype == np.float32
        assert out.tangent.dtype == np.float32

    def test_jvp_preserves_float32(self):
        x = np.linspace(0.5, 2.0, 4, dtype=np.float32)
        v = np.ones(4, dtype=np.float32)
        seen = {}

        def f(d):
            seen["value"] = d.value.dtype
            return forward.sum(d * d)

        forward.jvp(f, x, v)
        assert seen["value"] == np.float32

    def test_dual_int_input_promotes_to_float64(self):
        d = forward.Dual(np.arange(3))
        assert d.value.dtype == np.float64

    def test_pow_tangent_finite_at_zero_base(self):
        # regression: e * v**(e-1) emitted inf/nan at v == 0 for
        # fractional exponents
        d = forward.Dual(np.array([0.0, 4.0]), np.array([1.0, 1.0]))
        out = d ** 0.5
        assert np.all(np.isfinite(out.tangent))
        assert out.tangent[0] == 0.0
        assert np.isclose(out.tangent[1], 0.25)

    def test_pow_tangent_unchanged_away_from_zero(self):
        d = forward.Dual(np.array([2.0]), np.array([1.0]))
        assert np.isclose((d ** 3.0).tangent[0], 12.0)

    def _reverse_grad(self, f, x):
        from repro.ad.tape import Tape as _Tape

        with _Tape() as t:
            leaf = t.watch(np.array(x, copy=True), name="x")
            out = f(leaf)
        return t.gradient(out, [leaf])[0]

    def test_maximum_minimum_tie_conventions_match_ops(self):
        # ties send the tangent to the first operand -- the exact av>=bv /
        # av<=bv masks of ops.MINMAX_RULES, pinned bitwise
        x = np.array([-1.0, 0.0, 1.0, 2.0])
        other = np.array([0.0, 0.0, 1.0, 3.0])
        for fwd, op in ((forward.maximum, ops.maximum),
                        (forward.minimum, ops.minimum)):
            g_rev = self._reverse_grad(lambda z: ops.sum(op(z, other)), x)
            d = fwd(forward.Dual(x, np.ones_like(x)), other)
            np.testing.assert_array_equal(d.tangent, g_rev)
            np.testing.assert_array_equal(d.value, op(x, other))

    def test_clip_inclusive_bounds_match_ops(self):
        x = np.array([-2.0, -1.0, 0.0, 1.0, 2.0])
        g_rev = self._reverse_grad(
            lambda z: ops.sum(ops.clip(z, -1.0, 1.0)), x)
        d = forward.clip(forward.Dual(x, np.ones_like(x)), -1.0, 1.0)
        np.testing.assert_array_equal(d.tangent, g_rev)

    def test_where_condition_not_differentiable(self):
        x = np.array([-1.0, 0.5, 2.0])
        g_rev = self._reverse_grad(
            lambda z: ops.sum(ops.where(z > 0.0, z * 2.0, z * 3.0)), x)
        d = forward.where(x > 0.0,
                          forward.Dual(x, np.ones_like(x)) * 2.0,
                          forward.Dual(x, np.ones_like(x)) * 3.0)
        np.testing.assert_array_equal(d.tangent, g_rev)

    def test_piecewise_helpers_pass_through_plain_arrays(self):
        x = np.array([1.0, -2.0])
        np.testing.assert_array_equal(forward.maximum(x, 0.0),
                                      np.maximum(x, 0.0))
        np.testing.assert_array_equal(forward.clip(x, -1.0, 1.0),
                                      np.clip(x, -1.0, 1.0))
        np.testing.assert_array_equal(forward.where(x > 0, x, 0.0),
                                      np.where(x > 0, x, 0.0))

    def test_jvp_error_names_output_shape(self):
        with pytest.raises(ValueError, match=r"got output shape \(3,\)"):
            forward.jvp(lambda d: d, np.ones(3), np.ones(3))

    def test_directional_derivative_validates_shapes(self):
        with pytest.raises(ValueError,
                           match=r"direction shape \(2,\).*point shape "
                                 r"\(3,\)"):
            forward.directional_derivative(lambda d: forward.sum(d),
                                           np.ones(3), np.ones(2))

    def test_directional_derivative_still_works(self):
        val = forward.directional_derivative(
            lambda d: forward.sum(d * d), np.arange(3.0), np.ones(3))
        assert np.isclose(val, 6.0)


class TestActivityAnalysis:
    def test_sliced_read_marks_region(self):
        with Tape() as t:
            x = t.watch(np.arange(10.0), name="x")
            ops.sum(x[2:7] * 2.0)
        res = activity.read_mask(t, x)
        assert res.read[2:7].all()
        assert not res.read[:2].any() and not res.read[7:].any()
        assert res.n_read == 5 and res.n_unread == 5

    def test_whole_array_op_marks_everything(self):
        with Tape() as t:
            x = t.watch(np.arange(6.0))
            ops.sum(x * x)
        res = activity.read_mask(t, x)
        assert res.read.all()

    def test_setitem_overwrite_does_not_count_as_read(self):
        with Tape() as t:
            x = t.watch(np.arange(6.0))
            y = x.copy()                 # movement only
            y[0:3] = 0.0
            ops.sum(y)
        res = activity.read_mask(t, x)
        # x itself was only consumed through copy/index_update movement
        assert res.n_read == 0
        assert res.moved.any()

    def test_direct_index_update_complement_moved(self):
        with Tape() as t:
            x = t.watch(np.arange(6.0))
            y = ops.index_update(x, slice(0, 2), 0.0)
            ops.sum(y)
        res = activity.read_mask(t, x)
        assert not res.read.any()
        assert not res.moved[0:2].any()
        assert res.moved[2:].all()

    def test_index_add_addend_is_read(self):
        # regression: a leaf appearing as the *added operand* of index_add
        # is consumed by the addition, not merely moved -- it used to be
        # classified as pure data movement
        with Tape() as t:
            x = t.watch(np.arange(4.0), name="x")
            acc = ops.index_add(np.zeros(8), np.array([1, 2, 3, 4]), x)
            ops.sum(acc)
        res = activity.read_mask(t, x)
        assert res.read.all()
        assert not res.moved.any()

    def test_index_add_target_is_moved_not_read(self):
        with Tape() as t:
            x = t.watch(np.arange(6.0), name="x")
            acc = ops.index_add(x, np.array([0, 1]), np.ones(2))
            ops.sum(acc)
        res = activity.read_mask(t, x)
        # every old value of the target survives into the copy (summed at
        # the updated region): movement, not a read
        assert not res.read.any()
        assert res.moved.all()

    def test_index_add_matches_ad_criticality(self):
        # the AD gradient marks the addend critical; the fixed read-set
        # analysis must agree (it used to report zero reads here)
        with Tape() as t:
            x = t.watch(np.arange(4.0) + 1.0, name="x")
            acc = ops.index_add(np.zeros(8), np.array([1, 2, 3, 4]), x)
            out = ops.sum(acc)
        g = t.gradient(out, [x])[0]
        res = activity.read_mask(t, x)
        assert (g != 0.0).all()
        assert res.read.all()

    def test_index_update_value_operand_is_moved(self):
        # a leaf written *into* another array travels verbatim: movement
        with Tape() as t:
            x = t.watch(np.arange(3.0), name="x")
            y = ops.index_update(np.zeros(6), slice(0, 3), x)
            ops.sum(y)
        res = activity.read_mask(t, x)
        assert not res.read.any()
        assert res.moved.all()

    def test_activity_superset_of_ad_mask(self):
        rng = np.random.default_rng(0)
        base = rng.standard_normal(20)

        with Tape() as t:
            x = t.watch(base, name="x")
            # read 0..14, but elements 10..14 are multiplied by zero
            used = x[0:15]
            weights = np.concatenate([np.ones(10), np.zeros(5)])
            out = ops.sum(used * weights)
        g = t.gradient(out, [x])[0]
        res = activity.read_mask(t, x)
        ad_critical = g != 0.0
        assert (res.read | ~ad_critical).all()   # read ⊇ ad_critical
        assert res.read[10:15].all()             # read but not critical
        assert not ad_critical[10:15].any()

    def test_gather_via_take_marks_only_taken(self):
        with Tape() as t:
            x = t.watch(np.arange(10.0))
            ops.sum(ops.take(x, np.array([1, 3, 5])) * 2.0)
        res = activity.read_mask(t, x)
        assert res.read[[1, 3, 5]].all()
        assert res.n_read == 3

    def test_advanced_getitem_marks_indexed(self):
        with Tape() as t:
            x = t.watch(np.arange(10.0))
            ops.sum(x[np.array([0, 0, 9])] ** 2)
        res = activity.read_mask(t, x)
        assert res.read[0] and res.read[9]
        assert res.n_read == 2

    def test_read_masks_multiple_leaves(self):
        with Tape() as t:
            x = t.watch(np.arange(4.0), name="x")
            y = t.watch(np.arange(6.0), name="y")
            ops.sum(x * 2.0) + ops.sum(y[0:2])
        rx, ry = activity.read_masks(t, [x, y])
        assert rx.name == "x" and ry.name == "y"
        assert rx.read.all()
        assert ry.n_read == 2

    def test_untraced_leaf_raises(self):
        with Tape() as t:
            t.watch(np.ones(3))
        with pytest.raises(ValueError):
            activity.read_mask(t, ad.ADArray(np.ones(3)))


class TestChecks:
    def test_finite_difference_full(self):
        f = lambda x: float(np.sum(np.asarray(x) ** 2))
        g = checks.finite_difference_grad(f, np.arange(4.0))
        assert np.allclose(g, 2.0 * np.arange(4.0), atol=1e-5)

    def test_finite_difference_subset(self):
        f = lambda x: float(np.sum(np.asarray(x) ** 2))
        g = checks.finite_difference_grad(f, np.arange(6.0), indices=[1, 4])
        assert np.isnan(g[0]) and np.isnan(g[5])
        assert np.isclose(g[1], 2.0, atol=1e-5)
        assert np.isclose(g[4], 8.0, atol=1e-5)

    def test_check_gradient_passes_for_correct_function(self):
        res = checks.check_gradient(
            lambda x: ops.sum(ops.exp(x) * ops.sin(x)),
            np.linspace(0.1, 1.2, 40))
        assert res.passed
        assert res.n_checked == 20

    def test_check_gradient_detects_wrong_scale(self):
        """A deliberately wrong function of the checked value must fail."""
        def good(x):
            return ops.sum(x * x)

        # compare good AD gradient against finite differences of a different
        # function by wrapping: f used for AD, 3*f used for FD via closure
        class Lying:
            def __init__(self):
                self.calls = 0

            def __call__(self, x):
                self.calls += 1
                if isinstance(x, ad.ADArray):
                    return good(x)
                return 3.0 * float(np.sum(np.asarray(x) ** 2))

        res = checks.check_gradient(Lying(), np.linspace(0.5, 1.5, 10))
        assert not res.passed

    def test_check_against_forward_agreement(self):
        res = checks.check_against_forward(
            lambda x: ops.sum(ops.log(x) * x),
            lambda d: forward.sum(d.log() * d),
            np.linspace(0.5, 2.0, 12))
        assert res.passed

    def test_zero_pattern_agreement_structural(self):
        def f(x):
            return ops.sum(x[:10] ** 2) if isinstance(x, ad.ADArray) \
                else float(np.sum(np.asarray(x)[:10] ** 2))

        frac = checks.zero_pattern_agreement(f, np.ones(20), n_samples=20)
        assert frac == 1.0

    def test_result_repr_and_bool(self):
        res = checks.check_gradient(lambda x: ops.sum(x), np.ones(3))
        assert bool(res)
        assert "passed=True" in repr(res)


class TestSeeding:
    def test_single_probe_equals_plain_gradient_mask(self):
        base = np.array([0.0, 1.0, 2.0, 0.0])
        grad_fn = ad.grad(lambda x: ops.sum(x[:3] * x[:3]))
        res = seeding.probe_nonzero_mask(grad_fn, base, n_probes=1)
        assert res.n_probes == 1
        assert res.nonzero.tolist() == [False, True, True, False]

    def test_multi_probe_recovers_coincidental_zero(self):
        # x[0] participates but its partner x[1] is zero at the base point,
        # so a single probe misses it; multiple probes must catch it.
        base = np.array([3.0, 0.0, 1.0])
        grad_fn = ad.grad(lambda x: ops.sum(x[0] * x[1] + x[2]))
        single = seeding.probe_nonzero_mask(grad_fn, base, n_probes=1)
        multi = seeding.probe_nonzero_mask(grad_fn, base, n_probes=3)
        assert not single.nonzero[0]
        assert multi.nonzero[0]

    def test_structural_zero_stays_uncritical(self):
        base = np.arange(6.0)
        grad_fn = ad.grad(lambda x: ops.sum(x[0:4] ** 2))
        res = seeding.probe_nonzero_mask(grad_fn, base, n_probes=4)
        assert not res.nonzero[4] and not res.nonzero[5]

    def test_custom_perturbation(self):
        base = np.ones(4)
        calls = []

        def perturb(state, rng):
            calls.append(1)
            return state + 1.0

        grad_fn = ad.grad(lambda x: ops.sum(x * x))
        seeding.probe_nonzero_mask(grad_fn, base, n_probes=3, perturb=perturb)
        assert len(calls) == 2                    # probe 0 is unperturbed

    def test_invalid_probe_count(self):
        with pytest.raises(ValueError):
            seeding.probe_nonzero_mask(lambda x: x, np.ones(2), n_probes=0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            seeding.probe_nonzero_mask(lambda x: np.ones(3), np.ones(2))

    def test_per_probe_counts_recorded(self):
        grad_fn = ad.grad(lambda x: ops.sum(x * x))
        res = seeding.probe_nonzero_mask(grad_fn, np.zeros(5), n_probes=3)
        assert len(res.per_probe_counts) == 3
        assert res.per_probe_counts[0] == 0       # gradient 2x = 0 at origin
        assert res.per_probe_counts[1] == 5
