"""Unit tests for the tape and the reverse sweep machinery."""

import numpy as np
import pytest

from repro import ad
from repro.ad import ops
from repro.ad.tape import Tape, get_active_tape


class TestTape:
    def test_tape_records_nodes(self):
        with Tape() as t:
            x = t.watch(np.ones(3))
            y = x * 2.0
            z = ops.sum(y)
        assert len(t) >= 3                       # leaf, multiply, sum
        assert "multiply" in t.op_counts()
        assert t.op_counts()["leaf"] == 1

    def test_active_tape_stack(self):
        assert get_active_tape() is None
        with Tape() as t:
            assert get_active_tape() is t
            with Tape() as t2:
                assert get_active_tape() is t2
            assert get_active_tape() is t
        assert get_active_tape() is None

    def test_watch_copies_input(self):
        original = np.ones(4)
        with Tape() as t:
            x = t.watch(original)
            x[0:2] = 99.0
        assert original[0] == 1.0                # caller's buffer untouched

    def test_watch_casts_to_float64(self):
        with Tape() as t:
            x = t.watch(np.arange(5, dtype=np.int32))
        assert x.dtype == np.float64

    def test_nbytes_estimate_positive(self):
        with Tape() as t:
            x = t.watch(np.ones((10, 10)))
            ops.sum(x * x)
        # leaf + multiply are (10, 10) buffers; the sum output is a scalar
        assert t.nbytes() >= 2 * 100 * 8

    def test_gradient_method_matches_backward(self):
        with Tape() as t:
            x = t.watch(np.arange(4.0))
            out = ops.sum(x ** 2)
        g = t.gradient(out, [x])[0]
        assert np.allclose(g, 2.0 * np.arange(4.0))


class TestBackward:
    def test_multiple_inputs(self):
        with Tape() as t:
            x = t.watch(np.arange(3.0), name="x")
            y = t.watch(np.arange(3.0) + 1.0, name="y")
            out = ops.sum(x * y)
        gx, gy = t.gradient(out, [x, y])
        assert np.allclose(gx, np.arange(3.0) + 1.0)
        assert np.allclose(gy, np.arange(3.0))

    def test_diamond_dependency_accumulates(self):
        """x feeds two branches which later recombine: gradients must add."""
        def f(x):
            a = x * 2.0
            b = x * 3.0
            return ops.sum(a + b)

        g = ad.grad(f)(np.ones(4))
        assert np.allclose(g, 5.0)

    def test_shared_cotangent_buffer_not_corrupted(self):
        """c = a + b hands the *same* cotangent object to both parents; the
        sweep must not let accumulation into one corrupt the other."""
        def f(x):
            a = x * 1.0
            b = x * 1.0
            c = a + b          # both parents receive the same array object
            d = a * 10.0       # extra contribution accumulated into a only
            return ops.sum(c) + ops.sum(d)

        g = ad.grad(f)(np.ones(3))
        assert np.allclose(g, 1.0 + 1.0 + 10.0)

    def test_seed_scales_gradient(self):
        with Tape() as t:
            x = t.watch(np.arange(3.0))
            out = x * 2.0
        from repro.ad.reverse import backward

        g = backward(t, out, [x], seed=np.array([1.0, 0.0, 5.0]))[0]
        assert np.allclose(g, [2.0, 0.0, 10.0])

    def test_nonscalar_output_defaults_to_sum_gradient(self):
        with Tape() as t:
            x = t.watch(np.arange(3.0))
            out = x * 3.0
        g = t.gradient(out, [x])[0]
        assert np.allclose(g, 3.0)

    def test_untraced_output_strict_raises(self):
        from repro.ad.reverse import backward

        with Tape() as t:
            x = t.watch(np.ones(3))
        with pytest.raises(ValueError):
            backward(t, 5.0, [x])

    def test_untraced_output_nonstrict_returns_zeros(self):
        from repro.ad.reverse import backward

        with Tape() as t:
            x = t.watch(np.ones(3))
        g = backward(t, 5.0, [x], strict=False)[0]
        assert np.all(g == 0.0)

    def test_untraced_input_raises(self):
        with Tape() as t:
            x = t.watch(np.ones(3))
            out = ops.sum(x)
        with pytest.raises(ValueError):
            t.gradient(out, [np.ones(3)])

    def test_gradient_of_disconnected_input_is_zero(self):
        with Tape() as t:
            x = t.watch(np.ones(3))
            y = t.watch(np.ones(5))
            out = ops.sum(x * x)
        gy = t.gradient(out, [y])[0]
        assert gy.shape == (5,)
        assert np.all(gy == 0.0)

    def test_long_chain_of_updates(self):
        """Mimics a time-stepping loop: repeated in-place updates."""
        steps = 25

        def f(x):
            u = x.copy()
            for _ in range(steps):
                u = u * 1.01 + 0.5
            return ops.sum(u)

        g = ad.grad(f)(np.ones(10))
        assert np.allclose(g, 1.01 ** steps)

    def test_grad_scalar_argument(self):
        g = ad.grad(lambda a: a * a * 3.0)(2.0)
        assert isinstance(g, float)
        assert np.isclose(g, 12.0)

    def test_value_and_grad_returns_both(self):
        v, g = ad.value_and_grad(lambda x: ops.sum(x * x))(np.arange(3.0))
        assert np.isclose(v, 5.0)
        assert np.allclose(g, [0.0, 2.0, 4.0])

    def test_gradient_function_form(self):
        with Tape() as t:
            x = t.watch(np.arange(3.0))
            out = ops.sum(x ** 3)
        from repro.ad.reverse import gradient

        g = gradient(out, [x])[0]
        assert np.allclose(g, 3.0 * np.arange(3.0) ** 2)


class TestZeroGradientExactness:
    """The checkpoint analysis relies on *exact* zeros for untouched data."""

    def test_unused_slice_is_exactly_zero(self):
        def f(x):
            return ops.sum(x[:, :5] ** 2)

        g = ad.grad(f)(np.random.default_rng(0).standard_normal((6, 8)))
        assert np.all(g[:, 5:] == 0.0)           # exact, not approximately

    def test_padding_pattern_matches_access_range(self):
        """Emulates the BT error_norm pattern: a (13,13) array read only on
        [0:12, 0:12] has exactly the last row and column uncritical."""
        def f(x):
            return ops.sum(ops.square(x[0:12, 0:12]))

        g = ad.grad(f)(np.random.default_rng(1).standard_normal((13, 13)))
        uncritical = (g == 0.0)
        assert uncritical.sum() == 13 + 13 - 1
        assert np.all(uncritical[12, :])
        assert np.all(uncritical[:, 12])
        assert not uncritical[:12, :12].any()

    def test_written_but_not_read_is_zero(self):
        """An element overwritten before any read has no influence."""
        def f(x):
            y = x.copy()
            y[0] = 7.0                            # x[0] never read afterwards
            return ops.sum(y * y)

        g = ad.grad(f)(np.array([5.0, 2.0, 3.0]))
        assert g[0] == 0.0
        assert np.all(g[1:] != 0.0)

    def test_read_then_overwritten_is_nonzero(self):
        def f(x):
            first = x[0] * 4.0
            y = x.copy()
            y[0] = 0.0
            return ops.sum(y) + ops.sum(first)

        g = ad.grad(f)(np.array([5.0, 2.0, 3.0]))
        assert g[0] == 4.0


class TestReturnedGradientOwnership:
    """Leaf gradients handed to the caller must be private copies.

    A gradient buffer that reached the leaf with ``owned=False`` can alias an
    array living inside a vjp closure (a broadcast view of the seed, a
    reshaped cotangent, ...).  If such a buffer were returned as-is, the
    caller mutating "their" gradient would corrupt a later sweep over the
    same tape -- or blow up immediately on a read-only broadcast view.
    """

    def test_returned_gradients_are_writable(self):
        with Tape() as t:
            x = t.watch(np.arange(4.0))
            out = ops.sum(x)                 # vjp: broadcast view of the seed
        g = t.gradient(out, [x])[0]
        g[0] = 123.0                         # must not raise (read-only view)
        assert g[0] == 123.0

    def test_mutating_returned_gradient_does_not_corrupt_resweep(self):
        with Tape() as t:
            x = t.watch(np.arange(6.0))
            y = ops.reshape(x, (2, 3))       # vjp: reshaped (aliasing) view
            out = ops.sum(y)
        first = t.gradient(out, [x])[0]
        expected = np.array(first, copy=True)
        first[:] = -77.0                     # caller scribbles on the result
        second = t.gradient(out, [x])[0]
        np.testing.assert_array_equal(second, expected)

    def test_duplicate_inputs_share_one_defensive_copy(self):
        with Tape() as t:
            x = t.watch(np.ones(3))
            out = ops.sum(x)
        g1, g2 = t.gradient(out, [x, x])
        assert np.shares_memory(g1, g2)      # one copy serves both requests
        g1[0] = 9.0                          # still writable
