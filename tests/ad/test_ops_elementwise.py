"""Unit tests for elementwise primitives and their VJPs."""

import numpy as np
import pytest

from repro import ad
from repro.ad import ops


def numeric_grad(fun, x, eps=1e-6):
    """Dense central finite-difference gradient helper for small inputs."""
    x = np.asarray(x, dtype=np.float64)
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        xp, xm = flat.copy(), flat.copy()
        xp[i] += eps
        xm[i] -= eps
        gf[i] = (fun(xp.reshape(x.shape)) - fun(xm.reshape(x.shape))) / (2 * eps)
    return g


X = np.linspace(0.3, 2.1, 12).reshape(3, 4)
Y = np.linspace(1.1, 3.0, 12).reshape(3, 4)


class TestBinaryOps:
    @pytest.mark.parametrize("op,ref", [
        (ops.add, np.add),
        (ops.subtract, np.subtract),
        (ops.multiply, np.multiply),
        (ops.divide, np.divide),
        (ops.maximum, np.maximum),
        (ops.minimum, np.minimum),
    ])
    def test_values_match_numpy(self, op, ref):
        assert np.allclose(op(X, Y), ref(X, Y))

    @pytest.mark.parametrize("op", [
        ops.add, ops.subtract, ops.multiply, ops.divide,
    ])
    def test_gradient_wrt_first_arg(self, op):
        f = lambda x: ops.sum(op(x, Y))
        g = ad.grad(f)(X)
        assert np.allclose(g, numeric_grad(lambda x: float(np.sum(
            op(x, Y))), X), atol=1e-5)

    @pytest.mark.parametrize("op", [
        ops.add, ops.subtract, ops.multiply, ops.divide,
    ])
    def test_gradient_wrt_second_arg(self, op):
        f = lambda y: ops.sum(op(X, y))
        g = ad.grad(f)(Y)
        assert np.allclose(g, numeric_grad(lambda y: float(np.sum(
            op(X, y))), Y), atol=1e-5)

    def test_power_constant_exponent(self):
        f = lambda x: ops.sum(ops.power(x, 3.0))
        g = ad.grad(f)(X)
        assert np.allclose(g, 3.0 * X ** 2)

    def test_power_traced_exponent(self):
        f = lambda e: ops.sum(ops.power(X, e))
        g = ad.grad(f)(np.full(X.shape, 2.0))
        assert np.allclose(g, X ** 2 * np.log(X))

    def test_broadcasting_scalar(self):
        f = lambda x: ops.sum(x * 3.0 + 1.0)
        g = ad.grad(f)(X)
        assert np.allclose(g, 3.0)

    def test_broadcasting_row_vector(self):
        row = np.arange(1.0, 5.0)

        def f(r):
            return ops.sum(ops.multiply(X, r))

        g = ad.grad(f)(row)
        assert g.shape == row.shape
        assert np.allclose(g, X.sum(axis=0))

    def test_maximum_gradient_routing(self):
        a = np.array([1.0, 5.0, 2.0])
        b = np.array([3.0, 4.0, 2.0])
        ga, gb = ad.grad(lambda x, y: ops.sum(ops.maximum(x, y)),
                         argnums=(0, 1))(a, b)
        # element 0: b wins; element 1: a wins; element 2: tie goes to a
        assert np.allclose(ga, [0.0, 1.0, 1.0])
        assert np.allclose(gb, [1.0, 0.0, 0.0])

    def test_mod_gradient_wrt_numerator(self):
        g = ad.grad(lambda x: ops.sum(ops.mod(x, 2.5)))(X)
        assert np.allclose(g, 1.0)


class TestUnaryOps:
    @pytest.mark.parametrize("op,ref", [
        (ops.negative, np.negative),
        (ops.absolute, np.abs),
        (ops.sqrt, np.sqrt),
        (ops.exp, np.exp),
        (ops.expm1, np.expm1),
        (ops.log, np.log),
        (ops.log1p, np.log1p),
        (ops.sin, np.sin),
        (ops.cos, np.cos),
        (ops.tan, np.tan),
        (ops.tanh, np.tanh),
        (ops.square, np.square),
        (ops.sign, np.sign),
        (ops.reciprocal, lambda a: 1.0 / a),
    ])
    def test_values_match_numpy(self, op, ref):
        assert np.allclose(op(X), ref(X))

    @pytest.mark.parametrize("op", [
        ops.negative, ops.absolute, ops.sqrt, ops.exp, ops.expm1, ops.log,
        ops.log1p, ops.sin, ops.cos, ops.tan, ops.tanh, ops.square,
        ops.reciprocal,
    ])
    def test_gradients_match_finite_differences(self, op):
        f = lambda x: ops.sum(op(x))
        g = ad.grad(f)(X)
        ref = numeric_grad(lambda x: float(np.sum(op(x))), X)
        assert np.allclose(g, ref, atol=1e-5, rtol=1e-4)

    def test_sign_gradient_is_zero(self):
        g = ad.grad(lambda x: ops.sum(ops.sign(x)))(X)
        assert np.all(g == 0.0)

    def test_clip_passes_gradient_only_inside(self):
        x = np.array([-2.0, 0.5, 3.0])
        g = ad.grad(lambda v: ops.sum(ops.clip(v, 0.0, 1.0)))(x)
        assert np.allclose(g, [0.0, 1.0, 0.0])

    def test_abs_at_negative_values(self):
        x = np.array([-1.5, -0.1, 2.0])
        g = ad.grad(lambda v: ops.sum(ops.absolute(v)))(x)
        assert np.allclose(g, [-1.0, -1.0, 1.0])


class TestNonDifferentiableHelpers:
    def test_isnan_and_isfinite_on_traced(self):
        with ad.Tape() as t:
            x = t.watch(np.array([1.0, np.nan]))
            assert ops.isnan(x).tolist() == [False, True]
            assert ops.isfinite(x).tolist() == [True, False]

    def test_allclose_on_traced(self):
        with ad.Tape() as t:
            x = t.watch(np.ones(3))
            assert ops.allclose(x, np.ones(3))

    def test_comparisons_return_plain_bool_arrays(self):
        with ad.Tape() as t:
            x = t.watch(np.array([1.0, 2.0, 3.0]))
            mask = x > 1.5
        assert isinstance(mask, np.ndarray)
        assert mask.dtype == bool
        assert mask.tolist() == [False, True, True]


class TestUntracedFastPath:
    """Ops on plain numpy inputs must return plain numpy outputs."""

    @pytest.mark.parametrize("result", [
        ops.add(X, Y), ops.multiply(X, 2.0), ops.sqrt(X), ops.sum(X),
        ops.reshape(X, (4, 3)), ops.getitem(X, (slice(0, 2),)),
        ops.matmul(X, Y.T),
    ])
    def test_returns_plain_numpy(self, result):
        assert not isinstance(result, ad.ADArray)

    def test_no_tape_suspends_recording(self):
        with ad.Tape() as t:
            x = t.watch(np.ones(4))
            with ad.no_tape():
                y = x * 2.0
            z = ops.sum(x * 3.0)
        assert not isinstance(y, ad.ADArray) or y.node is None
        assert isinstance(z, ad.ADArray)
