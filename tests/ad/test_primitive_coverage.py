"""Primitive-coverage audit: no dispatch table may silently miss an op.

The AD engine routes every primitive through four dispatch layers: the
plan executor's emitters (:data:`repro.ad.exec._EMITTERS`, each of which
embeds the primitive's VJP rule), the activity classification
(:data:`repro.ad.activity.SPEC_CONSUMING` / ``SPEC_MOVEMENT`` plus the
explicitly special-cased indexing kinds), the shared reverse-mode rule
tables and the forward-mode (tangent) handling of the same ops.  A new
primitive that lands in one table but not another produces wrong masks or
a crash only on the benchmark that happens to exercise it -- these audits
fail immediately instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import ops
from repro.ad.activity import (CONSUMING_OPS, INDEXING_OPS, MOVEMENT_OPS,
                               SPEC_CONSUMING, SPEC_MOVEMENT)
from repro.ad.dual import TangentArray
from repro.ad.exec import _EMITTERS
from repro.ad.ir import Instr
from repro.ad.reverse import grad

#: spec kinds `repro.ad.activity.plan_transfer` special-cases by index
#: region instead of classifying whole-array (see its kind dispatch)
INDEXING_SPECS = frozenset({"getitem", "index_update", "index_add"})


class TestActivityClassification:
    def test_every_emitter_kind_is_classified(self):
        classified = SPEC_CONSUMING | SPEC_MOVEMENT | INDEXING_SPECS
        missing = set(_EMITTERS) - classified
        assert not missing, (
            f"spec kinds with a replay emitter but no activity "
            f"classification: {sorted(missing)} -- add them to "
            f"SPEC_CONSUMING/SPEC_MOVEMENT (or special-case them in "
            f"plan_transfer) or the chained activity sweep will fall "
            f"back to the conservative read-everything default")

    def test_no_stale_classified_kind(self):
        # "leaf" is the only classified pseudo-kind without an executable
        # emitter (leaves are arena inputs, never executed)
        stale = (SPEC_CONSUMING | SPEC_MOVEMENT) - {"leaf"} - set(_EMITTERS)
        assert not stale, (
            f"classified spec kinds without an emitter: {sorted(stale)}")

    def test_spec_categories_are_disjoint(self):
        assert not SPEC_CONSUMING & SPEC_MOVEMENT
        assert not SPEC_CONSUMING & INDEXING_SPECS
        assert not SPEC_MOVEMENT & INDEXING_SPECS

    def test_tape_op_categories_are_disjoint(self):
        assert not CONSUMING_OPS & MOVEMENT_OPS
        assert not CONSUMING_OPS & INDEXING_OPS
        assert not MOVEMENT_OPS & INDEXING_OPS


# ---------------------------------------------------------------------------
# VJP coverage: every emitter kind replays forward AND reverse
# ---------------------------------------------------------------------------
#
# One minimal, valid capture spec per kind.  Each entry is
# (spec, out_shape, vals, grad_shapes): the traced operand values handed to
# the compiled kernel and the cotangent shapes its VJP must hand back.

_A = np.linspace(0.5, 2.0, 6).reshape(2, 3)
_B = np.linspace(1.0, 2.5, 6).reshape(2, 3)
_COND = np.array([[True, False, True], [False, True, False]])

_VJP_EXAMPLES = {
    "ewbinary": (("ewbinary", "add", True, True, None, None,
                  (2, 3), (2, 3), (2, 3), (2, 3)),
                 (2, 3), [_A, _B], [(2, 3), (2, 3)]),
    "minmax": (("minmax", "maximum", True, True, None, None,
                (2, 3), (2, 3), (2, 3), (2, 3)),
               (2, 3), [_A, _B], [(2, 3), (2, 3)]),
    "unary": (("unary", "sqrt"), (2, 3), [_A], [(2, 3)]),
    "negative": (("negative",), (2, 3), [_A], [(2, 3)]),
    "copy": (("copy",), (2, 3), [_A], [(2, 3)]),
    "astype": (("astype", "float64", "float64"),
               (2, 3), [_A], [(2, 3)]),
    "sum": (("sum", 1, False, (2, 3)), (2,), [_A], [(2, 3)]),
    "mean": (("mean", 1, False, 3, (2, 3)), (2,), [_A], [(2, 3)]),
    "redminmax": (("redminmax", "max", 1, False, (2, 3)),
                  (2,), [_A], [(2, 3)]),
    "prod": (("prod", 1, False, (2, 3)), (2,), [_A], [(2, 3)]),
    "getitem": (("getitem", (slice(0, 1),), False, False, (2, 3)),
                (1, 3), [_A], [(2, 3)]),
    "index_update": (("index_update", 0, True, True, None, None,
                      (3,), False, None),
                     (2, 3), [_A, _B[0]], [(2, 3), (3,)]),
    "index_add": (("index_add", 0, True, True, None, None,
                   (3,), False, None),
                  (2, 3), [_A, _B[0]], [(2, 3), (3,)]),
    "where": (("where", _COND, True, True, None, None,
               (2, 3), (2, 3), (2, 3), (2, 3)),
              (2, 3), [_A, _B], [(2, 3), (2, 3)]),
    "matmul": (("matmul", True, True, None, None),
               (2, 2), [_A, _B.T], [(2, 3), (3, 2)]),
    "matmul_probe": (("matmul_probe", True, True, None, None, 1, 1),
                     (), [_A[0], _B[0]], [(3,), (3,)]),
    "matmul_multirhs": (("matmul_multirhs", _B),
                        (2, 2), [_A], [(2, 3)]),
    "reshape": (("reshape", (3, 2), (2, 3)), (3, 2), [_A], [(2, 3)]),
    "transpose": (("transpose", (1, 0), (1, 0)), (3, 2), [_A], [(2, 3)]),
    "swapaxes": (("swapaxes", 0, 1), (3, 2), [_A], [(2, 3)]),
    "moveaxis": (("moveaxis", 0, 1), (3, 2), [_A], [(2, 3)]),
    "broadcast_to": (("broadcast_to", (2, 3), (1, 3)),
                     (2, 3), [_A[:1]], [(1, 3)]),
    "squeeze": (("squeeze", 0, (1, 3)), (3,), [_A[:1]], [(1, 3)]),
    "expand_dims": (("expand_dims", 0, (2, 3)), (1, 2, 3), [_A], [(2, 3)]),
    "flip": (("flip", 0), (2, 3), [_A], [(2, 3)]),
    "roll": (("roll", 1, 0), (2, 3), [_A], [(2, 3)]),
    "roll_flat": (("roll_flat", 1, (2, 3), (2, 3)),
                  (2, 3), [_A], [(2, 3)]),
    "pad_zero": (("pad_zero", ((1, 1), (0, 0)), (2, 3)),
                 (4, 3), [_A], [(2, 3)]),
    "concat": (("concat", 0, (("t", None), ("t", None)), (0, 2, 4)),
               (4, 3), [_A, _B], [(2, 3), (2, 3)]),
    "stack": (("stack", 0, (("t", None), ("t", None))),
              (2, 2, 3), [_A, _B], [(2, 3), (2, 3)]),
}


class TestVjpRuleCoverage:
    def test_every_emitter_kind_has_an_example(self):
        # keep the audit honest: a kind added to _EMITTERS without a
        # matching example here would silently escape the VJP audit below
        assert set(_VJP_EXAMPLES) == set(_EMITTERS)

    @pytest.mark.parametrize("kind", sorted(_EMITTERS))
    def test_kernel_replays_forward_and_reverse(self, kind):
        spec, out_shape, vals, grad_shapes = _VJP_EXAMPLES[kind]
        instr = Instr(len(vals), kind, tuple(range(len(vals))), spec,
                      out_shape, "float64")
        kernel = _EMITTERS[kind](spec, instr)
        out, vjp = kernel([np.asarray(v, dtype=np.float64) for v in vals])
        assert np.shape(out) == out_shape, f"{kind}: forward shape"
        assert callable(vjp), f"{kind}: no VJP rule"
        grads = vjp(np.ones(out_shape, dtype=np.float64))
        assert isinstance(grads, tuple)
        assert len(grads) == len(grad_shapes), \
            f"{kind}: one cotangent per traced operand"
        for i, (g, shape) in enumerate(zip(grads, grad_shapes)):
            assert np.shape(g) == shape, f"{kind}: cotangent {i} shape"
            assert np.all(np.isfinite(np.asarray(g, dtype=np.float64))), \
                f"{kind}: cotangent {i} not finite"


# ---------------------------------------------------------------------------
# JVP coverage: every shared-rule-table op propagates tangents
# ---------------------------------------------------------------------------
#
# The reverse sweep, the replay plans and the forward (tangent) sweep all
# pull derivatives from EW_BINARY_RULES / UNARY_RULES / MINMAX_RULES; an op
# present in a table but unhandled by the tangent path would break the
# cross-check machinery.  For each table op the directional derivative from
# one TangentArray sweep must match the reverse-mode gradient contracted
# with the same direction.

_X = np.linspace(0.6, 1.4, 6).reshape(2, 3)   # safe for log/sqrt/power
_Y = np.linspace(1.1, 1.9, 6).reshape(2, 3)
_V = np.linspace(-0.5, 0.5, 6).reshape(2, 3)  # probe direction


def _jvp_via_tangent(fn, x, v):
    out = fn(TangentArray(np.asarray(x, dtype=np.float64),
                          np.asarray(v, dtype=np.float64)[None]))
    return float(np.sum(out.tangent[0]))


class TestJvpRuleCoverage:
    @pytest.mark.parametrize("op", sorted(ops.EW_BINARY_RULES))
    def test_ew_binary_rule_shapes(self, op):
        compute, grad_a, grad_b = ops.EW_BINARY_RULES[op]
        assert callable(compute) and callable(grad_a) and callable(grad_b)

    @pytest.mark.parametrize("op", sorted(ops.UNARY_RULES))
    def test_unary_rule_shapes(self, op):
        compute, dydx = ops.UNARY_RULES[op]
        assert callable(compute) and callable(dydx)

    @pytest.mark.parametrize("op", sorted(ops.MINMAX_RULES))
    def test_minmax_rule_shapes(self, op):
        compute, mask_of = ops.MINMAX_RULES[op]
        assert callable(compute) and callable(mask_of)

    @pytest.mark.parametrize("op", sorted(ops.EW_BINARY_RULES))
    def test_ew_binary_jvp_matches_vjp(self, op):
        fn = getattr(ops, op)
        scalar = lambda a: ops.sum(fn(a, _Y))  # noqa: E731
        rev = grad(scalar)(_X)
        assert np.isclose(_jvp_via_tangent(scalar, _X, _V),
                          float(np.vdot(rev, _V)), rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("op", sorted(ops.UNARY_RULES))
    def test_unary_jvp_matches_vjp(self, op):
        fn = getattr(ops, op)
        scalar = lambda a: ops.sum(fn(a))  # noqa: E731
        rev = grad(scalar)(_X)
        assert np.isclose(_jvp_via_tangent(scalar, _X, _V),
                          float(np.vdot(rev, _V)), rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("op", sorted(ops.MINMAX_RULES))
    def test_minmax_jvp_matches_vjp(self, op):
        fn = getattr(ops, op)
        scalar = lambda a: ops.sum(fn(a, _Y))  # noqa: E731
        rev = grad(scalar)(_X)
        assert np.isclose(_jvp_via_tangent(scalar, _X, _V),
                          float(np.vdot(rev, _V)), rtol=1e-12, atol=1e-12)
