"""IR lowering and optimisation passes (:mod:`repro.ad.ir` /
:mod:`repro.ad.passes`): bitwise safety and resource regressions.

The pass pipeline -- elementwise/unary chain fusion, dead-slot
elimination, liveness-driven arena packing -- may only ever be a
*performance* transformation: a fused replay must produce the exact bits
the unfused interpreter produces, forward and reverse, for arbitrary
chain programs.  These tests pin that with randomized chains, pin the
packing invariant (packed arena never exceeds the unpacked arena), and
pin the IR's serialisation round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import ops
from repro.ad.ir import from_payload, to_payload, validate_ir
from repro.ad.plan import PlanCache
from repro.ad.segmented import SweepStats, segmented_gradients
from repro.core.analysis import scrutinize
from repro.npb import registry

ALL_PORTS = ("BT", "SP", "MG", "CG", "LU", "FT", "EP", "IS")
FLOAT_PORTS = tuple(p for p in ALL_PORTS if p != "IS")

#: class-T ports whose coarse step plans compile within one sweep (the
#: fine-tier ports FT/EP need repeated same-signature visits instead)
COARSE_PORTS = ("BT", "SP", "MG", "CG", "LU")


def _assert_bitwise(expected, got, label):
    a = np.asarray(expected, dtype=np.float64)
    b = np.asarray(got, dtype=np.float64)
    assert a.shape == b.shape, f"{label}: shape {a.shape} vs {b.shape}"
    assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), \
        f"{label}: bits differ"


# ---------------------------------------------------------------------------
# randomized chain programs
# ---------------------------------------------------------------------------

#: chain links drawn by the randomized programs; every one is fusable
#: (elementwise binary against a constant, table unary, or negation), so a
#: long random chain exercises multi-op fusion groups with interior slots
_LINKS = [
    lambda x, c: x * c,
    lambda x, c: x + c,
    lambda x, c: x - c,
    lambda x, c: x / c,
    lambda x, c: ops.sqrt(x * x + c),
    lambda x, c: ops.tanh(x * c),
    lambda x, c: ops.exp(-(x * x) * c),
    lambda x, c: ops.square(x) + c,
    lambda x, c: ops.reciprocal(x * x + c),
    lambda x, c: -x + c,
    lambda x, c: ops.maximum(x * c, x - c),
    lambda x, c: ops.log(x * x + c),
]


class _ChainBench:
    """Synthetic benchmark whose step is a seeded random fusable chain."""

    def __init__(self, seed: int, length: int = 8, steps: int = 3):
        rng = np.random.default_rng(seed)
        self._links = [(_LINKS[rng.integers(len(_LINKS))],
                        float(rng.uniform(0.5, 1.5)))
                       for _ in range(length)]
        self._steps = steps
        self.name = f"CHAIN{seed}"

    def default_watch_keys(self):
        return ["x"]

    def initial_state(self):
        return {"x": np.linspace(0.6, 1.8, 12), "it": 0}

    def _default_remaining_steps(self, state):
        return self._steps - int(state["it"])

    def _advance(self, state):
        x = state["x"]
        for link, const in self._links:
            x = link(x, const)
        return {"x": x, "it": int(state["it"]) + 1}

    def run(self, state, steps):
        current = dict(state)
        for _ in range(steps):
            current = self._advance(current)
        return current

    def output(self, state):
        return ops.sum(state["x"] * state["x"])

    def _watched(self, state, watch):
        from repro.ad.tape import Tape

        traced = dict(state)
        leaves = {}
        tape = Tape()
        with tape:
            for key in watch:
                leaves[key] = tape.watch(state[key], name=key)
                traced[key] = leaves[key]
        return traced, leaves, tape

    def traced_step(self, state, watch=None):
        traced, leaves, tape = self._watched(state, watch or ["x"])
        with tape:
            nxt = self._advance(traced)
        return tape, leaves, nxt

    def traced_output(self, state, watch=None):
        traced, leaves, tape = self._watched(state, watch or ["x"])
        with tape:
            out = self.output(traced)
        return tape, leaves, out


class TestRandomizedChainFusion:
    @pytest.mark.parametrize("seed", range(8))
    def test_fused_matches_unfused_bitwise(self, seed):
        """Forward replay and reverse sweep of a random chain: the fused
        executor and the unfused interpreter must agree bit for bit with
        each other and with the tracer."""
        bench = _ChainBench(seed)
        state = bench.initial_state()
        reference = segmented_gradients(bench, state, trace_cache="off")

        grads, caches = {}, {}
        for mode in ("fuse", "off"):
            cache = PlanCache(plan_optimize=mode)
            for _ in range(3):   # capture, compile, warm replay
                grads[mode] = segmented_gradients(bench, state,
                                                  plan_cache=cache)
            caches[mode] = cache

        for key in reference:
            _assert_bitwise(reference[key], grads["fuse"][key],
                            f"seed {seed} fuse[{key}]")
            _assert_bitwise(reference[key], grads["off"][key],
                            f"seed {seed} off[{key}]")
        # the chains are built to fuse: a silent no-op pass would hide bugs
        assert caches["fuse"].fused_ops > 0, "fusion never engaged"
        assert caches["off"].fused_ops == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_fused_forward_replay_matches_run(self, seed):
        """The concrete forward replay (plan ``advance``) of a fused chain
        reproduces ``bench.run`` bitwise."""
        bench = _ChainBench(seed)
        state = bench.initial_state()
        expected = bench.run(state, 1)

        cache = PlanCache(plan_optimize="fuse")
        for _ in range(3):
            segmented_gradients(bench, state, plan_cache=cache)
        planner = cache.planner(bench, "step", ("x",))
        got = planner.advance(dict(state))
        _assert_bitwise(expected["x"], got["x"], f"seed {seed} advance")
        assert int(got["it"]) == 1

    def test_chain_packing_shrinks_the_arena(self):
        """A long single-consumer chain is the best case for liveness
        packing: transient interiors coalesce into a few buffers."""
        bench = _ChainBench(seed=0, length=12)
        state = bench.initial_state()
        cache = PlanCache(plan_optimize="fuse")
        for _ in range(3):
            segmented_gradients(bench, state, plan_cache=cache)
        assert 0 < cache.arena_nbytes_packed < cache.arena_nbytes


# ---------------------------------------------------------------------------
# packing regression over the real ports
# ---------------------------------------------------------------------------

class TestArenaPackingRegression:
    @pytest.mark.parametrize("name", COARSE_PORTS)
    def test_packed_never_exceeds_unpacked(self, name):
        bench = registry.create(name, "T")
        steps = min(3, bench.total_steps)
        state = bench.checkpoint_state(bench.total_steps - steps)
        cache = PlanCache(plan_optimize="fuse")
        stats = SweepStats()
        for _ in range(2):
            segmented_gradients(bench, state, steps=steps,
                                plan_cache=cache, stats=stats)
        assert cache.arena_nbytes > 0, "no plan compiled"
        assert 0 < cache.arena_nbytes_packed <= cache.arena_nbytes
        assert stats.plan_arena_nbytes_packed == cache.arena_nbytes_packed
        assert stats.executor_kind == "interp"

    @pytest.mark.parametrize("name", COARSE_PORTS)
    def test_off_mode_reports_unpacked_arena(self, name):
        bench = registry.create(name, "T")
        steps = min(3, bench.total_steps)
        state = bench.checkpoint_state(bench.total_steps - steps)
        cache = PlanCache(plan_optimize="off")
        for _ in range(2):
            segmented_gradients(bench, state, steps=steps, plan_cache=cache)
        assert cache.arena_nbytes > 0
        assert cache.arena_nbytes_packed == cache.arena_nbytes
        assert cache.fused_ops == 0
        assert cache.eliminated_slots == 0


# ---------------------------------------------------------------------------
# port gradients and masks, fused vs unfused
# ---------------------------------------------------------------------------

class TestPortParityFuseVsOff:
    @pytest.mark.parametrize("name", FLOAT_PORTS)
    def test_gradients_bitwise_identical(self, name):
        bench = registry.create(name, "T")
        steps = min(3, bench.total_steps)
        state = bench.checkpoint_state(bench.total_steps - steps)
        grads = {}
        for mode in ("fuse", "off"):
            cache = PlanCache(plan_optimize=mode)
            for _ in range(3):
                grads[mode] = segmented_gradients(bench, state, steps=steps,
                                                  plan_cache=cache)
        for key in grads["fuse"]:
            _assert_bitwise(grads["fuse"][key], grads["off"][key],
                            f"{name}[{key}]")

    @pytest.mark.parametrize("name", ("SP", "CG"))
    def test_activity_masks_identical(self, name):
        """Dead-slot elimination only prunes the *executable* program; the
        activity transfer walks the full instruction list, so masks cannot
        depend on the optimisation level."""
        bench = registry.create(name, "T")
        steps = min(3, bench.total_steps)
        state = bench.checkpoint_state(bench.total_steps - steps)
        results = {}
        for mode in ("fuse", "off"):
            results[mode] = scrutinize(registry.create(name, "T"),
                                       state=dict(state), steps=steps,
                                       method="activity", sweep="segmented",
                                       plan_optimize=mode)
        for var, crit in results["fuse"].variables.items():
            np.testing.assert_array_equal(
                crit.mask, results["off"].variables[var].mask, err_msg=var)


# ---------------------------------------------------------------------------
# IR serialisation round-trip
# ---------------------------------------------------------------------------

class TestIRRoundTrip:
    @pytest.mark.parametrize("name", COARSE_PORTS)
    def test_payload_round_trip_preserves_the_program(self, name):
        bench = registry.create(name, "T")
        steps = min(3, bench.total_steps)
        state = bench.checkpoint_state(bench.total_steps - steps)
        cache = PlanCache()
        for _ in range(2):
            segmented_gradients(bench, state, steps=steps, plan_cache=cache)
        plans = [entry.coarse_plan for entry in cache._entries.values()
                 if entry.coarse_plan is not None]
        assert plans, "no plan compiled"
        for plan in plans:
            ir = plan.ir
            back = from_payload(to_payload(ir))
            validate_ir(back)
            assert back.kind == ir.kind
            assert back.watch == ir.watch
            assert back.leaf_slots == ir.leaf_slots
            assert back.out_slot == ir.out_slot
            assert back.seed_slots == ir.seed_slots
            assert len(back.instrs) == len(ir.instrs)
            for a, b in zip(ir.instrs, back.instrs):
                assert a.slot == b.slot and a.kind == b.kind
                assert a.parents == b.parents
                assert a.shape == b.shape and a.dtype == b.dtype
                assert _specs_equal(a.spec, b.spec), \
                    f"{name}: spec mismatch at slot {a.slot}"


def _specs_equal(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, tuple):
        return len(a) == len(b) and all(
            _specs_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, np.ndarray):
        return (a.dtype == b.dtype and a.shape == b.shape
                and np.array_equal(a, b))
    if isinstance(a, float):
        return np.float64(a).tobytes() == np.float64(b).tobytes()
    return a == b
