"""Segmented + plan-replayed activity analysis: bitwise identity pins.

The chained activity sweep (:func:`repro.ad.activity.segmented_read_masks`)
and the plan-derived replay may only ever be *performance* transformations:
the read and moved masks must equal the monolithic tape walk bit for bit,
for every NPB port, under every snapshot schedule and trace-cache policy.
These tests pin that, plus the properties that make the chaining correct:
role-sensitive indexed writes, movement chains crossing a segment boundary
(the documented under-approximation must not start resolving), identity
pass-through accumulation, and the O(1-iteration) memory bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import activity as act
from repro.ad import ops
from repro.ad.plan import PlanCache
from repro.ad.segmented import SweepStats
from repro.ad.tape import Tape
from repro.npb import registry

ALL_PORTS = ("BT", "SP", "MG", "CG", "LU", "FT", "EP", "IS")
SCHEDULES = ("all", "binomial", "spill")


def _monolithic_masks(bench, state, watch):
    tape, leaves, _out = bench.traced_restart(state, watch=list(watch))
    results = act.read_masks(tape, [leaves[key] for key in watch])
    return {key: res for key, res in zip(watch, results)}, len(tape)


def _assert_masks_equal(expected, got, label):
    assert np.array_equal(expected.read, got.read), f"{label}: read differs"
    assert np.array_equal(expected.moved, got.moved), \
        f"{label}: moved differs"


# ---------------------------------------------------------------------------
# monolithic vs segmented, all ports, all schedules, both trace caches
# ---------------------------------------------------------------------------

class TestSegmentedActivityBitwise:
    @pytest.mark.parametrize("name", ALL_PORTS)
    def test_masks_identical_all_schedules(self, name, tmp_path):
        bench = registry.create(name, "T")
        state = bench.checkpoint_state(max(bench.total_steps - 3, 0))
        watch = bench.default_watch_keys()
        mono, _ = _monolithic_masks(bench, state, watch)
        for schedule in SCHEDULES:
            for trace_cache in ("off", "plan"):
                stats = SweepStats()
                seg = act.segmented_read_masks(
                    bench, state, watch=list(watch),
                    snapshot_schedule=schedule,
                    spill_dir=str(tmp_path) if schedule == "spill" else None,
                    trace_cache=trace_cache, stats=stats)
                for key in watch:
                    _assert_masks_equal(
                        mono[key], seg[key],
                        f"{name}[{key}] {schedule}/{trace_cache}")
                assert stats.activity_segments > 0
                assert stats.snapshot_policy == schedule
                assert stats.trace_cache == trace_cache
                if trace_cache == "off":
                    assert stats.activity_plan_replays == 0
                    assert stats.activity_retraces \
                        == stats.activity_segments

    def test_explicit_steps_match_monolithic_restart(self):
        bench = registry.create("CG", "T")
        state = bench.checkpoint_state(1)
        watch = bench.default_watch_keys()
        for steps in (0, 1, 2):
            tape, leaves, _out = bench.traced_restart(
                state, watch=list(watch), steps=steps)
            mono = dict(zip(watch, act.read_masks(
                tape, [leaves[key] for key in watch])))
            seg = act.segmented_read_masks(bench, state, watch=list(watch),
                                           steps=steps)
            for key in watch:
                _assert_masks_equal(mono[key], seg[key],
                                    f"CG[{key}] steps={steps}")

    def test_watch_subset_matches_full_watch(self):
        bench = registry.create("LU", "T")
        state = bench.checkpoint_state(bench.total_steps - 2)
        full = act.segmented_read_masks(bench, state)
        subset = act.segmented_read_masks(bench, state, watch=["u"])
        assert list(subset) == ["u"]
        _assert_masks_equal(full["u"], subset["u"], "LU[u] subset")


# ---------------------------------------------------------------------------
# plan-derived replay: repeated analyses on a shared cache
# ---------------------------------------------------------------------------

class TestPlanReplayedActivity:
    @pytest.mark.parametrize("name", ALL_PORTS)
    def test_warm_cache_replays_without_tracing(self, name):
        bench = registry.create(name, "T")
        state = bench.checkpoint_state(max(bench.total_steps - 3, 0))
        watch = bench.default_watch_keys()
        mono, _ = _monolithic_masks(bench, state, watch)

        cache = PlanCache()
        runs = []
        for _ in range(3):   # cold (capture), compile, warm replay
            stats = SweepStats()
            got = act.segmented_read_masks(bench, state, watch=list(watch),
                                           trace_cache="plan",
                                           plan_cache=cache, stats=stats)
            for key in watch:
                _assert_masks_equal(mono[key], got[key], f"{name}[{key}]")
            runs.append(stats)
        # by the third analysis every segment replays a compiled transfer
        warm = runs[-1]
        assert warm.activity_retraces == 0, \
            f"{name}: warm activity sweep still traced"
        assert warm.activity_plan_replays == warm.activity_segments
        assert cache.rejects == 0

    def test_activity_and_gradient_sweeps_share_plans(self):
        # the cache key depends only on (kind, probes, watch, structure),
        # so plans compiled by the gradient walk serve the activity walk
        from repro.ad.segmented import segmented_gradients

        bench = registry.create("CG", "T")
        state = bench.checkpoint_state(1)
        cache = PlanCache()
        for _ in range(2):
            segmented_gradients(bench, state, plan_cache=cache)
        compiles_before = cache.compiles
        stats = SweepStats()
        act.segmented_read_masks(bench, state, trace_cache="plan",
                                 plan_cache=cache, stats=stats)
        assert stats.activity_retraces == 0
        assert cache.compiles == compiles_before

    def test_plan_transfer_is_derived_once_per_plan(self):
        bench = registry.create("CG", "T")
        state = bench.checkpoint_state(1)
        cache = PlanCache()
        for _ in range(3):
            act.segmented_read_masks(bench, state, trace_cache="plan",
                                     plan_cache=cache)
        transfers = [
            plan._activity_transfer
            for entry in cache._entries.values()
            for plan in ([entry.coarse_plan] if entry.coarse_plan is not None
                         else list(entry.fine_plans.values()))
        ]
        derived = [t for t in transfers if t is not None]
        assert derived, "no plan ever derived an activity transfer"
        # replays must not mutate the cached transfer masks
        stats = SweepStats()
        before = [(dict((k, v.copy()) for k, v in t.read.items()),
                   dict((k, v.copy()) for k, v in t.moved.items()))
                  for t in derived]
        act.segmented_read_masks(bench, state, trace_cache="plan",
                                 plan_cache=cache, stats=stats)
        for t, (read0, moved0) in zip(derived, before):
            for key in read0:
                assert np.array_equal(t.read[key], read0[key])
                assert np.array_equal(t.moved[key], moved0[key])


# ---------------------------------------------------------------------------
# memory: peak tape bounded by one iteration
# ---------------------------------------------------------------------------

class TestActivityMemoryBounded:
    def test_peak_tape_is_one_iteration(self):
        bench = registry.create("LU", "T")
        state = bench.checkpoint_state(0)
        watch = bench.default_watch_keys()
        steps = bench.total_steps
        mono, mono_nodes = _monolithic_masks(bench, state, watch)
        stats = SweepStats()
        seg = act.segmented_read_masks(bench, state, watch=list(watch),
                                       trace_cache="off", stats=stats)
        for key in watch:
            _assert_masks_equal(mono[key], seg[key], f"LU[{key}]")
        # the monolithic tape holds all iterations plus the output; any
        # single segment tape must be roughly a steps-th of it
        assert stats.peak_nodes * steps <= mono_nodes * 2
        assert stats.activity_peak_mask_nbytes > 0


# ---------------------------------------------------------------------------
# role-sensitive indexed writes and cross-boundary movement chains
# ---------------------------------------------------------------------------

class _MiniBench:
    """Base for hand-built two-variable loop benchmarks."""

    name = "MINI"

    def __init__(self, steps=3):
        self._steps = steps

    def default_watch_keys(self):
        return ["x", "y"]

    def initial_state(self):
        return {"x": np.linspace(0.5, 2.0, 6),
                "y": np.linspace(-1.0, 1.0, 6), "it": 0}

    def _default_remaining_steps(self, state):
        return self._steps - int(state["it"])

    def _advance(self, state):
        raise NotImplementedError

    def run(self, state, steps):
        current = dict(state)
        for _ in range(steps):
            current = self._advance(current)
        return current

    def output(self, state):
        return ops.sum(state["y"])

    def _watched(self, state, watch):
        traced = dict(state)
        leaves = {}
        tape = Tape()
        with tape:
            for key in watch:
                leaves[key] = tape.watch(state[key], name=key)
                traced[key] = leaves[key]
        return traced, leaves, tape

    def traced_step(self, state, watch=None):
        traced, leaves, tape = self._watched(state,
                                             watch or self.default_watch_keys())
        with tape:
            nxt = self._advance(traced)
        return tape, leaves, nxt

    def traced_output(self, state, watch=None):
        traced, leaves, tape = self._watched(state,
                                             watch or self.default_watch_keys())
        with tape:
            out = self.output(traced)
        return tape, leaves, out

    def monolithic_masks(self, state, watch):
        """The reference: one tape over all remaining iterations."""
        steps = self._default_remaining_steps(state)
        traced, leaves, tape = self._watched(state, watch)
        with tape:
            for _ in range(steps):
                traced = self._advance(traced)
            self.output(traced)
        results = act.read_masks(tape, [leaves[key] for key in watch])
        return {key: res for key, res in zip(watch, results)}


class _RoleBench(_MiniBench):
    """index_add addend vs index_update complement, every iteration."""

    def _advance(self, state):
        x, y, it = state["x"], state["y"], int(state["it"])
        # x is the *addend*: a real read of all of x (role "value")
        y_next = ops.index_add(y, (slice(0, 3),), x[:3] * 0.5)
        # x is the *target* of an indexed overwrite: only the complement
        # of the updated region survives as data movement
        x_next = ops.index_update(x, (slice(0, 2),), 1.25)
        return {"x": x_next, "y": y_next, "it": it + 1}


class _ComplementBench(_MiniBench):
    """x's only child is an index_update with x as the target."""

    def _advance(self, state):
        x, y, it = state["x"], state["y"], int(state["it"])
        return {"x": ops.index_update(x, (slice(0, 2),), 1.25),
                "y": y * 1.0, "it": it + 1}


class _CopyChainBench(_MiniBench):
    """x's values cross a boundary through a copy, then feed the output.

    The monolithic walk does not chase reads through the copy (the
    documented movement under-approximation): x stays read=False even
    though its values reach the output.  The chained sweep must reproduce
    that exactly -- the copy severs the pass-through, so the later
    boundary's read of the copied values must *not* leak back into x.
    """

    def _advance(self, state):
        x, it = state["x"], int(state["it"])
        return {"x": x, "y": ops.copy(x), "it": it + 1}


@pytest.mark.parametrize("bench_cls",
                         [_RoleBench, _ComplementBench, _CopyChainBench])
@pytest.mark.parametrize("trace_cache", ["off", "plan"])
def test_mini_bench_segmented_matches_monolithic(bench_cls, trace_cache):
    bench = bench_cls(steps=3)
    state = bench.initial_state()
    watch = bench.default_watch_keys()
    mono = bench.monolithic_masks(state, watch)
    cache = PlanCache()
    for sweep in range(3):
        seg = act.segmented_read_masks(bench, state, watch=watch,
                                       trace_cache=trace_cache,
                                       plan_cache=cache
                                       if trace_cache == "plan" else None)
        for key in watch:
            _assert_masks_equal(mono[key], seg[key],
                                f"{bench_cls.__name__}[{key}] "
                                f"sweep {sweep}")


def test_role_bench_masks_are_role_sensitive():
    # sanity of the fixture itself: the addend role reads, the target
    # role moves only the complement of the updated region
    bench = _RoleBench(steps=2)
    state = bench.initial_state()
    mono = bench.monolithic_masks(state, ["x", "y"])
    # x[:3] was consumed as the addend via a getitem: read on the slice
    assert mono["x"].read[:3].all()
    # x was also index_update target with region [0:2): complement moved
    assert not mono["x"].moved[:2].any()
    assert mono["x"].moved[2:].all()


def test_copy_chain_under_approximation_is_preserved():
    bench = _CopyChainBench(steps=2)
    state = bench.initial_state()
    mono = bench.monolithic_masks(state, ["x", "y"])
    seg = act.segmented_read_masks(bench, state, watch=["x", "y"])
    # x's values reach the output only through a copy: never read, moved
    for masks in (mono, seg):
        assert not masks["x"].read.any()
        assert masks["x"].moved.all()
        # the original y is overwritten by the first copy and never read
        assert not masks["y"].read.any()
        assert not masks["y"].moved.any()


def test_identity_pass_through_accumulates_across_segments():
    # x passes through every step untouched and the *output* reads it:
    # the read at the final boundary must chain all the way back
    class _PassThroughBench(_MiniBench):
        def _advance(self, state):
            return {"x": state["x"], "y": state["y"] * 1.0,
                    "it": int(state["it"]) + 1}

        def output(self, state):
            return ops.sum(state["x"])

    bench = _PassThroughBench(steps=3)
    state = bench.initial_state()
    mono = bench.monolithic_masks(state, ["x", "y"])
    seg = act.segmented_read_masks(bench, state, watch=["x", "y"])
    assert mono["x"].read.all()
    for key in ("x", "y"):
        _assert_masks_equal(mono[key], seg[key], f"passthrough[{key}]")


# ---------------------------------------------------------------------------
# argument validation
# ---------------------------------------------------------------------------

class TestSegmentedActivityValidation:
    def test_missing_tracing_api_raises(self):
        class NoHooks:
            name = "NOHOOKS"

        with pytest.raises(TypeError, match="traced_step"):
            act.segmented_read_masks(NoHooks(), {"x": np.ones(3)})

    def test_unknown_watch_key_raises(self):
        bench = _ComplementBench()
        with pytest.raises(KeyError, match="unknown state entry"):
            act.segmented_read_masks(bench, bench.initial_state(),
                                     watch=["nope"])

    def test_negative_steps_raises(self):
        bench = _ComplementBench()
        with pytest.raises(ValueError, match="non-negative"):
            act.segmented_read_masks(bench, bench.initial_state(), steps=-1)

    def test_unknown_trace_cache_raises(self):
        bench = _ComplementBench()
        with pytest.raises(ValueError, match="trace_cache"):
            act.segmented_read_masks(bench, bench.initial_state(),
                                     trace_cache="sometimes")
