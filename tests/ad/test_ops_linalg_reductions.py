"""Unit tests for reductions and linear-algebra primitives."""

import numpy as np
import pytest

from repro import ad
from repro.ad import ops

rng = np.random.default_rng(7)


class TestReductions:
    def test_sum_all(self):
        x = rng.standard_normal((3, 4))
        g = ad.grad(lambda v: ops.sum(v))(x)
        assert np.allclose(g, 1.0)

    def test_sum_axis_keepdims(self):
        x = rng.standard_normal((3, 4))

        def f(v):
            s = ops.sum(v, axis=1, keepdims=True)
            return ops.sum(s * np.array([[1.0], [2.0], [3.0]]))

        g = ad.grad(f)(x)
        assert np.allclose(g, np.array([[1.0], [2.0], [3.0]]) * np.ones((3, 4)))

    def test_sum_axis_no_keepdims(self):
        x = rng.standard_normal((3, 4))

        def f(v):
            s = ops.sum(v, axis=0)
            return ops.sum(s * np.arange(1.0, 5.0))

        g = ad.grad(f)(x)
        assert np.allclose(g, np.tile(np.arange(1.0, 5.0), (3, 1)))

    def test_mean_gradient(self):
        x = rng.standard_normal((5,))
        g = ad.grad(lambda v: ops.mean(v))(x)
        assert np.allclose(g, 0.2)

    def test_mean_axis_gradient(self):
        x = rng.standard_normal((2, 5))
        g = ad.grad(lambda v: ops.sum(ops.mean(v, axis=1)))(x)
        assert np.allclose(g, 0.2)

    def test_max_routes_to_argmax(self):
        x = np.array([1.0, 7.0, 3.0])
        g = ad.grad(lambda v: ops.max(v))(x)
        assert np.allclose(g, [0.0, 1.0, 0.0])

    def test_min_routes_to_argmin(self):
        x = np.array([1.0, 7.0, 3.0])
        g = ad.grad(lambda v: ops.min(v))(x)
        assert np.allclose(g, [1.0, 0.0, 0.0])

    def test_max_ties_share_gradient(self):
        x = np.array([5.0, 5.0, 1.0])
        g = ad.grad(lambda v: ops.max(v))(x)
        assert np.allclose(g.sum(), 1.0)
        assert np.allclose(g, [0.5, 0.5, 0.0])

    def test_max_axis_gradient(self):
        x = np.array([[1.0, 4.0], [6.0, 2.0]])
        g = ad.grad(lambda v: ops.sum(ops.max(v, axis=1)))(x)
        assert np.allclose(g, [[0.0, 1.0], [1.0, 0.0]])

    def test_prod_gradient(self):
        x = np.array([2.0, 3.0, 4.0])
        g = ad.grad(lambda v: ops.prod(v))(x)
        assert np.allclose(g, [12.0, 8.0, 6.0])

    def test_norm2_gradient(self):
        x = np.array([3.0, 4.0])
        g = ad.grad(lambda v: ops.norm(v))(x)
        assert np.allclose(g, [0.6, 0.8])

    def test_norm1_gradient(self):
        x = np.array([3.0, -4.0])
        g = ad.grad(lambda v: ops.norm(v, ord=1))(x)
        assert np.allclose(g, [1.0, -1.0])

    def test_norm_unsupported_order(self):
        with pytest.raises(ValueError):
            ops.norm(np.ones(3), ord=3)

    def test_reduction_of_empty_gradient_path(self):
        """A watched variable that the output never uses gets a zero grad."""
        with ad.Tape() as t:
            x = t.watch(np.ones(4), name="x")
            y = t.watch(np.ones(4), name="y")
            out = ops.sum(x * 2.0)
        gx, gy = t.gradient(out, [x, y])
        assert np.allclose(gx, 2.0)
        assert np.all(gy == 0.0)


class TestMatmul:
    def test_matmul_2d_values(self):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        assert np.allclose(ops.matmul(a, b), a @ b)

    def test_matmul_2d_gradients(self):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        w = rng.standard_normal((3, 5))

        def f(x, y):
            return ops.sum(ops.matmul(x, y) * w)

        ga, gb = ad.grad(f, argnums=(0, 1))(a, b)
        assert np.allclose(ga, w @ b.T)
        assert np.allclose(gb, a.T @ w)

    def test_matmul_vector_vector(self):
        a = rng.standard_normal(6)
        b = rng.standard_normal(6)
        ga, gb = ad.grad(lambda x, y: ops.matmul(x, y), argnums=(0, 1))(a, b)
        assert np.allclose(ga, b)
        assert np.allclose(gb, a)

    def test_matmul_matrix_vector(self):
        a = rng.standard_normal((3, 4))
        v = rng.standard_normal(4)
        w = np.arange(1.0, 4.0)

        def f(m, x):
            return ops.sum(ops.matmul(m, x) * w)

        gm, gv = ad.grad(f, argnums=(0, 1))(a, v)
        assert np.allclose(gm, np.outer(w, v))
        assert np.allclose(gv, a.T @ w)

    def test_matmul_vector_matrix(self):
        a = rng.standard_normal(3)
        m = rng.standard_normal((3, 4))
        w = np.arange(1.0, 5.0)

        def f(x, b):
            return ops.sum(ops.matmul(x, b) * w)

        gx, gb = ad.grad(f, argnums=(0, 1))(a, m)
        assert np.allclose(gx, m @ w)
        assert np.allclose(gb, np.outer(a, w))

    def test_matmul_batched(self):
        a = rng.standard_normal((5, 3, 4))
        b = rng.standard_normal((5, 4, 2))
        w = rng.standard_normal((5, 3, 2))

        def f(x, y):
            return ops.sum(ops.matmul(x, y) * w)

        ga, gb = ad.grad(f, argnums=(0, 1))(a, b)
        assert np.allclose(ga, np.matmul(w, np.swapaxes(b, -1, -2)))
        assert np.allclose(gb, np.matmul(np.swapaxes(a, -1, -2), w))

    def test_matmul_broadcast_matrix_against_batch(self):
        a = rng.standard_normal((3, 4))            # broadcast over batch
        b = rng.standard_normal((6, 4, 2))
        w = rng.standard_normal((6, 3, 2))

        def f(x, y):
            return ops.sum(ops.matmul(x, y) * w)

        ga, gb = ad.grad(f, argnums=(0, 1))(a, b)
        assert ga.shape == a.shape
        assert gb.shape == b.shape
        assert np.allclose(ga, np.matmul(w, np.swapaxes(b, -1, -2)).sum(axis=0))
        assert np.allclose(gb, np.matmul(a.T[None], w))

    def test_dot_alias(self):
        a = rng.standard_normal(4)
        b = rng.standard_normal(4)
        assert np.allclose(ops.dot(a, b), a @ b)

    def test_outer_product_gradient(self):
        a = np.arange(1.0, 4.0)
        b = np.arange(1.0, 3.0)
        w = rng.standard_normal((3, 2))

        def f(x, y):
            return ops.sum(ops.outer(x, y) * w)

        ga, gb = ad.grad(f, argnums=(0, 1))(a, b)
        assert np.allclose(ga, w @ b)
        assert np.allclose(gb, w.T @ a)

    def test_adarray_matmul_operator(self):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((3, 2))
        with ad.Tape() as t:
            ta = t.watch(a)
            out = ops.sum(ta @ b)
        g = t.gradient(out, [ta])[0]
        assert np.allclose(g, np.ones((2, 2)) @ b.T)


class TestDFTViaMatmul:
    """The FT kernel computes DFTs with explicit cosine/sine matrices; make
    sure gradients through that pattern are exact."""

    @staticmethod
    def dft_matrices(n):
        k = np.arange(n)
        ang = -2.0 * np.pi * np.outer(k, k) / n
        return np.cos(ang), np.sin(ang)

    def test_real_dft_energy_gradient(self):
        n = 8
        c, s = self.dft_matrices(n)
        x = rng.standard_normal(n)

        def f(v):
            re = ops.matmul(c, v)
            im = ops.matmul(s, v)
            return ops.sum(re * re + im * im)

        g = ad.grad(f)(x)
        # Parseval: sum |X_k|^2 = n * sum x_i^2, so gradient = 2*n*x
        assert np.allclose(g, 2.0 * n * x)

    def test_unused_padded_input_has_zero_gradient(self):
        n = 8
        c, s = self.dft_matrices(n)
        x = rng.standard_normal(n + 2)              # last 2 are padding

        def f(v):
            core = v[:n]
            re = ops.matmul(c, core)
            im = ops.matmul(s, core)
            return ops.sum(re * re + im * im)

        g = ad.grad(f)(x)
        assert np.all(g[n:] == 0.0)
        assert np.all(g[:n] != 0.0)
