"""Snapshot schedules of the segmented sweep: equivalence and robustness.

Covers the :mod:`repro.ad.schedule` policies themselves (retention,
recompute telemetry, spill round-trip and failure modes) plus the
regressions this subsystem's introduction fixed:

* **snapshot aliasing** -- boundary snapshots used to store *references*
  into the running state, so a benchmark whose ``run`` mutates arrays in
  place silently corrupted earlier boundaries;
* **cotangent dtype drift** -- returned gradients (and the zero-cotangent
  fallback) were force-cast to float64, upcasting float32 state entries.

The acceptance bar is the segmented subsystem's usual one: gradients and
masks **bitwise identical** across ``"all"``, ``"binomial"`` and
``"spill"`` for every NPB port, in both the plain and the probe-batched
segmented sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import ops
from repro.ad.probes import segmented_batched_gradients
from repro.ad.reverse import backward
from repro.ad.schedule import (SNAPSHOT_SCHEDULES, BinomialSnapshots,
                               SnapshotSchedule, SpillSnapshots,
                               default_snapshot_budget, make_schedule,
                               snapshot_state, state_nbytes)
from repro.ad.segmented import (SweepStats, gradient_dtype,
                                segmented_gradients)
from repro.ad.tape import Tape
from repro.ad.tensor import value_of
from repro.ckpt.format import CheckpointFormatError
from repro.core.analysis import scrutinize
from repro.npb import registry

ALL_BENCHMARKS = registry.available_benchmarks()

#: the non-default policies, compared against "all" throughout
ALT_SCHEDULES = ("binomial", "spill")


# ---------------------------------------------------------------------------
# fake benchmarks exposing the per-iteration tracing API
# ---------------------------------------------------------------------------

class SquareMapBench:
    """Minimal nonlinear benchmark: ``x <- x * x`` per iteration.

    Nonlinearity matters: the vjp of ``x * x`` *reads the boundary value*,
    so a corrupted (aliased) snapshot changes the gradients instead of
    slipping through unnoticed.  ``inplace=True`` makes the concrete ``run``
    mutate the state array in place -- the aliasing-regression trigger.
    """

    name = "SQUARE"

    def __init__(self, n: int = 5, steps: int = 4, dtype=np.float64,
                 inplace: bool = False) -> None:
        self.n = n
        self.total_steps = steps
        self.dtype = np.dtype(dtype)
        self.inplace = inplace

    def initial_state(self) -> dict:
        x = np.linspace(0.3, 1.1, self.n).astype(self.dtype)
        return {"x": x, "it": 0}

    def default_watch_keys(self) -> list[str]:
        return ["x"]

    def _default_remaining_steps(self, state) -> int:
        return max(self.total_steps - int(value_of(state["it"])), 0)

    def run(self, state, steps: int) -> dict:
        current = dict(state)
        for _ in range(steps):
            x = np.asarray(value_of(current["x"]))
            if self.inplace:
                np.multiply(x, x, out=x)
                current["x"] = x
            else:
                current["x"] = x * x
            current["it"] = int(value_of(current["it"])) + 1
        return current

    def _watched(self, state, watch):
        if watch is None:
            watch = self.default_watch_keys()
        traced = {key: value_of(val) for key, val in state.items()}
        leaves = {}
        tape = Tape()
        with tape:
            for key in watch:
                leaves[key] = tape.watch(traced[key], name=key)
                traced[key] = leaves[key]
        return tape, leaves, traced

    def traced_step(self, state, watch=None):
        tape, leaves, traced = self._watched(state, watch)
        with tape:
            nxt = dict(traced)
            nxt["x"] = traced["x"] * traced["x"]
            nxt["it"] = int(value_of(state["it"])) + 1
        return tape, leaves, nxt

    def traced_output(self, state, watch=None):
        tape, leaves, traced = self._watched(state, watch)
        with tape:
            out = ops.sum(traced["x"])
        return tape, leaves, out

    def traced_restart(self, state, watch=None, steps=None):
        tape, leaves, traced = self._watched(state, watch)
        if steps is None:
            steps = self._default_remaining_steps(state)
        with tape:
            current = dict(traced)
            for _ in range(steps):
                current["x"] = current["x"] * current["x"]
            out = ops.sum(current["x"])
        return tape, leaves, out


class ExplodingOutputBench(SquareMapBench):
    """Forward pass succeeds, the output segment raises."""

    def traced_output(self, state, watch=None):
        raise RuntimeError("output segment exploded")


def _monolithic(bench, state, watch):
    tape, leaves, out = bench.traced_restart(state, watch=list(watch))
    grads = backward(tape, out, [leaves[k] for k in watch], strict=False)
    return dict(zip(watch, grads))


def _assert_bitwise(a, b, label):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    assert a.shape == b.shape, label
    assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), \
        f"{label}: gradients differ bitwise"


# ---------------------------------------------------------------------------
# regression: snapshot aliasing under an in-place-mutating run()
# ---------------------------------------------------------------------------

class TestSnapshotAliasing:
    @pytest.mark.parametrize("policy", SNAPSHOT_SCHEDULES)
    def test_inplace_run_matches_functional_run(self, policy, tmp_path):
        # before the copy-on-snapshot fix, every boundary aliased the same
        # mutated array and the chained gradients came out wrong
        functional = SquareMapBench(inplace=False)
        inplace = SquareMapBench(inplace=True)
        state = functional.initial_state()
        ref = segmented_gradients(functional, state, watch=["x"])
        got = segmented_gradients(inplace, dict(state), watch=["x"],
                                  snapshot_schedule=policy,
                                  snapshot_budget=2,
                                  spill_dir=tmp_path)
        _assert_bitwise(ref["x"], got["x"], f"aliasing[{policy}]")
        # and both match the monolithic sweep
        mono = _monolithic(functional, state, ["x"])
        _assert_bitwise(mono["x"], got["x"], f"aliasing-vs-mono[{policy}]")

    def test_inplace_run_leaves_caller_state_intact(self):
        bench = SquareMapBench(inplace=True)
        state = bench.initial_state()
        before = state["x"].copy()
        segmented_gradients(bench, state, watch=["x"])
        np.testing.assert_array_equal(state["x"], before)

    def test_inplace_run_batched_matches_functional(self, tmp_path):
        functional = SquareMapBench(inplace=False)
        inplace = SquareMapBench(inplace=True)
        base = functional.initial_state()
        probe = dict(base)
        probe["x"] = base["x"] + 1.0e-3
        states = [base, probe]
        # the fake has no probe-tracing hooks, so compare per-probe plain
        # sweeps instead: every probe's segmented gradients must survive
        # in-place mutation under every policy
        for policy in SNAPSHOT_SCHEDULES:
            for state in states:
                ref = segmented_gradients(functional, dict(state),
                                          watch=["x"])
                got = segmented_gradients(inplace, dict(state), watch=["x"],
                                          snapshot_schedule=policy,
                                          snapshot_budget=2,
                                          spill_dir=tmp_path)
                _assert_bitwise(ref["x"], got["x"], f"batched[{policy}]")


# ---------------------------------------------------------------------------
# regression: cotangent dtype drift on float32 state
# ---------------------------------------------------------------------------

class TestGradientDtype:
    def test_float32_state_gets_float32_gradients(self):
        bench = SquareMapBench(dtype=np.float32)
        state = bench.initial_state()
        assert state["x"].dtype == np.float32
        grads = segmented_gradients(bench, state, watch=["x"])
        assert grads["x"].dtype == np.float32
        # values agree with the (float64-buffered) monolithic sweep up to
        # the declared precision
        mono = _monolithic(bench, state, ["x"])
        np.testing.assert_allclose(grads["x"],
                                   np.asarray(mono["x"], dtype=np.float32),
                                   rtol=1e-6)

    def test_float64_state_still_gets_float64(self):
        bench = SquareMapBench(dtype=np.float64)
        state = bench.initial_state()
        grads = segmented_gradients(bench, state, watch=["x"])
        assert grads["x"].dtype == np.float64

    def test_unchained_watch_key_fallback_preserves_dtype(self):
        # a watched float32 entry the step never produces: its gradient
        # comes from the zero fallback, which must not upcast either
        bench = SquareMapBench(dtype=np.float32)
        state = bench.initial_state()
        state["aux"] = np.ones(3, dtype=np.float32)
        grads = segmented_gradients(bench, state, watch=["x", "aux"])
        assert grads["aux"].dtype == np.float32
        np.testing.assert_array_equal(grads["aux"], np.zeros(3))

    def test_zero_steps_zero_output_fallback_dtype(self):
        # steps=0 with an output that never touches the watched input:
        # the zero-cotangent fallback path must also preserve dtype
        class ConstantOutput(SquareMapBench):
            def traced_output(self, state, watch=None):
                tape, leaves, _traced = self._watched(state, watch)
                return tape, leaves, np.float64(3.0)

        bench = ConstantOutput(dtype=np.float32)
        state = bench.initial_state()
        grads = segmented_gradients(bench, state, watch=["x"], steps=0)
        assert grads["x"].dtype == np.float32
        np.testing.assert_array_equal(grads["x"],
                                      np.zeros(bench.n, dtype=np.float32))

    def test_monolithic_sweep_shares_the_dtype_contract(self):
        # the analyzer's monolithic path must report the same dtypes as the
        # segmented one, or sweep choice would change cached artefacts
        from repro.core.criticality import CriticalityAnalyzer

        bench = SquareMapBench(dtype=np.float32)
        state = bench.initial_state()
        mono = CriticalityAnalyzer()._gradients(bench, state, ["x"])
        seg = CriticalityAnalyzer(sweep="segmented")._gradients(
            bench, state, ["x"])
        assert mono["x"].dtype == np.float32
        assert seg["x"].dtype == np.float32

    def test_gradient_dtype_helper(self):
        assert gradient_dtype(np.ones(2, dtype=np.float32)) == np.float32
        assert gradient_dtype(np.ones(2)) == np.float64
        assert gradient_dtype(np.arange(3)) == np.float64  # integers
        assert gradient_dtype(2.5) == np.float64

    def test_cast_gradient_never_flushes_nonzero_to_zero(self):
        # a float64 derivative below float32's subnormal range must not
        # become exactly 0.0 -- that would flip a critical element to
        # uncritical, the one error the criticality criterion cannot make
        from repro.ad.segmented import cast_gradient

        g = np.array([0.0, 1.0e-300, -1.0e-300, 2.5, 0.25])
        cast = cast_gradient(g, np.float32)
        assert cast.dtype == np.float32
        np.testing.assert_array_equal(cast == 0.0, g == 0.0)
        tiny = np.finfo(np.float32).smallest_subnormal
        assert cast[1] == tiny and cast[2] == -tiny
        np.testing.assert_array_equal(cast[3:], g[3:].astype(np.float32))
        # exact-width casts pass through untouched
        np.testing.assert_array_equal(cast_gradient(g, np.float64), g)


# ---------------------------------------------------------------------------
# the schedules themselves
# ---------------------------------------------------------------------------

class TestScheduleUnits:
    STATE = {"x": np.arange(6.0), "it": 0}

    def test_snapshot_state_copies_arrays(self):
        snap = snapshot_state(self.STATE)
        assert snap["x"] is not self.STATE["x"]
        snap["x"][0] = 99.0
        assert self.STATE["x"][0] == 0.0

    def test_snapshot_state_passes_scalars_through_unchanged(self):
        # scalars must keep their Python types (concrete_state's public
        # contract, which delegates here): no silent 0-d array wrapping
        state = {"it": 3, "f": 0.5, "b": True, "s": np.float32(0.1)}
        snap = snapshot_state(state)
        assert snap["it"] == 3 and isinstance(snap["it"], int)
        assert snap["f"] == 0.5 and isinstance(snap["f"], float)
        assert snap["b"] is True
        assert isinstance(snap["s"], np.float32)

    def test_state_nbytes_counts_arrays_and_scalars(self):
        assert state_nbytes(self.STATE) == self.STATE["x"].nbytes + \
            np.asarray(0).nbytes

    def test_default_budget_is_logarithmic(self):
        assert default_snapshot_budget(0) == 2
        assert default_snapshot_budget(1000) <= 12
        assert default_snapshot_budget(10 ** 6) <= 22

    def test_all_schedule_keeps_everything(self):
        sched = SnapshotSchedule(3)
        for k in range(4):
            sched.record(k, {"x": np.full(4, float(k))})
        assert sched.peak_snapshots == 4
        for k in (3, 2, 1, 0):
            assert sched.fetch(k)["x"][0] == float(k)

    def test_binomial_respects_budget_and_recomputes(self):
        advanced = []

        def advance(state):
            advanced.append(int(state["it"]))
            return {"x": state["x"] * 2.0, "it": int(state["it"]) + 1}

        steps = 8
        sched = BinomialSnapshots(steps, advance, budget=3)
        state = {"x": np.ones(4), "it": 0}
        sched.record(0, state)
        for t in range(1, steps + 1):
            state = advance(state)
            sched.record(t, state)
        advanced.clear()
        for k in range(steps, -1, -1):
            got = sched.fetch(k)
            np.testing.assert_array_equal(got["x"], np.full(4, 2.0 ** k))
            assert int(got["it"]) == k
        assert sched.peak_snapshots <= 3
        assert sched.recomputed_steps == len(advanced) > 0
        # the walk must beat replay-from-zero-every-time
        assert sched.recomputed_steps < steps * (steps + 1) // 2

    def test_binomial_budget_validation(self):
        with pytest.raises(ValueError, match="budget"):
            BinomialSnapshots(4, lambda s: s, budget=1)

    def test_make_schedule_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown snapshot schedule"):
            make_schedule("fifo", steps=3)

    def test_make_schedule_binomial_needs_advance(self):
        with pytest.raises(ValueError, match="advance"):
            make_schedule("binomial", steps=3)

    @pytest.mark.parametrize("policy", SNAPSHOT_SCHEDULES)
    def test_zero_steps(self, policy, tmp_path):
        sched = make_schedule(policy, steps=0, advance=lambda s: s,
                              spill_dir=tmp_path)
        sched.record(0, {"x": np.arange(3.0)})
        np.testing.assert_array_equal(sched.fetch(0)["x"], np.arange(3.0))
        sched.close()


class TestSpillRobustness:
    STATE = {"x": np.arange(4.0), "it": 0}

    def _recorded(self, tmp_path, boundaries=3):
        sched = SpillSnapshots(boundaries - 1, directory=tmp_path)
        for k in range(boundaries):
            sched.record(k, dict(self.STATE, it=k))
        # these tests inspect/tamper with the scratch directory directly,
        # so the asynchronous writes must have landed first
        sched.flush()
        return sched

    def test_roundtrip_is_bitwise(self, tmp_path):
        sched = self._recorded(tmp_path)
        got = sched.fetch(2)
        assert got["it"] == 2
        _assert_bitwise(self.STATE["x"], got["x"], "spill roundtrip")
        sched.close()

    def test_roundtrip_preserves_scalar_and_array_dtypes(self, tmp_path):
        # the checkpoint reader coerces 0-d non-integer records to float64;
        # the spill schedule must hand back the declared dtypes, or a
        # float32 scalar entry would trace at a different precision than
        # under "all"/"binomial" (and a bool would come back as 1.0)
        state = {"x": np.arange(4, dtype=np.float32),
                 "s": np.float32(0.1), "flag": np.True_, "it": 3}
        sched = SpillSnapshots(0, directory=tmp_path)
        sched.record(0, state)
        got = sched.fetch(0)
        assert got["x"].dtype == np.float32
        assert np.asarray(got["s"]).dtype == np.float32
        assert np.float32(got["s"]) == np.float32(0.1)
        assert np.asarray(got["flag"]).dtype == np.bool_
        assert bool(got["flag"]) is True
        assert got["it"] == 3 and isinstance(got["it"], int)
        sched.close()

    def test_batched_partial_schedule_construction_cleans_up(self, tmp_path,
                                                             monkeypatch):
        # a spill mkdtemp failure for probe 2 must still remove probe 1's
        # already-created scratch directory
        import tempfile as _tempfile

        from repro.ad import schedule as schedule_mod

        real_mkdtemp = _tempfile.mkdtemp
        calls = {"n": 0}

        def failing_mkdtemp(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise OSError("no space left on device")
            return real_mkdtemp(*args, **kwargs)

        monkeypatch.setattr(schedule_mod.tempfile, "mkdtemp",
                            failing_mkdtemp)
        bench = registry.create("CG", "T")
        state = bench.checkpoint_state(1)
        with pytest.raises(CheckpointFormatError, match="no space"):
            segmented_batched_gradients(bench, [state, dict(state)],
                                        watch=bench.default_watch_keys(),
                                        snapshot_schedule="spill",
                                        spill_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_truncated_spill_file_is_reported(self, tmp_path):
        sched = self._recorded(tmp_path)
        path = sched.directory / "boundary-000002.ckpt"
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(CheckpointFormatError, match="truncated"):
            sched.fetch(2)
        sched.close()
        assert not sched.directory.exists()

    def test_unusable_spill_dir_is_wrapped(self, tmp_path):
        # scratch-directory creation failures are spill failures too and
        # must surface under the schedule's one error type
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("a file where a directory must go")
        with pytest.raises(CheckpointFormatError,
                           match="cannot create spill scratch"):
            SpillSnapshots(1, directory=not_a_dir)

    def test_spill_write_failure_is_wrapped(self, tmp_path, monkeypatch):
        # I/O failures of the spill layer surface under the schedule's one
        # error type, distinguishable from unrelated OSErrors elsewhere;
        # with asynchronous writes the error is deferred to the next
        # synchronisation point (flush/fetch/close), never lost
        import repro.ckpt.writer as writer_mod

        def failing_write(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(writer_mod, "write_full_checkpoint",
                            failing_write)
        sched = SpillSnapshots(1, directory=tmp_path)
        sched.record(0, dict(self.STATE))
        with pytest.raises(CheckpointFormatError, match="cannot spill"):
            sched.flush()
        sched.close()

    def test_sync_spill_write_failure_raises_in_record(self, tmp_path,
                                                       monkeypatch):
        # the synchronous mode (async_writes=False) keeps the original
        # raise-at-record semantics
        import repro.ckpt.writer as writer_mod

        def failing_write(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(writer_mod, "write_full_checkpoint",
                            failing_write)
        sched = SpillSnapshots(1, directory=tmp_path, async_writes=False)
        with pytest.raises(CheckpointFormatError, match="cannot spill"):
            sched.record(0, dict(self.STATE))
        sched.close()

    def test_spill_write_failure_surfaces_at_close(self, tmp_path,
                                                   monkeypatch):
        # a sweep that never fetches (e.g. it failed elsewhere first on a
        # clean path) still learns about a lost spill write at close()
        import repro.ckpt.writer as writer_mod

        monkeypatch.setattr(
            writer_mod, "write_full_checkpoint",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")))
        sched = SpillSnapshots(1, directory=tmp_path)
        sched.record(0, dict(self.STATE))
        with pytest.raises(CheckpointFormatError, match="cannot spill"):
            sched.close()
        # the worker is gone and the scratch directory removed regardless
        assert not sched.directory.exists()

    def test_missing_spill_file_is_reported(self, tmp_path):
        sched = self._recorded(tmp_path)
        for path in sched.directory.glob("boundary-000002.ckpt"):
            path.unlink()
        with pytest.raises(CheckpointFormatError, match="missing"):
            sched.fetch(2)
        sched.close()

    def test_mislabelled_spill_file_is_reported(self, tmp_path):
        import shutil as _shutil

        sched = self._recorded(tmp_path)
        files = sorted(sched.directory.glob("boundary-*.ckpt"))
        _shutil.copy(files[0], files[2])  # boundary 0's bytes under 2's name
        with pytest.raises(CheckpointFormatError, match="expected boundary"):
            sched.fetch(2)
        sched.close()

    def test_close_removes_scratch_directory(self, tmp_path):
        sched = self._recorded(tmp_path)
        scratch = sched.directory
        assert scratch.is_dir() and list(scratch.iterdir())
        sched.close()
        assert not scratch.exists()
        assert list(tmp_path.iterdir()) == []

    def test_sweep_cleans_scratch_on_success(self, tmp_path):
        bench = SquareMapBench()
        segmented_gradients(bench, bench.initial_state(), watch=["x"],
                            snapshot_schedule="spill", spill_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_sweep_cleans_scratch_on_exception(self, tmp_path):
        bench = ExplodingOutputBench()
        with pytest.raises(RuntimeError, match="exploded"):
            segmented_gradients(bench, bench.initial_state(), watch=["x"],
                                snapshot_schedule="spill",
                                spill_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_batched_sweep_cleans_scratch_on_success(self, tmp_path):
        bench = registry.create("CG", "T")
        watch = bench.default_watch_keys()
        state = bench.checkpoint_state(1)
        probe = dict(state)
        probe["x"] = np.asarray(state["x"]) * 1.001
        segmented_batched_gradients(bench, [state, probe], watch=watch,
                                    snapshot_schedule="spill",
                                    spill_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# telemetry through SweepStats
# ---------------------------------------------------------------------------

class TestScheduleTelemetry:
    def test_all_policy_peak_is_every_boundary(self):
        bench = SquareMapBench(steps=6)
        stats = SweepStats()
        segmented_gradients(bench, bench.initial_state(), watch=["x"],
                            stats=stats)
        assert stats.snapshot_policy == "all"
        assert stats.peak_snapshots == 7
        assert stats.recomputed_steps == 0
        assert stats.spilled_nbytes == 0
        assert stats.peak_snapshot_nbytes > 0

    def test_binomial_policy_stays_within_budget(self):
        bench = SquareMapBench(steps=8)
        stats = SweepStats()
        segmented_gradients(bench, bench.initial_state(), watch=["x"],
                            stats=stats, snapshot_schedule="binomial",
                            snapshot_budget=3)
        assert stats.snapshot_policy == "binomial"
        assert stats.peak_snapshots <= 3
        assert stats.recomputed_steps > 0

    def test_spill_policy_keeps_bounded_residency(self, tmp_path):
        bench = SquareMapBench(steps=6)
        stats = SweepStats()
        segmented_gradients(bench, bench.initial_state(), watch=["x"],
                            stats=stats, snapshot_schedule="spill",
                            spill_dir=tmp_path)
        assert stats.snapshot_policy == "spill"
        # async writes hold up to the bounded queue's copies (plus the one
        # in flight and the one awaiting a slot) resident on top of the
        # one fetched snapshot -- O(1), independent of steps
        assert 1 <= stats.peak_snapshots <= 2 + SpillSnapshots._QUEUE_DEPTH
        assert stats.spilled_nbytes > 0

    def test_sync_spill_keeps_one_resident(self, tmp_path):
        # without the write queue the original exactly-one-resident
        # telemetry still holds
        sched = SpillSnapshots(6, directory=tmp_path, async_writes=False)
        for k in range(7):
            sched.record(k, {"x": np.arange(4.0), "it": k})
        for k in range(6, -1, -1):
            sched.fetch(k)
        assert sched.peak_snapshots == 1
        sched.close()

    def test_observe_schedule_sums_simultaneous_schedules(self):
        a, b = SnapshotSchedule(1), SnapshotSchedule(1)
        a.record(0, {"x": np.ones(4)})
        b.record(0, {"x": np.ones(8)})
        stats = SweepStats()
        stats.observe_schedule(a, b)
        assert stats.peak_snapshots == 2
        assert stats.peak_snapshot_nbytes == 4 * 8 + 8 * 8


# ---------------------------------------------------------------------------
# NPB acceptance: bitwise identity across schedules, plain and batched
# ---------------------------------------------------------------------------

def _probe_states(bench, watch, n_probes, seed=1234):
    state = bench.checkpoint_state(bench.total_steps // 2)
    rng = np.random.default_rng(seed)
    states = [dict(state)]
    for _ in range(n_probes - 1):
        probed = dict(state)
        for key in watch:
            base = np.asarray(probed[key], dtype=np.float64)
            probed[key] = base + 1.0e-3 * rng.standard_normal(base.shape)
        states.append(probed)
    return states


@pytest.mark.parametrize("policy", ALT_SCHEDULES)
@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_npb_gradients_bitwise_across_schedules(name, policy, tmp_path):
    bench = registry.create(name, "T")
    watch = bench.default_watch_keys()
    if not watch:  # IS is all-integer: nothing for the AD sweep to do
        pytest.skip(f"{name} has no floating point checkpoint variables")
    state = bench.checkpoint_state(bench.total_steps // 2)
    ref = segmented_gradients(bench, state, watch=watch)
    got = segmented_gradients(bench, state, watch=watch,
                              snapshot_schedule=policy, snapshot_budget=2,
                              spill_dir=tmp_path)
    for key in watch:
        _assert_bitwise(ref[key], got[key], f"{name}[{key}] ({policy})")


@pytest.mark.parametrize("policy", ALT_SCHEDULES)
@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_npb_batched_gradients_bitwise_across_schedules(name, policy,
                                                        tmp_path):
    bench = registry.create(name, "T")
    watch = bench.default_watch_keys()
    if not watch:
        pytest.skip(f"{name} has no floating point checkpoint variables")
    states = _probe_states(bench, watch, n_probes=2)
    ref = segmented_batched_gradients(bench, states, watch=watch)
    got = segmented_batched_gradients(bench, states, watch=watch,
                                      snapshot_schedule=policy,
                                      snapshot_budget=2, spill_dir=tmp_path)
    for key in watch:
        _assert_bitwise(ref[key], got[key],
                        f"{name}[{key}] batched ({policy})")


def _policy_kwargs(policy, tmp_path):
    """Only the knobs applicable to ``policy`` (the analyzer rejects rest)."""
    if policy == "binomial":
        return {"snapshot_schedule": policy, "snapshot_budget": 2}
    if policy == "spill":
        return {"snapshot_schedule": policy, "spill_dir": str(tmp_path)}
    return {"snapshot_schedule": policy}


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_npb_masks_identical_across_schedules(name, tmp_path):
    base = scrutinize(registry.create(name, "T"), sweep="segmented")
    for policy in ALT_SCHEDULES:
        other = scrutinize(registry.create(name, "T"), sweep="segmented",
                           **_policy_kwargs(policy, tmp_path))
        assert list(base.variables) == list(other.variables)
        for var in base.variables:
            assert np.array_equal(base.variables[var].mask,
                                  other.variables[var].mask), \
                f"{name}({var}): masks differ under {policy}"
            for key, grad in base.variables[var].gradients.items():
                _assert_bitwise(grad, other.variables[var].gradients[key],
                                f"{name}({var}/{key}) ({policy})")
    assert list(tmp_path.iterdir()) == []


@pytest.mark.parametrize("policy", ALT_SCHEDULES)
def test_npb_multi_probe_batched_masks_identical(policy, tmp_path):
    base = scrutinize(registry.create("CG", "T"), n_probes=3,
                      sweep="segmented", probe_batching="batched")
    other = scrutinize(registry.create("CG", "T"), n_probes=3,
                       sweep="segmented", probe_batching="batched",
                       **_policy_kwargs(policy, tmp_path))
    for var in base.variables:
        assert np.array_equal(base.variables[var].mask,
                              other.variables[var].mask)
    assert list(tmp_path.iterdir()) == []


class TestBinomialOptimality:
    """The binomial schedule meets the exact Griewank-Walther optimum.

    ``optimal_replay_cost`` is the revolve dynamic program; the schedule's
    forward placement plus in-replay refills must *achieve* its bound --
    not approximate it -- under the schedule's own slot accounting
    (``budget`` = resident snapshots incl. the replay working copy).
    """

    @staticmethod
    def _achieved(steps, budget):
        calls = {"n": 0}

        def advance(state):
            calls["n"] += 1
            return {"n": state["n"] + 1}

        sched = BinomialSnapshots(steps, advance, budget=budget)
        for t in range(steps + 1):
            sched.record(t, {"n": t})
        for k in range(steps, -1, -1):
            got = sched.fetch(k)
            assert got["n"] == k, "binomial replay produced the wrong state"
        sched.close()
        assert sched.recomputed_steps == calls["n"]
        return sched.recomputed_steps, sched.peak_snapshots

    @pytest.mark.parametrize("steps", [2, 3, 4, 6, 8, 12, 15, 16, 30, 47])
    @pytest.mark.parametrize("budget", [2, 3, 4, 6])
    def test_replays_meet_the_binomial_optimum(self, steps, budget):
        from repro.ad.schedule import _forward_plan

        achieved, peak = self._achieved(steps, budget)
        assert achieved == _forward_plan(steps, budget)[0], \
            f"steps={steps} budget={budget}: not revolve-optimal"
        assert peak <= budget

    def test_optimum_matches_exhaustive_search(self):
        # independent ground truth: brute-force the schedule protocol
        # (free forward placement, nearest-kept replays, en-route refills)
        # over every placement strategy for small instances
        import itertools
        from functools import lru_cache

        from repro.ad.schedule import _forward_plan

        def brute(steps, B):
            @lru_cache(maxsize=None)
            def serve(kept, k):
                if k < 0:
                    return 0
                kept = frozenset(x for x in kept if x <= k)
                if k in kept:
                    return serve(frozenset(x for x in kept if x < k), k - 1)
                j = max(x for x in kept if x < k)
                free = (B - 1) - len(kept)
                gap = range(j + 1, k)
                best = None
                for n in range(0, min(max(free, 0), len(gap)) + 1):
                    for placed in itertools.combinations(gap, n):
                        c = (k - j) + serve(kept | frozenset(placed), k - 1)
                        if best is None or c < best:
                            best = c
                return best

            interior = list(range(1, steps))
            best = None
            for n in range(0, min(max(B - 3, 0), len(interior)) + 1):
                for placed in itertools.combinations(interior, n):
                    kept0 = frozenset({0, steps}) | frozenset(placed)
                    c = serve(kept0, steps)
                    if best is None or c < best:
                        best = c
            return best

        for steps in (2, 4, 6, 8, 10):
            for budget in (2, 3, 4):
                assert _forward_plan(steps, budget)[0] == \
                    brute(steps, budget), (steps, budget)

    def test_cg_a_default_budget_never_regresses(self):
        # CG-A (30 steps) at the default budget: the revolve tables give
        # 38 replays where the old even-split + bisection refill needed 41
        # -- recomputed_steps must never increase past that old count
        steps = 30
        budget = default_snapshot_budget(steps)
        achieved, peak = self._achieved(steps, budget)
        assert achieved == 38
        assert achieved <= 41
        assert peak <= budget

    def test_closed_form_binomial_consistency(self):
        # the DP counts a gap's full first replay, so ample slots leave
        # exactly the one pass over the segment (l - 1 steps) and zero
        # slots the quadratic replay-from-base bound
        from repro.ad.schedule import _forward_plan, optimal_replay_cost

        for length in (2, 5, 9):
            assert optimal_replay_cost(length, length) == length - 1
            assert optimal_replay_cost(length, 0) == \
                length * (length - 1) // 2
        assert optimal_replay_cost(1, 3) == 0
        # with free forward placement an ample budget needs no replays
        for length in (2, 5, 9):
            assert _forward_plan(length, length + 3)[0] == 0
        # monotone in both arguments
        for length in (4, 9, 17):
            for slots in (1, 2, 3):
                assert optimal_replay_cost(length, slots + 1) <= \
                    optimal_replay_cost(length, slots)
                assert optimal_replay_cost(length + 1, slots) >= \
                    optimal_replay_cost(length, slots)
