"""Compiled replay plans (:mod:`repro.ad.plan`): bitwise equivalence.

The trace-once/replay-many engine may only ever be a *performance*
transformation: a replayed segment must produce the exact bits a freshly
traced segment produces, for every NPB port, in the plain and the
probe-batched segmented sweeps, warm or cold.  These tests pin that, plus
the safety properties: structure divergence falls back to fresh tracing,
unsupported primitives reject the plan instead of corrupting it, and the
reusable arena never aliases anything handed back to the caller.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import ops
from repro.ad.plan import (PlanCache, coarse_signature, fine_signature)
from repro.ad.probes import segmented_batched_gradients
from repro.ad.segmented import SweepStats, segmented_gradients
from repro.core.analysis import scrutinize
from repro.npb import registry

ALL_PORTS = ("BT", "SP", "MG", "CG", "LU", "FT", "EP", "IS")

#: ports with at least one float checkpoint entry (IS is integer-only and
#: its AD sweep is the empty program)
FLOAT_PORTS = tuple(p for p in ALL_PORTS if p != "IS")


def _assert_bitwise(expected, got, label):
    a = np.asarray(expected, dtype=np.float64)
    b = np.asarray(got, dtype=np.float64)
    assert a.shape == b.shape, f"{label}: shape {a.shape} vs {b.shape}"
    assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), \
        f"{label}: bits differ"


# ---------------------------------------------------------------------------
# plan-vs-tracer gradients, all ports, plain segmented sweep
# ---------------------------------------------------------------------------

class TestPlanGradientsBitwise:
    @pytest.mark.parametrize("name", ALL_PORTS)
    def test_plain_segmented_warm_and_cold(self, name):
        bench = registry.create(name, "T")
        state = bench.checkpoint_state(max(bench.total_steps - 3, 0))
        reference = segmented_gradients(bench, state, trace_cache="off")

        cache = PlanCache()
        for sweep in range(3):   # cold (capture), compile, warm replay
            got = segmented_gradients(bench, state, plan_cache=cache)
            for key in reference:
                _assert_bitwise(reference[key], got[key],
                                f"{name}[{key}] sweep {sweep}")
        if name not in ("IS",):
            assert cache.hits > 0, "warm sweeps never replayed"
        assert cache.rejects == 0

    @pytest.mark.parametrize("name", FLOAT_PORTS)
    def test_batched_probe_segmented(self, name):
        bench = registry.create(name, "T")
        base = bench.checkpoint_state(max(bench.total_steps - 2, 0))
        rng = np.random.default_rng(7)
        watch = bench.default_watch_keys()
        states = [dict(base)]
        for _ in range(2):
            probe = dict(base)
            for key in watch:
                arr = np.asarray(probe[key], dtype=np.float64)
                probe[key] = arr + 1e-3 * rng.standard_normal(arr.shape)
            states.append(probe)

        try:
            reference = segmented_batched_gradients(bench, states,
                                                    watch=watch,
                                                    trace_cache="off")
        except Exception:
            pytest.skip(f"{name} cannot probe-batch")
        cache = PlanCache()
        for sweep in range(3):
            got = segmented_batched_gradients(bench, states, watch=watch,
                                              plan_cache=cache)
            for key in watch:
                _assert_bitwise(reference[key], got[key],
                                f"{name}[{key}] batched sweep {sweep}")
        assert cache.hits > 0
        assert cache.rejects == 0


# ---------------------------------------------------------------------------
# plan-vs-tracer masks, all ports, both probe modes
# ---------------------------------------------------------------------------

class TestPlanMasksBitwise:
    @pytest.mark.parametrize("name", ALL_PORTS)
    @pytest.mark.parametrize("probe_batching", ["batched", "per-probe"])
    def test_masks_identical(self, name, probe_batching):
        bench_off = registry.create(name, "T")
        off = scrutinize(bench_off, sweep="segmented", n_probes=2,
                         probe_batching=probe_batching, trace_cache="off")
        bench_on = registry.create(name, "T")
        on = scrutinize(bench_on, sweep="segmented", n_probes=2,
                        probe_batching=probe_batching, trace_cache="plan")
        for var, crit in off.variables.items():
            assert np.array_equal(crit.mask, on.variables[var].mask), \
                f"{name}.{var} mask differs under the replay plan"
            for key, grad in crit.gradients.items():
                _assert_bitwise(grad, on.variables[var].gradients[key],
                                f"{name}.{var}[{key}]")


# ---------------------------------------------------------------------------
# cache tiers and telemetry
# ---------------------------------------------------------------------------

class TestPlanCacheTiers:
    def test_counter_independent_port_compiles_coarse(self):
        # CG's step structure does not depend on the loop counter: two
        # captures at different counters agree and every later segment of
        # the same sweep replays
        bench = registry.create("CG", "T")
        state = bench.checkpoint_state(0)
        cache = PlanCache()
        stats = SweepStats()
        segmented_gradients(bench, state, stats=stats, plan_cache=cache)
        assert cache.compiles >= 1
        assert stats.plan_hits >= bench.total_steps - 2
        assert stats.trace_cache == "plan"
        assert stats.plan_arena_slots > 0
        assert stats.plan_arena_nbytes > 0
        # the replayed segments stay on the tape meter: same segment count
        # and node totals as a plan-off sweep
        off = SweepStats()
        segmented_gradients(bench, state, stats=off, trace_cache="off")
        assert stats.n_segments == off.n_segments
        assert stats.segment_nodes == off.segment_nodes

    def test_counter_dependent_port_refines_to_fine_tier(self):
        # FT bakes the per-iteration evolution factor into its constants:
        # the coarse captures disagree, per-counter plans compile instead,
        # and the second sweep replays them
        bench = registry.create("FT", "T")
        state = bench.checkpoint_state(0)
        cache = PlanCache()
        segmented_gradients(bench, state, plan_cache=cache)
        first_hits = cache.hits
        segmented_gradients(bench, state, plan_cache=cache)
        segmented_gradients(bench, state, plan_cache=cache)
        assert first_hits == 0
        assert cache.compiles >= bench.total_steps
        assert cache.hits >= bench.total_steps
        assert cache.rejects == 0

    def test_forward_pass_replays_on_warm_cache(self):
        bench = registry.create("CG", "T")
        state = bench.checkpoint_state(0)
        cache = PlanCache()
        segmented_gradients(bench, state, plan_cache=cache)
        before = cache.forward_replays
        segmented_gradients(bench, state, plan_cache=cache)
        assert cache.forward_replays > before

    def test_concrete_replay_matches_bench_run_bitwise(self):
        bench = registry.create("CG", "T")
        state = bench.checkpoint_state(0)
        cache = PlanCache()
        segmented_gradients(bench, state, plan_cache=cache)  # learn plans
        planner = cache.planner(bench, "step", bench.default_watch_keys())
        expected = bench.run(state, 1)
        got = planner.advance(dict(state))
        assert cache.forward_replays >= 1
        assert set(expected) == set(got)
        for key in expected:
            ev, gv = np.asarray(expected[key]), np.asarray(got[key])
            assert ev.dtype == gv.dtype, key
            assert np.array_equal(ev, gv), key
        # integer counters keep their Python type through the increment rule
        assert type(expected["it"]) is type(got["it"])


# ---------------------------------------------------------------------------
# fallback safety
# ---------------------------------------------------------------------------

class _ParityBench:
    """Fake benchmark whose op *sequence* depends on the loop counter."""

    name = "PARITY"

    def __init__(self, steps=4):
        self._steps = steps

    def default_watch_keys(self):
        return ["x"]

    def initial_state(self):
        return {"x": np.linspace(0.5, 2.0, 6), "it": 0}

    def _default_remaining_steps(self, state):
        return self._steps - int(state["it"])

    def _advance(self, state):
        x, it = state["x"], int(state["it"])
        if it % 2 == 0:
            x = x * 1.5 + 0.25          # even steps: two primitives
        else:
            x = ops.sqrt(x * x + 1.0)   # odd steps: a different chain
        return {"x": x, "it": it + 1}

    def run(self, state, steps):
        current = dict(state)
        for _ in range(steps):
            current = self._advance(current)
        return current

    def output(self, state):
        return ops.sum(state["x"] * state["x"])

    # per-iteration tracing API (mirrors NPBBenchmark)
    def _watched(self, state, watch):
        from repro.ad.tape import Tape

        traced = dict(state)
        leaves = {}
        tape = Tape()
        with tape:
            for key in watch:
                leaves[key] = tape.watch(state[key], name=key)
                traced[key] = leaves[key]
        return traced, leaves, tape

    def traced_step(self, state, watch=None):
        traced, leaves, tape = self._watched(state, watch or ["x"])
        with tape:
            nxt = self._advance(traced)
        return tape, leaves, nxt

    def traced_output(self, state, watch=None):
        traced, leaves, tape = self._watched(state, watch or ["x"])
        with tape:
            out = self.output(traced)
        return tape, leaves, out


class _UnsupportedOpBench(_ParityBench):
    """Fake benchmark using a primitive without a replay kernel."""

    name = "NOKERNEL"

    def _advance(self, state):
        # ops.clip records a node but carries no plan spec
        return {"x": ops.clip(state["x"] * 1.1, 0.0, 10.0),
                "it": int(state["it"]) + 1}


class TestStructureDivergenceFallback:
    def test_parity_bench_stays_bitwise(self):
        bench = _ParityBench()
        state = bench.initial_state()
        reference = segmented_gradients(bench, state, trace_cache="off")
        cache = PlanCache()
        for _ in range(3):
            got = segmented_gradients(bench, state, plan_cache=cache)
            _assert_bitwise(reference["x"], got["x"], "parity")
        # the two coarse captures (even/odd counters) disagreed, so no
        # counter-blind plan may exist; the per-counter fine tier replays
        # on the later sweeps instead
        entries = [e for key, e in cache._entries.items()
                   if key[0] == "step"]
        assert entries and all(e.coarse_plan is None for e in entries)
        assert cache.hits > 0

    def test_unsupported_primitive_rejects_plan(self):
        bench = _UnsupportedOpBench()
        state = bench.initial_state()
        reference = segmented_gradients(bench, state, trace_cache="off")
        cache = PlanCache()
        for _ in range(2):
            got = segmented_gradients(bench, state, plan_cache=cache)
            _assert_bitwise(reference["x"], got["x"], "unsupported")
        assert cache.rejects > 0
        assert cache.hits == 0

    def test_shape_change_misses_signature(self):
        bench = _ParityBench()
        small = bench.initial_state()
        big = {"x": np.linspace(0.5, 2.0, 9), "it": 0}
        assert coarse_signature(small) != coarse_signature(big)
        cache = PlanCache()
        for state in (small, big, small, big):
            got = segmented_gradients(bench, state, plan_cache=cache)
            ref = segmented_gradients(bench, state, trace_cache="off")
            _assert_bitwise(ref["x"], got["x"], "shape change")

    def test_fine_signature_sees_integer_arrays(self):
        a = {"x": np.ones(3), "keys": np.arange(5)}
        b = {"x": np.ones(3), "keys": np.arange(5)[::-1].copy()}
        assert coarse_signature(a) == coarse_signature(b)
        assert fine_signature(a) != fine_signature(b)

    def test_float32_state_replays_bitwise_without_concrete_forward(self):
        class _F32Bench(_ParityBench):
            name = "F32"

            def initial_state(self):
                return {"x": np.linspace(0.5, 2.0, 6,
                                         dtype=np.float32), "it": 0}

            def _advance(self, state):
                x, it = state["x"], int(state["it"])
                return {"x": x * np.float32(1.25), "it": it + 1}

        bench = _F32Bench()
        state = bench.initial_state()
        reference = segmented_gradients(bench, state, trace_cache="off")
        cache = PlanCache()
        for _ in range(3):
            got = segmented_gradients(bench, state, plan_cache=cache)
            assert got["x"].dtype == reference["x"].dtype
            assert np.array_equal(
                np.asarray(reference["x"]).view(np.uint32),
                np.asarray(got["x"]).view(np.uint32))
        # the float64 leaf cast is not the identity for float32 chains, so
        # the concrete forward must keep running the benchmark
        assert cache.forward_replays == 0
        assert cache.hits > 0


# ---------------------------------------------------------------------------
# arena isolation
# ---------------------------------------------------------------------------

class TestArenaIsolation:
    def test_returned_gradients_never_alias_the_arena(self):
        bench = registry.create("CG", "T")
        state = bench.checkpoint_state(0)
        cache = PlanCache()
        segmented_gradients(bench, state, plan_cache=cache)  # learn
        first = segmented_gradients(bench, state, plan_cache=cache)
        keep = {key: np.array(val, copy=True) for key, val in first.items()}
        # a further replay overwrites every arena buffer; results already
        # handed out must not move
        segmented_gradients(bench, state, plan_cache=cache)
        for key in keep:
            _assert_bitwise(keep[key], first[key], f"aliased[{key}]")

    def test_mutating_a_returned_gradient_does_not_poison_replays(self):
        bench = registry.create("CG", "T")
        state = bench.checkpoint_state(0)
        cache = PlanCache()
        reference = segmented_gradients(bench, state, trace_cache="off")
        got = segmented_gradients(bench, state, plan_cache=cache)
        for val in got.values():
            np.asarray(val)[...] = -1.0   # caller scribbles over the result
        again = segmented_gradients(bench, state, plan_cache=cache)
        for key in reference:
            _assert_bitwise(reference[key], again[key], f"poisoned[{key}]")

    def test_concrete_replay_next_state_survives_arena_reuse(self):
        bench = registry.create("CG", "T")
        state = bench.checkpoint_state(0)
        cache = PlanCache()
        segmented_gradients(bench, state, plan_cache=cache)  # learn
        planner = cache.planner(bench, "step", bench.default_watch_keys())
        one = planner.advance(dict(state))
        frozen = np.array(one["x"], copy=True)
        planner.advance(dict(one))
        # replaying again must not mutate the state handed out earlier
        _assert_bitwise(frozen, one["x"], "concrete next state")


# ---------------------------------------------------------------------------
# fine-tier LRU bound
# ---------------------------------------------------------------------------

class TestFinePlanLRUBound:
    """The fine tier (per-fine-signature plans for counter-dependent
    structures) is LRU-bounded so a long-lived analyzer can never grow
    memory without bound; evictions are counted and surfaced through
    :class:`SweepStats`, and an evicted plan simply recompiles on the next
    agreeing pair of visits -- gradients stay bitwise-identical."""

    def test_fine_plans_bounded_and_evictions_counted(self, monkeypatch):
        from repro.ad import plan as plan_mod

        monkeypatch.setattr(plan_mod, "_MAX_FINE_PLANS", 2)
        bench = _ParityBench(steps=6)
        state = bench.initial_state()
        reference = segmented_gradients(bench, state, trace_cache="off")

        cache = PlanCache()
        stats = SweepStats()
        for sweep in range(4):
            got = segmented_gradients(bench, state, plan_cache=cache,
                                      stats=stats)
            for key in reference:
                _assert_bitwise(reference[key], got[key],
                                f"lru[{key}] sweep {sweep}")
        # six distinct step signatures through a two-slot cache must evict
        assert cache.fine_evictions > 0
        assert stats.plan_fine_evictions == cache.fine_evictions
        assert "fine_evictions" in cache.counters()
        for entry in cache._entries.values():
            assert len(entry.fine_plans) <= 2

    def test_unbounded_run_records_no_evictions(self):
        bench = _ParityBench(steps=4)
        state = bench.initial_state()
        cache = PlanCache()
        for _ in range(3):
            segmented_gradients(bench, state, plan_cache=cache)
        assert cache.fine_evictions == 0

    def test_replay_refreshes_lru_recency(self, monkeypatch):
        from repro.ad import plan as plan_mod

        monkeypatch.setattr(plan_mod, "_MAX_FINE_PLANS", 2)
        bench = _ParityBench(steps=2)
        state = bench.initial_state()
        cache = PlanCache()
        for _ in range(3):   # capture, compile, replay both step plans
            segmented_gradients(bench, state, plan_cache=cache)
        assert cache.fine_evictions == 0   # both plans fit and stay hot
        assert cache.hits > 0
