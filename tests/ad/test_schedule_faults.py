"""Injected spill-file faults mid-sweep.

The cold-path robustness of the "spill" snapshot schedule (truncated /
missing / mislabelled files probed directly on :class:`SpillSnapshots`) is
covered in ``test_schedule.py``.  Here the faults strike *mid-sweep*: the
reverse pass has already consumed several boundaries cleanly when a spill
file is truncated, garbled or deleted under it.  The sweep must surface
:class:`~repro.ckpt.format.CheckpointFormatError` -- never deserialise
garbage into state -- and still tear its scratch directory down.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.ad.schedule import SpillSnapshots
from repro.ad.segmented import segmented_gradients
from repro.ckpt.format import CheckpointFormatError
from repro.core.analysis import scrutinize
from repro.experiments.faults import corrupt_file
from repro.npb import registry
from tests.ad.test_schedule import SquareMapBench

STEPS = 6


def _truncate(path: Path) -> None:
    raw = path.read_bytes()
    path.write_bytes(raw[:max(4, len(raw) // 3)])


def _garble(path: Path) -> None:
    raw = bytearray(path.read_bytes())
    raw[0] ^= 0xFF  # first magic byte: the container is no longer one
    path.write_bytes(bytes(raw))


def _delete(path: Path) -> None:
    path.unlink()


class _Saboteur:
    """Damages the spill file of one boundary just before its fetch."""

    def __init__(self, monkeypatch, damage, *, boundary=None, nth=None):
        assert (boundary is None) != (nth is None)
        self.damage = damage
        self.boundary = boundary
        self.nth = nth
        self.clean_fetches = 0
        self.struck = False
        original = SpillSnapshots.fetch
        saboteur = self

        def fetch(self, k):
            strike = not saboteur.struck and (
                k == saboteur.boundary if saboteur.nth is None
                else saboteur.clean_fetches + 1 == saboteur.nth)
            if strike:
                saboteur.struck = True
                self.flush()  # join the async writer before touching disk
                saboteur.damage(Path(self._files.get(k) or self._path(k)))
            else:
                saboteur.clean_fetches += 1
            return original(self, k)

        monkeypatch.setattr(SpillSnapshots, "fetch", fetch)


@pytest.mark.parametrize("damage,match", [
    (_truncate, "truncat|byte|header"),
    (_garble, "bad magic"),
    (_delete, "missing"),
], ids=["truncated", "garbled", "deleted"])
class TestMidSweepSpillFaults:
    def _run(self, tmp_path):
        bench = SquareMapBench(steps=STEPS)
        return segmented_gradients(bench, bench.initial_state(),
                                   watch=["x"], snapshot_schedule="spill",
                                   spill_dir=tmp_path)

    def test_fault_surfaces_as_format_error(self, tmp_path, monkeypatch,
                                            damage, match):
        saboteur = _Saboteur(monkeypatch, damage, boundary=2)
        with pytest.raises(CheckpointFormatError, match=match):
            self._run(tmp_path)
        assert saboteur.struck
        # the fault struck mid-sweep: boundaries steps..3 were consumed
        # cleanly before boundary 2 blew up
        assert saboteur.clean_fetches == STEPS - 2

    def test_scratch_directory_removed_on_fault(self, tmp_path, monkeypatch,
                                                damage, match):
        _Saboteur(monkeypatch, damage, boundary=2)
        with pytest.raises(CheckpointFormatError):
            self._run(tmp_path)
        assert not any(tmp_path.glob("repro-spill-*")), \
            "spill scratch directory leaked past the failed sweep"

    def test_clean_rerun_recovers(self, tmp_path, monkeypatch, damage,
                                  match):
        # a failed sweep must leave nothing behind that poisons the next one
        saboteur = _Saboteur(monkeypatch, damage, boundary=2)
        with pytest.raises(CheckpointFormatError):
            self._run(tmp_path)
        assert saboteur.struck  # the strike is one-shot; rerun is clean
        bench = SquareMapBench(steps=STEPS)
        ref = segmented_gradients(bench, bench.initial_state(), watch=["x"])
        got = self._run(tmp_path)
        np.testing.assert_array_equal(ref["x"], got["x"])


class TestChaosCorruptionOnSpill:
    """The chaos harness's file corrupter vs the container format."""

    def test_both_damage_kinds_surface_as_format_error(self, tmp_path,
                                                       monkeypatch):
        # corrupt_file picks truncation or garbling per token; walk tokens
        # until the sweep has been killed by both shapes
        kinds: set[str] = set()
        token = 0
        while kinds != {"truncated", "garbled"}:
            assert token < 32, "token walk failed to hit both damage kinds"
            record: list[str] = []
            with pytest.MonkeyPatch.context() as patcher:
                _Saboteur(
                    patcher,
                    lambda path, t=token: record.append(
                        corrupt_file(path, f"tok{t}", seed=0)),
                    boundary=2)
                with pytest.raises(CheckpointFormatError):
                    bench = SquareMapBench(steps=STEPS)
                    segmented_gradients(bench, bench.initial_state(),
                                        watch=["x"],
                                        snapshot_schedule="spill",
                                        spill_dir=tmp_path)
            kinds.update(record)
            token += 1


class TestMidSweepFaultThroughScrutinize:
    """The format error propagates through the full analysis stack."""

    def test_scrutinize_surfaces_spill_fault(self, tmp_path, monkeypatch):
        bench = registry.create("CG", "T")
        saboteur = _Saboteur(monkeypatch, _truncate, nth=2)
        with pytest.raises(CheckpointFormatError):
            scrutinize(bench, step=1, sweep="segmented",
                       snapshot_schedule="spill", spill_dir=tmp_path)
        assert saboteur.struck and saboteur.clean_fetches >= 1
