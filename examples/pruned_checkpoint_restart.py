#!/usr/bin/env python3
"""Fault-tolerant run with pruned checkpoints (the paper's Section IV-C).

Simulates the life of a real job:

1. analyse the benchmark once, offline, to learn which elements of its
   checkpoint variables are critical;
2. run the main loop writing *pruned* checkpoints every few iterations
   through the versioned checkpoint manager;
3. crash the run part-way through (simulated failure) and throw away the
   in-memory state -- the uncritical elements come back as garbage;
4. restart from the newest pruned checkpoint, finish the run and let the
   benchmark's own verification phase judge the result;
5. as a negative control, repeat the restart while refusing to recover the
   critical elements and watch the verification fail.

Run with::

    python examples/pruned_checkpoint_restart.py                 # MG, class S
    python examples/pruned_checkpoint_restart.py --benchmark BT --class T
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.ckpt import run_failure_scenario
from repro.core import scrutinize
from repro.core.report import format_bytes
from repro.npb import registry


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="MG",
                        choices=list(registry.available_benchmarks()))
    parser.add_argument("--class", dest="problem_class", default="S",
                        choices=("S", "T"))
    parser.add_argument("--interval", type=int, default=None,
                        help="checkpoint every N iterations "
                             "(default: a quarter of the run)")
    parser.add_argument("--workdir", default=None,
                        help="directory for checkpoint files")
    args = parser.parse_args()

    bench = registry.create(args.benchmark, args.problem_class)
    workdir = Path(args.workdir) if args.workdir \
        else Path(tempfile.mkdtemp(prefix="repro_cr_"))
    interval = args.interval or max(bench.total_steps // 4, 1)

    print(f"benchmark        : {bench.name} (class {args.problem_class}), "
          f"{bench.total_steps} iterations")
    print(f"checkpoint every : {interval} iterations -> {workdir}")

    print("\n[1/3] offline criticality analysis")
    result = scrutinize(bench)
    for crit in result.variables.values():
        print(f"  {crit.variable}: {crit.n_uncritical}/{crit.n_elements} "
              f"uncritical ({100 * crit.uncritical_rate:.1f}%)")
    print(f"  pruned checkpoint size {format_bytes(result.pruned_nbytes)} "
          f"vs full {format_bytes(result.full_nbytes)} "
          f"({100 * result.storage_saved_fraction:.1f}% saved, "
          f"+{format_bytes(result.aux_nbytes)} auxiliary regions)")

    print("\n[2/3] run with pruned checkpoints, crash, restart, verify")
    scenario = run_failure_scenario(bench, workdir / "run", result.variables,
                                    interval=interval, mode="pruned",
                                    corrupt="uncritical")
    print("  " + scenario.summary())
    print("  " + scenario.outcome.verification.summary().replace("\n",
                                                                  "\n  "))

    print("\n[3/3] negative control: critical elements not recovered")
    control = run_failure_scenario(bench, workdir / "control",
                                   result.variables, interval=interval,
                                   mode="pruned", corrupt="uncritical",
                                   unrecovered="critical")
    print("  " + control.summary())

    ok = scenario.verification_passed and not control.verification_passed
    print("\nresult:", "restart semantics verified, exactly as the paper "
          "reports" if ok else "UNEXPECTED outcome -- see above")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
