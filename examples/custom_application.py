#!/usr/bin/env python3
"""Scrutinizing your own application's checkpoint variables.

The NPB ports are just one family of workloads; any restartable simulation
can be analysed by implementing the four :class:`repro.npb.base.NPBBenchmark`
hooks against :mod:`repro.ad.ops`.  This example builds a small 2-D
heat-diffusion solver with a halo-padded temperature field and a
history buffer of which only a sampled subset is ever consumed -- two
realistic sources of uncritical checkpoint data -- and then:

* identifies the critical/uncritical elements with AD,
* visualises the distribution,
* writes a pruned checkpoint and restarts from it.

Run with::

    python examples/custom_application.py
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro import ckpt
from repro.ad import ops
from repro.core import CheckpointVariable, VariableKind, scrutinize
from repro.npb.base import NPBBenchmark
from repro.npb.common import VerificationResult
from repro.viz import describe_mask, legend, render_mask_2d


@dataclass(frozen=True)
class HeatParams:
    """Problem description of the toy heat solver."""

    problem_class: str = "demo"
    #: interior grid points per dimension (the array is padded by a halo of
    #: 2 on each side, but only a halo of 1 is ever read -- a deliberate
    #: "imperfect coding" pattern like the paper's padded NPB arrays)
    n: int = 24
    #: halo width actually allocated
    halo: int = 2
    #: number of time steps
    niter: int = 40
    #: diffusion number (stability requires <= 0.25 in 2-D)
    alpha: float = 0.2
    #: length of the history buffer; only every 4th entry is consumed
    history_len: int = 32

    @property
    def field_shape(self) -> tuple[int, int]:
        """Declared shape of the temperature field including the halo."""
        return (self.n + 2 * self.halo, self.n + 2 * self.halo)


class HeatDiffusion(NPBBenchmark):
    """Explicit 2-D heat diffusion with a sampled history buffer."""

    name = "HEAT"
    epsilon = 1.0e-10

    def __init__(self, params: HeatParams | None = None) -> None:
        super().__init__(params or HeatParams())
        p = self.params
        y, x = np.meshgrid(np.linspace(0, 1, p.field_shape[0]),
                           np.linspace(0, 1, p.field_shape[1]),
                           indexing="ij")
        #: fixed heat source (regenerated at restart, not checkpointed)
        self._source = 0.05 * np.exp(-60.0 * ((x - 0.3) ** 2
                                              + (y - 0.6) ** 2))
        self._reference: float | None = None

    # -- Table-I-style inventory ---------------------------------------
    def checkpoint_variables(self) -> Sequence[CheckpointVariable]:
        p = self.params
        return (
            CheckpointVariable("temp", p.field_shape, VariableKind.FLOAT,
                               description="temperature field with a 2-cell "
                                           "halo of which only 1 is used"),
            CheckpointVariable("history", (p.history_len,),
                               VariableKind.FLOAT,
                               description="mean-temperature history; only "
                                           "every 4th entry is consumed"),
            CheckpointVariable("step", (), VariableKind.INTEGER,
                               dtype=np.int64, critical_by_rule=True,
                               description="time-step counter"),
        )

    # -- dynamics -------------------------------------------------------
    def initial_state(self) -> dict[str, Any]:
        p = self.params
        temp = np.zeros(p.field_shape)
        inner = slice(p.halo, -p.halo)
        temp[inner, inner] = 1.0 + 0.1 * np.sin(
            np.linspace(0, 3 * np.pi, p.n))[None, :]
        return {"temp": temp,
                "history": np.zeros(p.history_len),
                "step": 0}

    def _advance(self, state: dict[str, Any]) -> dict[str, Any]:
        p = self.params
        lo, hi = p.halo, p.halo + p.n
        temp = state["temp"]
        center = temp[lo:hi, lo:hi]
        lap = (temp[lo - 1:hi - 1, lo:hi] + temp[lo + 1:hi + 1, lo:hi]
               + temp[lo:hi, lo - 1:hi - 1] + temp[lo:hi, lo + 1:hi + 1]
               - 4.0 * center)
        updated = center + p.alpha * lap + self._source[lo:hi, lo:hi]
        new_temp = ops.index_update(temp, (slice(lo, hi), slice(lo, hi)),
                                    updated)
        step = int(state["step"]) + 1
        new_history = ops.index_update(state["history"],
                                       (step - 1) % p.history_len,
                                       ops.mean(updated))
        return {"temp": new_temp, "history": new_history, "step": step}

    # -- output / verification -------------------------------------------
    def output(self, state: Mapping[str, Any]):
        p = self.params
        lo, hi = p.halo, p.halo + p.n
        # only every 4th history entry feeds the output (sampling)
        sampled = state["history"][0:p.history_len:4]
        return ops.sum(ops.square(state["temp"][lo:hi, lo:hi])) \
            + ops.sum(sampled)

    def verify(self, state: Mapping[str, Any]) -> VerificationResult:
        if self._reference is None:
            final = self.run(self.initial_state(), self.total_steps)
            self._reference = float(ops.to_numpy(self.output(final)))
        value = float(ops.to_numpy(self.output(state)))
        rel = abs(value - self._reference) / abs(self._reference)
        return VerificationResult(self.name, rel <= self.epsilon,
                                  self.epsilon, {"output": rel})


def main() -> int:
    bench = HeatDiffusion()
    print(bench.describe())

    print("\n[1/3] element-level criticality analysis")
    result = scrutinize(bench)
    print(result.describe())

    temp_mask = result.variables["temp"].mask
    history_mask = result.variables["history"].mask
    print("\n" + legend())
    print("temperature field (note the unused outer halo ring):")
    print(render_mask_2d(temp_mask))
    print("\nhistory buffer:", describe_mask(history_mask))

    print("\n[2/3] pruned checkpoint")
    workdir = Path(tempfile.mkdtemp(prefix="repro_heat_"))
    written = ckpt.write_pruned_checkpoint(
        workdir / "heat.ckpt", bench, result.state, result.variables,
        step=result.step)
    print(f"wrote {written.path} ({written.nbytes} bytes; full checkpoint "
          f"would be {result.full_nbytes} bytes, "
          f"{100 * result.storage_saved_fraction:.1f}% saved)")

    print("\n[3/3] restart from the pruned checkpoint")
    outcome = ckpt.restart_benchmark(bench, written.path)
    print(outcome.summary())
    return 0 if outcome.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
