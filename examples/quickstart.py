#!/usr/bin/env python3
"""Quickstart: find uncritical checkpoint elements with AD.

Two minutes of API tour:

1. the function-level entry point -- give ``element_criticality`` any scalar
   function of an array and get back the per-element critical/uncritical
   mask (derivative zero or not);
2. the application-level entry point -- ``scrutinize`` an NPB benchmark port
   and see which elements of its checkpoint variables can be dropped;
3. write a pruned checkpoint with the homemade library and restart from it;
4. the scaled-up workflow -- fan the whole suite's analyses out across
   worker processes and persist the results in an on-disk store, so the
   second sweep (and every table/figure regeneration after it) is instant.
   The CLI exposes the same engine::

       repro-scrutinize --workers 4 --cache-dir out/cache all   # cold
       repro-scrutinize --cache-dir out/cache all               # warm

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import ad, ckpt
from repro.core import element_criticality, scrutinize
from repro.experiments import ExperimentRunner
from repro.npb import registry
from repro.viz import legend, render_mask_1d


def function_level_demo() -> None:
    """Criticality of a free function's input elements."""
    print("=" * 72)
    print("1. function-level analysis")
    print("=" * 72)

    def simulation(state: np.ndarray):
        # a toy 'application': only the first 6 of 10 slots feed the output,
        # exactly like the padded array slots of the NPB codes
        used = state[:6]
        energy = ad.ops.sum(ad.ops.square(used))
        return ad.ops.sqrt(energy)

    state = np.linspace(1.0, 2.0, 10)
    mask = element_criticality(simulation, state)
    print(legend())
    print("state elements :", render_mask_1d(mask))
    print(f"-> {np.count_nonzero(~mask)} of {mask.size} elements can be "
          f"dropped from a checkpoint of `state`\n")


def benchmark_level_demo() -> Path:
    """Scrutinize an NPB port and write a pruned checkpoint."""
    print("=" * 72)
    print("2. application-level analysis (BT, reduced problem class)")
    print("=" * 72)
    bench = registry.create("BT", problem_class="T")
    result = scrutinize(bench)
    print(result.describe())
    print()
    for name, crit in result.variables.items():
        print(f"{crit.variable}:")
        print("  " + render_mask_1d(crit.mask, width=70))
    print()

    print("=" * 72)
    print("3. pruned checkpoint + restart")
    print("=" * 72)
    workdir = Path(tempfile.mkdtemp(prefix="repro_quickstart_"))
    written = ckpt.write_pruned_checkpoint(
        workdir / "bt_pruned.ckpt", bench, result.state, result.variables,
        step=result.step)
    print(f"pruned checkpoint : {written.path} ({written.nbytes} bytes)")
    print(f"auxiliary regions : {written.aux_path} ({written.aux_nbytes} "
          f"bytes)")
    print(f"full checkpoint would take {result.full_nbytes} bytes "
          f"({100 * result.storage_saved_fraction:.1f}% saved)")

    outcome = ckpt.restart_benchmark(bench, written.path)
    print(outcome.summary())
    return workdir


def suite_level_demo() -> None:
    """Parallel + cached analysis of the whole suite."""
    print("=" * 72)
    print("4. parallel sweep with a persistent result store")
    print("=" * 72)
    cache_dir = Path(tempfile.mkdtemp(prefix="repro_cache_"))
    names = registry.available_benchmarks()

    t0 = time.perf_counter()
    cold = ExperimentRunner(problem_class="T", workers=2,
                            cache_dir=cache_dir)
    cold.prefetch(names)                      # fans out, fills the store
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = ExperimentRunner(problem_class="T", cache_dir=cache_dir)
    results = warm.results(names)             # served entirely from disk
    warm_s = time.perf_counter() - t0

    for name, result in results.items():
        print(f"{name:>3}: {result.n_uncritical}/{result.n_elements} "
              f"elements uncritical")
    print(f"cold sweep {cold_s * 1000:.0f} ms -> warm sweep "
          f"{warm_s * 1000:.0f} ms ({warm.store.hits} store hits, "
          f"{warm.store.misses} misses); cache at {cache_dir}")


def main() -> None:
    function_level_demo()
    benchmark_level_demo()
    suite_level_demo()


if __name__ == "__main__":
    main()
