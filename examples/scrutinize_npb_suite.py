#!/usr/bin/env python3
"""Reproduce the paper's evaluation tables on the NPB suite.

Runs the element-level AD analysis on every benchmark the paper evaluates
and prints Tables I, II and III plus the per-figure distribution summaries,
comparing every number against what the paper reports.

Run with::

    python examples/scrutinize_npb_suite.py            # class S, the paper
    python examples/scrutinize_npb_suite.py --class T  # reduced size, fast
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentRunner, figures, table1, table2, table3
from repro.viz import legend


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--class", dest="problem_class", default="S",
                        choices=("S", "T"),
                        help="problem class (S reproduces the paper)")
    parser.add_argument("--skip-figures", action="store_true",
                        help="only print the three tables")
    args = parser.parse_args()

    runner = ExperimentRunner(problem_class=args.problem_class)

    reports = [table1.run(runner), table2.run(runner), table3.run(runner)]
    if not args.skip_figures:
        reports.append(figures.run_all(runner))

    print(legend())
    print()
    for report in reports:
        print(report.text)
        print()

    ok = all(r.matches_paper for r in reports)
    if args.problem_class != "S":
        print("note: paper comparisons only apply to class S")
        return 0
    print("overall:", "every artefact matches the paper" if ok
          else "some artefact deviates from the paper (see above)")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
