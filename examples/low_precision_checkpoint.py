#!/usr/bin/env python3
"""Impact-aware mixed-precision checkpoints (the paper's future work).

The AD analysis does not only tell us *whether* an element matters -- the
derivative magnitude says *how much*.  This example uses those magnitudes to
store low-impact elements of a checkpoint in half or single precision while
keeping high-impact elements in full double precision, tuning the error
budget against the benchmark's own verification:

1. scrutinize the benchmark (criticality masks + per-element impact);
2. build a tolerance-driven precision plan and report the tier breakdown;
3. write full, pruned and mixed-precision checkpoints and compare sizes;
4. restart from the mixed-precision checkpoint and verify;
5. show the aggressive plan that ignores the tolerance, for contrast.

Run with::

    python examples/low_precision_checkpoint.py                  # MG, class S
    python examples/low_precision_checkpoint.py --benchmark LU
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.core.report import format_bytes
from repro.experiments import precision
from repro.experiments.runner import ExperimentRunner

TIER_NAMES = {0: "dropped", 1: "half (f16)", 2: "single (f32)",
              3: "double (f64)"}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="MG",
                        choices=list(precision.DEFAULT_BENCHMARKS))
    parser.add_argument("--class", dest="problem_class", default="S",
                        choices=("S", "T"))
    parser.add_argument("--budget-fraction", type=float,
                        default=precision.DEFAULT_BUDGET_FRACTION,
                        help="starting error budget as a fraction of "
                             "tolerance x output magnitude")
    args = parser.parse_args()

    runner = ExperimentRunner(problem_class=args.problem_class)
    workdir = Path(tempfile.mkdtemp(prefix="repro_precision_"))
    report = precision.run(runner, benchmarks=(args.benchmark,),
                           budget_fraction=args.budget_fraction,
                           directory=workdir)
    print(report.text)

    entry = report.data[args.benchmark]
    print(f"\nper-tier element counts ({args.benchmark}):")
    for tier, count in sorted(entry["tier_counts"].items()):
        print(f"  {TIER_NAMES[tier]:<14} {count}")
    print(f"\nfirst-order roundoff bound : {entry['roundoff_bound']:.3e}")
    print(f"tuned error budget         : {entry['budget']:.3e} "
          f"(found in {entry['trials']} trial(s))")
    print(f"storage: full {format_bytes(entry['full_nbytes'])} -> pruned "
          f"{format_bytes(entry['pruned_nbytes'])} -> mixed "
          f"{format_bytes(entry['mixed_nbytes'])}")
    return 0 if report.matches_paper else 1


if __name__ == "__main__":
    raise SystemExit(main())
