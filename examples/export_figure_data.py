#!/usr/bin/env python3
"""Regenerate the paper's figures and export plot-ready data files.

Produces, for each of Figures 3-8, a terminal rendering plus CSV / JSON /
PGM artefacts of the underlying criticality masks so the 3-D scatter plots
of the paper can be rebuilt with any external plotting tool.

Run with::

    python examples/export_figure_data.py --out out/figures
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import ExperimentRunner, figures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="figure_data",
                        help="output directory for the exported artefacts")
    parser.add_argument("--class", dest="problem_class", default="S",
                        choices=("S", "T"))
    parser.add_argument("--figure", default=None,
                        choices=sorted(figures.FIGURES),
                        help="export a single figure only")
    args = parser.parse_args()

    out = Path(args.out)
    runner = ExperimentRunner(problem_class=args.problem_class)

    if args.figure:
        report = figures.run(args.figure, runner, export_dir=out)
        reports = [report]
    else:
        reports = [figures.run(name, runner, export_dir=out)
                   for name in sorted(figures.FIGURES)]

    for report in reports:
        print(report.text)
        print()

    exported = sorted(p.name for p in out.glob("*"))
    print(f"exported {len(exported)} files to {out}:")
    for name in exported:
        print(f"  {name}")
    return 0 if all(r.matches_paper for r in reports) else 1


if __name__ == "__main__":
    raise SystemExit(main())
