"""Text-based visualisation of critical/uncritical distributions.

Terminal equivalents of the paper's Figures 3-8 (character grids and run
summaries) plus exporters that leave CSV/JSON/PGM artefacts for external
plotting tools.
"""

from .ascii_plot import (CRITICAL_CHAR, UNCRITICAL_CHAR, downsample_mask,
                         legend, render_mask_1d, render_mask_2d, render_runs)
from .export import export_mask, mask_to_csv, mask_to_json, plane_to_pgm
from .slices import (component_cubes, cube_planes, describe_mask,
                     identical_components, render_cube)

__all__ = [
    "CRITICAL_CHAR",
    "UNCRITICAL_CHAR",
    "legend",
    "render_mask_1d",
    "render_mask_2d",
    "render_runs",
    "downsample_mask",
    "component_cubes",
    "cube_planes",
    "render_cube",
    "describe_mask",
    "identical_components",
    "export_mask",
    "mask_to_csv",
    "mask_to_json",
    "plane_to_pgm",
]
