"""Decomposing 3-D/4-D criticality masks into viewable slices.

The paper's Figures 3, 4, 7 and 8 are 3-D cubes; a terminal shows them one
2-D plane at a time.  This module slices component cubes out of 4-D
variables (``u[12][13][13][5]`` -> five ``12x13x13`` cubes, the paper's own
decomposition), renders a cube plane-by-plane and produces the textual
descriptions ("uncritical elements are distributed on the two surfaces of
the cube at y = 12 and z = 12") the experiment drivers print.
"""

from __future__ import annotations

import numpy as np

from repro.core.masks import as_mask, component_masks, uncritical_planes

from .ascii_plot import render_mask_2d

__all__ = [
    "component_cubes",
    "cube_planes",
    "render_cube",
    "describe_mask",
    "identical_components",
]


def component_cubes(mask4d: np.ndarray, axis: int = -1) -> list[np.ndarray]:
    """Split a 4-D variable mask into its per-component 3-D cubes."""
    mask4d = as_mask(mask4d)
    if mask4d.ndim != 4:
        raise ValueError(f"expected a 4-D mask, got shape {mask4d.shape}")
    return component_masks(mask4d, axis=axis)


def identical_components(mask4d: np.ndarray, axis: int = -1) -> bool:
    """True when every component cube has the same criticality pattern.

    The paper observes this for BT/SP ``u`` ("all five three-dimensional
    arrays share the same critical-uncritical distribution pattern") and its
    *failure* for LU ``u`` (the fifth component differs, Figure 7).
    """
    cubes = component_cubes(mask4d, axis=axis)
    first = cubes[0]
    return all(np.array_equal(first, cube) for cube in cubes[1:])


def cube_planes(mask3d: np.ndarray, axis: int = 0) -> list[np.ndarray]:
    """The 2-D planes of a 3-D mask along ``axis``."""
    mask3d = as_mask(mask3d)
    if mask3d.ndim != 3:
        raise ValueError(f"expected a 3-D mask, got shape {mask3d.shape}")
    return [np.take(mask3d, i, axis=axis) for i in range(mask3d.shape[axis])]


def render_cube(mask3d: np.ndarray, axis: int = 0,
                plane_label: str = "k") -> str:
    """Render a 3-D mask plane-by-plane along ``axis``."""
    blocks = []
    for index, plane in enumerate(cube_planes(mask3d, axis=axis)):
        critical = int(np.count_nonzero(plane))
        blocks.append(f"--- {plane_label} = {index} "
                      f"({critical}/{plane.size} critical) ---")
        blocks.append(render_mask_2d(plane))
    return "\n".join(blocks)


def describe_mask(mask: np.ndarray, axis_names: tuple[str, ...] | None = None
                  ) -> str:
    """Textual description of a mask's uncritical structure.

    Reports the totals, any fully uncritical planes per axis (the padded
    faces of Figure 3, the top layer of Figure 8) and whether the mask is a
    contiguous critical prefix (Figure 4 / Figure 6 shape).
    """
    mask = as_mask(mask)
    total = int(mask.size)
    critical = int(np.count_nonzero(mask))
    uncritical = total - critical
    lines = [f"{critical} critical, {uncritical} uncritical of {total} "
             f"elements ({100.0 * uncritical / total if total else 0.0:.1f}% "
             f"uncritical)"]

    if uncritical == 0:
        lines.append("every element is critical")
        return "\n".join(lines)

    names = axis_names or tuple(f"axis{i}" for i in range(mask.ndim))
    for axis, indices in uncritical_planes(mask).items():
        label = names[axis] if axis < len(names) else f"axis{axis}"
        idx = ", ".join(str(i) for i in indices)
        lines.append(f"fully uncritical planes at {label} = {idx}")

    flat = mask.reshape(-1)
    first_uncritical = int(np.argmin(flat)) if not flat.all() else total
    if flat[:first_uncritical].all() and not flat[first_uncritical:].any():
        lines.append(f"contiguous critical prefix of {first_uncritical} "
                     f"elements followed by an uncritical tail")
    return "\n".join(lines)
