"""Text-mode rendering of criticality masks.

The paper visualises critical/uncritical distributions as red/blue 3-D
figures; this terminal-friendly equivalent renders masks with one character
per element (``#`` critical, ``.`` uncritical), plus compact run summaries
for long 1-D variables such as MG's 46480-element arrays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.masks import as_mask
from repro.core.regions import Region, encode_mask

__all__ = [
    "CRITICAL_CHAR",
    "UNCRITICAL_CHAR",
    "legend",
    "render_mask_1d",
    "render_mask_2d",
    "render_runs",
    "downsample_mask",
]


#: character used for critical elements (the paper's red)
CRITICAL_CHAR = "#"
#: character used for uncritical elements (the paper's blue)
UNCRITICAL_CHAR = "."


def legend() -> str:
    """One-line legend matching the paper's colour coding."""
    return (f"'{CRITICAL_CHAR}' critical (red in the paper), "
            f"'{UNCRITICAL_CHAR}' uncritical (blue in the paper)")


def downsample_mask(mask: np.ndarray, width: int) -> np.ndarray:
    """Reduce a flat mask to ``width`` buckets (bucket critical if any is).

    Rendering a 46480-element array at full resolution is useless in a
    terminal; each output bucket is marked critical when it contains at
    least one critical element, so uncritical buckets are guaranteed to be
    entirely uncritical.
    """
    flat = as_mask(mask).reshape(-1)
    width = int(width)
    if width < 1:
        raise ValueError("width must be positive")
    if flat.size <= width:
        return flat
    edges = np.linspace(0, flat.size, width + 1).astype(np.int64)
    return np.array([flat[a:b].any() for a, b in zip(edges[:-1], edges[1:])],
                    dtype=bool)


def render_mask_1d(mask: np.ndarray, width: int = 80,
                   show_counts: bool = True) -> str:
    """Render a (flattened) mask as one or more character rows.

    Parameters
    ----------
    mask:
        Boolean criticality mask (any shape; flattened in C order).
    width:
        Maximum characters per row; longer masks are downsampled.
    show_counts:
        Append the critical/uncritical counts after the bar.
    """
    flat = as_mask(mask).reshape(-1)
    buckets = downsample_mask(flat, width)
    bar = "".join(CRITICAL_CHAR if b else UNCRITICAL_CHAR for b in buckets)
    if not show_counts:
        return bar
    critical = int(np.count_nonzero(flat))
    return (f"{bar}  [{critical} critical / "
            f"{flat.size - critical} uncritical of {flat.size}]")


def render_mask_2d(mask: np.ndarray, row_label: str = "",
                   col_label: str = "") -> str:
    """Render a 2-D mask as a character grid with optional axis labels."""
    grid = as_mask(mask)
    if grid.ndim != 2:
        raise ValueError(f"render_mask_2d needs a 2-D mask, got shape "
                         f"{grid.shape}")
    lines = []
    if col_label:
        lines.append(f"    {col_label} ->")
    for i, row in enumerate(grid):
        prefix = f"{i:3d} " if not row_label else f"{row_label}={i:<3d} "
        lines.append(prefix + "".join(
            CRITICAL_CHAR if cell else UNCRITICAL_CHAR for cell in row))
    return "\n".join(lines)


def render_runs(mask: np.ndarray, max_runs: int = 20) -> str:
    """Describe the critical runs of a mask (Figure 5/6-style summaries)."""
    regions = encode_mask(mask)
    total = int(np.asarray(mask).size)
    if not regions:
        return f"no critical elements (all {total} uncritical)"
    head: Sequence[Region] = regions[:max_runs]
    parts = [f"[{r.start}, {r.stop}) ({len(r)} elements)" for r in head]
    suffix = "" if len(regions) <= max_runs \
        else f" ... and {len(regions) - max_runs} more runs"
    covered = sum(len(r) for r in regions)
    return (f"{len(regions)} critical runs covering {covered}/{total} "
            f"elements: " + ", ".join(parts) + suffix)
