"""Exporting criticality masks and figure data to files.

The figures of the paper are 3-D scatter plots; this module writes the
underlying data in formats external plotting tools consume directly:

* CSV of per-element coordinates and criticality flags;
* JSON summaries (shape, counts, critical regions);
* PGM (portable graymap) images of 2-D planes, viewable anywhere.

The figure experiment drivers (:mod:`repro.experiments.figures`) call
:func:`export_mask` for every figure so a reproduction run leaves plot-ready
artefacts next to the text output.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.masks import as_mask, summarize_mask
from repro.core.regions import encode_mask

__all__ = [
    "mask_to_csv",
    "mask_to_json",
    "plane_to_pgm",
    "export_mask",
]


def mask_to_csv(mask: np.ndarray, path: str | Path) -> Path:
    """Write one row per element: its N-D coordinates and critical flag."""
    mask = as_mask(mask)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([f"i{d}" for d in range(mask.ndim)] + ["critical"])
        for coords in np.ndindex(*mask.shape):
            writer.writerow(list(coords) + [int(mask[coords])])
    return path


def mask_to_json(mask: np.ndarray, path: str | Path, name: str = "mask",
                 metadata: Mapping[str, Any] | None = None) -> Path:
    """Write a JSON summary: shape, counts and the critical runs."""
    mask = as_mask(mask)
    summary = summarize_mask(name, mask)
    payload = {
        "name": name,
        "shape": list(mask.shape),
        "total": summary.total,
        "critical": summary.critical,
        "uncritical": summary.uncritical,
        "uncritical_rate": summary.uncritical_rate,
        "critical_regions": [[r.start, r.stop] for r in encode_mask(mask)],
    }
    if metadata:
        payload["metadata"] = dict(metadata)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def plane_to_pgm(plane: np.ndarray, path: str | Path) -> Path:
    """Write a 2-D mask as an ASCII PGM image (critical white, uncritical
    black)."""
    plane = as_mask(plane)
    if plane.ndim != 2:
        raise ValueError(f"plane_to_pgm needs a 2-D mask, got {plane.shape}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows, cols = plane.shape
    lines = ["P2", f"{cols} {rows}", "255"]
    for row in plane:
        lines.append(" ".join("255" if cell else "0" for cell in row))
    path.write_text("\n".join(lines) + "\n")
    return path


def export_mask(mask: np.ndarray, directory: str | Path, name: str,
                metadata: Mapping[str, Any] | None = None,
                write_csv: bool = True) -> dict[str, Path]:
    """Write the JSON summary (+ optional CSV, + PGMs of 2-D/3-D masks).

    Returns the mapping of artefact kind to path so callers can report what
    was produced.
    """
    mask = as_mask(mask)
    directory = Path(directory)
    artefacts: dict[str, Path] = {}
    artefacts["json"] = mask_to_json(mask, directory / f"{name}.json",
                                     name=name, metadata=metadata)
    if write_csv:
        artefacts["csv"] = mask_to_csv(mask, directory / f"{name}.csv")
    if mask.ndim == 2:
        artefacts["pgm"] = plane_to_pgm(mask, directory / f"{name}.pgm")
    elif mask.ndim == 3:
        # middle plane along the first axis as a representative image
        mid = mask.shape[0] // 2
        artefacts["pgm"] = plane_to_pgm(mask[mid],
                                        directory / f"{name}_k{mid}.pgm")
    return artefacts
