"""Primitive array operations with their vector-Jacobian products (VJPs).

This module is both

* the **primitive library** of the reverse-mode AD engine -- every function
  here knows how to compute its value with NumPy *and* how to pull a
  cotangent back to its inputs -- and
* the **numpy-like facade** the NPB mini-apps are written against: every
  function accepts either plain numpy arrays (in which case it behaves
  exactly like the corresponding :mod:`numpy` function and returns plain
  numpy data) or traced :class:`~repro.ad.tensor.ADArray` objects (in which
  case the operation is recorded on the tape of its traced operands).

The design follows the guidance of the HPC-Python coding guides used for
this project: hot paths stay fully vectorised (the tape records *array*
operations, never per-element ones), gradient buffers are reused in place
during the reverse sweep, and no Python-level loop runs over array elements.

Only the primitives required by the NPB kernels and the checkpoint analysis
are implemented; adding a new primitive means adding one function following
the ``_record`` pattern below.
"""

from __future__ import annotations

import builtins
from typing import Any, Callable, Sequence

import numpy as np

from .tape import Tape, _TAPES, get_active_tape
from .tensor import ADArray, value_of

__all__ = [
    # elementwise binary
    "add", "subtract", "multiply", "divide", "power", "maximum", "minimum",
    "mod",
    # elementwise unary
    "negative", "absolute", "sqrt", "exp", "log", "log1p", "expm1",
    "sin", "cos", "tan", "tanh", "sign", "square", "reciprocal", "clip",
    # reductions
    "sum", "mean", "max", "min", "prod", "norm",
    # shape manipulation
    "reshape", "transpose", "swapaxes", "broadcast_to", "concatenate",
    "stack", "moveaxis", "squeeze", "expand_dims", "ravel", "flip", "roll",
    "pad_zero",
    # selection / indexing
    "getitem", "take", "index_update", "index_add", "where", "copy",
    "astype", "detach",
    # linear algebra
    "matmul", "dot", "outer",
    # constructors / passthrough helpers
    "zeros", "ones", "full", "zeros_like", "ones_like", "arange", "linspace",
    "asarray", "array",
    # misc
    "isnan", "isfinite", "allclose", "to_numpy",
]


# ---------------------------------------------------------------------------
# recording machinery
# ---------------------------------------------------------------------------

def _traced_parents(*operands: Any) -> list[ADArray]:
    """Return the operands that are traced ADArrays, in order."""
    return [x for x in operands if isinstance(x, ADArray) and x.node is not None]


def _target_tape(parents: Sequence[ADArray]) -> Tape | None:
    """Pick the tape new nodes should be recorded on.

    Preference order: the innermost *active* tape (if any), falling back to
    the tape of the first traced parent.  When tracing is suspended with
    :class:`repro.ad.tape.no_tape`, returns ``None`` and the operation is
    not recorded.
    """
    if _TAPES.stack:
        return _TAPES.stack[-1]  # may be None inside ``no_tape``
    if parents:
        return parents[0].tape
    return None


def _record(op: str, value: np.ndarray, parents: Sequence[ADArray],
            vjp: Callable[[np.ndarray], tuple],
            meta: dict | None = None) -> Any:
    """Record one primitive and wrap its output.

    If there are no traced parents, or tracing is suspended, the plain numpy
    value is returned so untraced code pays no overhead.
    """
    parents = list(parents)
    if not parents:
        return value
    tape = _target_tape(parents)
    if tape is None:
        return value
    node = tape.add_node(op, [p.node for p in parents], vjp,
                         np.shape(value), np.asarray(value).dtype, meta=meta)
    return ADArray(value, node=node, tape=tape)


def _unbroadcast(g: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce a broadcasted cotangent ``g`` back down to ``shape``."""
    g = np.asarray(g)
    if g.shape == tuple(shape):
        return g
    # sum over leading broadcast dimensions
    while g.ndim > len(shape):
        g = g.sum(axis=0)
    # sum over axes that were size-1 in the original shape
    for axis, dim in enumerate(shape):
        if dim == 1 and g.shape[axis] != 1:
            g = g.sum(axis=axis, keepdims=True)
    return g.reshape(shape)


def to_numpy(x: Any) -> np.ndarray:
    """Concrete numpy value of ``x`` (identity for plain arrays)."""
    return value_of(x)


# ---------------------------------------------------------------------------
# elementwise binary primitives
# ---------------------------------------------------------------------------

def add(a: Any, b: Any) -> Any:
    """Elementwise ``a + b`` with NumPy broadcasting."""
    av, bv = value_of(a), value_of(b)
    out = av + bv
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(_unbroadcast(g, av.shape))
        if isinstance(b, ADArray) and b.node is not None:
            grads.append(_unbroadcast(g, bv.shape))
        return tuple(grads)

    return _record("add", out, parents, vjp)


def subtract(a: Any, b: Any) -> Any:
    """Elementwise ``a - b`` with NumPy broadcasting."""
    av, bv = value_of(a), value_of(b)
    out = av - bv
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(_unbroadcast(g, av.shape))
        if isinstance(b, ADArray) and b.node is not None:
            grads.append(_unbroadcast(-g, bv.shape))
        return tuple(grads)

    return _record("subtract", out, parents, vjp)


def multiply(a: Any, b: Any) -> Any:
    """Elementwise ``a * b`` with NumPy broadcasting."""
    av, bv = value_of(a), value_of(b)
    out = av * bv
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(_unbroadcast(g * bv, av.shape))
        if isinstance(b, ADArray) and b.node is not None:
            grads.append(_unbroadcast(g * av, bv.shape))
        return tuple(grads)

    return _record("multiply", out, parents, vjp)


def divide(a: Any, b: Any) -> Any:
    """Elementwise true division ``a / b``."""
    av, bv = value_of(a), value_of(b)
    out = av / bv
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(_unbroadcast(g / bv, av.shape))
        if isinstance(b, ADArray) and b.node is not None:
            grads.append(_unbroadcast(-g * av / (bv * bv), bv.shape))
        return tuple(grads)

    return _record("divide", out, parents, vjp)


def power(a: Any, b: Any) -> Any:
    """Elementwise ``a ** b``.

    The exponent may be traced, but the usual use in the kernels is a
    constant scalar exponent, for which the VJP reduces to
    ``g * b * a**(b-1)``.
    """
    av, bv = value_of(a), value_of(b)
    out = av ** bv
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(_unbroadcast(g * bv * av ** (bv - 1.0), av.shape))
        if isinstance(b, ADArray) and b.node is not None:
            with np.errstate(divide="ignore", invalid="ignore"):
                loga = np.where(av > 0, np.log(np.where(av > 0, av, 1.0)), 0.0)
            grads.append(_unbroadcast(g * out * loga, np.shape(bv)))
        return tuple(grads)

    return _record("power", out, parents, vjp)


def maximum(a: Any, b: Any) -> Any:
    """Elementwise maximum; ties send the cotangent to the first operand."""
    av, bv = value_of(a), value_of(b)
    out = np.maximum(av, bv)
    parents = _traced_parents(a, b)
    mask_a = av >= bv

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(_unbroadcast(g * mask_a, np.shape(av)))
        if isinstance(b, ADArray) and b.node is not None:
            grads.append(_unbroadcast(g * (~mask_a), np.shape(bv)))
        return tuple(grads)

    return _record("maximum", out, parents, vjp)


def minimum(a: Any, b: Any) -> Any:
    """Elementwise minimum; ties send the cotangent to the first operand."""
    av, bv = value_of(a), value_of(b)
    out = np.minimum(av, bv)
    parents = _traced_parents(a, b)
    mask_a = av <= bv

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(_unbroadcast(g * mask_a, np.shape(av)))
        if isinstance(b, ADArray) and b.node is not None:
            grads.append(_unbroadcast(g * (~mask_a), np.shape(bv)))
        return tuple(grads)

    return _record("minimum", out, parents, vjp)


def mod(a: Any, b: Any) -> Any:
    """Elementwise ``a % b``; derivative taken w.r.t. ``a`` only."""
    av, bv = value_of(a), value_of(b)
    out = np.mod(av, bv)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (_unbroadcast(g, np.shape(av)),)

    return _record("mod", out, parents, vjp)


# ---------------------------------------------------------------------------
# elementwise unary primitives
# ---------------------------------------------------------------------------

def _unary(op: str, a: Any, out: np.ndarray,
           dydx: Callable[[], np.ndarray]) -> Any:
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (g * dydx(),)

    return _record(op, out, parents, vjp)


def negative(a: Any) -> Any:
    """Elementwise negation."""
    av = value_of(a)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (-g,)

    return _record("negative", -av, parents, vjp)


def absolute(a: Any) -> Any:
    """Elementwise absolute value (subgradient ``sign(a)`` at 0)."""
    av = value_of(a)
    return _unary("absolute", a, np.abs(av), lambda: np.sign(av))


def sqrt(a: Any) -> Any:
    """Elementwise square root."""
    av = value_of(a)
    out = np.sqrt(av)
    return _unary("sqrt", a, out, lambda: 0.5 / np.where(out == 0, np.inf, out))


def exp(a: Any) -> Any:
    """Elementwise exponential."""
    av = value_of(a)
    out = np.exp(av)
    return _unary("exp", a, out, lambda: out)


def expm1(a: Any) -> Any:
    """Elementwise ``exp(a) - 1``."""
    av = value_of(a)
    return _unary("expm1", a, np.expm1(av), lambda: np.exp(av))


def log(a: Any) -> Any:
    """Elementwise natural logarithm."""
    av = value_of(a)
    return _unary("log", a, np.log(av), lambda: 1.0 / av)


def log1p(a: Any) -> Any:
    """Elementwise ``log(1 + a)``."""
    av = value_of(a)
    return _unary("log1p", a, np.log1p(av), lambda: 1.0 / (1.0 + av))


def sin(a: Any) -> Any:
    """Elementwise sine."""
    av = value_of(a)
    return _unary("sin", a, np.sin(av), lambda: np.cos(av))


def cos(a: Any) -> Any:
    """Elementwise cosine."""
    av = value_of(a)
    return _unary("cos", a, np.cos(av), lambda: -np.sin(av))


def tan(a: Any) -> Any:
    """Elementwise tangent."""
    av = value_of(a)
    return _unary("tan", a, np.tan(av), lambda: 1.0 / np.cos(av) ** 2)


def tanh(a: Any) -> Any:
    """Elementwise hyperbolic tangent."""
    av = value_of(a)
    out = np.tanh(av)
    return _unary("tanh", a, out, lambda: 1.0 - out ** 2)


def sign(a: Any) -> Any:
    """Elementwise sign; derivative is zero almost everywhere."""
    av = value_of(a)
    return _unary("sign", a, np.sign(av), lambda: np.zeros_like(av))


def square(a: Any) -> Any:
    """Elementwise square."""
    av = value_of(a)
    return _unary("square", a, av * av, lambda: 2.0 * av)


def reciprocal(a: Any) -> Any:
    """Elementwise ``1 / a``."""
    av = value_of(a)
    return _unary("reciprocal", a, 1.0 / av, lambda: -1.0 / (av * av))


def clip(a: Any, lo: float, hi: float) -> Any:
    """Clamp values to ``[lo, hi]``; cotangent passes only inside the range."""
    av = value_of(a)
    out = np.clip(av, lo, hi)
    inside = (av >= lo) & (av <= hi)
    return _unary("clip", a, out, lambda: inside.astype(av.dtype))


def isnan(a: Any) -> np.ndarray:
    """Non-differentiable NaN test on the concrete value."""
    return np.isnan(value_of(a))


def isfinite(a: Any) -> np.ndarray:
    """Non-differentiable finiteness test on the concrete value."""
    return np.isfinite(value_of(a))


def allclose(a: Any, b: Any, rtol: float = 1e-5, atol: float = 1e-8) -> bool:
    """Non-differentiable closeness test on concrete values."""
    return bool(np.allclose(value_of(a), value_of(b), rtol=rtol, atol=atol))


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def sum(a: Any, axis=None, keepdims: bool = False) -> Any:
    """Sum of elements over the given axis."""
    av = value_of(a)
    out = np.sum(av, axis=axis, keepdims=keepdims)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, av.shape).copy(),)

    return _record("sum", out, parents, vjp)


def mean(a: Any, axis=None, keepdims: bool = False) -> Any:
    """Arithmetic mean over the given axis."""
    av = value_of(a)
    out = np.mean(av, axis=axis, keepdims=keepdims)
    parents = _traced_parents(a)
    count = av.size if axis is None else np.prod(
        [av.shape[ax] for ax in np.atleast_1d(axis)], dtype=np.int64)

    def vjp(g: np.ndarray) -> tuple:
        g = np.asarray(g) / count
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, av.shape).copy(),)

    return _record("mean", out, parents, vjp)


def _minmax_vjp(av: np.ndarray, out: np.ndarray, axis, keepdims: bool):
    def vjp(g: np.ndarray) -> tuple:
        g = np.asarray(g)
        out_k = out
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
            out_k = np.expand_dims(out, axis=axis)
        mask = (av == out_k)
        # split the cotangent equally across ties to keep the VJP a linear map
        denom = mask.sum(axis=axis, keepdims=True) if axis is not None \
            else mask.sum()
        return (mask * g / denom,)

    return vjp


def max(a: Any, axis=None, keepdims: bool = False) -> Any:
    """Maximum over the given axis (ties share the cotangent equally)."""
    av = value_of(a)
    out = np.max(av, axis=axis, keepdims=keepdims)
    parents = _traced_parents(a)
    return _record("max", out, parents, _minmax_vjp(av, out, axis, keepdims))


def min(a: Any, axis=None, keepdims: bool = False) -> Any:
    """Minimum over the given axis (ties share the cotangent equally)."""
    av = value_of(a)
    out = np.min(av, axis=axis, keepdims=keepdims)
    parents = _traced_parents(a)
    return _record("min", out, parents, _minmax_vjp(av, out, axis, keepdims))


def prod(a: Any, axis=None, keepdims: bool = False) -> Any:
    """Product over the given axis (assumes no exact zeros for the VJP)."""
    av = value_of(a)
    out = np.prod(av, axis=axis, keepdims=keepdims)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        g = np.asarray(g)
        out_k = out
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
            out_k = np.expand_dims(out, axis=axis)
        safe = np.where(av == 0, 1.0, av)
        return (g * out_k / safe,)

    return _record("prod", out, parents, vjp)


def norm(a: Any, ord: int = 2) -> Any:
    """Flattened vector norm built from differentiable primitives.

    Only ``ord in (1, 2)`` is supported; the NPB verification norms are
    2-norms and max-norms (use :func:`max` with :func:`absolute` for the
    latter).
    """
    flat = reshape(a, (-1,))
    if ord == 1:
        return sum(absolute(flat))
    if ord == 2:
        return sqrt(sum(flat * flat))
    raise ValueError(f"unsupported norm order: {ord!r}")


# ---------------------------------------------------------------------------
# shape manipulation
# ---------------------------------------------------------------------------

def reshape(a: Any, shape) -> Any:
    """Reshape to ``shape`` (a view-like differentiable operation)."""
    av = value_of(a)
    out = np.reshape(av, shape)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.reshape(g, av.shape),)

    return _record("reshape", out, parents, vjp)


def ravel(a: Any) -> Any:
    """Flatten to one dimension."""
    return reshape(a, (-1,))


def transpose(a: Any, axes=None) -> Any:
    """Permute array axes."""
    av = value_of(a)
    out = np.transpose(av, axes)
    parents = _traced_parents(a)
    if axes is None:
        inv_axes = None
    else:
        inv_axes = np.argsort(axes)

    def vjp(g: np.ndarray) -> tuple:
        return (np.transpose(g, inv_axes),)

    return _record("transpose", out, parents, vjp)


def swapaxes(a: Any, axis1: int, axis2: int) -> Any:
    """Interchange two axes."""
    av = value_of(a)
    out = np.swapaxes(av, axis1, axis2)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.swapaxes(g, axis1, axis2),)

    return _record("swapaxes", out, parents, vjp)


def moveaxis(a: Any, source, destination) -> Any:
    """Move array axes to new positions."""
    av = value_of(a)
    out = np.moveaxis(av, source, destination)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.moveaxis(g, destination, source),)

    return _record("moveaxis", out, parents, vjp)


def broadcast_to(a: Any, shape) -> Any:
    """Broadcast to a new shape."""
    av = value_of(a)
    out = np.broadcast_to(av, shape)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (_unbroadcast(g, av.shape),)

    return _record("broadcast_to", np.array(out), parents, vjp)


def squeeze(a: Any, axis=None) -> Any:
    """Remove size-1 dimensions."""
    av = value_of(a)
    out = np.squeeze(av, axis=axis)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.reshape(g, av.shape),)

    return _record("squeeze", out, parents, vjp)


def expand_dims(a: Any, axis) -> Any:
    """Insert a size-1 dimension at ``axis``."""
    av = value_of(a)
    out = np.expand_dims(av, axis)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.reshape(g, av.shape),)

    return _record("expand_dims", out, parents, vjp)


def concatenate(arrays: Sequence[Any], axis: int = 0) -> Any:
    """Join arrays along an existing axis."""
    values = [value_of(a) for a in arrays]
    out = np.concatenate(values, axis=axis)
    parents = _traced_parents(*arrays)
    # offsets of every *traced* input along the concat axis
    sizes = [v.shape[axis] for v in values]
    offsets = np.cumsum([0] + sizes)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        for arr, val, start, stop in zip(arrays, values, offsets[:-1], offsets[1:]):
            if isinstance(arr, ADArray) and arr.node is not None:
                index = [slice(None)] * g.ndim
                index[axis] = slice(start, stop)
                grads.append(g[tuple(index)])
        return tuple(grads)

    return _record("concatenate", out, parents, vjp)


def stack(arrays: Sequence[Any], axis: int = 0) -> Any:
    """Join arrays along a new axis."""
    values = [value_of(a) for a in arrays]
    out = np.stack(values, axis=axis)
    parents = _traced_parents(*arrays)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        for i, arr in enumerate(arrays):
            if isinstance(arr, ADArray) and arr.node is not None:
                grads.append(np.take(g, i, axis=axis))
        return tuple(grads)

    return _record("stack", out, parents, vjp)


def flip(a: Any, axis=None) -> Any:
    """Reverse element order along the given axis."""
    av = value_of(a)
    out = np.flip(av, axis=axis)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.flip(g, axis=axis),)

    return _record("flip", out, parents, vjp)


def roll(a: Any, shift, axis=None) -> Any:
    """Circularly shift elements along an axis (periodic stencils)."""
    av = value_of(a)
    out = np.roll(av, shift, axis=axis)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.roll(g, -np.asarray(shift) if np.ndim(shift) else -shift,
                        axis=axis),)

    return _record("roll", out, parents, vjp)


def pad_zero(a: Any, pad_width) -> Any:
    """Zero-pad an array (``numpy.pad`` with constant zeros)."""
    av = value_of(a)
    out = np.pad(av, pad_width, mode="constant")
    parents = _traced_parents(a)
    norm_pad = np.asarray(np.broadcast_to(np.asarray(pad_width, dtype=np.int64)
                                          .reshape(-1, 2) if np.ndim(pad_width) > 0
                                          else [[pad_width, pad_width]],
                                          (av.ndim, 2)))

    def vjp(g: np.ndarray) -> tuple:
        index = tuple(slice(before, before + size)
                      for (before, _after), size in zip(norm_pad, av.shape))
        return (g[index],)

    return _record("pad_zero", out, parents, vjp)


# ---------------------------------------------------------------------------
# selection and indexing
# ---------------------------------------------------------------------------

def _index_values(index: Any) -> Any:
    """Strip ADArray wrappers from an index expression (indices are data)."""
    if isinstance(index, ADArray):
        return index.value
    if isinstance(index, tuple):
        return tuple(_index_values(i) for i in index)
    return index


def _is_advanced(index: Any) -> bool:
    """True when the index expression uses integer/boolean array indexing."""
    if isinstance(index, (np.ndarray, list)):
        return True
    if isinstance(index, tuple):
        return builtins.any(isinstance(i, (np.ndarray, list)) for i in index)
    return False


def getitem(a: Any, index: Any) -> Any:
    """Differentiable ``a[index]`` (basic slicing or advanced indexing)."""
    av = value_of(a)
    idx = _index_values(index)
    out = av[idx]
    parents = _traced_parents(a)
    advanced = _is_advanced(idx)

    def vjp(g: np.ndarray) -> tuple:
        grad = np.zeros(av.shape, dtype=np.result_type(g, np.float64))
        if advanced:
            np.add.at(grad, idx, g)
        else:
            grad[idx] += g
        return (grad,)

    return _record("getitem", out, parents, vjp, meta={"index": idx})


def take(a: Any, indices: Any, axis=None) -> Any:
    """Differentiable ``numpy.take``."""
    av = value_of(a)
    idx = _index_values(indices)
    out = np.take(av, idx, axis=axis)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        grad = np.zeros(av.shape, dtype=np.result_type(g, np.float64))
        if axis is None:
            np.add.at(grad.reshape(-1), np.asarray(idx).reshape(-1),
                      np.asarray(g).reshape(-1))
        else:
            grad_moved = np.moveaxis(grad, axis, 0)
            g_moved = np.moveaxis(np.asarray(g), axis, 0) \
                if np.ndim(idx) > 0 else np.asarray(g)[None]
            np.add.at(grad_moved, np.asarray(idx).reshape(-1),
                      g_moved.reshape((-1,) + grad_moved.shape[1:]))
        return (grad,)

    return _record("take", out, parents, vjp,
                   meta={"indices": np.asarray(idx), "axis": axis})


def index_update(a: Any, index: Any, b: Any) -> Any:
    """Functional update: a copy of ``a`` with ``a[index] = b``.

    This is the primitive behind ``ADArray.__setitem__``.  The cotangent of
    ``a`` is the incoming cotangent with the updated region zeroed out (those
    elements of ``a`` were overwritten, so they no longer influence the
    output); the cotangent of ``b`` is the cotangent of the updated region.
    """
    av, bv = value_of(a), value_of(b)
    idx = _index_values(index)
    out = np.array(av, copy=True)
    out[idx] = bv
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            ga = np.array(g, copy=True)
            ga[idx] = 0.0
            grads.append(ga)
        if isinstance(b, ADArray) and b.node is not None:
            gb = np.asarray(g)[idx]
            grads.append(_unbroadcast(gb, np.shape(bv)))
        return tuple(grads)

    return _record("index_update", out, parents, vjp, meta={"index": idx})


def index_add(a: Any, index: Any, b: Any) -> Any:
    """Functional scatter-add: a copy of ``a`` with ``a[index] += b``
    (unbuffered, i.e. repeated indices accumulate as ``np.add.at`` does)."""
    av, bv = value_of(a), value_of(b)
    idx = _index_values(index)
    out = np.array(av, copy=True)
    np.add.at(out, idx, bv)
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(np.asarray(g))
        if isinstance(b, ADArray) and b.node is not None:
            gb = np.asarray(g)[idx]
            grads.append(_unbroadcast(gb, np.shape(bv)))
        return tuple(grads)

    return _record("index_add", out, parents, vjp, meta={"index": idx})


def where(cond: Any, a: Any, b: Any) -> Any:
    """Elementwise select; the condition is treated as non-differentiable."""
    cv = value_of(cond).astype(bool)
    av, bv = value_of(a), value_of(b)
    out = np.where(cv, av, bv)
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(_unbroadcast(g * cv, np.shape(av)))
        if isinstance(b, ADArray) and b.node is not None:
            grads.append(_unbroadcast(g * (~cv), np.shape(bv)))
        return tuple(grads)

    return _record("where", out, parents, vjp)


def copy(a: Any) -> Any:
    """Differentiable identity copy."""
    av = value_of(a)
    out = np.array(av, copy=True)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (g,)

    return _record("copy", out, parents, vjp)


def astype(a: Any, dtype) -> Any:
    """Cast to ``dtype``.

    Casting to a floating dtype keeps the trace (identity VJP); casting to an
    integer or boolean dtype detaches the result, because derivatives through
    integer data are identically zero.
    """
    av = value_of(a)
    dtype = np.dtype(dtype)
    out = av.astype(dtype)
    if not np.issubdtype(dtype, np.floating):
        return out
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.asarray(g, dtype=av.dtype),)

    return _record("astype", out, parents, vjp)


def detach(a: Any) -> np.ndarray:
    """Return the concrete value, cutting the AD graph."""
    return np.array(value_of(a), copy=True)


# ---------------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------------

def matmul(a: Any, b: Any) -> Any:
    """Matrix product following :func:`numpy.matmul` semantics.

    Supports 1-D and 2-D operands and batched stacks of matrices (the cases
    exercised by the NPB kernels: DFT matrices, block solves and dot
    products).
    """
    av, bv = value_of(a), value_of(b)
    out = np.matmul(av, bv)
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        g = np.asarray(g)
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(_matmul_grad_a(g, av, bv))
        if isinstance(b, ADArray) and b.node is not None:
            grads.append(_matmul_grad_b(g, av, bv))
        return tuple(grads)

    return _record("matmul", out, parents, vjp)


def _matmul_grad_a(g: np.ndarray, av: np.ndarray, bv: np.ndarray) -> np.ndarray:
    if av.ndim == 1 and bv.ndim == 1:          # vector . vector -> scalar
        return g * bv
    if av.ndim == 1:                            # (k,) @ (..., k, n)
        ga = np.matmul(np.expand_dims(g, -2), np.swapaxes(bv, -1, -2))
        ga = np.squeeze(ga, axis=-2)
        return _unbroadcast(ga, av.shape)
    if bv.ndim == 1:                            # (..., m, k) @ (k,)
        ga = np.matmul(np.expand_dims(g, -1), np.expand_dims(bv, 0))
        return _unbroadcast(ga, av.shape)
    ga = np.matmul(g, np.swapaxes(bv, -1, -2))
    return _unbroadcast(ga, av.shape)


def _matmul_grad_b(g: np.ndarray, av: np.ndarray, bv: np.ndarray) -> np.ndarray:
    if av.ndim == 1 and bv.ndim == 1:
        return g * av
    if av.ndim == 1:                            # (k,) @ (..., k, n)
        gb = np.matmul(np.expand_dims(av, -1), np.expand_dims(g, -2))
        return _unbroadcast(gb, bv.shape)
    if bv.ndim == 1:                            # (..., m, k) @ (k,)
        gb = np.matmul(np.swapaxes(av, -1, -2), np.expand_dims(g, -1))
        gb = np.squeeze(gb, axis=-1)
        return _unbroadcast(gb, bv.shape)
    gb = np.matmul(np.swapaxes(av, -1, -2), g)
    return _unbroadcast(gb, bv.shape)


def dot(a: Any, b: Any) -> Any:
    """Alias of :func:`matmul` for 1-D/2-D operands."""
    return matmul(a, b)


def outer(a: Any, b: Any) -> Any:
    """Outer product of two vectors."""
    a2 = reshape(a, (-1, 1))
    b2 = reshape(b, (1, -1))
    return multiply(a2, b2)


# ---------------------------------------------------------------------------
# constructors / passthrough helpers (never traced on their own)
# ---------------------------------------------------------------------------

def zeros(shape, dtype=np.float64) -> np.ndarray:
    """Plain ``numpy.zeros`` (constants are never traced)."""
    return np.zeros(shape, dtype=dtype)


def ones(shape, dtype=np.float64) -> np.ndarray:
    """Plain ``numpy.ones``."""
    return np.ones(shape, dtype=dtype)


def full(shape, fill_value, dtype=np.float64) -> np.ndarray:
    """Plain ``numpy.full``."""
    return np.full(shape, fill_value, dtype=dtype)


def zeros_like(a: Any) -> np.ndarray:
    """Zeros with the shape/dtype of ``a``'s concrete value."""
    return np.zeros_like(value_of(a))


def ones_like(a: Any) -> np.ndarray:
    """Ones with the shape/dtype of ``a``'s concrete value."""
    return np.ones_like(value_of(a))


def arange(*args, **kwargs) -> np.ndarray:
    """Plain ``numpy.arange``."""
    return np.arange(*args, **kwargs)


def linspace(*args, **kwargs) -> np.ndarray:
    """Plain ``numpy.linspace``."""
    return np.linspace(*args, **kwargs)


def asarray(a: Any, dtype=None) -> Any:
    """Identity on ADArrays; ``numpy.asarray`` otherwise."""
    if isinstance(a, ADArray):
        return a if dtype is None else astype(a, dtype)
    return np.asarray(a, dtype=dtype)


def array(a: Any, dtype=None) -> Any:
    """Copying variant of :func:`asarray`."""
    if isinstance(a, ADArray):
        out = copy(a)
        return out if dtype is None else astype(out, dtype)
    return np.array(a, dtype=dtype)
