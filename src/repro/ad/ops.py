"""Primitive array operations with their vector-Jacobian products (VJPs).

This module is both

* the **primitive library** of the reverse-mode AD engine -- every function
  here knows how to compute its value with NumPy *and* how to pull a
  cotangent back to its inputs -- and
* the **numpy-like facade** the NPB mini-apps are written against: every
  function accepts either plain numpy arrays (in which case it behaves
  exactly like the corresponding :mod:`numpy` function and returns plain
  numpy data) or traced :class:`~repro.ad.tensor.ADArray` objects (in which
  case the operation is recorded on the tape of its traced operands).

The design follows the guidance of the HPC-Python coding guides used for
this project: hot paths stay fully vectorised (the tape records *array*
operations, never per-element ones), gradient buffers are reused in place
during the reverse sweep, and no Python-level loop runs over array elements.

Only the primitives required by the NPB kernels and the checkpoint analysis
are implemented; adding a new primitive means adding one function following
the ``_record`` pattern below.
"""

from __future__ import annotations

import builtins
from typing import Any, Callable, Sequence

import numpy as np

from .dual import TangentArray
from .plan import _CAPTURE
from .probes import ProbeBatchingError, probe_axis_size
from .tape import Tape, _TAPES, get_active_tape
from .tensor import ADArray, value_of

__all__ = [
    # elementwise binary
    "add", "subtract", "multiply", "divide", "power", "maximum", "minimum",
    "mod",
    # elementwise unary
    "negative", "absolute", "sqrt", "exp", "log", "log1p", "expm1",
    "sin", "cos", "tan", "tanh", "sign", "square", "reciprocal", "clip",
    # reductions
    "sum", "mean", "max", "min", "prod", "norm",
    # shape manipulation
    "reshape", "transpose", "swapaxes", "broadcast_to", "concatenate",
    "stack", "moveaxis", "squeeze", "expand_dims", "ravel", "flip", "roll",
    "pad_zero",
    # selection / indexing
    "getitem", "take", "index_update", "index_add", "where", "copy",
    "astype", "detach",
    # linear algebra
    "matmul", "dot", "outer",
    # constructors / passthrough helpers
    "zeros", "ones", "full", "zeros_like", "ones_like", "arange", "linspace",
    "asarray", "array",
    # misc
    "isnan", "isfinite", "allclose", "to_numpy", "logical_shape",
]


# ---------------------------------------------------------------------------
# recording machinery
# ---------------------------------------------------------------------------

def _traced_parents(*operands: Any) -> list[ADArray]:
    """Return the operands that are traced ADArrays, in order."""
    return [x for x in operands if isinstance(x, ADArray) and x.node is not None]


def _target_tape(parents: Sequence[ADArray]) -> Tape | None:
    """Pick the tape new nodes should be recorded on.

    Preference order: the innermost *active* tape (if any), falling back to
    the tape of the first traced parent.  When tracing is suspended with
    :class:`repro.ad.tape.no_tape`, returns ``None`` and the operation is
    not recorded.
    """
    if _TAPES.stack:
        return _TAPES.stack[-1]  # may be None inside ``no_tape``
    if parents:
        return parents[0].tape
    return None


def _record(op: str, value: np.ndarray, parents: Sequence[ADArray],
            vjp: Callable[[np.ndarray], tuple],
            meta: dict | None = None, spec: tuple | None = None) -> Any:
    """Record one primitive and wrap its output.

    If there are no traced parents, or tracing is suspended, the plain numpy
    value is returned so untraced code pays no overhead.  ``spec`` is the
    primitive's replay description, supplied only while a plan capture
    (:mod:`repro.ad.plan`) is active; a recorded node without one marks the
    capture as unreplayable (the plan cache then falls back to tracing).
    """
    parents = list(parents)
    if not parents:
        return value
    tape = _target_tape(parents)
    if tape is None:
        return value
    nb = probe_axis_size()
    if nb is not None and (np.ndim(value) == 0 or np.shape(value)[0] != nb):
        # a traced result lost the probe axis: abort the batched trace so
        # the caller falls back to the per-probe path instead of silently
        # mixing probes
        raise ProbeBatchingError(
            f"primitive {op!r} produced shape {np.shape(value)} without a "
            f"leading probe axis of length {nb}")
    node = tape.add_node(op, [p.node for p in parents], vjp,
                         np.shape(value), np.asarray(value).dtype, meta=meta)
    capture = _CAPTURE.capture
    if capture is not None:
        capture.on_node(node, spec)
    return ADArray(value, node=node, tape=tape)


def _unbroadcast(g: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce a broadcasted cotangent ``g`` back down to ``shape``."""
    g = np.asarray(g)
    if g.shape == tuple(shape):
        return g
    # sum over leading broadcast dimensions
    while g.ndim > len(shape):
        g = g.sum(axis=0)
    # sum over axes that were size-1 in the original shape
    for axis, dim in enumerate(shape):
        if dim == 1 and g.shape[axis] != 1:
            g = g.sum(axis=axis, keepdims=True)
    return g.reshape(shape)


def to_numpy(x: Any) -> np.ndarray:
    """Concrete numpy value of ``x`` (identity for plain arrays)."""
    return value_of(x)


# ---------------------------------------------------------------------------
# probe-batching support (see repro.ad.probes)
#
# Inside a ``probes.probe_axis(n)`` context every *traced* array carries a
# leading probe axis of length ``n``; plain numpy operands never do.  The
# helpers below implement the two adjustments the primitives need to keep
# that invariant:
#
# * value alignment for elementwise broadcasting (numpy aligns shapes from
#   the right, the probe axis sits on the left, so a batched operand of
#   lower logical rank gains singleton logical axes just after the probe
#   axis);
# * axis/index shifting for reductions, shape manipulation and indexing
#   (logical axis ``k`` lives at position ``k + 1`` of a batched array;
#   negative axes are untouched because the trailing dimensions are
#   unchanged).
# ---------------------------------------------------------------------------

def _is_traced(x: Any) -> bool:
    return isinstance(x, ADArray) and x.node is not None


def _probe_batch(*operands: Any) -> int | None:
    """Probe-axis size when batched tracing is active for these operands."""
    n = probe_axis_size()
    if n is None:
        return None
    for x in operands:
        if _is_traced(x):
            return n
    return None


def logical_shape(x: Any) -> tuple:
    """Shape of ``x`` with the probe axis stripped.

    Identical to ``numpy.shape(value_of(x))`` outside batched tracing (and
    for plain operands inside it); kernels that introspect traced shapes to
    build reshape targets must use this instead of the raw value shape so
    they work unchanged under a batched probe sweep.
    """
    shape = tuple(np.shape(value_of(x)))
    if probe_axis_size() is not None and _is_traced(x):
        return shape[1:]
    return shape


def _probe_align(nb: int, *pairs: tuple[Any, bool]) -> list[np.ndarray]:
    """Lift batched operands so elementwise broadcasting stays per-probe.

    ``pairs`` are ``(value, traced)`` tuples; traced values carry the probe
    axis.  Every traced value is reshaped to
    ``(nb,) + (1,)*(L - logical_ndim) + logical_shape`` where ``L`` is the
    largest logical rank among all operands, which makes numpy's
    right-aligned broadcasting match the unbatched semantics with the probe
    axis on the left.  Plain operands are returned untouched.
    """
    values = [np.asarray(value) for value, _ in pairs]
    target = 0
    for value, traced in zip(values, (t for _, t in pairs)):
        target = builtins.max(target, value.ndim - 1 if traced else value.ndim)
    lifted = []
    for value, (_, traced) in zip(values, pairs):
        if traced and value.ndim - 1 < target:
            value = value.reshape(value.shape[:1]
                                  + (1,) * (target - (value.ndim - 1))
                                  + value.shape[1:])
        lifted.append(value)
    return lifted


def _probe_reduce_axis(axis: Any, ndim: int, nb: int | None) -> Any:
    """Map logical reduction axes onto a batched array (keep the probe axis)."""
    if nb is None:
        return axis
    if axis is None:
        return tuple(range(1, ndim))
    if isinstance(axis, (tuple, list)):
        return tuple(ax + 1 if ax >= 0 else ax for ax in axis)
    return axis + 1 if axis >= 0 else axis


def _probe_shift_axis(axis: Any, nb: int | None) -> Any:
    """Shift non-negative logical axes past the probe axis (None unchanged)."""
    if nb is None or axis is None:
        return axis
    if isinstance(axis, (tuple, list, np.ndarray)):
        return tuple(int(ax) + 1 if int(ax) >= 0 else int(ax) for ax in axis)
    return axis + 1 if axis >= 0 else axis


def _probe_index(index: Any, nb: int | None) -> Any:
    """Prepend a full probe-axis slice to a logical index expression.

    Advanced indices separated by a slice/ellipsis are rejected: numpy
    moves their broadcast subspace *in front of* the prepended probe
    slice, which would silently transpose the probe axis away (the
    ``_record`` shape guard cannot catch it when the subspace length
    coincides with the probe count).  No NPB kernel uses the pattern; a
    custom kernel that does falls back to the per-probe path.
    """
    if nb is None:
        return index
    if isinstance(index, tuple):
        if _has_separated_advanced(index):
            raise ProbeBatchingError(
                "advanced indices separated by slices place their "
                "subspace in front of the probe axis; this index "
                "expression cannot be probe-batched")
        return (slice(None),) + index
    return (slice(None), index)


def _has_separated_advanced(index: tuple) -> bool:
    """True when ``index`` holds advanced entries split by a basic one.

    Mirrors numpy's placement rule: advanced indexing is only in play
    when an array/list entry is present; integers then join the advanced
    group for adjacency purposes (they broadcast as 0-d indices).
    """
    if not builtins.any(isinstance(entry, (np.ndarray, list))
                        for entry in index):
        return False     # ints + slices only: basic indexing, no reorder

    def is_advanced(entry: Any) -> bool:
        return isinstance(entry, (np.ndarray, list)) \
            or (isinstance(entry, (int, np.integer))
                and not isinstance(entry, bool))

    flags = [is_advanced(entry) for entry in index]
    if builtins.sum(flags) < 2:
        return False
    first = flags.index(True)
    last = len(flags) - 1 - flags[::-1].index(True)
    return not builtins.all(flags[first:last + 1])


def _unbroadcast_keep_probe(g: np.ndarray, shape: tuple,
                            batched: bool) -> np.ndarray:
    """:func:`_unbroadcast`, but never collapse a leading probe axis.

    When ``batched``, ``g`` and ``shape`` both start with the probe axis;
    surplus broadcast dimensions are summed just *after* it instead of at
    axis 0.
    """
    if not batched:
        return _unbroadcast(g, shape)
    g = np.asarray(g)
    if g.shape == tuple(shape):
        return g
    while g.ndim > len(shape):
        g = g.sum(axis=1)
    for axis, dim in enumerate(shape):
        if axis > 0 and dim == 1 and g.shape[axis] != 1:
            g = g.sum(axis=axis, keepdims=True)
    return g.reshape(shape)


# ---------------------------------------------------------------------------
# forward-mode (JVP) dispatch (see repro.ad.dual / repro.ad.tangent)
#
# A :class:`~repro.ad.dual.TangentArray` operand switches a primitive into
# forward mode: the value is computed with exactly the same numpy calls on
# the same logical values as the untraced/reverse path, and the *stacked
# tangent* -- shape ``(n_directions,) + logical_shape`` -- is pushed forward
# through the same shared rule tables the reverse VJPs pull cotangents
# through (EW_BINARY_RULES / UNARY_RULES / MINMAX_RULES), so the two modes
# share one set of tie/zero subgradient conventions by construction.
# Nothing is recorded on any tape.  The leading direction axis reuses the
# probe-axis mechanics above verbatim: singleton lifting for right-aligned
# broadcasting, +1 axis shifts for reductions and shape ops, and a
# prepended full slice for indexing.
# ---------------------------------------------------------------------------

def _any_tangent(*operands: Any) -> bool:
    return builtins.any(isinstance(x, TangentArray) for x in operands)


def _tangent_parts(x: Any) -> tuple[np.ndarray, np.ndarray | None]:
    """(logical value, stacked tangent or ``None``) of one operand."""
    if isinstance(x, TangentArray):
        return x.value, x.tangent
    return np.asarray(value_of(x)), None


def _tangent_dirs(*operands: Any) -> int:
    """Direction count of the first TangentArray operand."""
    for x in operands:
        if isinstance(x, TangentArray):
            return x.tangent.shape[0]
    raise TypeError("no TangentArray operand")  # pragma: no cover - guarded


def _tangent_lift(t: np.ndarray, target: int) -> np.ndarray:
    """Insert singleton logical axes just after the direction axis.

    The exact :func:`_probe_align` lift applied to one tangent: with the
    tangent's logical rank raised to ``target``, numpy's right-aligned
    broadcasting against plain logical operands matches the unstacked
    elementwise semantics while the direction axis stays in front.
    """
    lndim = t.ndim - 1
    if lndim < target:
        t = t.reshape(t.shape[:1] + (1,) * (target - lndim) + t.shape[1:])
    return t


def _tangent_result(out: Any, dt: Any, nd: int) -> TangentArray:
    """Wrap ``(value, tangent)``, materialising the tangent at full shape.

    The tangent is broadcast up to ``(nd,) + out.shape`` and copied to C
    order whenever broadcasting was needed, so downstream reductions
    traverse every direction slice in the same memory order as a
    single-direction sweep (the per-direction bitwise guarantee).
    """
    out = np.asarray(out)
    dt = np.asarray(dt)
    target = (nd,) + out.shape
    if dt.shape != target:
        dt = np.array(np.broadcast_to(dt, target), copy=True, order="C")
    return TangentArray(out, dt)


def _tangent_ew_binary(a: Any, b: Any, compute, grad_a, grad_b) -> TangentArray:
    """Forward rule of one elementwise binary primitive.

    Every ``EW_BINARY_RULES`` cotangent is a *linear* elementwise map of
    ``g``, so applying it to a lifted tangent instead of a cotangent is the
    exact JVP: ``dt = grad_a(ta) + grad_b(tb)``.
    """
    av, ta = _tangent_parts(a)
    bv, tb = _tangent_parts(b)
    nd = _tangent_dirs(a, b)
    out = compute(av, bv)
    target = builtins.max(av.ndim, bv.ndim)
    dt = None
    if ta is not None:
        dt = grad_a(_tangent_lift(ta, target), av, bv)
    if tb is not None:
        dtb = grad_b(_tangent_lift(tb, target), av, bv)
        dt = dtb if dt is None else dt + dtb
    return _tangent_result(out, dt, nd)


def _tangent_minmax(a: Any, b: Any, compute, mask_of) -> TangentArray:
    """Forward rule of maximum/minimum with the shared tie mask."""
    av, ta = _tangent_parts(a)
    bv, tb = _tangent_parts(b)
    nd = _tangent_dirs(a, b)
    out = compute(av, bv)
    mask_a = mask_of(av, bv)
    target = builtins.max(av.ndim, bv.ndim)
    dt = None
    if ta is not None:
        dt = _tangent_lift(ta, target) * mask_a
    if tb is not None:
        dtb = _tangent_lift(tb, target) * ~mask_a
        dt = dtb if dt is None else dt + dtb
    return _tangent_result(out, dt, nd)


def _tangent_matmul(a: Any, b: Any) -> TangentArray:
    """Forward rule of matmul (product rule, direction axis as batch dim).

    Logical 1-D operands are lifted to row/column matrices exactly as in
    :func:`_probe_matmul`; the direction axis broadcasts as a leading batch
    dimension (numpy batched matmul runs one 2-D GEMM per direction slice,
    so a stacked pass computes each direction bitwise as a width-1 pass
    would) and the inserted singleton axes are squeezed back out.
    """
    av, ta = _tangent_parts(a)
    bv, tb = _tangent_parts(b)
    nd = _tangent_dirs(a, b)
    la, lb = av.ndim, bv.ndim
    if la == 0 or lb == 0:
        raise ValueError("matmul operands must be at least 1-D")
    av_m = av[..., None, :] if la == 1 else av
    bv_m = bv[..., :, None] if lb == 1 else bv
    out_m = np.matmul(av_m, bv_m)
    dt_m = None
    if ta is not None:
        ta_m = ta[..., None, :] if la == 1 else ta
        dt_m = np.matmul(_tangent_lift_batch(ta_m, bv_m.ndim - 2), bv_m)
    if tb is not None:
        tb_m = tb[..., :, None] if lb == 1 else tb
        d2 = np.matmul(av_m, _tangent_lift_batch(tb_m, av_m.ndim - 2))
        dt_m = d2 if dt_m is None else dt_m + d2
    if la == 1 and lb == 1:
        out, dt = out_m[..., 0, 0], dt_m[..., 0, 0]
    elif la == 1:
        out, dt = out_m[..., 0, :], dt_m[..., 0, :]
    elif lb == 1:
        out, dt = out_m[..., :, 0], dt_m[..., :, 0]
    else:
        out, dt = out_m, dt_m
    return _tangent_result(out, dt, nd)


def _tangent_lift_batch(t_m: np.ndarray, other_batch: int) -> np.ndarray:
    """Pad a matrix-form tangent's batch rank with singletons after the
    direction axis, so the other operand's batch dims broadcast against the
    *logical* batch dims instead of swallowing the direction axis."""
    own_batch = t_m.ndim - 3
    if own_batch < other_batch:
        t_m = t_m.reshape(t_m.shape[:1] + (1,) * (other_batch - own_batch)
                          + t_m.shape[1:])
    return t_m


def _tangent_index_write(a: Any, index: Any, b: Any,
                         add: bool) -> TangentArray:
    """Forward rule of index_update (``add=False``) / index_add (``True``).

    The target's tangent is copied; an overwrite replaces the region's
    tangent with the value operand's (zero for a plain value), a
    scatter-add accumulates it with ``np.add.at`` semantics.
    """
    av, ta = _tangent_parts(a)
    bv, tb = _tangent_parts(b)
    nd = _tangent_dirs(a, b)
    idx = _index_values(index)
    full_idx = _probe_index(idx, nd)
    out = np.array(av, copy=True)
    if ta is not None:
        out_t = np.array(ta, copy=True)
    else:
        out_t = np.zeros((nd,) + out.shape,
                         dtype=tb.dtype if tb is not None else np.float64)
    if add:
        np.add.at(out, idx, bv)
        if tb is not None:
            np.add.at(out_t, full_idx, tb)
    else:
        out[idx] = bv
        out_t[full_idx] = tb if tb is not None else 0.0
    return TangentArray(out, out_t)


def _tangent_join(joiner, arrays: list, axis: int) -> TangentArray:
    """Forward rule of concatenate/stack: plain parts contribute zero
    tangents, the join axis shifts past the direction axis."""
    values = [np.asarray(value_of(x)) for x in arrays]
    nd = _tangent_dirs(*arrays)
    t_dtype = np.result_type(*[x.tangent for x in arrays
                               if isinstance(x, TangentArray)])
    parts = [x.tangent if isinstance(x, TangentArray)
             else np.zeros((nd,) + np.shape(v), dtype=t_dtype)
             for x, v in zip(arrays, values)]
    return TangentArray(joiner(values, axis=axis),
                        joiner(parts, axis=_probe_shift_axis(axis, nd)))


def _tangent_weighted_reduce(a: TangentArray, axis, keepdims: bool,
                             out: np.ndarray, w: np.ndarray) -> TangentArray:
    """Forward rule of the weighted-sum reductions (max/min/prod).

    ``w`` is the logical weight array the matching VJP distributes its
    cotangent with (the tie mask split or ``out / safe``); its transpose --
    a weighted sum over the reduced axes -- is the JVP.
    """
    ta = a.tangent
    axis_t = _probe_reduce_axis(axis, ta.ndim, ta.shape[0])
    dt = np.sum(w * ta, axis=axis_t, keepdims=keepdims)
    return _tangent_result(out, dt, ta.shape[0])


# ---------------------------------------------------------------------------
# elementwise binary primitives
# ---------------------------------------------------------------------------

def _probe_restore(g: np.ndarray, true_shape: tuple) -> np.ndarray:
    """Collapse a lifted-shape cotangent back to the operand's node shape."""
    g = np.asarray(g)
    if g.shape == tuple(true_shape):
        return g
    return g.reshape(true_shape)


def _power_grad_b(g: np.ndarray, av: np.ndarray, bv: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        loga = np.where(av > 0, np.log(np.where(av > 0, av, 1.0)), 0.0)
    return g * (av ** bv) * loga


#: shared compute/VJP rules of the elementwise binary primitives -- the
#: single source the tracer *and* the compiled replay plans
#: (:mod:`repro.ad.plan`) execute, so replayed values and cotangents are
#: bitwise-identical by construction
EW_BINARY_RULES: dict[str, tuple] = {
    "add": (lambda av, bv: av + bv,
            lambda g, av, bv: g,
            lambda g, av, bv: g),
    "subtract": (lambda av, bv: av - bv,
                 lambda g, av, bv: g,
                 lambda g, av, bv: -g),
    "multiply": (lambda av, bv: av * bv,
                 lambda g, av, bv: g * bv,
                 lambda g, av, bv: g * av),
    "divide": (lambda av, bv: av / bv,
               lambda g, av, bv: g / bv,
               lambda g, av, bv: -g * av / (bv * bv)),
    "power": (lambda av, bv: av ** bv,
              lambda g, av, bv: g * bv * av ** (bv - 1.0),
              _power_grad_b),
}


def _elementwise_binary(op: str, a: Any, b: Any,
                        compute: Callable[[np.ndarray, np.ndarray], np.ndarray],
                        grad_a: Callable[..., np.ndarray],
                        grad_b: Callable[..., np.ndarray]) -> Any:
    """Record one elementwise binary primitive with probe-aware broadcasting.

    ``compute(av, bv)`` produces the value; ``grad_a(g, av, bv)`` /
    ``grad_b(g, av, bv)`` produce the raw cotangents, which are then
    unbroadcast to the (possibly probe-lifted) operand shape and restored to
    the operand's true node shape.
    """
    if _any_tangent(a, b):
        return _tangent_ew_binary(a, b, compute, grad_a, grad_b)
    av0, bv0 = value_of(a), value_of(b)
    nb = _probe_batch(a, b)
    if nb is not None:
        av, bv = _probe_align(nb, (av0, _is_traced(a)), (bv0, _is_traced(b)))
    else:
        av, bv = av0, bv0
    out = compute(av, bv)
    parents = _traced_parents(a, b)
    a_shape, b_shape = np.shape(av0), np.shape(bv0)
    a_lift, b_lift = np.shape(av), np.shape(bv)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if _is_traced(a):
            grads.append(_probe_restore(
                _unbroadcast(grad_a(g, av, bv), a_lift), a_shape))
        if _is_traced(b):
            grads.append(_probe_restore(
                _unbroadcast(grad_b(g, av, bv), b_lift), b_shape))
        return tuple(grads)

    spec = None
    if _CAPTURE.capture is not None and op in EW_BINARY_RULES:
        spec = ("ewbinary", op, _is_traced(a), _is_traced(b),
                None if _is_traced(a) else av,
                None if _is_traced(b) else bv,
                a_shape, b_shape, a_lift, b_lift)
    return _record(op, out, parents, vjp, spec=spec)


def add(a: Any, b: Any) -> Any:
    """Elementwise ``a + b`` with NumPy broadcasting."""
    return _elementwise_binary("add", a, b, *EW_BINARY_RULES["add"])


def subtract(a: Any, b: Any) -> Any:
    """Elementwise ``a - b`` with NumPy broadcasting."""
    return _elementwise_binary("subtract", a, b,
                               *EW_BINARY_RULES["subtract"])


def multiply(a: Any, b: Any) -> Any:
    """Elementwise ``a * b`` with NumPy broadcasting."""
    return _elementwise_binary("multiply", a, b,
                               *EW_BINARY_RULES["multiply"])


def divide(a: Any, b: Any) -> Any:
    """Elementwise true division ``a / b``."""
    return _elementwise_binary("divide", a, b, *EW_BINARY_RULES["divide"])


def power(a: Any, b: Any) -> Any:
    """Elementwise ``a ** b``.

    The exponent may be traced, but the usual use in the kernels is a
    constant scalar exponent, for which the VJP reduces to
    ``g * b * a**(b-1)``.
    """
    return _elementwise_binary("power", a, b, *EW_BINARY_RULES["power"])


#: shared compute/tie-mask rules of maximum/minimum (tracer + replay plans)
MINMAX_RULES: dict[str, tuple] = {
    "maximum": (np.maximum, lambda av, bv: av >= bv),
    "minimum": (np.minimum, lambda av, bv: av <= bv),
}


def _minmax_binary(op: str, a: Any, b: Any, compute, mask_of) -> Any:
    """Shared maximum/minimum recorder; the tie mask is computed once at
    trace time and shared by both cotangents."""
    if _any_tangent(a, b):
        return _tangent_minmax(a, b, compute, mask_of)
    av0, bv0 = value_of(a), value_of(b)
    nb = _probe_batch(a, b)
    if nb is not None:
        av, bv = _probe_align(nb, (av0, _is_traced(a)), (bv0, _is_traced(b)))
    else:
        av, bv = av0, bv0
    out = compute(av, bv)
    mask_a = mask_of(av, bv)
    parents = _traced_parents(a, b)
    a_shape, b_shape = np.shape(av0), np.shape(bv0)
    a_lift, b_lift = np.shape(av), np.shape(bv)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if _is_traced(a):
            grads.append(_probe_restore(
                _unbroadcast(g * mask_a, a_lift), a_shape))
        if _is_traced(b):
            grads.append(_probe_restore(
                _unbroadcast(g * ~mask_a, b_lift), b_shape))
        return tuple(grads)

    spec = None
    if _CAPTURE.capture is not None:
        spec = ("minmax", op, _is_traced(a), _is_traced(b),
                None if _is_traced(a) else av,
                None if _is_traced(b) else bv,
                a_shape, b_shape, a_lift, b_lift)
    return _record(op, out, parents, vjp, spec=spec)


def maximum(a: Any, b: Any) -> Any:
    """Elementwise maximum; ties send the cotangent to the first operand."""
    return _minmax_binary("maximum", a, b, *MINMAX_RULES["maximum"])


def minimum(a: Any, b: Any) -> Any:
    """Elementwise minimum; ties send the cotangent to the first operand."""
    return _minmax_binary("minimum", a, b, *MINMAX_RULES["minimum"])


def mod(a: Any, b: Any) -> Any:
    """Elementwise ``a % b``; derivative taken w.r.t. ``a`` only."""
    if _any_tangent(a, b):
        av, ta = _tangent_parts(a)
        bv, _tb = _tangent_parts(b)
        out = np.mod(av, bv)
        if ta is None:          # derivative w.r.t. ``b`` is ignored
            return out
        nd = ta.shape[0]
        return _tangent_result(
            out, _tangent_lift(ta, builtins.max(av.ndim, bv.ndim)), nd)
    av0, bv0 = value_of(a), value_of(b)
    nb = _probe_batch(a, b)
    if nb is not None:
        av, bv = _probe_align(nb, (av0, _is_traced(a)), (bv0, _is_traced(b)))
    else:
        av, bv = av0, bv0
    out = np.mod(av, bv)
    parents = _traced_parents(a)
    a_shape, a_lift = np.shape(av0), np.shape(av)

    def vjp(g: np.ndarray) -> tuple:
        return (_probe_restore(_unbroadcast(g, a_lift), a_shape),)

    return _record("mod", out, parents, vjp)


# ---------------------------------------------------------------------------
# elementwise unary primitives
# ---------------------------------------------------------------------------

#: shared compute/derivative rules of the unary primitives, as
#: ``(compute(av), dydx(av, out))`` pairs -- executed by the tracer and by
#: the compiled replay plans alike (bitwise-identical by construction)
UNARY_RULES: dict[str, tuple] = {
    "absolute": (np.abs, lambda av, out: np.sign(av)),
    "sqrt": (np.sqrt, lambda av, out: 0.5 / np.where(out == 0, np.inf, out)),
    "exp": (np.exp, lambda av, out: out),
    "expm1": (np.expm1, lambda av, out: np.exp(av)),
    "log": (np.log, lambda av, out: 1.0 / av),
    "log1p": (np.log1p, lambda av, out: 1.0 / (1.0 + av)),
    "sin": (np.sin, lambda av, out: np.cos(av)),
    "cos": (np.cos, lambda av, out: -np.sin(av)),
    "tan": (np.tan, lambda av, out: 1.0 / np.cos(av) ** 2),
    "tanh": (np.tanh, lambda av, out: 1.0 - out ** 2),
    "sign": (np.sign, lambda av, out: np.zeros_like(av)),
    "square": (lambda av: av * av, lambda av, out: 2.0 * av),
    "reciprocal": (lambda av: 1.0 / av, lambda av, out: -1.0 / (av * av)),
}


def _unary(op: str, a: Any, out: np.ndarray,
           dydx: Callable[[], np.ndarray],
           spec: tuple | None = None) -> Any:
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (g * dydx(),)

    return _record(op, out, parents, vjp, spec=spec)


def _rule_unary(op: str, a: Any) -> Any:
    """Record one table-driven unary primitive (see :data:`UNARY_RULES`)."""
    compute, dydx = UNARY_RULES[op]
    if isinstance(a, TangentArray):
        av = a.value
        out = compute(av)
        return _tangent_result(out, dydx(av, out) * a.tangent,
                               a.tangent.shape[0])
    av = value_of(a)
    out = compute(av)
    spec = ("unary", op) if _CAPTURE.capture is not None else None
    return _unary(op, a, out, lambda: dydx(av, out), spec=spec)


def negative(a: Any) -> Any:
    """Elementwise negation."""
    if isinstance(a, TangentArray):
        return TangentArray(-a.value, -a.tangent)
    av = value_of(a)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (-g,)

    spec = ("negative",) if _CAPTURE.capture is not None else None
    return _record("negative", -av, parents, vjp, spec=spec)


def absolute(a: Any) -> Any:
    """Elementwise absolute value (subgradient ``sign(a)`` at 0)."""
    return _rule_unary("absolute", a)


def sqrt(a: Any) -> Any:
    """Elementwise square root."""
    return _rule_unary("sqrt", a)


def exp(a: Any) -> Any:
    """Elementwise exponential."""
    return _rule_unary("exp", a)


def expm1(a: Any) -> Any:
    """Elementwise ``exp(a) - 1``."""
    return _rule_unary("expm1", a)


def log(a: Any) -> Any:
    """Elementwise natural logarithm."""
    return _rule_unary("log", a)


def log1p(a: Any) -> Any:
    """Elementwise ``log(1 + a)``."""
    return _rule_unary("log1p", a)


def sin(a: Any) -> Any:
    """Elementwise sine."""
    return _rule_unary("sin", a)


def cos(a: Any) -> Any:
    """Elementwise cosine."""
    return _rule_unary("cos", a)


def tan(a: Any) -> Any:
    """Elementwise tangent."""
    return _rule_unary("tan", a)


def tanh(a: Any) -> Any:
    """Elementwise hyperbolic tangent."""
    return _rule_unary("tanh", a)


def sign(a: Any) -> Any:
    """Elementwise sign; derivative is zero almost everywhere."""
    return _rule_unary("sign", a)


def square(a: Any) -> Any:
    """Elementwise square."""
    return _rule_unary("square", a)


def reciprocal(a: Any) -> Any:
    """Elementwise ``1 / a``."""
    return _rule_unary("reciprocal", a)


def clip(a: Any, lo: float, hi: float) -> Any:
    """Clamp values to ``[lo, hi]``; cotangent passes only inside the range."""
    if isinstance(a, TangentArray):
        av = a.value
        inside = (av >= lo) & (av <= hi)
        return _tangent_result(np.clip(av, lo, hi),
                               a.tangent * inside.astype(av.dtype),
                               a.tangent.shape[0])
    av = value_of(a)
    out = np.clip(av, lo, hi)
    inside = (av >= lo) & (av <= hi)
    return _unary("clip", a, out, lambda: inside.astype(av.dtype))


def isnan(a: Any) -> np.ndarray:
    """Non-differentiable NaN test on the concrete value."""
    return np.isnan(value_of(a))


def isfinite(a: Any) -> np.ndarray:
    """Non-differentiable finiteness test on the concrete value."""
    return np.isfinite(value_of(a))


def allclose(a: Any, b: Any, rtol: float = 1e-5, atol: float = 1e-8) -> bool:
    """Non-differentiable closeness test on concrete values."""
    return bool(np.allclose(value_of(a), value_of(b), rtol=rtol, atol=atol))


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def sum(a: Any, axis=None, keepdims: bool = False) -> Any:
    """Sum of elements over the given axis."""
    if isinstance(a, TangentArray):
        ta = a.tangent
        axis_t = _probe_reduce_axis(axis, ta.ndim, ta.shape[0])
        return _tangent_result(np.sum(a.value, axis=axis, keepdims=keepdims),
                               np.sum(ta, axis=axis_t, keepdims=keepdims),
                               ta.shape[0])
    av = value_of(a)
    axis = _probe_reduce_axis(axis, av.ndim, _probe_batch(a))
    out = np.sum(av, axis=axis, keepdims=keepdims)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, av.shape).copy(),)

    spec = ("sum", axis, keepdims, av.shape) \
        if _CAPTURE.capture is not None else None
    return _record("sum", out, parents, vjp, spec=spec)


def mean(a: Any, axis=None, keepdims: bool = False) -> Any:
    """Arithmetic mean over the given axis."""
    if isinstance(a, TangentArray):
        ta = a.tangent
        axis_t = _probe_reduce_axis(axis, ta.ndim, ta.shape[0])
        return _tangent_result(np.mean(a.value, axis=axis, keepdims=keepdims),
                               np.mean(ta, axis=axis_t, keepdims=keepdims),
                               ta.shape[0])
    av = value_of(a)
    axis = _probe_reduce_axis(axis, av.ndim, _probe_batch(a))
    out = np.mean(av, axis=axis, keepdims=keepdims)
    parents = _traced_parents(a)
    count = av.size if axis is None else np.prod(
        [av.shape[ax] for ax in np.atleast_1d(axis)], dtype=np.int64)

    def vjp(g: np.ndarray) -> tuple:
        g = np.asarray(g) / count
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, av.shape).copy(),)

    spec = ("mean", axis, keepdims, count, av.shape) \
        if _CAPTURE.capture is not None else None
    return _record("mean", out, parents, vjp, spec=spec)


def _minmax_vjp(av: np.ndarray, out: np.ndarray, axis, keepdims: bool):
    def vjp(g: np.ndarray) -> tuple:
        g = np.asarray(g)
        out_k = out
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
            out_k = np.expand_dims(out, axis=axis)
        mask = (av == out_k)
        # split the cotangent equally across ties to keep the VJP a linear map
        denom = mask.sum(axis=axis, keepdims=True) if axis is not None \
            else mask.sum()
        return (mask * g / denom,)

    return vjp


def max(a: Any, axis=None, keepdims: bool = False) -> Any:
    """Maximum over the given axis (ties share the cotangent equally)."""
    if isinstance(a, TangentArray):
        av = a.value
        out = np.max(av, axis=axis, keepdims=keepdims)
        out_k = np.expand_dims(out, axis=axis) \
            if axis is not None and not keepdims else out
        mask = (av == out_k)
        denom = mask.sum(axis=axis, keepdims=True) if axis is not None \
            else mask.sum()
        return _tangent_weighted_reduce(a, axis, keepdims, out, mask / denom)
    av = value_of(a)
    axis = _probe_reduce_axis(axis, av.ndim, _probe_batch(a))
    out = np.max(av, axis=axis, keepdims=keepdims)
    parents = _traced_parents(a)
    spec = ("redminmax", "max", axis, keepdims, av.shape) \
        if _CAPTURE.capture is not None else None
    return _record("max", out, parents, _minmax_vjp(av, out, axis, keepdims),
                   spec=spec)


def min(a: Any, axis=None, keepdims: bool = False) -> Any:
    """Minimum over the given axis (ties share the cotangent equally)."""
    if isinstance(a, TangentArray):
        av = a.value
        out = np.min(av, axis=axis, keepdims=keepdims)
        out_k = np.expand_dims(out, axis=axis) \
            if axis is not None and not keepdims else out
        mask = (av == out_k)
        denom = mask.sum(axis=axis, keepdims=True) if axis is not None \
            else mask.sum()
        return _tangent_weighted_reduce(a, axis, keepdims, out, mask / denom)
    av = value_of(a)
    axis = _probe_reduce_axis(axis, av.ndim, _probe_batch(a))
    out = np.min(av, axis=axis, keepdims=keepdims)
    parents = _traced_parents(a)
    spec = ("redminmax", "min", axis, keepdims, av.shape) \
        if _CAPTURE.capture is not None else None
    return _record("min", out, parents, _minmax_vjp(av, out, axis, keepdims),
                   spec=spec)


def prod(a: Any, axis=None, keepdims: bool = False) -> Any:
    """Product over the given axis (assumes no exact zeros for the VJP)."""
    if isinstance(a, TangentArray):
        av = a.value
        out = np.prod(av, axis=axis, keepdims=keepdims)
        out_k = np.expand_dims(out, axis=axis) \
            if axis is not None and not keepdims else out
        safe = np.where(av == 0, 1.0, av)
        return _tangent_weighted_reduce(a, axis, keepdims, out, out_k / safe)
    av = value_of(a)
    axis = _probe_reduce_axis(axis, av.ndim, _probe_batch(a))
    out = np.prod(av, axis=axis, keepdims=keepdims)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        g = np.asarray(g)
        out_k = out
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
            out_k = np.expand_dims(out, axis=axis)
        safe = np.where(av == 0, 1.0, av)
        return (g * out_k / safe,)

    spec = ("prod", axis, keepdims, av.shape) \
        if _CAPTURE.capture is not None else None
    return _record("prod", out, parents, vjp, spec=spec)


def norm(a: Any, ord: int = 2) -> Any:
    """Flattened vector norm built from differentiable primitives.

    Only ``ord in (1, 2)`` is supported; the NPB verification norms are
    2-norms and max-norms (use :func:`max` with :func:`absolute` for the
    latter).
    """
    flat = reshape(a, (-1,))
    if ord == 1:
        return sum(absolute(flat))
    if ord == 2:
        return sqrt(sum(flat * flat))
    raise ValueError(f"unsupported norm order: {ord!r}")


# ---------------------------------------------------------------------------
# shape manipulation
# ---------------------------------------------------------------------------

def reshape(a: Any, shape) -> Any:
    """Reshape to ``shape`` (a view-like differentiable operation).

    ``shape`` is the *logical* target shape; under a batched probe sweep the
    probe axis is preserved in front of it.
    """
    if isinstance(a, TangentArray):
        out = np.reshape(a.value, shape)
        dt = np.reshape(a.tangent, (a.tangent.shape[0],) + out.shape)
        return TangentArray(out, dt)
    av = value_of(a)
    if _probe_batch(a) is not None:
        shape = (av.shape[0],) + ((shape,) if np.ndim(shape) == 0
                                  else tuple(shape))
    out = np.reshape(av, shape)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.reshape(g, av.shape),)

    spec = ("reshape", np.shape(out), av.shape) \
        if _CAPTURE.capture is not None else None
    return _record("reshape", out, parents, vjp, spec=spec)


def ravel(a: Any) -> Any:
    """Flatten to one dimension."""
    return reshape(a, (-1,))


def transpose(a: Any, axes=None) -> Any:
    """Permute array axes (the probe axis, when present, stays in front)."""
    if isinstance(a, TangentArray):
        av, ta = a.value, a.tangent
        if axes is None:
            axes_t = (0,) + tuple(range(ta.ndim - 1, 0, -1))
        else:
            axes_t = (0,) + tuple(ax + 1 if ax >= 0 else ta.ndim + ax
                                  for ax in axes)
        return TangentArray(np.transpose(av, axes), np.transpose(ta, axes_t))
    av = value_of(a)
    if _probe_batch(a) is not None:
        if axes is None:
            axes = (0,) + tuple(range(av.ndim - 1, 0, -1))
        else:
            axes = (0,) + tuple(ax + 1 if ax >= 0 else av.ndim + ax
                                for ax in axes)
    out = np.transpose(av, axes)
    parents = _traced_parents(a)
    if axes is None:
        inv_axes = None
    else:
        inv_axes = np.argsort(axes)

    def vjp(g: np.ndarray) -> tuple:
        return (np.transpose(g, inv_axes),)

    spec = ("transpose", None if axes is None else tuple(axes), inv_axes) \
        if _CAPTURE.capture is not None else None
    return _record("transpose", out, parents, vjp, spec=spec)


def swapaxes(a: Any, axis1: int, axis2: int) -> Any:
    """Interchange two axes."""
    if isinstance(a, TangentArray):
        nd = a.tangent.shape[0]
        return TangentArray(
            np.swapaxes(a.value, axis1, axis2),
            np.swapaxes(a.tangent, _probe_shift_axis(axis1, nd),
                        _probe_shift_axis(axis2, nd)))
    nb = _probe_batch(a)
    axis1 = _probe_shift_axis(axis1, nb)
    axis2 = _probe_shift_axis(axis2, nb)
    av = value_of(a)
    out = np.swapaxes(av, axis1, axis2)
    parents = _traced_parents(a)

    spec = ("swapaxes", axis1, axis2) \
        if _CAPTURE.capture is not None else None

    def vjp(g: np.ndarray) -> tuple:
        return (np.swapaxes(g, axis1, axis2),)

    return _record("swapaxes", out, parents, vjp, spec=spec)


def moveaxis(a: Any, source, destination) -> Any:
    """Move array axes to new positions."""
    if isinstance(a, TangentArray):
        nd = a.tangent.shape[0]
        return TangentArray(
            np.moveaxis(a.value, source, destination),
            np.moveaxis(a.tangent, _probe_shift_axis(source, nd),
                        _probe_shift_axis(destination, nd)))
    nb = _probe_batch(a)
    source = _probe_shift_axis(source, nb)
    destination = _probe_shift_axis(destination, nb)
    av = value_of(a)
    out = np.moveaxis(av, source, destination)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.moveaxis(g, destination, source),)

    spec = ("moveaxis", source, destination) \
        if _CAPTURE.capture is not None else None
    return _record("moveaxis", out, parents, vjp, spec=spec)


def broadcast_to(a: Any, shape) -> Any:
    """Broadcast to a new (logical) shape."""
    if isinstance(a, TangentArray):
        shape = tuple(shape)
        out = np.array(np.broadcast_to(a.value, shape))
        return _tangent_result(out, _tangent_lift(a.tangent, len(shape)),
                               a.tangent.shape[0])
    av = value_of(a)
    if _probe_batch(a) is not None:
        shape = (av.shape[0],) + tuple(shape)
    out = np.broadcast_to(av, shape)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (_unbroadcast(g, av.shape),)

    spec = ("broadcast_to", np.shape(out), av.shape) \
        if _CAPTURE.capture is not None else None
    return _record("broadcast_to", np.array(out), parents, vjp, spec=spec)


def squeeze(a: Any, axis=None) -> Any:
    """Remove size-1 dimensions (never the probe axis)."""
    if isinstance(a, TangentArray):
        out = np.squeeze(a.value, axis=axis)
        dt = np.reshape(a.tangent, (a.tangent.shape[0],) + out.shape)
        return TangentArray(out, dt)
    av = value_of(a)
    nb = _probe_batch(a)
    if nb is not None:
        if axis is None:
            axis = tuple(ax for ax in range(1, av.ndim)
                         if av.shape[ax] == 1)
        else:
            axis = _probe_shift_axis(axis, nb)
    out = np.squeeze(av, axis=axis)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.reshape(g, av.shape),)

    spec = ("squeeze", axis, av.shape) \
        if _CAPTURE.capture is not None else None
    return _record("squeeze", out, parents, vjp, spec=spec)


def expand_dims(a: Any, axis) -> Any:
    """Insert a size-1 dimension at (logical) ``axis``."""
    if isinstance(a, TangentArray):
        out = np.expand_dims(a.value, axis)
        dt = np.reshape(a.tangent, (a.tangent.shape[0],) + out.shape)
        return TangentArray(out, dt)
    axis = _probe_shift_axis(axis, _probe_batch(a))
    av = value_of(a)
    out = np.expand_dims(av, axis)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.reshape(g, av.shape),)

    spec = ("expand_dims", axis, av.shape) \
        if _CAPTURE.capture is not None else None
    return _record("expand_dims", out, parents, vjp, spec=spec)


def concatenate(arrays: Sequence[Any], axis: int = 0) -> Any:
    """Join arrays along an existing (logical) axis."""
    arrays = list(arrays)
    if _any_tangent(*arrays):
        return _tangent_join(np.concatenate, arrays, axis)
    values = [value_of(a) for a in arrays]
    nb = _probe_batch(*arrays)
    if nb is not None:
        axis = _probe_shift_axis(axis, nb)
        # plain operands gain the probe axis so every part is batched
        values = [v if _is_traced(arr)
                  else np.broadcast_to(v, (nb,) + np.shape(v))
                  for arr, v in zip(arrays, values)]
    out = np.concatenate(values, axis=axis)
    parents = _traced_parents(*arrays)
    # offsets of every *traced* input along the concat axis
    sizes = [v.shape[axis] for v in values]
    offsets = np.cumsum([0] + sizes)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        for arr, val, start, stop in zip(arrays, values, offsets[:-1], offsets[1:]):
            if isinstance(arr, ADArray) and arr.node is not None:
                index = [slice(None)] * g.ndim
                index[axis] = slice(start, stop)
                grads.append(g[tuple(index)])
        return tuple(grads)

    spec = None
    if _CAPTURE.capture is not None:
        parts = tuple(("t", None) if _is_traced(arr) else ("c", val)
                      for arr, val in zip(arrays, values))
        spec = ("concat", axis, parts, tuple(int(o) for o in offsets))
    return _record("concatenate", out, parents, vjp, spec=spec)


def stack(arrays: Sequence[Any], axis: int = 0) -> Any:
    """Join arrays along a new (logical) axis."""
    arrays = list(arrays)
    if _any_tangent(*arrays):
        return _tangent_join(np.stack, arrays, axis)
    values = [value_of(a) for a in arrays]
    nb = _probe_batch(*arrays)
    if nb is not None:
        axis = _probe_shift_axis(axis, nb)
        values = [v if _is_traced(arr)
                  else np.broadcast_to(v, (nb,) + np.shape(v))
                  for arr, v in zip(arrays, values)]
    out = np.stack(values, axis=axis)
    parents = _traced_parents(*arrays)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        for i, arr in enumerate(arrays):
            if isinstance(arr, ADArray) and arr.node is not None:
                grads.append(np.take(g, i, axis=axis))
        return tuple(grads)

    spec = None
    if _CAPTURE.capture is not None:
        parts = tuple(("t", None) if _is_traced(arr) else ("c", val)
                      for arr, val in zip(arrays, values))
        spec = ("stack", axis, parts)
    return _record("stack", out, parents, vjp, spec=spec)


def flip(a: Any, axis=None) -> Any:
    """Reverse element order along the given (logical) axis."""
    if isinstance(a, TangentArray):
        ta = a.tangent
        axis_t = tuple(range(1, ta.ndim)) if axis is None \
            else _probe_shift_axis(axis, ta.shape[0])
        return TangentArray(np.flip(a.value, axis=axis),
                            np.flip(ta, axis=axis_t))
    av = value_of(a)
    nb = _probe_batch(a)
    if nb is not None:
        axis = tuple(range(1, av.ndim)) if axis is None \
            else _probe_shift_axis(axis, nb)
    out = np.flip(av, axis=axis)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.flip(g, axis=axis),)

    spec = ("flip", axis) if _CAPTURE.capture is not None else None
    return _record("flip", out, parents, vjp, spec=spec)


def roll(a: Any, shift, axis=None) -> Any:
    """Circularly shift elements along a (logical) axis."""
    if isinstance(a, TangentArray):
        ta = a.tangent
        if axis is None:
            # numpy's axis=None rolls the flattened array; per direction
            # that means rolling each flattened direction slice
            out = np.roll(a.value, shift)
            dt = np.roll(ta.reshape(ta.shape[0], -1), shift,
                         axis=1).reshape(ta.shape)
            return TangentArray(out, dt)
        return TangentArray(
            np.roll(a.value, shift, axis=axis),
            np.roll(ta, shift, axis=_probe_shift_axis(axis, ta.shape[0])))
    av = value_of(a)
    nb = _probe_batch(a)
    if nb is not None and axis is None:
        # numpy's axis=None rolls the flattened array; per probe that means
        # rolling each flattened probe slice
        flat_shape = (av.shape[0], -1)
        out = np.roll(av.reshape(flat_shape), shift, axis=1).reshape(av.shape)
        parents = _traced_parents(a)

        def vjp_flat(g: np.ndarray) -> tuple:
            g2 = np.asarray(g).reshape(flat_shape)
            return (np.roll(g2, -np.asarray(shift) if np.ndim(shift)
                            else -shift, axis=1).reshape(av.shape),)

        spec = ("roll_flat", shift, flat_shape, av.shape) \
            if _CAPTURE.capture is not None else None
        return _record("roll", out, parents, vjp_flat, spec=spec)
    axis = _probe_shift_axis(axis, nb)
    out = np.roll(av, shift, axis=axis)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.roll(g, -np.asarray(shift) if np.ndim(shift) else -shift,
                        axis=axis),)

    spec = ("roll", shift, axis) if _CAPTURE.capture is not None else None
    return _record("roll", out, parents, vjp, spec=spec)


def pad_zero(a: Any, pad_width) -> Any:
    """Zero-pad an array (``numpy.pad`` with constant zeros).

    ``pad_width`` refers to the logical dimensions; the probe axis (when
    present) is never padded.
    """
    if isinstance(a, TangentArray):
        av, ta = a.value, a.tangent
        norm_pad = np.asarray(np.broadcast_to(
            np.asarray(pad_width, dtype=np.int64).reshape(-1, 2)
            if np.ndim(pad_width) > 0 else [[pad_width, pad_width]],
            (av.ndim, 2)))
        return TangentArray(
            np.pad(av, norm_pad, mode="constant"),
            np.pad(ta, np.vstack([[[0, 0]], norm_pad]), mode="constant"))
    av = value_of(a)
    nb = _probe_batch(a)
    lndim = av.ndim - 1 if nb is not None else av.ndim
    norm_pad = np.asarray(np.broadcast_to(np.asarray(pad_width, dtype=np.int64)
                                          .reshape(-1, 2) if np.ndim(pad_width) > 0
                                          else [[pad_width, pad_width]],
                                          (lndim, 2)))
    if nb is not None:
        norm_pad = np.vstack([[[0, 0]], norm_pad])
    out = np.pad(av, norm_pad, mode="constant")
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        index = tuple(slice(before, before + size)
                      for (before, _after), size in zip(norm_pad, av.shape))
        return (g[index],)

    spec = ("pad_zero", norm_pad, av.shape) \
        if _CAPTURE.capture is not None else None
    return _record("pad_zero", out, parents, vjp, spec=spec)


# ---------------------------------------------------------------------------
# selection and indexing
# ---------------------------------------------------------------------------

def _index_values(index: Any) -> Any:
    """Strip AD wrappers from an index expression (indices are data)."""
    if isinstance(index, (ADArray, TangentArray)):
        return index.value
    if isinstance(index, tuple):
        return tuple(_index_values(i) for i in index)
    return index


def _is_advanced(index: Any) -> bool:
    """True when the index expression uses integer/boolean array indexing."""
    if isinstance(index, (np.ndarray, list)):
        return True
    if isinstance(index, tuple):
        return builtins.any(isinstance(i, (np.ndarray, list)) for i in index)
    return False


def getitem(a: Any, index: Any) -> Any:
    """Differentiable ``a[index]`` (basic slicing or advanced indexing).

    Index expressions always address the logical dimensions; under a
    batched probe sweep a full slice of the probe axis is prepended, so
    every probe slice is indexed identically.
    """
    if isinstance(a, TangentArray):
        av, ta = a.value, a.tangent
        idx = _index_values(index)
        out = av[idx]
        dt = ta[_probe_index(idx, ta.shape[0])]
        if _is_advanced(idx):
            # restore C order after the advanced gather (see the batched
            # reverse path below) so per-direction reduction orders match
            dt = np.ascontiguousarray(dt)
        return TangentArray(out, dt)
    av = value_of(a)
    idx = _index_values(index)
    nb = _probe_batch(a)
    full_idx = _probe_index(idx, nb)
    out = av[full_idx]
    if nb is not None and _is_advanced(idx):
        # numpy places the advanced-index subspace before the probe slice in
        # memory; restore C order so every probe row is laid out exactly
        # like the unbatched gather (downstream reductions then use the
        # same summation order, keeping probe slices bitwise faithful)
        out = np.ascontiguousarray(out)
    parents = _traced_parents(a)
    advanced = _is_advanced(idx)

    def vjp(g: np.ndarray) -> tuple:
        grad = np.zeros(av.shape, dtype=np.result_type(g, np.float64))
        if advanced:
            np.add.at(grad, full_idx, g)
        else:
            grad[full_idx] += g
        return (grad,)

    spec = ("getitem", full_idx, advanced,
            nb is not None and advanced, av.shape) \
        if _CAPTURE.capture is not None else None
    return _record("getitem", out, parents, vjp, meta={"index": idx},
                   spec=spec)


def take(a: Any, indices: Any, axis=None) -> Any:
    """Differentiable ``numpy.take`` (``axis`` addresses logical dims)."""
    if isinstance(a, TangentArray):
        av, ta = a.value, a.tangent
        idx = _index_values(indices)
        nd = ta.shape[0]
        out = np.take(av, idx, axis=axis)
        if axis is None:
            dt = np.take(ta.reshape(nd, -1), idx, axis=1)
            dt = dt.reshape((nd,) + np.shape(out))
        else:
            ax1 = _probe_shift_axis(axis, nd)
            dt = np.ascontiguousarray(
                ta[(slice(None),) * ax1 + (np.asarray(idx),)])
        return TangentArray(out, dt)
    av = value_of(a)
    idx = _index_values(indices)
    nb = _probe_batch(a)
    if nb is not None:
        if axis is None:
            # numpy's axis=None takes from the flattened array; per probe
            # that means taking from each flattened probe slice
            flat = av.reshape(av.shape[0], -1)
            out = np.take(flat, idx, axis=1)
            parents = _traced_parents(a)

            def vjp_flat(g: np.ndarray) -> tuple:
                grad = np.zeros(av.shape,
                                dtype=np.result_type(g, np.float64))
                gflat = grad.reshape(grad.shape[0], -1)
                np.add.at(gflat, (slice(None),
                                  np.asarray(idx).reshape(-1)),
                          np.asarray(g).reshape(g.shape[0] if np.ndim(g)
                                                else 1, -1))
                return (grad,)

            return _record("take", out, parents, vjp_flat,
                           meta={"indices": np.asarray(idx), "axis": axis})
        # a single advanced index at `axis` is exactly np.take(..., axis)
        ax1 = _probe_shift_axis(axis, nb)
        take_idx = (slice(None),) * ax1 + (np.asarray(idx),)
        out = np.ascontiguousarray(av[take_idx])
        parents = _traced_parents(a)

        def vjp_axis(g: np.ndarray) -> tuple:
            grad = np.zeros(av.shape, dtype=np.result_type(g, np.float64))
            np.add.at(grad, take_idx, g)
            return (grad,)

        return _record("take", out, parents, vjp_axis,
                       meta={"indices": np.asarray(idx), "axis": axis})
    out = np.take(av, idx, axis=axis)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        grad = np.zeros(av.shape, dtype=np.result_type(g, np.float64))
        if axis is None:
            np.add.at(grad.reshape(-1), np.asarray(idx).reshape(-1),
                      np.asarray(g).reshape(-1))
        else:
            grad_moved = np.moveaxis(grad, axis, 0)
            g_moved = np.moveaxis(np.asarray(g), axis, 0) \
                if np.ndim(idx) > 0 else np.asarray(g)[None]
            np.add.at(grad_moved, np.asarray(idx).reshape(-1),
                      g_moved.reshape((-1,) + grad_moved.shape[1:]))
        return (grad,)

    return _record("take", out, parents, vjp,
                   meta={"indices": np.asarray(idx), "axis": axis})


def _index_roles(a: Any, b: Any) -> tuple[str, ...]:
    """Operand roles of an indexed-write primitive, aligned with parents.

    Consumed by the activity analysis (:mod:`repro.ad.activity`), which
    must distinguish a leaf appearing as the written-into *target* from a
    leaf appearing as the *value/addend* operand.
    """
    return tuple(role for role, x in (("target", a), ("value", b))
                 if _is_traced(x))


def index_update(a: Any, index: Any, b: Any) -> Any:
    """Functional update: a copy of ``a`` with ``a[index] = b``.

    This is the primitive behind ``ADArray.__setitem__``.  The cotangent of
    ``a`` is the incoming cotangent with the updated region zeroed out (those
    elements of ``a`` were overwritten, so they no longer influence the
    output); the cotangent of ``b`` is the cotangent of the updated region.
    """
    if _any_tangent(a, b):
        return _tangent_index_write(a, index, b, add=False)
    av, bv = value_of(a), value_of(b)
    idx = _index_values(index)
    nb = _probe_batch(a, b)
    full_idx = _probe_index(idx, nb)
    spec = None
    if _CAPTURE.capture is not None:
        lift = (nb,) + np.shape(av) \
            if nb is not None and not _is_traced(a) else None
        spec = ("index_update", full_idx, _is_traced(a), _is_traced(b),
                None if _is_traced(a) else av,
                None if _is_traced(b) else bv,
                np.shape(bv), nb is not None, lift)
    if nb is not None and not _is_traced(a):
        # plain target written with batched values: the copy gains the axis.
        # Copy in C order -- an order-'K' copy of the broadcast view would
        # give the probe axis the smallest stride, changing downstream
        # reduction orders away from the per-probe layout.
        av = np.broadcast_to(av, (nb,) + np.shape(av))
        out = np.array(av, copy=True, order="C")
    else:
        out = np.array(av, copy=True)
    out[full_idx] = bv
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            ga = np.array(g, copy=True)
            ga[full_idx] = 0.0
            grads.append(ga)
        if isinstance(b, ADArray) and b.node is not None:
            gb = np.asarray(g)[full_idx]
            grads.append(_unbroadcast_keep_probe(gb, np.shape(bv),
                                                 nb is not None))
        return tuple(grads)

    return _record("index_update", out, parents, vjp,
                   meta={"index": idx, "roles": _index_roles(a, b)},
                   spec=spec)


def index_add(a: Any, index: Any, b: Any) -> Any:
    """Functional scatter-add: a copy of ``a`` with ``a[index] += b``
    (unbuffered, i.e. repeated indices accumulate as ``np.add.at`` does)."""
    if _any_tangent(a, b):
        return _tangent_index_write(a, index, b, add=True)
    av, bv = value_of(a), value_of(b)
    idx = _index_values(index)
    nb = _probe_batch(a, b)
    full_idx = _probe_index(idx, nb)
    spec = None
    if _CAPTURE.capture is not None:
        lift = (nb,) + np.shape(av) \
            if nb is not None and not _is_traced(a) else None
        spec = ("index_add", full_idx, _is_traced(a), _is_traced(b),
                None if _is_traced(a) else av,
                None if _is_traced(b) else bv,
                np.shape(bv), nb is not None, lift)
    if nb is not None and not _is_traced(a):
        # see index_update: lift the plain target in C order
        av = np.broadcast_to(av, (nb,) + np.shape(av))
        out = np.array(av, copy=True, order="C")
    else:
        out = np.array(av, copy=True)
    np.add.at(out, full_idx, bv)
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(np.asarray(g))
        if isinstance(b, ADArray) and b.node is not None:
            gb = np.asarray(g)[full_idx]
            grads.append(_unbroadcast_keep_probe(gb, np.shape(bv),
                                                 nb is not None))
        return tuple(grads)

    return _record("index_add", out, parents, vjp,
                   meta={"index": idx, "roles": _index_roles(a, b)},
                   spec=spec)


def where(cond: Any, a: Any, b: Any) -> Any:
    """Elementwise select; the condition is treated as non-differentiable."""
    if _any_tangent(a, b):
        cv = value_of(cond).astype(bool)
        av, ta = _tangent_parts(a)
        bv, tb = _tangent_parts(b)
        nd = _tangent_dirs(a, b)
        out = np.where(cv, av, bv)
        target = builtins.max(av.ndim, bv.ndim, cv.ndim)
        dt = None
        if ta is not None:
            dt = _tangent_lift(ta, target) * cv
        if tb is not None:
            dtb = _tangent_lift(tb, target) * ~cv
            dt = dtb if dt is None else dt + dtb
        return _tangent_result(out, dt, nd)
    cv = value_of(cond).astype(bool)
    av0, bv0 = value_of(a), value_of(b)
    nb = _probe_batch(a, b)
    if nb is not None:
        av, bv = _probe_align(nb, (av0, _is_traced(a)), (bv0, _is_traced(b)))
    else:
        av, bv = av0, bv0
    out = np.where(cv, av, bv)
    parents = _traced_parents(a, b)
    a_shape, b_shape = np.shape(av0), np.shape(bv0)
    a_lift, b_lift = np.shape(av), np.shape(bv)

    def vjp(g: np.ndarray) -> tuple:
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(_probe_restore(_unbroadcast(g * cv, a_lift),
                                        a_shape))
        if isinstance(b, ADArray) and b.node is not None:
            grads.append(_probe_restore(_unbroadcast(g * (~cv), b_lift),
                                        b_shape))
        return tuple(grads)

    spec = None
    if _CAPTURE.capture is not None:
        spec = ("where", cv, _is_traced(a), _is_traced(b),
                None if _is_traced(a) else av,
                None if _is_traced(b) else bv,
                a_shape, b_shape, a_lift, b_lift)
    return _record("where", out, parents, vjp, spec=spec)


def copy(a: Any) -> Any:
    """Differentiable identity copy."""
    if isinstance(a, TangentArray):
        return TangentArray(np.array(a.value, copy=True),
                            np.array(a.tangent, copy=True))
    av = value_of(a)
    out = np.array(av, copy=True)
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (g,)

    spec = ("copy",) if _CAPTURE.capture is not None else None
    return _record("copy", out, parents, vjp, spec=spec)


def astype(a: Any, dtype) -> Any:
    """Cast to ``dtype``.

    Casting to a floating dtype keeps the trace (identity VJP); casting to an
    integer or boolean dtype detaches the result, because derivatives through
    integer data are identically zero.
    """
    if isinstance(a, TangentArray):
        dtype = np.dtype(dtype)
        out = a.value.astype(dtype)
        if not np.issubdtype(dtype, np.floating):
            return out
        return TangentArray(out, a.tangent.astype(dtype))
    av = value_of(a)
    dtype = np.dtype(dtype)
    out = av.astype(dtype)
    if not np.issubdtype(dtype, np.floating):
        return out
    parents = _traced_parents(a)

    def vjp(g: np.ndarray) -> tuple:
        return (np.asarray(g, dtype=av.dtype),)

    spec = ("astype", dtype.str, av.dtype.str) \
        if _CAPTURE.capture is not None else None
    return _record("astype", out, parents, vjp, spec=spec)


def detach(a: Any) -> np.ndarray:
    """Return the concrete value, cutting the AD graph."""
    return np.array(value_of(a), copy=True)


# ---------------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------------

def matmul(a: Any, b: Any) -> Any:
    """Matrix product following :func:`numpy.matmul` semantics.

    Supports 1-D and 2-D operands and batched stacks of matrices (the cases
    exercised by the NPB kernels: DFT matrices, block solves and dot
    products).  Under a batched probe sweep the traced operands' *logical*
    ranks decide the vector/matrix semantics and the probe axis broadcasts
    as a leading batch dimension.
    """
    if _any_tangent(a, b):
        return _tangent_matmul(a, b)
    nb = _probe_batch(a, b)
    if nb is not None:
        return _probe_matmul(a, b, nb)
    av, bv = value_of(a), value_of(b)
    out = np.matmul(av, bv)
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        g = np.asarray(g)
        grads = []
        if isinstance(a, ADArray) and a.node is not None:
            grads.append(_matmul_grad_a(g, av, bv))
        if isinstance(b, ADArray) and b.node is not None:
            grads.append(_matmul_grad_b(g, av, bv))
        return tuple(grads)

    spec = None
    if _CAPTURE.capture is not None:
        spec = ("matmul", _is_traced(a), _is_traced(b),
                None if _is_traced(a) else av,
                None if _is_traced(b) else bv)
    return _record("matmul", out, parents, vjp, spec=spec)


def _probe_matmul(a: Any, b: Any, nb: int) -> Any:
    """Probe-batched matmul: logical vectors are lifted to matrices, the
    probe axis broadcasts as a batch dimension, and the inserted singleton
    axes are squeezed back out of both the value and the cotangents."""
    av, bv = value_of(a), value_of(b)
    la = av.ndim - 1 if _is_traced(a) else av.ndim
    lb = bv.ndim - 1 if _is_traced(b) else bv.ndim
    if la == 0 or lb == 0:
        raise ProbeBatchingError("matmul operands must be at least 1-D")
    if la == 2 and lb == 1 and not _is_traced(a) and _is_traced(b):
        return _probe_matvec_multirhs(a, av, b, bv)
    av_m = av[..., None, :] if la == 1 else av
    bv_m = bv[..., :, None] if lb == 1 else bv
    out_m = np.matmul(av_m, bv_m)
    if la == 1 and lb == 1:
        out = out_m[..., 0, 0]
    elif la == 1:
        out = out_m[..., 0, :]
    elif lb == 1:
        out = out_m[..., :, 0]
    else:
        out = out_m
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        g = np.asarray(g)
        if la == 1 and lb == 1:
            g_m = g[..., None, None]
        elif la == 1:
            g_m = g[..., None, :]
        elif lb == 1:
            g_m = g[..., :, None]
        else:
            g_m = g
        grads = []
        if _is_traced(a):
            ga = np.matmul(g_m, np.swapaxes(bv_m, -1, -2))
            grads.append(_unbroadcast_keep_probe(ga, av_m.shape,
                                                 True).reshape(av.shape))
        if _is_traced(b):
            gb = np.matmul(np.swapaxes(av_m, -1, -2), g_m)
            grads.append(_unbroadcast_keep_probe(gb, bv_m.shape,
                                                 True).reshape(bv.shape))
        return tuple(grads)

    spec = None
    if _CAPTURE.capture is not None:
        spec = ("matmul_probe", _is_traced(a), _is_traced(b),
                None if _is_traced(a) else av,
                None if _is_traced(b) else bv, la, lb)
    return _record("matmul", out, parents, vjp, spec=spec)


def _probe_matvec_multirhs(a: Any, av: np.ndarray, b: Any,
                           bv: np.ndarray) -> Any:
    """Plain matrix times a batch of probe vectors as one multi-RHS GEMM.

    ``A @ v`` per probe equals one GEMM with the probe vectors as rows
    (``out[p] = (bv @ A^T)[p]``), which reads the constant matrix once for
    *all* probes instead of once per probe -- the dominant win for
    memory-bound matvec kernels (CG's 1400x1400 solves).  The GEMM regroups
    each dot product's accumulation, so nonzero gradient values may differ
    from the per-probe gemv by ~1 ulp; criticality masks are unaffected
    because structural zeros are never touched by any arithmetic (their
    cotangent buffers simply stay unwritten in both formulations).
    """
    out = np.matmul(bv, np.swapaxes(av, -1, -2))
    parents = _traced_parents(a, b)

    def vjp(g: np.ndarray) -> tuple:
        # d out[p, i] / d bv[p, k] = av[i, k]  ->  gb = g @ av
        return (np.matmul(np.asarray(g), av),)

    spec = ("matmul_multirhs", av) if _CAPTURE.capture is not None else None
    return _record("matmul", out, parents, vjp, spec=spec)


def _matmul_grad_a(g: np.ndarray, av: np.ndarray, bv: np.ndarray) -> np.ndarray:
    if av.ndim == 1 and bv.ndim == 1:          # vector . vector -> scalar
        return g * bv
    if av.ndim == 1:                            # (k,) @ (..., k, n)
        ga = np.matmul(np.expand_dims(g, -2), np.swapaxes(bv, -1, -2))
        ga = np.squeeze(ga, axis=-2)
        return _unbroadcast(ga, av.shape)
    if bv.ndim == 1:                            # (..., m, k) @ (k,)
        ga = np.matmul(np.expand_dims(g, -1), np.expand_dims(bv, 0))
        return _unbroadcast(ga, av.shape)
    ga = np.matmul(g, np.swapaxes(bv, -1, -2))
    return _unbroadcast(ga, av.shape)


def _matmul_grad_b(g: np.ndarray, av: np.ndarray, bv: np.ndarray) -> np.ndarray:
    if av.ndim == 1 and bv.ndim == 1:
        return g * av
    if av.ndim == 1:                            # (k,) @ (..., k, n)
        gb = np.matmul(np.expand_dims(av, -1), np.expand_dims(g, -2))
        return _unbroadcast(gb, bv.shape)
    if bv.ndim == 1:                            # (..., m, k) @ (k,)
        gb = np.matmul(np.swapaxes(av, -1, -2), np.expand_dims(g, -1))
        gb = np.squeeze(gb, axis=-1)
        return _unbroadcast(gb, bv.shape)
    gb = np.matmul(np.swapaxes(av, -1, -2), g)
    return _unbroadcast(gb, bv.shape)


def dot(a: Any, b: Any) -> Any:
    """Alias of :func:`matmul` for 1-D/2-D operands."""
    return matmul(a, b)


def outer(a: Any, b: Any) -> Any:
    """Outer product of two vectors."""
    a2 = reshape(a, (-1, 1))
    b2 = reshape(b, (1, -1))
    return multiply(a2, b2)


# ---------------------------------------------------------------------------
# constructors / passthrough helpers (never traced on their own)
# ---------------------------------------------------------------------------

def zeros(shape, dtype=np.float64) -> np.ndarray:
    """Plain ``numpy.zeros`` (constants are never traced)."""
    return np.zeros(shape, dtype=dtype)


def ones(shape, dtype=np.float64) -> np.ndarray:
    """Plain ``numpy.ones``."""
    return np.ones(shape, dtype=dtype)


def full(shape, fill_value, dtype=np.float64) -> np.ndarray:
    """Plain ``numpy.full``."""
    return np.full(shape, fill_value, dtype=dtype)


def zeros_like(a: Any) -> np.ndarray:
    """Zeros with the shape/dtype of ``a``'s concrete value."""
    return np.zeros_like(value_of(a))


def ones_like(a: Any) -> np.ndarray:
    """Ones with the shape/dtype of ``a``'s concrete value."""
    return np.ones_like(value_of(a))


def arange(*args, **kwargs) -> np.ndarray:
    """Plain ``numpy.arange``."""
    return np.arange(*args, **kwargs)


def linspace(*args, **kwargs) -> np.ndarray:
    """Plain ``numpy.linspace``."""
    return np.linspace(*args, **kwargs)


def asarray(a: Any, dtype=None) -> Any:
    """Identity on ADArrays/TangentArrays; ``numpy.asarray`` otherwise."""
    if isinstance(a, (ADArray, TangentArray)):
        return a if dtype is None else astype(a, dtype)
    return np.asarray(a, dtype=dtype)


def array(a: Any, dtype=None) -> Any:
    """Copying variant of :func:`asarray`."""
    if isinstance(a, (ADArray, TangentArray)):
        out = copy(a)
        return out if dtype is None else astype(out, dtype)
    return np.array(a, dtype=dtype)
