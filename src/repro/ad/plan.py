"""Trace-once / replay-many: compiled tape plans for the segmented sweep.

Profiling of the segmented reverse sweep showed the analysis is *recording-
bound* on small and medium problem classes: every segment, every binomial-
schedule forward refill and every probe re-runs the Python tracer over an
identical operation structure, rebuilding :class:`~repro.ad.tape.Node`
objects, re-creating every VJP closure and re-walking the benchmark's
Python kernel code.  This module removes that redundancy with the classic
trace-specialisation idea (the same observation behind Griewank & Walther's
treatment of repeated forward steps in *revolve*): record the tape **once**
per (benchmark, problem class, step structure), lower it to a *compiled
replay plan*, and execute that plan -- a flat program of kernel calls with
preassigned buffer slots backed by a reusable arena -- instead of tracing.

How a plan is built
-------------------

1. **Capture.**  While a normal ``traced_step`` / ``traced_output`` runs,
   every primitive in :mod:`repro.ad.ops` deposits a *spec* -- its name, its
   constant operands, and every shape/axis/index decision it made (all
   post probe-axis adjustment, so batched probe traces capture their final
   geometry) -- keyed by the node it recorded.  The capture costs a few
   percent on top of the trace it piggy-backs on and is only active while a
   plan is being learned.

2. **Validation.**  A captured program alone proves nothing: constants may
   depend on untraced state (EP's per-batch Gaussian sums), the op sequence
   may diverge between iterations (the LU-style first-iteration setup), or
   a primitive may have no replay kernel at all.  A plan is therefore only
   compiled from **two captures that agree** -- op for op, slot for slot,
   constant for constant (bitwise):

   * two captures taken at *different* integer-state values (consecutive
     loop boundaries) that agree prove the structure is counter-independent;
     the compiled plan then serves **every** boundary of the sweep (the
     *coarse* tier -- CG, LU, MG, BT, SP);
   * when the captures disagree, the structure is counter-dependent and the
     cache refines to per-counter-value plans keyed by the exact non-float
     state (the *fine* tier -- FT's per-``kt`` evolution factor, EP's
     per-batch sums); those plans replay across probe loops, repeated
     analyses and binomial refills that revisit the same iteration.

3. **Lowering.**  Each captured node is compiled to a *kernel*: a closure
   over the spec's constants that maps parent slot values to the node's
   value and a fresh VJP.  Kernels execute the **same numpy expressions**
   the ops layer executes (shared rule tables for the elementwise and unary
   primitives, mirrored code elsewhere), so replayed gradients are
   bitwise-identical to traced ones -- pinned for all eight NPB ports by
   ``tests/ad/test_plan.py``.

Replaying a plan
----------------

*Traced replay* feeds the watched state entries into preallocated float64
leaf buffers (the same cast :meth:`~repro.ad.tape.Tape.watch` performs),
runs the kernel program over the slot arena, then runs the plan's own
reverse sweep -- an exact mirror of :func:`repro.ad.reverse.backward` /
``backward_from_seeds`` including cotangent accumulation order and buffer
ownership, so a replayed segment chains bit for bit like a traced one.

*Concrete replay* runs the kernels on plain values without building VJPs
and assembles the next state dict from the plan's output map; it stands in
for ``bench.run(state, 1)`` in the sweep's forward pass and in the binomial
schedule's refills.  It is only enabled when every chained entry is float64
(so the leaf cast is the identity) and every untraced output entry is
either capture-stable or a scalar integer increment (``it -> it + 1``).

Safety
------

Structure changes fall back to fresh tracing automatically: a shape/dtype
change misses the structural signature, an op-sequence or constant change
fails the two-capture agreement, an unsupported primitive rejects the plan,
and any replay-time error poisons the cache entry with a
:class:`RuntimeWarning` and re-traces.  Two residual caveats are inherited
from every trace-specialising system: a kernel whose *structure* depends on
traced float values, or one that diverges only at an iteration the two
captures did not see, replays its captured structure.  None of the NPB
ports does either; custom benchmarks can either override
``plan_structure_token`` (see :class:`repro.npb.base.NPBBenchmark`) to key
plans by the discriminating value, or run with ``trace_cache="off"``.
"""

from __future__ import annotations

import hashlib
import threading
import warnings
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from .exec import (DEFAULT_EXECUTOR, EXECUTORS, _EMITTERS,  # noqa: F401
                   build_ops, resolve_executor)
from .ir import lower_program
from .passes import DEFAULT_PLAN_OPTIMIZE, PLAN_OPTIMIZES, optimize_ir
from .tensor import ADArray, value_of

__all__ = [
    "TRACE_CACHES",
    "DEFAULT_TRACE_CACHE",
    "PLAN_OPTIMIZES",
    "DEFAULT_PLAN_OPTIMIZE",
    "EXECUTORS",
    "DEFAULT_EXECUTOR",
    "PlanCache",
    "CompiledPlan",
    "coarse_signature",
    "fine_signature",
]

#: recognised trace-cache policies of the segmented sweep
TRACE_CACHES = ("plan", "off")

#: the policy used when none is requested
DEFAULT_TRACE_CACHE = "plan"

#: captures retained per cache entry while learning fine-tier plans
_MAX_PENDING_CAPTURES = 64

#: compiled fine-tier plans retained per cache entry; each plan owns a
#: state-sized arena, so an unbounded map would quietly reintroduce the
#: O(steps x state) residency the snapshot schedules exist to avoid
#: (LRU eviction, counted in ``PlanCache.fine_evictions``; evicted
#: iterations simply re-trace and re-learn)
_MAX_FINE_PLANS = 64


# ---------------------------------------------------------------------------
# capture hook (consumed by repro.ad.ops)
# ---------------------------------------------------------------------------

class _CaptureSlot(threading.local):
    """Thread-local holder of the active capture sink (``None`` = off)."""

    def __init__(self) -> None:
        self.capture: "_CaptureSink | None" = None


#: the ops layer reads ``_CAPTURE.capture`` on every recorded primitive;
#: ``None`` keeps the per-op cost to a single attribute check
_CAPTURE = _CaptureSlot()


class _CaptureSink:
    """Collects per-node specs while one trace runs."""

    __slots__ = ("specs", "ok", "reason")

    def __init__(self) -> None:
        self.specs: dict[int, tuple] = {}
        self.ok = True
        self.reason = ""

    def on_node(self, node, spec: tuple | None) -> None:
        if spec is None:
            self.ok = False
            self.reason = f"primitive {node.op!r} has no replay kernel"
            return
        self.specs[node.index] = spec


# ---------------------------------------------------------------------------
# structural signatures
# ---------------------------------------------------------------------------

def coarse_signature(state: Mapping[str, Any], token: Any = None) -> tuple:
    """Shape/dtype fingerprint of a state dict (value-independent).

    Two states with the same coarse signature promise the same *leaf
    geometry*; whether the traced structure really is identical is decided
    by the two-capture agreement, never by this signature alone.  ``token``
    folds in a benchmark-provided discriminator for kernels whose structure
    depends on state values (``plan_structure_token``).
    """
    parts: list[tuple] = []
    for key in sorted(state):
        arr = np.asarray(value_of(state[key]))
        kind = "f" if np.issubdtype(arr.dtype, np.floating) else "o"
        parts.append((key, kind, arr.shape, arr.dtype.str))
    return (tuple(parts), None if token is None else repr(token))


def fine_signature(state: Mapping[str, Any]) -> tuple:
    """Value fingerprint of every *non-float* state entry.

    Non-float entries are the only state a traced step can bake into its
    captured constants (float entries are always traced leaves), so they
    are what distinguishes one iteration's structure from another's: FT's
    ``kt`` selects the evolution factor, IS's key array steers its integer
    pipeline.  Scalars key by value, arrays by content digest.
    """
    parts: list[tuple] = []
    for key in sorted(state):
        arr = np.asarray(value_of(state[key]))
        if np.issubdtype(arr.dtype, np.floating):
            continue
        if arr.ndim == 0:
            parts.append(("s", key, int(arr)))
        else:
            digest = hashlib.sha1(
                np.ascontiguousarray(arr).tobytes()).digest()
            parts.append(("a", key, arr.shape, arr.dtype.str, digest))
    return tuple(parts)


def _structure_token(bench, state: Mapping[str, Any]) -> Any:
    hook = getattr(bench, "plan_structure_token", None)
    if callable(hook):
        return hook(state)
    return None


# ---------------------------------------------------------------------------
# captured programs
# ---------------------------------------------------------------------------

class _NodeRec:
    """One captured tape node: wiring, geometry and its replay spec."""

    __slots__ = ("op", "parents", "shape", "dtype", "spec")

    def __init__(self, op: str, parents: tuple[int, ...], shape: tuple,
                 dtype: str, spec: tuple) -> None:
        self.op = op
        self.parents = parents
        self.shape = shape
        self.dtype = dtype
        self.spec = spec


class CaptureProgram:
    """The raw harvest of one instrumented trace (pre-compilation)."""

    __slots__ = ("kind", "n_probes", "watch", "leaf_slots", "nodes",
                 "out_entries", "out_slot", "scalar_ints", "float64_chain",
                 "supported", "reason")

    def __init__(self) -> None:
        self.kind = ""
        self.n_probes: int | None = None
        self.watch: tuple[str, ...] = ()
        self.leaf_slots: tuple[int, ...] = ()
        self.nodes: list[_NodeRec] = []
        #: step kind: next-state entry -> ("slot", i) | ("const", value)
        self.out_entries: dict[str, tuple] = {}
        #: output kind: slot of the traced scalar output (None = untraced)
        self.out_slot: int | None = None
        #: untraced scalar-integer input values (for increment rules)
        self.scalar_ints: dict[str, int] = {}
        self.float64_chain = True
        self.supported = True
        self.reason = ""


def _build_program(kind: str, sink: _CaptureSink, tape, leaves,
                   watch: Sequence[str], state: Mapping[str, Any],
                   next_state: Mapping[str, Any] | None, output: Any,
                   n_probes: int | None) -> CaptureProgram:
    """Assemble a :class:`CaptureProgram` from one instrumented trace."""
    prog = CaptureProgram()
    prog.kind = kind
    prog.n_probes = n_probes
    prog.watch = tuple(watch)
    prog.supported = sink.ok
    prog.reason = sink.reason

    prog.leaf_slots = tuple(leaves[key].node.index for key in prog.watch)
    for node in tape.nodes:
        if node.op == "leaf":
            spec: tuple | None = ("leaf",)
        else:
            spec = sink.specs.get(node.index)
            if spec is None and prog.supported:
                prog.supported = False
                prog.reason = f"primitive {node.op!r} was not captured"
        prog.nodes.append(_NodeRec(node.op,
                                   tuple(p.index for p in node.parents),
                                   tuple(node.shape), np.dtype(node.dtype).str,
                                   spec or ("leaf",)))

    for key in prog.watch:
        if np.asarray(value_of(state[key])).dtype != np.float64:
            prog.float64_chain = False
    for key, val in state.items():
        arr = np.asarray(value_of(val))
        if arr.ndim == 0 and not np.issubdtype(arr.dtype, np.floating):
            try:
                prog.scalar_ints[key] = int(arr)
            except (TypeError, ValueError):  # pragma: no cover - exotic 0-d
                pass

    if kind == "step":
        assert next_state is not None
        for key, val in next_state.items():
            if isinstance(val, ADArray) and val.node is not None:
                prog.out_entries[key] = ("slot", val.node.index)
            else:
                prog.out_entries[key] = ("const", value_of(val)
                                         if isinstance(val, ADArray) else val)
    else:
        if isinstance(output, ADArray) and output.node is not None:
            prog.out_slot = output.node.index
    return prog


def _const_equal(a: Any, b: Any) -> bool:
    """Structural + bitwise equality of captured spec payloads."""
    if a is b:
        return True
    if type(a) is not type(b):
        # allow int/np.integer style mismatches to compare by value below
        if not (np.isscalar(a) and np.isscalar(b)):
            if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
                return False
    if isinstance(a, np.ndarray):
        if not isinstance(b, np.ndarray):
            return False
        # raw-byte comparison: value equality would conflate -0.0 with 0.0
        # (and NaN payloads), which a downstream 1/x would tell apart
        return (a.shape == b.shape and a.dtype == b.dtype
                and np.ascontiguousarray(a).tobytes()
                == np.ascontiguousarray(b).tobytes())
    if isinstance(a, (tuple, list)):
        return (len(a) == len(b)
                and all(_const_equal(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict):
        return (a.keys() == b.keys()
                and all(_const_equal(a[k], b[k]) for k in a))
    if isinstance(a, slice):
        return (_const_equal(a.start, b.start)
                and _const_equal(a.stop, b.stop)
                and _const_equal(a.step, b.step))
    if isinstance(a, np.generic) or isinstance(b, np.generic):
        # numpy scalars (incl. non-float64 floats): raw-byte equality, for
        # the same -0.0 / NaN-payload reasons as the array branch
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        return (a_arr.dtype == b_arr.dtype
                and a_arr.tobytes() == b_arr.tobytes())
    if isinstance(a, float) and isinstance(b, float):
        if np.isnan(a) and np.isnan(b):
            return True
        # sign-aware: -0.0 and 0.0 compare equal but behave differently
        return a == b and np.copysign(1.0, a) == np.copysign(1.0, b)
    try:
        return bool(a == b)
    except Exception:  # pragma: no cover - incomparable payloads
        return False


def programs_equal(p1: CaptureProgram, p2: CaptureProgram) -> bool:
    """Structural agreement of two captures (the compile precondition).

    Constants must agree *bitwise* -- a constant that drifted between two
    boundaries is untraced state leaking into the program, exactly what a
    replay would get wrong.  Untraced next-state constants are exempt: they
    never feed a chained cotangent (concrete replay re-validates them
    separately via :func:`_concrete_rules`).
    """
    if (p1.kind != p2.kind or p1.n_probes != p2.n_probes
            or p1.watch != p2.watch or p1.leaf_slots != p2.leaf_slots
            or len(p1.nodes) != len(p2.nodes)
            or not p1.supported or not p2.supported):
        return False
    for n1, n2 in zip(p1.nodes, p2.nodes):
        if (n1.op != n2.op or n1.parents != n2.parents
                or n1.shape != n2.shape or n1.dtype != n2.dtype):
            return False
        if not _const_equal(n1.spec, n2.spec):
            return False
    if p1.kind == "step":
        if p1.out_entries.keys() != p2.out_entries.keys():
            return False
        for key, (tag1, payload1) in p1.out_entries.items():
            tag2, payload2 = p2.out_entries[key]
            if tag1 != tag2:
                return False
            if tag1 == "slot" and payload1 != payload2:
                return False
    else:
        if p1.out_slot != p2.out_slot:
            return False
    return True


def _concrete_rules(p1: CaptureProgram,
                    p2: CaptureProgram) -> list[tuple] | None:
    """Next-state assembly rules, or ``None`` when concrete replay is unsafe.

    Every entry must be a slot, a capture-stable constant, or a scalar
    integer moving by the same delta in both captures (the loop counter).
    The chained leaves must be float64, so the plan's float64 leaf cast is
    the identity and the replayed forward matches ``bench.run`` bitwise.
    """
    if p1.kind != "step" or not (p1.float64_chain and p2.float64_chain):
        return None
    rules: list[tuple] = []
    for key, (tag, payload) in p1.out_entries.items():
        if tag == "slot":
            rules.append((key, "slot", payload))
            continue
        other = p2.out_entries[key][1]
        if _const_equal(payload, other):
            rules.append((key, "const", payload))
            continue
        v1 = np.asarray(value_of(payload))
        v2 = np.asarray(value_of(other))
        if (v1.ndim == 0 and v2.ndim == 0
                and np.issubdtype(v1.dtype, np.integer)
                and key in p1.scalar_ints and key in p2.scalar_ints):
            delta1 = int(v1) - p1.scalar_ints[key]
            delta2 = int(v2) - p2.scalar_ints[key]
            if delta1 == delta2:
                rules.append((key, "incr", delta1,
                              isinstance(payload, int)
                              and not isinstance(payload, bool),
                              v1.dtype.str))
                continue
        return None
    return rules


# ---------------------------------------------------------------------------
# compiled plans
# ---------------------------------------------------------------------------

class CompiledPlan:
    """A lowered capture: flat kernel program over a reusable slot arena.

    The arena -- the slot value/VJP tables and the float64 leaf buffers --
    is allocated once at compile time and overwritten on every replay, so a
    replayed segment performs no tape bookkeeping and no leaf reallocation.
    Gradient buffers follow the tracer's ownership discipline exactly
    (shared buffers are defensively copied before they are handed out), so
    nothing the caller receives ever aliases the arena.

    A plan is not thread-safe: it belongs to one sweep/cache at a time,
    like the tapes it replaces.
    """

    def __init__(self, program: CaptureProgram,
                 concrete: list[tuple] | None,
                 optimize: str = DEFAULT_PLAN_OPTIMIZE,
                 executor: str = DEFAULT_EXECUTOR) -> None:
        self.kind = program.kind
        self.watch = program.watch
        #: the typed, validated lowering of the captured program; derived
        #: analyses (the activity transfer of :mod:`repro.ad.activity`)
        #: walk ``ir.instrs`` instead of a tape
        self.ir = lower_program(program, concrete)
        self.n_slots = self.ir.n_slots
        self._shapes = [instr.shape for instr in self.ir.instrs]
        self._parents = [instr.parents for instr in self.ir.instrs]
        #: lazily derived activity transfer (see activity.plan_transfer)
        self._activity_transfer = None
        self._leaf_slots = self.ir.leaf_slots
        self._out_slot = self.ir.out_slot
        #: chain key -> producing slot (``None`` = untraced next-state entry)
        self._seed_slots = dict(self.ir.seed_slots)
        self._concrete = concrete
        #: gradient-buffer footprint estimate, same meter as ``Tape.nbytes``
        self.nbytes_estimate = sum(
            int(np.prod(shape, dtype=np.int64)) * 8 for shape in self._shapes)

        layout = optimize_ir(self.ir, optimize)
        self._ops, self.executor_kind = build_ops(self.ir, layout, executor)
        #: pass telemetry (folded into PlanCache / SweepStats maxima)
        self.fused_ops = layout.fused_ops
        self.eliminated_slots = layout.eliminated_slots
        self.nbytes_estimate_packed = layout.nbytes_packed
        #: per-slot parent tuples as the reverse sweep sees them: a fused
        #: group's last slot owns the group's external parents (duplicates
        #: included, in the fused VJP's emission order)
        self._sweep_parents = list(self._parents)
        for slot, parents, _kernel in self._ops:
            self._sweep_parents[slot] = parents
        #: executable slots, descending: the only slots the reverse sweep
        #: must visit (leaves keep their cotangents stashed for collection;
        #: dead slots and fused interiors never receive one)
        self._sweep_order = [slot for slot, _parents, _kernel
                             in reversed(self._ops)]

        # the reusable arena: slot tables + preallocated leaf buffers
        self._values: list = [None] * self.n_slots
        self._vjps: list = [None] * self.n_slots
        self._leaf_bufs = {slot: np.empty(self._shapes[slot],
                                          dtype=np.float64)
                           for slot in self._leaf_slots}
        #: optimised plans also seed chained cotangents through retained
        #: buffers.  A seed buffer may flow down the sweep unowned (every
        #: accumulation onto it allocates; ``_collect`` copies), so reuse
        #: across replays is safe -- except when the seed slot *is* a leaf
        #: slot (identity chain entry): its owned seed would be handed to
        #: the caller, so those keep the per-replay copy.
        leaf_set = set(self._leaf_slots)
        self._seed_bufs = {} if not layout.optimized else {
            slot: np.empty(self._shapes[slot], dtype=np.float64)
            for slot in set(self._seed_slots.values())
            if slot is not None and slot not in leaf_set}

    @property
    def concrete_ok(self) -> bool:
        """True when the plan can stand in for ``bench.run(state, 1)``."""
        return self._concrete is not None

    # -- forward execution ----------------------------------------------
    def _forward(self, state: Mapping[str, Any], build_vjps: bool) -> None:
        values, vjps = self._values, self._vjps
        for key, slot in zip(self.watch, self._leaf_slots):
            if build_vjps:
                buf = self._leaf_bufs[slot]
                np.copyto(buf, np.asarray(value_of(state[key])))
                values[slot] = buf
            else:
                # concrete replay hands slot values out as the next state,
                # so leaves must not alias the reusable arena buffers
                values[slot] = np.asarray(value_of(state[key]),
                                          dtype=np.float64)
        for slot, parents, kernel in self._ops:
            out, vjp = kernel([values[p] for p in parents])
            values[slot] = out
            if build_vjps:
                vjps[slot] = vjp

    # -- reverse execution (mirrors repro.ad.reverse bit for bit) --------
    def _sweep(self, grads: list, owned: bytearray, start: int) -> None:
        parents_of, vjps = self._sweep_parents, self._vjps
        for idx in self._sweep_order:
            if idx > start:
                continue
            g = grads[idx]
            if g is None:
                continue
            parents = parents_of[idx]
            if not parents:
                continue
            grads[idx] = None
            owned[idx] = 0
            for p, pg in zip(parents, vjps[idx](g)):
                if grads[p] is not None:
                    if owned[p]:
                        grads[p] += pg
                    else:
                        grads[p] = grads[p] + pg
                        owned[p] = 1
                else:
                    grads[p] = pg
                    owned[p] = 0

    def _collect(self, grads: list, owned: bytearray) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for key, slot in zip(self.watch, self._leaf_slots):
            g = grads[slot]
            if g is None:
                g = np.zeros(self._shapes[slot], dtype=np.float64)
            elif not owned[slot]:
                # shared with a VJP-captured operand (or a caller's seed):
                # copy once, exactly as the tracer's reverse sweep does
                g = np.array(g, dtype=np.float64, copy=True)
                grads[slot] = g
                owned[slot] = 1
            out[key] = np.asarray(g, dtype=np.float64).reshape(
                self._shapes[slot])
        return out

    # -- public replay entry points --------------------------------------
    def replay_step(self, state: Mapping[str, Any],
                    cotangents: Mapping[str, np.ndarray]
                    ) -> dict[str, np.ndarray]:
        """One segment's chained cotangents, without tracing."""
        self._forward(state, build_vjps=True)
        grads: list = [None] * self.n_slots
        owned = bytearray(self.n_slots)
        start = -1
        seed_bufs = self._seed_bufs
        for key in self.watch:
            slot = self._seed_slots[key]
            if slot is None:
                continue  # untraced next-state entry: its cotangent dies
            seed = np.asarray(cotangents[key], dtype=np.float64)
            if grads[slot] is not None:
                # a second chained key feeding the same slot: the first
                # contribution is owned by now, so accumulate in place
                # (ufunc broadcasting matches the broadcast_to the
                # out-of-place path applied)
                grads[slot] += seed
            else:
                buf = seed_bufs.get(slot)
                if buf is not None:
                    np.copyto(buf, seed)   # broadcast-copy, exact bits
                    grads[slot] = buf
                else:
                    if seed.shape != self._shapes[slot]:
                        seed = np.broadcast_to(seed, self._shapes[slot])
                    grads[slot] = np.array(seed, dtype=np.float64,
                                           copy=True)
                owned[slot] = 1
            if slot > start:
                start = slot
        self._sweep(grads, owned, start)
        return self._collect(grads, owned)

    def replay_output(self, state: Mapping[str, Any]
                      ) -> dict[str, np.ndarray] | None:
        """The output segment's cotangents (``None`` = untraced output)."""
        if self._out_slot is None:
            return None
        self._forward(state, build_vjps=True)
        grads: list = [None] * self.n_slots
        owned = bytearray(self.n_slots)
        slot = self._out_slot
        grads[slot] = np.ones(self._shapes[slot], dtype=np.float64)
        owned[slot] = 1
        self._sweep(grads, owned, slot)
        return self._collect(grads, owned)

    def replay_concrete(self, state: Mapping[str, Any]) -> dict[str, Any]:
        """One concrete forward step (stands in for ``bench.run(state, 1)``)."""
        assert self._concrete is not None
        self._forward(state, build_vjps=False)
        values = self._values
        next_state: dict[str, Any] = {}
        for rule in self._concrete:
            key, tag = rule[0], rule[1]
            if tag == "slot":
                next_state[key] = values[rule[2]]
            elif tag == "const":
                next_state[key] = rule[2]
            else:  # incr
                _key, _tag, delta, py_int, dtype_str = rule
                advanced = int(value_of(state[key])) + delta
                next_state[key] = advanced if py_int \
                    else np.dtype(dtype_str).type(advanced)
        return next_state


# ---------------------------------------------------------------------------
# the plan cache
# ---------------------------------------------------------------------------

class _Entry:
    """Learning state of one (kind, probes, watch, coarse-signature) key."""

    __slots__ = ("coarse_plan", "fine_plans", "captures", "coarse_rejected",
                 "rejected", "reason")

    def __init__(self) -> None:
        self.coarse_plan: CompiledPlan | None = None
        self.fine_plans: dict[tuple, CompiledPlan] = {}
        self.captures: dict[tuple, CaptureProgram] = {}
        self.coarse_rejected = False
        self.rejected = False
        self.reason = ""


class _capture_scope:
    """Context manager installing a capture sink for one trace."""

    def __enter__(self) -> _CaptureSink:
        self.sink = _CaptureSink()
        _CAPTURE.capture = self.sink
        return self.sink

    def __exit__(self, *exc: Any) -> None:
        _CAPTURE.capture = None


class PlanCache:
    """Compiled replay plans of one analysis, with hit/miss telemetry.

    One cache serves one benchmark instance (the analyzer builds a fresh
    cache per :meth:`~repro.core.criticality.CriticalityAnalyzer.analyze`
    call and shares it across that analysis' sweeps and probes); keys are
    (kind, probe count, watch list, structural signature), so step, output
    and probe-batched plans never collide.
    """

    def __init__(self, plan_optimize: str = DEFAULT_PLAN_OPTIMIZE,
                 executor: str = DEFAULT_EXECUTOR) -> None:
        if plan_optimize not in PLAN_OPTIMIZES:
            raise ValueError(f"unknown plan_optimize {plan_optimize!r}; "
                             f"choose from {PLAN_OPTIMIZES}")
        self._plan_optimize = plan_optimize
        self._executor = executor
        #: the executor that will actually serve this cache's plans
        #: (``"interp"`` when a numba request silently degraded); raises
        #: for unknown executor names
        self.executor_kind = resolve_executor(executor)
        self._entries: dict[tuple, _Entry] = {}
        #: replayed traced segments
        self.hits = 0
        #: traced segments that had to run the tracer (capture or fallback)
        self.misses = 0
        #: plans compiled (coarse + fine)
        self.compiles = 0
        #: entries poisoned (unsupported op, nondeterminism, replay error)
        self.rejects = 0
        #: concrete forward steps served by a plan instead of ``bench.run``
        self.forward_replays = 0
        #: fine-tier plans evicted by the LRU bound (_MAX_FINE_PLANS)
        self.fine_evictions = 0
        #: largest slot count of any compiled plan's arena
        self.arena_slots = 0
        #: largest gradient-buffer footprint estimate of any compiled plan
        self.arena_nbytes = 0
        #: largest liveness-packed footprint estimate of any compiled plan
        self.arena_nbytes_packed = 0
        #: most primitives any compiled plan runs inside fused kernels
        self.fused_ops = 0
        #: most dead instructions eliminated from any compiled plan
        self.eliminated_slots = 0

    def planner(self, bench, kind: str, watch: Sequence[str],
                n_probes: int | None = None) -> "Planner":
        """A :class:`Planner` bound to this cache for one sweep flavour."""
        return Planner(self, bench, kind, tuple(watch), n_probes)

    def counters(self) -> dict[str, int]:
        """Snapshot of the additive telemetry counters (for delta folds)."""
        return {"hits": self.hits, "misses": self.misses,
                "compiles": self.compiles, "rejects": self.rejects,
                "forward_replays": self.forward_replays,
                "fine_evictions": self.fine_evictions}

    def _entry(self, key: tuple) -> _Entry:
        entry = self._entries.get(key)
        if entry is None:
            entry = _Entry()
            self._entries[key] = entry
        return entry

    def _compiled(self, entry: _Entry, program: CaptureProgram,
                  other: CaptureProgram) -> CompiledPlan | None:
        try:
            plan = CompiledPlan(program, _concrete_rules(program, other),
                                optimize=self._plan_optimize,
                                executor=self._executor)
        except Exception as exc:  # noqa: BLE001 - compile must never fail a run
            entry.rejected = True
            entry.reason = f"compile failed: {type(exc).__name__}: {exc}"
            self.rejects += 1
            return None
        self.compiles += 1
        self.arena_slots = max(self.arena_slots, plan.n_slots)
        self.arena_nbytes = max(self.arena_nbytes, plan.nbytes_estimate)
        self.arena_nbytes_packed = max(self.arena_nbytes_packed,
                                       plan.nbytes_estimate_packed)
        self.fused_ops = max(self.fused_ops, plan.fused_ops)
        self.eliminated_slots = max(self.eliminated_slots,
                                    plan.eliminated_slots)
        return plan

    def learn(self, key: tuple, fine: tuple,
              program: CaptureProgram) -> None:
        """Fold one fresh capture into the entry's learning state."""
        entry = self._entry(key)
        if entry.rejected:
            return
        if not program.supported:
            entry.rejected = True
            entry.reason = program.reason
            self.rejects += 1
            return
        if not entry.coarse_rejected and entry.captures:
            for fs, prev in entry.captures.items():
                if fs == fine:
                    continue
                if programs_equal(prev, program):
                    entry.coarse_plan = self._compiled(entry, program, prev)
                    entry.captures.clear()
                else:
                    # counter-dependent structure: refine to per-value plans
                    entry.coarse_rejected = True
                break
        if entry.coarse_plan is not None or entry.rejected:
            return
        prev = entry.captures.get(fine)
        if prev is not None:
            if programs_equal(prev, program):
                plan = self._compiled(entry, program, prev)
                if plan is not None:
                    # LRU bound: replay hits refresh a plan's recency
                    # (_lookup / advance move it to the dict's end), so the
                    # front is always the least recently used plan
                    while len(entry.fine_plans) >= _MAX_FINE_PLANS:
                        entry.fine_plans.pop(next(iter(entry.fine_plans)))
                        self.fine_evictions += 1
                    entry.fine_plans[fine] = plan
                    del entry.captures[fine]
            else:
                # same non-float state, different structure: the trace
                # depends on something no signature can see -- give up
                entry.rejected = True
                entry.reason = "structure varies at a fixed fine signature"
                self.rejects += 1
        elif len(entry.captures) < _MAX_PENDING_CAPTURES:
            entry.captures[fine] = program


class Planner:
    """Capture-or-replay driver for one sweep flavour of one benchmark."""

    def __init__(self, cache: PlanCache, bench, kind: str,
                 watch: tuple[str, ...], n_probes: int | None) -> None:
        self.cache = cache
        self.bench = bench
        self.kind = kind
        self.watch = watch
        self.n_probes = n_probes

    # -- cache addressing -------------------------------------------------
    def _key(self, state: Mapping[str, Any]) -> tuple:
        return (self.kind, self.n_probes, self.watch,
                coarse_signature(state, _structure_token(self.bench, state)))

    def _lookup(self, state: Mapping[str, Any]
                ) -> tuple[tuple, _Entry, tuple | None, CompiledPlan | None]:
        key = self._key(state)
        entry = self.cache._entry(key)
        if entry.coarse_plan is not None:
            return key, entry, None, entry.coarse_plan
        fine = fine_signature(state)
        plan = entry.fine_plans.get(fine)
        if plan is not None:
            # refresh LRU recency: re-insert at the dict's end
            entry.fine_plans[fine] = entry.fine_plans.pop(fine)
        return key, entry, fine, plan

    def _poison(self, key: tuple, entry: _Entry, exc: Exception) -> None:
        entry.rejected = True
        entry.coarse_plan = None
        entry.fine_plans.clear()
        entry.captures.clear()
        entry.reason = f"replay failed: {type(exc).__name__}: {exc}"
        self.cache.rejects += 1
        warnings.warn(
            f"replay plan for {getattr(self.bench, 'name', self.bench)!r} "
            f"failed ({entry.reason}); falling back to fresh tracing",
            RuntimeWarning, stacklevel=3)

    # -- tracing (the capture/fallback path) ------------------------------
    def _trace(self, state: Mapping[str, Any], capture: bool):
        sink = None
        if capture:
            scope = _capture_scope()
            with scope as sink:
                traced = self._call_tracer(state)
        else:
            traced = self._call_tracer(state)
        return traced, sink

    def _call_tracer(self, state: Mapping[str, Any]):
        watch = list(self.watch)
        if self.kind == "step":
            if self.n_probes is None:
                return self.bench.traced_step(state, watch=watch)
            return self.bench.traced_step_probes(state, self.n_probes,
                                                 watch=watch)
        if self.n_probes is None:
            return self.bench.traced_output(state, watch=watch)
        return self.bench.traced_output_probes(state, self.n_probes,
                                               watch=watch)

    # -- sweep entry points ------------------------------------------------
    def step_cotangents(self, state: Mapping[str, Any],
                        cotangents: Mapping[str, np.ndarray],
                        stats=None) -> dict[str, np.ndarray]:
        """Chained cotangents of one segment: replay when compiled."""
        from .reverse import backward_from_seeds

        key, entry, fine, plan = self._lookup(state)
        if plan is not None:
            try:
                result = plan.replay_step(state, cotangents)
                self.cache.hits += 1
                if stats is not None:
                    stats.observe_plan_segment(plan.n_slots,
                                               plan.nbytes_estimate)
                return result
            except Exception as exc:  # noqa: BLE001 - fall back, never fail
                self._poison(key, entry, exc)
        self.cache.misses += 1
        capture = not entry.rejected
        (tape, leaves, next_state), sink = self._trace(state, capture)
        if stats is not None:
            stats.observe(tape)
        seeds: list[tuple[ADArray, np.ndarray]] = []
        for chain_key in self.watch:
            produced = next_state.get(chain_key)
            if isinstance(produced, ADArray) and produced.node is not None:
                seeds.append((produced, cotangents[chain_key]))
        grads = backward_from_seeds(tape, seeds,
                                    [leaves[k] for k in self.watch])
        if capture:
            # ``fine`` is always resolved here: _lookup leaves it None only
            # when a coarse plan exists, and that path either returned or
            # poisoned the entry (which disables capture)
            program = _build_program("step", sink, tape, leaves, self.watch,
                                     state, next_state, None, self.n_probes)
            self.cache.learn(key, fine, program)
        return dict(zip(self.watch, grads))

    def output_cotangents(self, state: Mapping[str, Any],
                          stats=None) -> dict[str, np.ndarray] | None:
        """The output segment's cotangents (``None`` = untraced output)."""
        from .reverse import backward

        key, entry, fine, plan = self._lookup(state)
        if plan is not None:
            try:
                result = plan.replay_output(state)
                self.cache.hits += 1
                if stats is not None:
                    stats.observe_plan_segment(plan.n_slots,
                                               plan.nbytes_estimate)
                return result
            except Exception as exc:  # noqa: BLE001 - fall back, never fail
                self._poison(key, entry, exc)
        self.cache.misses += 1
        capture = not entry.rejected
        (tape, leaves, out), sink = self._trace(state, capture)
        if stats is not None:
            stats.observe(tape)
        if isinstance(out, ADArray) and out.node is not None:
            grads = backward(tape, out, [leaves[k] for k in self.watch],
                             strict=False)
            cotangents = dict(zip(self.watch, grads))
        else:
            cotangents = None
        if capture:
            # see step_cotangents: ``fine`` is always resolved on this path
            program = _build_program("output", sink, tape, leaves,
                                     self.watch, state, None, out,
                                     self.n_probes)
            self.cache.learn(key, fine, program)
        return cotangents

    def step_activity(self, state: Mapping[str, Any],
                      masks: Mapping[str, Any],
                      stats=None) -> dict[str, Any]:
        """Chained read/moved masks of one segment: replay when compiled.

        The activity twin of :meth:`step_cotangents`: a compiled plan's
        static structure already fixes which leaf elements each segment
        reads or moves, so a plan hit applies the precomputed transfer
        (:func:`repro.ad.activity.replay_step_masks`) without running the
        tracer at all.  Misses trace one iteration, chain through the tape
        and feed the capture tier exactly like the gradient path, so
        activity and gradient sweeps share one plan per step structure.
        """
        from . import activity as activity_mod

        key, entry, fine, plan = self._lookup(state)
        if plan is not None:
            try:
                result = activity_mod.replay_step_masks(plan, masks)
                self.cache.hits += 1
                if stats is not None:
                    stats.observe_plan_segment(plan.n_slots,
                                               plan.nbytes_estimate)
                    stats.activity_plan_replays += 1
                return result
            except Exception as exc:  # noqa: BLE001 - fall back, never fail
                self._poison(key, entry, exc)
        self.cache.misses += 1
        capture = not entry.rejected
        (tape, leaves, next_state), sink = self._trace(state, capture)
        if stats is not None:
            stats.observe(tape)
            stats.activity_retraces += 1
        result = activity_mod.chain_step_masks(tape, leaves, next_state,
                                               self.watch, masks)
        if capture:
            # see step_cotangents: ``fine`` is always resolved on this path
            program = _build_program("step", sink, tape, leaves, self.watch,
                                     state, next_state, None, self.n_probes)
            self.cache.learn(key, fine, program)
        return result

    def output_activity(self, state: Mapping[str, Any],
                        stats=None) -> dict[str, Any]:
        """The output segment's read/moved masks (seed of the chain)."""
        from . import activity as activity_mod

        key, entry, fine, plan = self._lookup(state)
        if plan is not None:
            try:
                result = activity_mod.replay_output_masks(plan)
                self.cache.hits += 1
                if stats is not None:
                    stats.observe_plan_segment(plan.n_slots,
                                               plan.nbytes_estimate)
                    stats.activity_plan_replays += 1
                return result
            except Exception as exc:  # noqa: BLE001 - fall back, never fail
                self._poison(key, entry, exc)
        self.cache.misses += 1
        capture = not entry.rejected
        (tape, leaves, out), sink = self._trace(state, capture)
        if stats is not None:
            stats.observe(tape)
            stats.activity_retraces += 1
        result = activity_mod.masks_from_tape(tape, leaves, self.watch)
        if capture:
            # see step_cotangents: ``fine`` is always resolved on this path
            program = _build_program("output", sink, tape, leaves,
                                     self.watch, state, None, out,
                                     self.n_probes)
            self.cache.learn(key, fine, program)
        return result

    def advance(self, state: Mapping[str, Any]) -> dict[str, Any]:
        """One concrete forward step: through the plan when it can.

        Never captures (there is no tape to harvest from a concrete run);
        a cold cache simply runs the benchmark until the reverse walk's
        captures compile a plan, after which the remaining forward work --
        later sweeps' forward passes and the binomial schedule's refills --
        replays.  Entries with nothing replayable skip the signature
        hashing entirely, so a rejected benchmark's forward loop pays
        only the coarse shape check.
        """
        entry = self.cache._entries.get(self._key(state))
        if entry is None or entry.rejected:
            return self.bench.run(state, 1)
        plan = entry.coarse_plan
        if plan is None:
            if not entry.fine_plans:
                return self.bench.run(state, 1)
            fine = fine_signature(state)
            plan = entry.fine_plans.get(fine)
            if plan is not None:
                # refresh LRU recency (see _lookup)
                entry.fine_plans[fine] = entry.fine_plans.pop(fine)
        if plan is not None and plan.concrete_ok:
            self.cache.forward_replays += 1
            return plan.replay_concrete(state)
        return self.bench.run(state, 1)
