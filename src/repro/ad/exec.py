"""Pluggable executors for lowered replay plans.

The back end of the capture -> IR -> passes -> executor pipeline: given a
validated :class:`~repro.ad.ir.PlanIR` and the :class:`~repro.ad.passes.
PlanLayout` the optimisation passes derived from it, this module builds the
executable op list a :class:`~repro.ad.plan.CompiledPlan` replays -- a flat
sequence of ``(slot, parents, kernel)`` triples where every kernel maps
parent slot values to ``(value, vjp)``.

Two executors hide behind one interface:

``"interp"`` (default)
    The numpy interpreter.  Unfused instructions run the same per-primitive
    kernels as before (moved here verbatim from ``repro.ad.plan``); fused
    elementwise/unary chains run a single ``exec``-generated straight-line
    kernel with **preallocated ``out=`` buffers** for every ufunc step, so
    a warm replay of a fused chain performs no Python-level dispatch per
    primitive and no per-step allocation.  The generated code calls exactly
    the shared rule tables (``EW_BINARY_RULES`` / ``UNARY_RULES`` /
    ``MINMAX_RULES``) and the ops-layer broadcast helpers, so fused values
    and cotangents are bitwise what the unfused interpreter produces.

``"numba"`` (optional)
    Import-gated on ``numba`` availability with **silent fallback**: when
    the package is missing (it is an optional dependency, never required),
    requesting ``executor="numba"`` simply runs the interpreter and reports
    ``executor_kind == "interp"``.  When present, qualifying fused chains
    (same-shape float64 add/subtract/negative chains -- the subset whose
    VJPs need no retained intermediates and whose scalar evaluation cannot
    be re-associated or FMA-contracted) are compiled to a single jitted
    ufunc via ``numba.vectorize``; every other instruction falls back to
    the interpreter kernel per-group, so a failed JIT can never fail a
    replay.

Bitwise discipline for ``out=`` buffers: a preallocated buffer is only used
when the captured output dtype equals the ufunc's natural result dtype (no
cast is inserted), and never for a slot whose value escapes the plan
(concrete next-state slots), so arena reuse cannot corrupt caller-visible
state.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from .ir import Instr, PlanIR

__all__ = ["EXECUTORS", "DEFAULT_EXECUTOR", "resolve_executor", "build_ops"]

#: recognised plan executors
EXECUTORS = ("interp", "numba")

#: the executor used when none is requested
DEFAULT_EXECUTOR = "interp"


def _numba_module():
    """The ``numba`` module, or ``None`` when unavailable (silent gate)."""
    try:
        import numba  # type: ignore[import-not-found]
    except Exception:  # pragma: no cover - depends on the environment
        return None
    return numba


def resolve_executor(requested: str) -> str:
    """The executor kind that will actually run for ``requested``.

    ``"numba"`` degrades silently to ``"interp"`` when the optional
    dependency is missing; the resolved kind is what telemetry reports.
    """
    if requested not in EXECUTORS:
        raise ValueError(f"unknown executor {requested!r}; "
                         f"choose from {EXECUTORS}")
    if requested == "numba" and _numba_module() is None:
        return "interp"
    return requested


def _ops_mod():
    from . import ops  # deferred: ops imports the plan layer at load time

    return ops


# ---------------------------------------------------------------------------
# per-primitive interpreter kernels
# ---------------------------------------------------------------------------
#
# Every emitter receives one instruction's spec and returns a *kernel*: a
# closure over the spec's constants mapping the parent slot values to
# ``(value, vjp)``.  Kernels execute exactly the numpy expressions the
# corresponding ops-layer primitive executes -- the elementwise/unary/
# min-max families share their rule tables with :mod:`repro.ad.ops`
# outright, the rest mirror the primitive line for line (and reuse the ops
# helpers ``_unbroadcast`` / ``_unbroadcast_keep_probe`` /
# ``_matmul_grad_*``) -- so a replayed value or cotangent is bitwise what a
# fresh trace produces.


def _emit_ewbinary(spec: tuple, node: Instr) -> Callable:
    ops = _ops_mod()
    (_, op, a_tr, b_tr, a_const, b_const,
     a_shape, b_shape, a_lift, b_lift) = spec
    compute, grad_a, grad_b = ops.EW_BINARY_RULES[op]
    unbroadcast, restore = ops._unbroadcast, ops._probe_restore
    a_re = a_tr and tuple(a_lift) != tuple(a_shape)
    b_re = b_tr and tuple(b_lift) != tuple(b_shape)

    def kernel(vals: list) -> tuple:
        i = 0
        if a_tr:
            av = vals[i].reshape(a_lift) if a_re else vals[i]
            i += 1
        else:
            av = a_const
        bv = (vals[i].reshape(b_lift) if b_re else vals[i]) if b_tr \
            else b_const
        out = compute(av, bv)

        def vjp(g: np.ndarray) -> tuple:
            grads = []
            if a_tr:
                grads.append(restore(unbroadcast(grad_a(g, av, bv), a_lift),
                                     a_shape))
            if b_tr:
                grads.append(restore(unbroadcast(grad_b(g, av, bv), b_lift),
                                     b_shape))
            return tuple(grads)

        return out, vjp

    return kernel


def _emit_minmax(spec: tuple, node: Instr) -> Callable:
    ops = _ops_mod()
    (_, op, a_tr, b_tr, a_const, b_const,
     a_shape, b_shape, a_lift, b_lift) = spec
    compute, mask_of = ops.MINMAX_RULES[op]
    unbroadcast, restore = ops._unbroadcast, ops._probe_restore
    a_re = a_tr and tuple(a_lift) != tuple(a_shape)
    b_re = b_tr and tuple(b_lift) != tuple(b_shape)

    def kernel(vals: list) -> tuple:
        i = 0
        if a_tr:
            av = vals[i].reshape(a_lift) if a_re else vals[i]
            i += 1
        else:
            av = a_const
        bv = (vals[i].reshape(b_lift) if b_re else vals[i]) if b_tr \
            else b_const
        out = compute(av, bv)
        mask_a = mask_of(av, bv)

        def vjp(g: np.ndarray) -> tuple:
            grads = []
            if a_tr:
                grads.append(restore(unbroadcast(g * mask_a, a_lift),
                                     a_shape))
            if b_tr:
                grads.append(restore(unbroadcast(g * ~mask_a, b_lift),
                                     b_shape))
            return tuple(grads)

        return out, vjp

    return kernel


def _emit_unary(spec: tuple, node: Instr) -> Callable:
    compute, dydx = _ops_mod().UNARY_RULES[spec[1]]

    def kernel(vals: list) -> tuple:
        av = vals[0]
        out = compute(av)

        def vjp(g: np.ndarray) -> tuple:
            return (g * dydx(av, out),)

        return out, vjp

    return kernel


def _emit_negative(spec: tuple, node: Instr) -> Callable:
    def kernel(vals: list) -> tuple:
        return -vals[0], lambda g: (-g,)

    return kernel


def _emit_copy(spec: tuple, node: Instr) -> Callable:
    def kernel(vals: list) -> tuple:
        return np.array(vals[0], copy=True), lambda g: (g,)

    return kernel


def _emit_astype(spec: tuple, node: Instr) -> Callable:
    _, dtype_str, src_str = spec
    dtype, src = np.dtype(dtype_str), np.dtype(src_str)

    def kernel(vals: list) -> tuple:
        out = vals[0].astype(dtype)

        def vjp(g: np.ndarray) -> tuple:
            return (np.asarray(g, dtype=src),)

        return out, vjp

    return kernel


def _emit_sum(spec: tuple, node: Instr) -> Callable:
    _, axis, keepdims, in_shape = spec

    def kernel(vals: list) -> tuple:
        av = vals[0]
        out = np.sum(av, axis=axis, keepdims=keepdims)

        def vjp(g: np.ndarray) -> tuple:
            g = np.asarray(g)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, in_shape).copy(),)

        return out, vjp

    return kernel


def _emit_mean(spec: tuple, node: Instr) -> Callable:
    _, axis, keepdims, count, in_shape = spec

    def kernel(vals: list) -> tuple:
        av = vals[0]
        out = np.mean(av, axis=axis, keepdims=keepdims)

        def vjp(g: np.ndarray) -> tuple:
            g = np.asarray(g) / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, in_shape).copy(),)

        return out, vjp

    return kernel


def _emit_redminmax(spec: tuple, node: Instr) -> Callable:
    _, op, axis, keepdims, in_shape = spec
    reduce_fn = np.max if op == "max" else np.min

    def kernel(vals: list) -> tuple:
        av = vals[0]
        out = reduce_fn(av, axis=axis, keepdims=keepdims)

        def vjp(g: np.ndarray) -> tuple:
            g = np.asarray(g)
            out_k = out
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out_k = np.expand_dims(out, axis=axis)
            mask = (av == out_k)
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            return (mask * g / denom,)

        return out, vjp

    return kernel


def _emit_prod(spec: tuple, node: Instr) -> Callable:
    _, axis, keepdims, in_shape = spec

    def kernel(vals: list) -> tuple:
        av = vals[0]
        out = np.prod(av, axis=axis, keepdims=keepdims)

        def vjp(g: np.ndarray) -> tuple:
            g = np.asarray(g)
            out_k = out
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out_k = np.expand_dims(out, axis=axis)
            safe = np.where(av == 0, 1.0, av)
            return (g * out_k / safe,)

        return out, vjp

    return kernel


def _emit_getitem(spec: tuple, node: Instr) -> Callable:
    _, idx, advanced, contig, in_shape = spec

    def kernel(vals: list) -> tuple:
        av = vals[0]
        out = av[idx]
        if contig:
            out = np.ascontiguousarray(out)

        def vjp(g: np.ndarray) -> tuple:
            grad = np.zeros(in_shape, dtype=np.result_type(g, np.float64))
            if advanced:
                np.add.at(grad, idx, g)
            else:
                grad[idx] += g
            return (grad,)

        return out, vjp

    return kernel


def _emit_index_update(spec: tuple, node: Instr) -> Callable:
    ops = _ops_mod()
    (_, idx, a_tr, b_tr, a_const, b_const, b_shape, batched,
     lift_shape) = spec
    keep_probe = ops._unbroadcast_keep_probe
    lifted_const = None
    if not a_tr and lift_shape is not None:
        lifted_const = np.broadcast_to(a_const, lift_shape)

    def kernel(vals: list) -> tuple:
        i = 0
        if a_tr:
            out = np.array(vals[i], copy=True)
            i += 1
        elif lifted_const is not None:
            out = np.array(lifted_const, copy=True, order="C")
        else:
            out = np.array(a_const, copy=True)
        bv = vals[i] if b_tr else b_const
        out[idx] = bv

        def vjp(g: np.ndarray) -> tuple:
            grads = []
            if a_tr:
                ga = np.array(g, copy=True)
                ga[idx] = 0.0
                grads.append(ga)
            if b_tr:
                gb = np.asarray(g)[idx]
                grads.append(keep_probe(gb, b_shape, batched))
            return tuple(grads)

        return out, vjp

    return kernel


def _emit_index_add(spec: tuple, node: Instr) -> Callable:
    ops = _ops_mod()
    (_, idx, a_tr, b_tr, a_const, b_const, b_shape, batched,
     lift_shape) = spec
    keep_probe = ops._unbroadcast_keep_probe
    lifted_const = None
    if not a_tr and lift_shape is not None:
        lifted_const = np.broadcast_to(a_const, lift_shape)

    def kernel(vals: list) -> tuple:
        i = 0
        if a_tr:
            out = np.array(vals[i], copy=True)
            i += 1
        elif lifted_const is not None:
            out = np.array(lifted_const, copy=True, order="C")
        else:
            out = np.array(a_const, copy=True)
        bv = vals[i] if b_tr else b_const
        np.add.at(out, idx, bv)

        def vjp(g: np.ndarray) -> tuple:
            grads = []
            if a_tr:
                grads.append(np.asarray(g))
            if b_tr:
                gb = np.asarray(g)[idx]
                grads.append(keep_probe(gb, b_shape, batched))
            return tuple(grads)

        return out, vjp

    return kernel


def _emit_where(spec: tuple, node: Instr) -> Callable:
    ops = _ops_mod()
    (_, cv, a_tr, b_tr, a_const, b_const,
     a_shape, b_shape, a_lift, b_lift) = spec
    unbroadcast, restore = ops._unbroadcast, ops._probe_restore
    a_re = a_tr and tuple(a_lift) != tuple(a_shape)
    b_re = b_tr and tuple(b_lift) != tuple(b_shape)

    def kernel(vals: list) -> tuple:
        i = 0
        if a_tr:
            av = vals[i].reshape(a_lift) if a_re else vals[i]
            i += 1
        else:
            av = a_const
        bv = (vals[i].reshape(b_lift) if b_re else vals[i]) if b_tr \
            else b_const
        out = np.where(cv, av, bv)

        def vjp(g: np.ndarray) -> tuple:
            grads = []
            if a_tr:
                grads.append(restore(unbroadcast(g * cv, a_lift), a_shape))
            if b_tr:
                grads.append(restore(unbroadcast(g * (~cv), b_lift),
                                     b_shape))
            return tuple(grads)

        return out, vjp

    return kernel


def _emit_matmul(spec: tuple, node: Instr) -> Callable:
    ops = _ops_mod()
    _, a_tr, b_tr, a_const, b_const = spec
    grad_a, grad_b = ops._matmul_grad_a, ops._matmul_grad_b

    def kernel(vals: list) -> tuple:
        i = 0
        if a_tr:
            av = vals[i]
            i += 1
        else:
            av = a_const
        bv = vals[i] if b_tr else b_const
        out = np.matmul(av, bv)

        def vjp(g: np.ndarray) -> tuple:
            g = np.asarray(g)
            grads = []
            if a_tr:
                grads.append(grad_a(g, av, bv))
            if b_tr:
                grads.append(grad_b(g, av, bv))
            return tuple(grads)

        return out, vjp

    return kernel


def _emit_matmul_probe(spec: tuple, node: Instr) -> Callable:
    ops = _ops_mod()
    _, a_tr, b_tr, a_const, b_const, la, lb = spec
    keep_probe = ops._unbroadcast_keep_probe

    def kernel(vals: list) -> tuple:
        i = 0
        if a_tr:
            av = vals[i]
            i += 1
        else:
            av = a_const
        bv = vals[i] if b_tr else b_const
        av_m = av[..., None, :] if la == 1 else av
        bv_m = bv[..., :, None] if lb == 1 else bv
        out_m = np.matmul(av_m, bv_m)
        if la == 1 and lb == 1:
            out = out_m[..., 0, 0]
        elif la == 1:
            out = out_m[..., 0, :]
        elif lb == 1:
            out = out_m[..., :, 0]
        else:
            out = out_m

        def vjp(g: np.ndarray) -> tuple:
            g = np.asarray(g)
            if la == 1 and lb == 1:
                g_m = g[..., None, None]
            elif la == 1:
                g_m = g[..., None, :]
            elif lb == 1:
                g_m = g[..., :, None]
            else:
                g_m = g
            grads = []
            if a_tr:
                ga = np.matmul(g_m, np.swapaxes(bv_m, -1, -2))
                grads.append(keep_probe(ga, av_m.shape,
                                        True).reshape(av.shape))
            if b_tr:
                gb = np.matmul(np.swapaxes(av_m, -1, -2), g_m)
                grads.append(keep_probe(gb, bv_m.shape,
                                        True).reshape(bv.shape))
            return tuple(grads)

        return out, vjp

    return kernel


def _emit_matmul_multirhs(spec: tuple, node: Instr) -> Callable:
    _, a_const = spec
    a_t = np.swapaxes(a_const, -1, -2)

    def kernel(vals: list) -> tuple:
        out = np.matmul(vals[0], a_t)

        def vjp(g: np.ndarray) -> tuple:
            return (np.matmul(np.asarray(g), a_const),)

        return out, vjp

    return kernel


def _emit_reshape(spec: tuple, node: Instr) -> Callable:
    _, out_shape, in_shape = spec

    def kernel(vals: list) -> tuple:
        out = np.reshape(vals[0], out_shape)

        def vjp(g: np.ndarray) -> tuple:
            return (np.reshape(g, in_shape),)

        return out, vjp

    return kernel


def _emit_transpose(spec: tuple, node: Instr) -> Callable:
    _, axes, inv_axes = spec

    def kernel(vals: list) -> tuple:
        out = np.transpose(vals[0], axes)

        def vjp(g: np.ndarray) -> tuple:
            return (np.transpose(g, inv_axes),)

        return out, vjp

    return kernel


def _emit_swapaxes(spec: tuple, node: Instr) -> Callable:
    _, ax1, ax2 = spec

    def kernel(vals: list) -> tuple:
        out = np.swapaxes(vals[0], ax1, ax2)

        def vjp(g: np.ndarray) -> tuple:
            return (np.swapaxes(g, ax1, ax2),)

        return out, vjp

    return kernel


def _moveaxis_order(src: Any, dst: Any, ndim: int) -> tuple[int, ...]:
    """The axis permutation ``np.moveaxis(a, src, dst)`` applies.

    Mirrors numpy's own implementation (normalize, remove sources, insert
    at destinations in ascending order); precomputing it lets the compiled
    kernel run one C-level ``transpose`` instead of re-normalising the
    axes on every replay -- same view, same bits.
    """
    src_t = tuple(ax % ndim for ax in
                  (src if isinstance(src, (tuple, list)) else (src,)))
    dst_t = tuple(ax % ndim for ax in
                  (dst if isinstance(dst, (tuple, list)) else (dst,)))
    order = [ax for ax in range(ndim) if ax not in src_t]
    for d, s in sorted(zip(dst_t, src_t)):
        order.insert(d, s)
    return tuple(order)


def _emit_moveaxis(spec: tuple, node: Instr) -> Callable:
    _, src, dst = spec
    ndim = len(node.shape)
    fwd = _moveaxis_order(src, dst, ndim)
    rev = _moveaxis_order(dst, src, ndim)

    def kernel(vals: list) -> tuple:
        out = vals[0].transpose(fwd)

        def vjp(g: np.ndarray) -> tuple:
            return (np.asarray(g).transpose(rev),)

        return out, vjp

    return kernel


def _emit_broadcast_to(spec: tuple, node: Instr) -> Callable:
    ops = _ops_mod()
    _, out_shape, in_shape = spec
    unbroadcast = ops._unbroadcast

    def kernel(vals: list) -> tuple:
        out = np.array(np.broadcast_to(vals[0], out_shape))

        def vjp(g: np.ndarray) -> tuple:
            return (unbroadcast(g, in_shape),)

        return out, vjp

    return kernel


def _emit_squeeze(spec: tuple, node: Instr) -> Callable:
    _, axis, in_shape = spec

    def kernel(vals: list) -> tuple:
        out = np.squeeze(vals[0], axis=axis)

        def vjp(g: np.ndarray) -> tuple:
            return (np.reshape(g, in_shape),)

        return out, vjp

    return kernel


def _emit_expand_dims(spec: tuple, node: Instr) -> Callable:
    _, axis, in_shape = spec

    def kernel(vals: list) -> tuple:
        out = np.expand_dims(vals[0], axis)

        def vjp(g: np.ndarray) -> tuple:
            return (np.reshape(g, in_shape),)

        return out, vjp

    return kernel


def _emit_flip(spec: tuple, node: Instr) -> Callable:
    _, axis = spec

    def kernel(vals: list) -> tuple:
        out = np.flip(vals[0], axis=axis)

        def vjp(g: np.ndarray) -> tuple:
            return (np.flip(g, axis=axis),)

        return out, vjp

    return kernel


def _emit_roll(spec: tuple, node: Instr) -> Callable:
    _, shift, axis = spec
    neg = -np.asarray(shift) if np.ndim(shift) else -shift

    def kernel(vals: list) -> tuple:
        out = np.roll(vals[0], shift, axis=axis)

        def vjp(g: np.ndarray) -> tuple:
            return (np.roll(g, neg, axis=axis),)

        return out, vjp

    return kernel


def _emit_roll_flat(spec: tuple, node: Instr) -> Callable:
    _, shift, flat_shape, in_shape = spec
    neg = -np.asarray(shift) if np.ndim(shift) else -shift

    def kernel(vals: list) -> tuple:
        av = vals[0]
        out = np.roll(av.reshape(flat_shape), shift, axis=1).reshape(in_shape)

        def vjp(g: np.ndarray) -> tuple:
            g2 = np.asarray(g).reshape(flat_shape)
            return (np.roll(g2, neg, axis=1).reshape(in_shape),)

        return out, vjp

    return kernel


def _emit_pad_zero(spec: tuple, node: Instr) -> Callable:
    _, norm_pad, in_shape = spec
    pad = np.asarray(norm_pad)
    index = tuple(slice(before, before + size)
                  for (before, _after), size in zip(pad, in_shape))

    def kernel(vals: list) -> tuple:
        out = np.pad(vals[0], pad, mode="constant")

        def vjp(g: np.ndarray) -> tuple:
            return (g[index],)

        return out, vjp

    return kernel


def _emit_concat(spec: tuple, node: Instr) -> Callable:
    _, axis, parts, offsets = spec
    traced_spans = [(start, stop)
                    for (tag, payload), start, stop
                    in zip(parts, offsets[:-1], offsets[1:]) if tag == "t"]

    def kernel(vals: list) -> tuple:
        seq = []
        i = 0
        for tag, payload in parts:
            if tag == "t":
                seq.append(vals[i])
                i += 1
            else:
                seq.append(payload)
        out = np.concatenate(seq, axis=axis)

        def vjp(g: np.ndarray) -> tuple:
            grads = []
            for start, stop in traced_spans:
                index = [slice(None)] * g.ndim
                index[axis] = slice(start, stop)
                grads.append(g[tuple(index)])
            return tuple(grads)

        return out, vjp

    return kernel


def _emit_stack(spec: tuple, node: Instr) -> Callable:
    _, axis, parts = spec
    traced_pos = [i for i, (tag, _payload) in enumerate(parts)
                  if tag == "t"]

    def kernel(vals: list) -> tuple:
        seq = []
        i = 0
        for tag, payload in parts:
            if tag == "t":
                seq.append(vals[i])
                i += 1
            else:
                seq.append(payload)
        out = np.stack(seq, axis=axis)

        def vjp(g: np.ndarray) -> tuple:
            return tuple(np.take(g, i, axis=axis) for i in traced_pos)

        return out, vjp

    return kernel


#: spec kind -> emitter
_EMITTERS: dict[str, Callable] = {
    "ewbinary": _emit_ewbinary,
    "minmax": _emit_minmax,
    "unary": _emit_unary,
    "negative": _emit_negative,
    "copy": _emit_copy,
    "astype": _emit_astype,
    "sum": _emit_sum,
    "mean": _emit_mean,
    "redminmax": _emit_redminmax,
    "prod": _emit_prod,
    "getitem": _emit_getitem,
    "index_update": _emit_index_update,
    "index_add": _emit_index_add,
    "where": _emit_where,
    "matmul": _emit_matmul,
    "matmul_probe": _emit_matmul_probe,
    "matmul_multirhs": _emit_matmul_multirhs,
    "reshape": _emit_reshape,
    "transpose": _emit_transpose,
    "swapaxes": _emit_swapaxes,
    "moveaxis": _emit_moveaxis,
    "broadcast_to": _emit_broadcast_to,
    "squeeze": _emit_squeeze,
    "expand_dims": _emit_expand_dims,
    "flip": _emit_flip,
    "roll": _emit_roll,
    "roll_flat": _emit_roll_flat,
    "pad_zero": _emit_pad_zero,
    "concat": _emit_concat,
    "stack": _emit_stack,
}


# ---------------------------------------------------------------------------
# shape-specialised singleton kernels (pass-gated)
# ---------------------------------------------------------------------------
#
# When the pass pipeline ran (``plan_optimize="fuse"``) the IR's static
# geometry can be trusted at emit time: every cotangent entering a VJP
# carries the instruction's own shape (seeds are broadcast to slot shape,
# every rule hands back operand node shapes).  The hottest singleton kinds
# are then re-emitted with the dynamically-checked identity calls
# (``_unbroadcast`` / ``_probe_restore``) dropped where the spec proves
# them no-ops -- on matching shapes both return their input unchanged, so
# eliding them is bit-preserving by construction -- and with the reduction
# VJPs writing through a preallocated buffer instead of allocating one per
# replay (safe: each instruction's VJP fires at most once per replay, and
# ``_collect`` defensively copies every non-owned leaf cotangent before it
# leaves the plan).  Each factory returns ``None`` when its static
# conditions do not hold and the generic emitter serves the instruction
# unchanged; ``plan_optimize="off"`` never consults this table.

def _ew_identity_gate(spec: tuple, node: Instr) -> tuple | None:
    """Shared static gate of the lifted binary families (a_tr, b_tr) or
    ``None`` when a traced operand needs runtime unbroadcast/restore."""
    (_, _p1, a_tr, b_tr, _ac, _bc, a_shape, b_shape, a_lift, b_lift) = spec
    out_shape = tuple(node.shape)
    if a_tr and not (tuple(a_lift) == out_shape
                     and tuple(a_shape) == tuple(a_lift)):
        return None
    if b_tr and not (tuple(b_lift) == out_shape
                     and tuple(b_shape) == tuple(b_lift)):
        return None
    return a_tr, b_tr


def _spec_ewbinary(spec: tuple, node: Instr) -> Callable | None:
    gate = _ew_identity_gate(spec, node)
    if gate is None:
        return None
    a_tr, b_tr = gate
    a_const, b_const = spec[4], spec[5]
    compute, grad_a, grad_b = _ops_mod().EW_BINARY_RULES[spec[1]]

    if a_tr and b_tr:
        def kernel(vals: list) -> tuple:
            av, bv = vals
            out = compute(av, bv)

            def vjp(g: np.ndarray) -> tuple:
                return (grad_a(g, av, bv), grad_b(g, av, bv))

            return out, vjp
    elif a_tr:
        def kernel(vals: list) -> tuple:
            av = vals[0]
            out = compute(av, b_const)

            def vjp(g: np.ndarray) -> tuple:
                return (grad_a(g, av, b_const),)

            return out, vjp
    else:
        def kernel(vals: list) -> tuple:
            bv = vals[0]
            out = compute(a_const, bv)

            def vjp(g: np.ndarray) -> tuple:
                return (grad_b(g, a_const, bv),)

            return out, vjp
    return kernel


def _spec_minmax(spec: tuple, node: Instr) -> Callable | None:
    gate = _ew_identity_gate(spec, node)
    if gate is None:
        return None
    a_tr, b_tr = gate
    a_const, b_const = spec[4], spec[5]
    compute, mask_of = _ops_mod().MINMAX_RULES[spec[1]]

    def kernel(vals: list) -> tuple:
        i = 0
        if a_tr:
            av = vals[i]
            i += 1
        else:
            av = a_const
        bv = vals[i] if b_tr else b_const
        out = compute(av, bv)
        mask_a = mask_of(av, bv)

        def vjp(g: np.ndarray) -> tuple:
            if a_tr and b_tr:
                return (g * mask_a, g * ~mask_a)
            if a_tr:
                return (g * mask_a,)
            return (g * ~mask_a,)

        return out, vjp

    return kernel


def _spec_where(spec: tuple, node: Instr) -> Callable | None:
    gate = _ew_identity_gate(spec, node)
    if gate is None:
        return None
    a_tr, b_tr = gate
    cv, a_const, b_const = spec[1], spec[4], spec[5]
    inv_cv = ~cv   # static condition: invert once at emit time

    def kernel(vals: list) -> tuple:
        i = 0
        if a_tr:
            av = vals[i]
            i += 1
        else:
            av = a_const
        bv = vals[i] if b_tr else b_const
        out = np.where(cv, av, bv)

        def vjp(g: np.ndarray) -> tuple:
            if a_tr and b_tr:
                return (g * cv, g * inv_cv)
            if a_tr:
                return (g * cv,)
            return (g * inv_cv,)

        return out, vjp

    return kernel


def _reduction_expanded_shape(out_shape: tuple, axis, keepdims
                              ) -> tuple[int, ...]:
    """The keepdims-style shape a reduction cotangent reshapes into."""
    if axis is None or keepdims:
        return tuple(out_shape)
    return np.expand_dims(np.empty(out_shape, dtype=np.bool_),
                          axis=axis).shape


def _spec_sum(spec: tuple, node: Instr) -> Callable | None:
    _, axis, keepdims, in_shape = spec
    if np.dtype(node.dtype) != np.float64:
        return None
    expanded = _reduction_expanded_shape(node.shape, axis, keepdims)
    buf = np.empty(in_shape, dtype=np.float64)

    def vjp(g: np.ndarray) -> tuple:
        # broadcast-copy into the retained buffer: the same bits
        # broadcast_to(..).copy() produces, without the per-replay
        # allocation (expand_dims is itself only a reshape)
        np.copyto(buf, np.reshape(g, expanded))
        return (buf,)

    def kernel(vals: list) -> tuple:
        # the exact reduction np.sum dispatches to for a float64 ndarray
        # (same pairwise loop, same bits), minus the python wrapper
        return np.add.reduce(vals[0], axis=axis, keepdims=keepdims), vjp

    return kernel


def _spec_mean(spec: tuple, node: Instr) -> Callable | None:
    _, axis, keepdims, count, in_shape = spec
    if np.dtype(node.dtype) != np.float64:
        return None
    expanded = _reduction_expanded_shape(node.shape, axis, keepdims)
    buf = np.empty(in_shape, dtype=np.float64)

    def vjp(g: np.ndarray) -> tuple:
        np.copyto(buf, np.reshape(np.asarray(g) / count, expanded))
        return (buf,)

    def kernel(vals: list) -> tuple:
        return np.mean(vals[0], axis=axis, keepdims=keepdims), vjp

    return kernel


def _spec_getitem(spec: tuple, node: Instr) -> Callable | None:
    _, idx, advanced, contig, in_shape = spec
    if np.dtype(node.dtype) != np.float64:
        return None
    buf = np.zeros(in_shape, dtype=np.float64)
    if advanced:
        def vjp(g: np.ndarray) -> tuple:
            # zero-fill + scatter into the retained buffer: the bits of a
            # fresh np.zeros scatter, without the per-replay allocation
            buf.fill(0.0)
            np.add.at(buf, idx, g)
            return (buf,)
    else:
        # basic indexing scatters into exactly this view; the region
        # outside it was zeroed at emit time and is never written, so a
        # single ufunc call reproduces fill+scatter-add (g + 0.0 carries
        # the same bits as 0.0 + g, -0.0 and NaN payloads included)
        view = buf[idx]
        if isinstance(view, np.ndarray) and np.shares_memory(view, buf):
            def vjp(g: np.ndarray) -> tuple:
                np.add(g, 0.0, out=view)
                return (buf,)
        else:
            # a scalar selection yields no writable view
            def vjp(g: np.ndarray) -> tuple:
                buf.fill(0.0)
                buf[idx] += g
                return (buf,)

    def kernel(vals: list) -> tuple:
        out = vals[0][idx]
        if contig:
            out = np.ascontiguousarray(out)
        return out, vjp

    return kernel


def _spec_index_update(spec: tuple, node: Instr) -> Callable | None:
    (_, idx, a_tr, b_tr, _a_const, _b_const, b_shape, batched,
     _lift_shape) = spec
    if not a_tr or np.dtype(node.dtype) != np.float64:
        return None
    if b_tr:
        # the update cotangent g[idx] must statically carry the operand's
        # node shape for the keep-probe restore to be the identity
        if np.empty(node.shape, dtype=np.bool_)[idx].shape \
                != tuple(b_shape):
            return None
    abuf = np.empty(node.shape, dtype=np.float64)

    def vjp(g: np.ndarray) -> tuple:
        np.copyto(abuf, g)
        abuf[idx] = 0.0
        if b_tr:
            return (abuf, np.asarray(g)[idx])
        return (abuf,)

    def kernel(vals: list) -> tuple:
        out = np.array(vals[0], copy=True)
        out[idx] = vals[1] if b_tr else _b_const
        return out, vjp

    return kernel


def _spec_matmul(spec: tuple, node: Instr, ir: PlanIR) -> Callable | None:
    _, a_tr, b_tr, a_const, _b_const = spec
    if a_tr or not b_tr:
        return None
    av = np.asarray(a_const)
    b_sh = tuple(ir.instrs[node.parents[0]].shape)
    if av.ndim != 2 or len(b_sh) != 1 or b_sh != (av.shape[1],) \
            or np.dtype(node.dtype) != np.float64:
        return None
    a_t = np.swapaxes(av, -1, -2)   # transpose once at emit time (a view)

    def vjp(g: np.ndarray) -> tuple:
        # same gemv as _matmul_grad_b's expand/matmul/squeeze path
        return (np.matmul(a_t, np.asarray(g)[..., None])[..., 0],)

    def kernel(vals: list) -> tuple:
        return np.matmul(av, vals[0]), vjp

    return kernel


def _spec_matmul_probe(spec: tuple, node: Instr,
                       ir: PlanIR) -> Callable | None:
    _, a_tr, b_tr, a_const, b_const, la, lb = spec
    if not (a_tr and b_tr and la == 1 and lb == 1):
        return None
    a_sh = tuple(ir.instrs[node.parents[0]].shape)
    b_sh = tuple(ir.instrs[node.parents[1]].shape)
    if a_sh != b_sh or np.dtype(node.dtype) != np.float64:
        return None

    # the probe dot product: both operands share one (optionally
    # probe-batched) vector shape, so the generic VJP's rank-1 matmuls
    # compute exactly one multiply per element -- the elementwise products
    # below are those same multiplies without the expand/swap/reshape
    # dance, and the keep-probe restore is statically the identity
    def kernel(vals: list) -> tuple:
        av, bv = vals
        out = np.matmul(av[..., None, :], bv[..., :, None])[..., 0, 0]

        def vjp(g: np.ndarray) -> tuple:
            g_c = np.asarray(g)[..., None]
            return (g_c * bv, av * g_c)

        return out, vjp

    return kernel


#: pass-gated singleton specialisations (consulted only when the layout
#: says the optimisation pipeline ran; ``None`` from a factory falls back
#: to the generic emitter above).  Factories receive the full IR so they
#: can read parent geometry when their gate needs it.
_SPECIALIZED: dict[str, Callable] = {
    "ewbinary": lambda spec, node, ir: _spec_ewbinary(spec, node),
    "minmax": lambda spec, node, ir: _spec_minmax(spec, node),
    "where": lambda spec, node, ir: _spec_where(spec, node),
    "sum": lambda spec, node, ir: _spec_sum(spec, node),
    "mean": lambda spec, node, ir: _spec_mean(spec, node),
    "getitem": lambda spec, node, ir: _spec_getitem(spec, node),
    "index_update": lambda spec, node, ir: _spec_index_update(spec, node),
    "matmul": _spec_matmul,
    "matmul_probe": _spec_matmul_probe,
}


# ---------------------------------------------------------------------------
# fused-chain codegen (interp executor)
# ---------------------------------------------------------------------------
#
# A fusion group (from repro.ad.passes) is a run of elementwise/unary
# instructions whose interiors are each consumed exactly once, by the next
# member.  The group compiles to ONE generated kernel: a straight-line
# function evaluating the chain in slot order (same numpy calls as the
# per-op kernels, with preallocated ``out=`` buffers wherever a ufunc is
# available) plus one generated VJP walking the chain in reverse.  The VJP
# emits per-operand gradient expressions in exactly the order the unfused
# reverse sweep would evaluate them -- externals in descending-op order
# (matching the outer sweep's zip accumulation), interiors chained through
# locals with the same set-then-add sequence -- so the fused gradients are
# bit-for-bit the unfused ones.

#: elementwise-binary rule name -> the ufunc the lambda's operator
#: dispatches to for ndarrays (same loop, same bits)
_EW_UFUNCS = {
    "add": np.add,
    "subtract": np.subtract,
    "multiply": np.multiply,
    "divide": np.true_divide,
    "power": np.power,
}

#: min-max rule name -> the comparison ufunc behind its mask lambda
_MINMAX_MASK_UFUNCS = {
    "maximum": np.greater_equal,
    "minimum": np.less_equal,
}


class _Operand:
    """One operand of a fused chain member (traced slot or constant)."""

    __slots__ = ("traced", "slot", "const", "lift", "shape", "interior",
                 "vidx", "reshape")

    def __init__(self, traced: bool, slot: int | None, const: Any,
                 lift: tuple | None, shape: tuple | None,
                 interior: bool) -> None:
        self.traced = traced
        self.slot = slot
        self.const = const
        self.lift = None if lift is None else tuple(lift)
        self.shape = None if shape is None else tuple(shape)
        self.interior = interior
        self.vidx: int | None = None
        self.reshape = (traced and lift is not None and shape is not None
                        and tuple(lift) != tuple(shape))


def _parse_group(ir: PlanIR, group: Sequence[int]) -> dict[int, list[_Operand]]:
    """Per-member operand records, in the emitter's (a, b) order."""
    interior = set(group[:-1])
    recs: dict[int, list[_Operand]] = {}
    for slot in group:
        instr = ir.instrs[slot]
        spec = instr.spec
        operands: list[_Operand] = []
        if instr.kind in ("ewbinary", "minmax"):
            (_, _op, a_tr, b_tr, a_c, b_c, a_sh, b_sh, a_lf, b_lf) = spec
            parents = list(instr.parents)
            pi = 0
            for tr, c, sh, lf in ((a_tr, a_c, a_sh, a_lf),
                                  (b_tr, b_c, b_sh, b_lf)):
                if tr:
                    p = parents[pi]
                    pi += 1
                    operands.append(_Operand(True, p, None, lf, sh,
                                             p in interior))
                else:
                    operands.append(_Operand(False, None, c, None, None,
                                             False))
        else:  # unary / negative: one traced operand, no lift bookkeeping
            p = instr.parents[0]
            operands.append(_Operand(True, p, None, None, None,
                                     p in interior))
        recs[slot] = operands
    return recs


def _fused_parents(group: Sequence[int],
                   recs: dict[int, list[_Operand]]) -> tuple[int, ...]:
    """External parent slots in descending-op, per-op operand order.

    This is the order the *unfused* reverse sweep accumulates the group's
    contributions into external gradients (the sweep walks slots downward
    and zips each op's parents with its VJP outputs), so handing the outer
    sweep this tuple -- duplicates included -- preserves the accumulation
    order bit for bit.
    """
    ext: list[int] = []
    for slot in reversed(list(group)):
        for o in recs[slot]:
            if o.traced and not o.interior:
                o.vidx = len(ext)
                ext.append(o.slot)
    return tuple(ext)


def _operand_expr(o: _Operand, env: dict, slot: int, tag: str) -> str:
    if not o.traced:
        name = f"_c{slot}{tag}"
        env[name] = o.const
        return name
    base = f"v{o.slot}" if o.interior else f"vals[{o.vidx}]"
    if o.reshape:
        return f"{base}.reshape({o.lift!r})"
    return base


def _build_fused_kernel(ir: PlanIR, group: Sequence[int],
                        out_bufs: dict[int, np.ndarray],
                        numba=None) -> tuple[Callable, tuple[int, ...]]:
    """One generated kernel for a fusion group.

    ``out_bufs`` maps group slots to preallocated output buffers (absent =
    allocate per call, used for slots whose value escapes the plan).
    ``numba`` is the imported numba module when the numba executor is
    active; qualifying chains then replace the whole forward with one
    jitted ufunc (see :func:`_numba_chain`), everything else keeps the
    interpreter forward.
    """
    ops = _ops_mod()
    instrs = ir.instrs
    recs = _parse_group(ir, group)
    ext = _fused_parents(group, recs)
    last = group[-1]
    numba_forward = None
    if numba is not None and last in out_bufs:
        numba_forward = _numba_chain(ir, group, recs, numba)

    env: dict[str, Any] = {"np": np, "_ub": ops._unbroadcast,
                           "_pr": ops._probe_restore}
    fwd: list[str] = []
    rev: list[str] = []
    outs: list[str] = [""] * len(ext)

    if numba_forward is not None:
        env["_nb"] = numba_forward
        env["_o_last"] = out_bufs[last]
        fwd.append(f"v{last} = _nb(*vals, out=_o_last)")
    else:
        for slot in group:
            instr = instrs[slot]
            spec = instr.spec
            operands = recs[slot]
            if instr.kind in ("ewbinary", "minmax"):
                a_expr = _operand_expr(operands[0], env, slot, "a")
                b_expr = _operand_expr(operands[1], env, slot, "b")
                fwd.append(f"a{slot} = {a_expr}")
                fwd.append(f"b{slot} = {b_expr}")
                if instr.kind == "ewbinary":
                    compute, _ga, _gb = ops.EW_BINARY_RULES[spec[1]]
                    uf = _EW_UFUNCS.get(spec[1])
                else:
                    compute, _mask = ops.MINMAX_RULES[spec[1]]
                    uf = compute
                buf = out_bufs.get(slot)
                if uf is not None and buf is not None:
                    env[f"_u{slot}"], env[f"_o{slot}"] = uf, buf
                    fwd.append(f"v{slot} = _u{slot}(a{slot}, b{slot}, "
                               f"out=_o{slot})")
                else:
                    env[f"_f{slot}"] = compute
                    fwd.append(f"v{slot} = _f{slot}(a{slot}, b{slot})")
                if instr.kind == "minmax":
                    mask_uf = _MINMAX_MASK_UFUNCS[spec[1]]
                    mbuf = np.empty(instr.shape, dtype=bool)
                    env[f"_mu{slot}"], env[f"_mo{slot}"] = mask_uf, mbuf
                    fwd.append(f"m{slot} = _mu{slot}(a{slot}, b{slot}, "
                               f"out=_mo{slot})")
            elif instr.kind == "unary":
                a_expr = _operand_expr(operands[0], env, slot, "a")
                fwd.append(f"a{slot} = {a_expr}")
                name = spec[1]
                compute, dydx = ops.UNARY_RULES[name]
                env[f"_dy{slot}"] = dydx
                buf = out_bufs.get(slot)
                if buf is not None and name == "square":
                    env[f"_o{slot}"] = buf
                    fwd.append(f"v{slot} = np.multiply(a{slot}, a{slot}, "
                               f"out=_o{slot})")
                elif buf is not None and name == "reciprocal":
                    env[f"_o{slot}"] = buf
                    fwd.append(f"v{slot} = np.true_divide(1.0, a{slot}, "
                               f"out=_o{slot})")
                elif buf is not None and isinstance(compute, np.ufunc):
                    env[f"_u{slot}"], env[f"_o{slot}"] = compute, buf
                    fwd.append(f"v{slot} = _u{slot}(a{slot}, out=_o{slot})")
                else:
                    env[f"_f{slot}"] = compute
                    fwd.append(f"v{slot} = _f{slot}(a{slot})")
            else:  # negative
                a_expr = _operand_expr(operands[0], env, slot, "a")
                fwd.append(f"a{slot} = {a_expr}")
                buf = out_bufs.get(slot)
                if buf is not None:
                    env[f"_o{slot}"] = buf
                    fwd.append(f"v{slot} = np.negative(a{slot}, "
                               f"out=_o{slot})")
                else:
                    fwd.append(f"v{slot} = np.negative(a{slot})")

    # reverse pass: descending, exactly the unfused sweep's evaluation and
    # accumulation order
    seeded: set[int] = set()
    rev.append(f"g{last} = g")
    for slot in reversed(list(group)):
        instr = instrs[slot]
        spec = instr.spec
        operands = recs[slot]
        contribs: list[tuple[_Operand, str]] = []
        if instr.kind == "ewbinary":
            _compute, grad_a, grad_b = ops.EW_BINARY_RULES[spec[1]]
            for is_b, (o, gf, gn) in enumerate(
                    ((operands[0], grad_a, f"_ga{slot}"),
                     (operands[1], grad_b, f"_gb{slot}"))):
                if not o.traced:
                    continue
                if numba_forward is not None:
                    # qualifying chains are add/subtract/negative only:
                    # their rules are pure sign selections of g, inlined
                    # so the VJP needs no retained intermediates
                    raw = f"-g{slot}" if (is_b and spec[1] == "subtract") \
                        else f"g{slot}"
                else:
                    env[gn] = gf
                    raw = f"{gn}(g{slot}, a{slot}, b{slot})"
                # the cotangent of slot always carries the member's own
                # shape, so when the operand was never lifted or broadcast
                # the _pr(_ub(..)) pair is statically the identity (both
                # return their input unchanged on matching shapes) and the
                # generated code drops the two calls outright
                if (o.lift == tuple(instr.shape) and o.shape == o.lift):
                    contribs.append((o, raw))
                else:
                    contribs.append(
                        (o, f"_pr(_ub({raw}, {o.lift!r}), {o.shape!r})"))
        elif instr.kind == "minmax":
            for o, mexpr in ((operands[0], f"m{slot}"),
                             (operands[1], f"~m{slot}")):
                if not o.traced:
                    continue
                if (o.lift == tuple(instr.shape) and o.shape == o.lift):
                    contribs.append((o, f"g{slot} * {mexpr}"))
                else:
                    contribs.append(
                        (o, f"_pr(_ub(g{slot} * {mexpr}, {o.lift!r}), "
                            f"{o.shape!r})"))
        elif instr.kind == "unary":
            contribs.append(
                (operands[0], f"g{slot} * _dy{slot}(a{slot}, v{slot})"))
        else:  # negative
            contribs.append((operands[0], f"-g{slot}"))
        for o, expr in contribs:
            if o.interior:
                if o.slot in seeded:
                    rev.append(f"g{o.slot} = g{o.slot} + {expr}")
                else:
                    rev.append(f"g{o.slot} = {expr}")
                    seeded.add(o.slot)
            else:
                outs[o.vidx] = expr
    for i, expr in enumerate(outs):
        rev.append(f"o{i} = {expr}")
    ret = ", ".join(f"o{i}" for i in range(len(outs)))
    if len(outs) == 1:
        ret += ","
    body = "\n".join(f"    {line}" for line in fwd)
    rbody = "\n".join(f"        {line}" for line in rev)
    src = (f"def _kernel(vals):\n{body}\n"
           f"    def _vjp(g):\n{rbody}\n"
           f"        return ({ret})\n"
           f"    return v{last}, _vjp\n")
    exec(compile(src, f"<fused-plan-{group[0]}-{last}>", "exec"), env)
    return env["_kernel"], ext


# ---------------------------------------------------------------------------
# numba forward-chain codegen (optional executor)
# ---------------------------------------------------------------------------

def _numba_chain(ir: PlanIR, group: Sequence[int],
                 recs: dict[int, list[_Operand]], numba) -> Callable | None:
    """A ``numba.vectorize``-compiled ufunc for one qualifying chain.

    Qualifying means: add/subtract/negative members only (the subset whose
    scalar evaluation order matches the array chain exactly -- no multiply,
    so LLVM cannot FMA-contract; VJPs need no retained intermediates),
    float64 throughout, every traced operand unlifted and exactly the
    member's shape (no broadcasting), constants finite python/numpy
    scalars.  Returns ``None`` when the group does not qualify or the JIT
    fails; the caller falls back to the interpreter kernel.
    """
    lines = []
    n_ext = 0
    for slot in group:
        instr = ir.instrs[slot]
        if np.dtype(instr.dtype) != np.float64:
            return None
        if instr.kind == "negative":
            lines.append((slot, "neg", recs[slot]))
        elif instr.kind == "ewbinary" and instr.spec[1] in ("add",
                                                           "subtract"):
            lines.append((slot, instr.spec[1], recs[slot]))
        else:
            return None
        for o in recs[slot]:
            if o.traced:
                if o.reshape or (o.shape is not None
                                 and o.shape != instr.shape):
                    return None
                if not o.interior:
                    n_ext += 1
            else:
                c = o.const
                if isinstance(c, np.ndarray) and c.ndim == 0:
                    c = c[()]
                if not isinstance(c, (int, float, np.integer, np.floating)):
                    return None
                if not np.isfinite(float(c)):
                    return None
    # scalar args are named by each operand's position in the fused
    # parents tuple (assigned by _fused_parents), so ``_nb(*vals)`` binds
    # every occurrence -- duplicates included -- to the right input
    src_lines = []
    for slot, opname, operands in lines:
        exprs = []
        for o in operands:
            if not o.traced:
                exprs.append(repr(float(o.const)))
            elif o.interior:
                exprs.append(f"t{o.slot}")
            else:
                exprs.append(f"x{o.vidx}")
        if opname == "neg":
            src_lines.append(f"t{slot} = -{exprs[0]}")
        elif opname == "add":
            src_lines.append(f"t{slot} = {exprs[0]} + {exprs[1]}")
        else:
            src_lines.append(f"t{slot} = {exprs[0]} - {exprs[1]}")
    args = ", ".join(f"x{i}" for i in range(n_ext))
    body = "\n".join(f"    {line}" for line in src_lines)
    src = (f"def _scalar({args}):\n{body}\n    return t{group[-1]}\n")
    env: dict[str, Any] = {}
    try:
        exec(compile(src, "<numba-chain>", "exec"), env)
        sig = "float64(" + ", ".join(["float64"] * n_ext) + ")"
        return numba.vectorize([sig], nopython=True)(env["_scalar"])
    except Exception:  # pragma: no cover - depends on numba internals
        return None


# ---------------------------------------------------------------------------
# executable program assembly
# ---------------------------------------------------------------------------

def build_ops(ir: PlanIR, layout,
              executor: str = DEFAULT_EXECUTOR
              ) -> tuple[list[tuple[int, tuple[int, ...], Callable]], str]:
    """The executable op list for ``ir`` under ``layout``.

    Returns ``(ops, executor_kind)`` where ``ops`` is the ordered list of
    ``(slot, parents, kernel)`` triples a plan's forward pass runs, and
    ``executor_kind`` names the executor that actually serves the plan
    (``"interp"`` when the numba request silently degraded).
    """
    kind = resolve_executor(executor)
    numba = _numba_module() if kind == "numba" else None

    group_of_last = {g[-1]: g for g in layout.groups}
    interiors = {s for g in layout.groups for s in g[:-1]}
    # shared packed buffers for fused outputs whose lifetimes the packing
    # pass proved disjoint; everything else gets a dedicated buffer below
    pools: dict[Any, np.ndarray] = {}
    for slot, pool_id in layout.buffer_of.items():
        if pool_id not in pools:
            instr = ir.instrs[slot]
            pools[pool_id] = np.empty(instr.shape,
                                      dtype=np.dtype(instr.dtype))

    ops: list[tuple[int, tuple[int, ...], Callable]] = []
    for instr in ir.instrs:
        slot = instr.slot
        if instr.kind == "leaf" or not layout.live[slot] \
                or slot in interiors:
            continue
        group = group_of_last.get(slot)
        if group is None:
            kernel = None
            if layout.optimized:
                specialize = _SPECIALIZED.get(instr.kind)
                if specialize is not None:
                    kernel = specialize(instr.spec, instr, ir)
            if kernel is None:
                emitter = _EMITTERS.get(instr.kind)
                if emitter is None:
                    raise KeyError(
                        f"no emitter for spec kind {instr.kind!r}")
                kernel = emitter(instr.spec, instr)
            ops.append((slot, instr.parents, kernel))
            continue
        out_bufs: dict[int, np.ndarray] = {}
        for s in group:
            if s in layout.buffer_of:
                out_bufs[s] = pools[layout.buffer_of[s]]
            elif s not in layout.no_out_buffer:
                gi = ir.instrs[s]
                out_bufs[s] = np.empty(gi.shape, dtype=np.dtype(gi.dtype))
        kernel, parents = _build_fused_kernel(ir, group, out_bufs, numba)
        ops.append((slot, parents, kernel))
    return ops, kind
