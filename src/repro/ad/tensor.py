"""Traced array type used by the reverse-mode AD engine.

:class:`ADArray` wraps a plain :class:`numpy.ndarray` value together with a
reference to the :class:`repro.ad.tape.Node` that produced it.  Arithmetic on
``ADArray`` objects records primitive operations on the active tape (see
:mod:`repro.ad.ops`) while computing the numerical result eagerly with NumPy,
so traced code runs at ordinary vectorised NumPy speed plus a small,
per-operation recording overhead.

Mutation semantics
------------------
The NPB kernels are most naturally written with in-place updates
(``u[1:-1, 1:-1, 1:-1] += du``).  Reverse-mode AD, however, needs the value
that was overwritten.  ``ADArray`` therefore implements ``__setitem__`` with
*copy-on-write* functional-update semantics: the assignment builds a new
buffer (``index_update``) and re-binds the Python object to the new value and
node.  Any previously derived results keep referencing the old node through
the tape, so gradients remain correct, while kernel code reads like ordinary
imperative NumPy.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .tape import Node, Tape, get_active_tape

__all__ = ["ADArray", "value_of", "is_traced"]


class ADArray:
    """A numpy array paired with its provenance on an AD tape.

    Parameters
    ----------
    value:
        The concrete numpy value of this array.
    node:
        Tape node that produced the value, or ``None`` for an untraced
        constant wrapper.
    tape:
        The tape the node belongs to.  Kept so that in-place updates recorded
        after the original tape context exited still land on the right tape.
    """

    __slots__ = ("value", "node", "tape")

    __array_priority__ = 200.0  # ensure ndarray defers to our reflected ops

    def __init__(self, value: np.ndarray, node: Node | None = None,
                 tape: Tape | None = None) -> None:
        self.value = np.asarray(value)
        self.node = node
        self.tape = tape

    # ------------------------------------------------------------------
    # ndarray-like metadata
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        """Shape of the underlying value."""
        return self.value.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying value."""
        return self.value.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.value.size

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the underlying value."""
        return self.value.dtype

    @property
    def T(self) -> "ADArray":
        """Transpose (records a ``transpose`` primitive)."""
        from . import ops

        return ops.transpose(self)

    def __len__(self) -> int:
        return len(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        traced = "traced" if self.node is not None else "const"
        return f"ADArray({traced}, shape={self.shape}, dtype={self.dtype})"

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        """Return the concrete value as a numpy array (no copy)."""
        return self.value

    def item(self) -> float:
        """Return the value of a size-1 array as a Python scalar."""
        return float(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def copy(self) -> "ADArray":
        """Return a traced copy (identity with respect to derivatives)."""
        from . import ops

        return ops.copy(self)

    def astype(self, dtype) -> "ADArray":
        """Cast the value.  Casting to float keeps the trace; casting to an
        integer dtype detaches (derivatives through integers are zero)."""
        from . import ops

        return ops.astype(self, dtype)

    # ------------------------------------------------------------------
    # arithmetic operators (delegate to the primitive library)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from . import ops

        return ops.add(self, other)

    def __radd__(self, other):
        from . import ops

        return ops.add(other, self)

    def __sub__(self, other):
        from . import ops

        return ops.subtract(self, other)

    def __rsub__(self, other):
        from . import ops

        return ops.subtract(other, self)

    def __mul__(self, other):
        from . import ops

        return ops.multiply(self, other)

    def __rmul__(self, other):
        from . import ops

        return ops.multiply(other, self)

    def __truediv__(self, other):
        from . import ops

        return ops.divide(self, other)

    def __rtruediv__(self, other):
        from . import ops

        return ops.divide(other, self)

    def __pow__(self, other):
        from . import ops

        return ops.power(self, other)

    def __rpow__(self, other):
        from . import ops

        return ops.power(other, self)

    def __neg__(self):
        from . import ops

        return ops.negative(self)

    def __pos__(self):
        return self

    def __abs__(self):
        from . import ops

        return ops.absolute(self)

    def __matmul__(self, other):
        from . import ops

        return ops.matmul(self, other)

    def __rmatmul__(self, other):
        from . import ops

        return ops.matmul(other, self)

    # in-place operators: functional rebinding (copy-on-write)
    def __iadd__(self, other):
        from . import ops

        result = ops.add(self, other)
        self._rebind(result)
        return self

    def __isub__(self, other):
        from . import ops

        result = ops.subtract(self, other)
        self._rebind(result)
        return self

    def __imul__(self, other):
        from . import ops

        result = ops.multiply(self, other)
        self._rebind(result)
        return self

    def __itruediv__(self, other):
        from . import ops

        result = ops.divide(self, other)
        self._rebind(result)
        return self

    # ------------------------------------------------------------------
    # comparisons (not differentiable; return plain boolean arrays)
    # ------------------------------------------------------------------
    def __lt__(self, other):
        return self.value < _raw(other)

    def __le__(self, other):
        return self.value <= _raw(other)

    def __gt__(self, other):
        return self.value > _raw(other)

    def __ge__(self, other):
        return self.value >= _raw(other)

    def __eq__(self, other):  # type: ignore[override]
        return self.value == _raw(other)

    def __ne__(self, other):  # type: ignore[override]
        return self.value != _raw(other)

    def __hash__(self) -> int:
        return id(self)

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def __getitem__(self, index) -> "ADArray":
        from . import ops

        return ops.getitem(self, index)

    def __setitem__(self, index, value) -> None:
        from . import ops

        updated = ops.index_update(self, index, value)
        self._rebind(updated)

    def index_add(self, index, value) -> None:
        """In-place scatter-add ``self[index] += value`` with copy-on-write
        semantics (NumPy ``np.add.at`` analogue, unbuffered)."""
        from . import ops

        updated = ops.index_add(self, index, value)
        self._rebind(updated)

    # ------------------------------------------------------------------
    # reductions and shape ops as methods (mirroring ndarray API)
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "ADArray":
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "ADArray":
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "ADArray":
        from . import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "ADArray":
        from . import ops

        return ops.min(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "ADArray":
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def ravel(self) -> "ADArray":
        from . import ops

        return ops.reshape(self, (-1,))

    def flatten(self) -> "ADArray":
        return self.ravel()

    def transpose(self, *axes) -> "ADArray":
        from . import ops

        if len(axes) == 0:
            axes_arg = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_arg = tuple(axes[0])
        else:
            axes_arg = axes
        return ops.transpose(self, axes_arg)

    def dot(self, other) -> "ADArray":
        from . import ops

        return ops.matmul(self, other)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rebind(self, other: "ADArray") -> None:
        """Point this Python object at the value/node of ``other``.

        Implements the copy-on-write in-place semantics described in the
        module docstring.
        """
        self.value = other.value
        self.node = other.node
        self.tape = other.tape


def value_of(x: Any) -> np.ndarray:
    """Return the concrete numpy value of ``x`` (ADArray or array-like)."""
    if isinstance(x, ADArray):
        return x.value
    return np.asarray(x)


def is_traced(x: Any) -> bool:
    """True when ``x`` is an :class:`ADArray` attached to a tape node."""
    return isinstance(x, ADArray) and x.node is not None


def _raw(x: Any) -> Any:
    return x.value if isinstance(x, ADArray) else x
