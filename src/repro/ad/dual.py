"""Stacked-tangent dual arrays for the forward-mode (JVP) sweep.

:class:`TangentArray` pairs a plain numpy value with a *stacked tangent*:
an array of shape ``(n_directions,) + value.shape`` whose leading axis
enumerates independent differentiation directions.  One forward pass through
the benchmark kernels therefore carries the directional derivative along
*every* direction at once -- the forward-mode analogue of the leading probe
axis of :mod:`repro.ad.probes` -- and, unlike the reverse-mode
:class:`~repro.ad.tensor.ADArray`, records **nothing**: there is no tape,
no node graph, and peak memory is one (value, tangent) state regardless of
how many loop iterations are differentiated through.

Arithmetic delegates to the primitive library (:mod:`repro.ad.ops`), which
propagates tangents with the exact same compute/derivative rule tables
(``EW_BINARY_RULES``/``UNARY_RULES``/``MINMAX_RULES``) the reverse sweep
uses, so the two modes cannot diverge on tie/zero subgradient conventions.

Mutation semantics mirror ``ADArray``: ``__setitem__`` and ``index_add``
are copy-on-write functional updates that re-bind the Python object, so the
NPB kernels' imperative updates work unchanged on tangent state.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["TangentArray"]


class TangentArray:
    """A numpy value paired with a stacked tangent of shape ``(n,) + shape``.

    Parameters
    ----------
    value:
        The concrete numpy value (the *primal*).
    tangent:
        Directional derivatives of ``value``, stacked along a leading
        direction axis: ``tangent[d]`` is the derivative of ``value`` along
        direction ``d``.  Must have exactly one more dimension than
        ``value`` and match its trailing shape.
    """

    __slots__ = ("value", "tangent")

    __array_priority__ = 200.0  # ensure ndarray defers to our reflected ops

    def __init__(self, value: np.ndarray, tangent: np.ndarray) -> None:
        self.value = np.asarray(value)
        self.tangent = np.asarray(tangent)
        if self.tangent.shape[1:] != self.value.shape:
            raise ValueError(
                f"tangent shape {self.tangent.shape} does not stack "
                f"directions over value shape {self.value.shape}")

    # ------------------------------------------------------------------
    # ndarray-like metadata
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        """Shape of the underlying value (the direction axis is hidden)."""
        return self.value.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying value."""
        return self.value.ndim

    @property
    def size(self) -> int:
        """Total number of (logical) elements."""
        return self.value.size

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the underlying value."""
        return self.value.dtype

    @property
    def n_directions(self) -> int:
        """Number of stacked tangent directions."""
        return self.tangent.shape[0]

    @property
    def T(self) -> "TangentArray":
        """Transpose of the logical dimensions."""
        from . import ops

        return ops.transpose(self)

    def __len__(self) -> int:
        return len(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"TangentArray(n_directions={self.n_directions}, "
                f"shape={self.shape}, dtype={self.dtype})")

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        """Return the concrete value as a numpy array (no copy)."""
        return self.value

    def item(self) -> float:
        """Return the value of a size-1 array as a Python scalar."""
        return float(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def copy(self) -> "TangentArray":
        """Return a copy (identity with respect to derivatives)."""
        from . import ops

        return ops.copy(self)

    def astype(self, dtype) -> Any:
        """Cast the value.  Casting to float keeps the tangent; casting to
        an integer dtype detaches (derivatives through integers are zero)."""
        from . import ops

        return ops.astype(self, dtype)

    # ------------------------------------------------------------------
    # arithmetic operators (delegate to the primitive library)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from . import ops

        return ops.add(self, other)

    def __radd__(self, other):
        from . import ops

        return ops.add(other, self)

    def __sub__(self, other):
        from . import ops

        return ops.subtract(self, other)

    def __rsub__(self, other):
        from . import ops

        return ops.subtract(other, self)

    def __mul__(self, other):
        from . import ops

        return ops.multiply(self, other)

    def __rmul__(self, other):
        from . import ops

        return ops.multiply(other, self)

    def __truediv__(self, other):
        from . import ops

        return ops.divide(self, other)

    def __rtruediv__(self, other):
        from . import ops

        return ops.divide(other, self)

    def __pow__(self, other):
        from . import ops

        return ops.power(self, other)

    def __rpow__(self, other):
        from . import ops

        return ops.power(other, self)

    def __neg__(self):
        from . import ops

        return ops.negative(self)

    def __pos__(self):
        return self

    def __abs__(self):
        from . import ops

        return ops.absolute(self)

    def __matmul__(self, other):
        from . import ops

        return ops.matmul(self, other)

    def __rmatmul__(self, other):
        from . import ops

        return ops.matmul(other, self)

    # in-place operators: functional rebinding (copy-on-write)
    def __iadd__(self, other):
        from . import ops

        self._rebind(ops.add(self, other))
        return self

    def __isub__(self, other):
        from . import ops

        self._rebind(ops.subtract(self, other))
        return self

    def __imul__(self, other):
        from . import ops

        self._rebind(ops.multiply(self, other))
        return self

    def __itruediv__(self, other):
        from . import ops

        self._rebind(ops.divide(self, other))
        return self

    # ------------------------------------------------------------------
    # comparisons (not differentiable; return plain boolean arrays)
    # ------------------------------------------------------------------
    def __lt__(self, other):
        return self.value < _raw(other)

    def __le__(self, other):
        return self.value <= _raw(other)

    def __gt__(self, other):
        return self.value > _raw(other)

    def __ge__(self, other):
        return self.value >= _raw(other)

    def __eq__(self, other):  # type: ignore[override]
        return self.value == _raw(other)

    def __ne__(self, other):  # type: ignore[override]
        return self.value != _raw(other)

    def __hash__(self) -> int:
        return id(self)

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def __getitem__(self, index) -> "TangentArray":
        from . import ops

        return ops.getitem(self, index)

    def __setitem__(self, index, value) -> None:
        from . import ops

        self._rebind(ops.index_update(self, index, value))

    def index_add(self, index, value) -> None:
        """In-place scatter-add ``self[index] += value`` with copy-on-write
        semantics (NumPy ``np.add.at`` analogue, unbuffered)."""
        from . import ops

        self._rebind(ops.index_add(self, index, value))

    # ------------------------------------------------------------------
    # reductions and shape ops as methods (mirroring ndarray API)
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "TangentArray":
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "TangentArray":
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "TangentArray":
        from . import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "TangentArray":
        from . import ops

        return ops.min(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "TangentArray":
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def ravel(self) -> "TangentArray":
        from . import ops

        return ops.reshape(self, (-1,))

    def flatten(self) -> "TangentArray":
        return self.ravel()

    def transpose(self, *axes) -> "TangentArray":
        from . import ops

        if len(axes) == 0:
            axes_arg = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_arg = tuple(axes[0])
        else:
            axes_arg = axes
        return ops.transpose(self, axes_arg)

    def dot(self, other) -> "TangentArray":
        from . import ops

        return ops.matmul(self, other)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rebind(self, other: "TangentArray") -> None:
        """Point this Python object at the value/tangent of ``other``
        (copy-on-write in-place semantics, exactly as ``ADArray``)."""
        self.value = other.value
        self.tangent = other.tangent


def _raw(x: Any) -> Any:
    return x.value if isinstance(x, TangentArray) else x
