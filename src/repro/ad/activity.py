"""Activity (read-set) analysis over a recorded AD tape.

The paper determines criticality with derivatives: an element with
``d(output)/d(element) == 0`` is uncritical.  A cheaper, derivative-free
criterion is *activity*: an element is live if its value is **read directly
from the watched leaf** by a computational or indexing primitive between the
restart point and the end of the run.

This first-touch read set is an approximation of criticality in both
directions.  It over-approximates when a whole extracted block is marked
read even though only a sub-slice of it later feeds the output (MG's
residual), and it under-approximates when a value is only consumed *after*
travelling through a data-movement primitive (an element copied into the
next iteration's state and read there), because movement chains are not
followed.  The AD analysis of :mod:`repro.core.criticality` has neither
problem, which is exactly the paper's argument for using derivatives; this
module exists as the cheap baseline the ablation experiments compare
against.

Because the tape already records every primitive together with its traced
parents (and, for indexing primitives, the index expression -- see
``Node.meta``), the activity analysis is a cheap post-processing pass over a
trace that was recorded anyway.  It also covers the variables reverse-mode AD
cannot handle, namely integer data (loop counters, permutation arrays in IS):
those are classified by :mod:`repro.core.criticality` rules, with this module
supplying the read information when the integer array is traced as float.

Two op categories are distinguished:

``CONSUMING``
    primitives whose use of a parent's elements constitutes a real read of
    the *values* (arithmetic, reductions, matmul, comparisons via ``where``,
    gathers feeding computation).

``MOVEMENT``
    primitives that merely relocate or duplicate data (``copy``,
    ``index_update`` of the untouched complement, ``reshape`` ...).  A pure
    data movement does not, by itself, make an element live; whether the
    moved value is live depends on what later consumes it, which the
    element-level analysis intentionally over-approximates by following
    movements transitively.

The two indexed-write primitives are role-sensitive: which category applies
depends on *which operand* the leaf is.  ``index_update(a, idx, b)`` moves
the complement of ``idx`` out of ``a`` (the updated region of ``a`` is
destroyed) and moves all of ``b`` into the copy.  ``index_add(a, idx, b)``
moves all of ``a`` (every old value survives, summed or not) but **reads**
all of ``b`` -- the addend's values are consumed by the addition, not
relocated, so a leaf appearing as the addend is live.  The primitives record
their traced-operand roles in ``Node.meta["roles"]`` for exactly this
distinction.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .tape import Node, Tape
from .tensor import ADArray

__all__ = [
    "CONSUMING_OPS",
    "MOVEMENT_OPS",
    "read_mask",
    "read_masks",
    "ActivityResult",
]


#: primitives that consume the values of their traced parents
CONSUMING_OPS = frozenset({
    "add", "subtract", "multiply", "divide", "power", "maximum", "minimum",
    "mod", "negative", "absolute", "sqrt", "exp", "expm1", "log", "log1p",
    "sin", "cos", "tan", "tanh", "sign", "square", "reciprocal", "clip",
    "sum", "mean", "max", "min", "prod", "where",
    "matmul", "stack", "concatenate",
})

#: primitives that only move data around
MOVEMENT_OPS = frozenset({
    "copy", "reshape", "transpose", "swapaxes", "moveaxis", "broadcast_to",
    "squeeze", "expand_dims", "flip", "roll", "pad_zero", "astype",
    "index_update", "index_add", "leaf",
})

#: indexing primitives: they read only the selected subset of the parent
INDEXING_OPS = frozenset({"getitem", "take"})


class ActivityResult:
    """Outcome of the activity analysis for one watched leaf.

    Attributes
    ----------
    name:
        The leaf's watch name (may be ``None``).
    read:
        Boolean mask, ``True`` where the element was directly read by a
        consuming or indexing primitive.
    moved:
        Boolean mask, ``True`` where the element was touched only by data
        movement primitives; informational.
    """

    __slots__ = ("name", "read", "moved")

    def __init__(self, name: str | None, read: np.ndarray, moved: np.ndarray):
        self.name = name
        self.read = read
        self.moved = moved

    @property
    def n_read(self) -> int:
        """Number of elements read at least once."""
        return int(self.read.sum())

    @property
    def n_unread(self) -> int:
        """Number of elements never read (candidate uncritical elements)."""
        return int(self.read.size - self.read.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ActivityResult(name={self.name!r}, read={self.n_read}, "
                f"unread={self.n_unread})")


def _children_by_parent(tape: Tape) -> dict[int, list[Node]]:
    """Map each node index to the list of nodes that consume it."""
    children: dict[int, list[Node]] = {}
    for node in tape.nodes:
        for parent in node.parents:
            children.setdefault(parent.index, []).append(node)
    return children


def read_mask(tape: Tape, leaf: ADArray) -> ActivityResult:
    """Compute the read mask of one watched leaf.

    Parameters
    ----------
    tape:
        The tape on which the program was traced.
    leaf:
        A traced array created by :meth:`Tape.watch`.

    Notes
    -----
    The analysis is a first-touch read set: any direct appearance of the
    leaf in a consuming primitive marks the whole accessed region as read,
    and a ``getitem`` of the leaf marks the selected region as read whether
    or not the extracted slice later reaches the output.  This matches how a
    programmer would reason about "participates in computation" in the
    paper's Section V.  Reads of *copies* of the leaf (values surviving a
    ``copy`` or the untouched complement of an ``index_update``) are not
    chased -- see the module docstring for the consequences.  The only
    movement primitive handled specially is ``index_update`` (the
    copy-on-write behind ``__setitem__``): the overwritten region is neither
    read nor moved, because the old values there are destroyed.
    """
    return _read_mask_with_children(tape, leaf, _children_by_parent(tape))


def _read_mask_with_children(tape: Tape, leaf: ADArray,
                             children: dict[int, list[Node]]) -> ActivityResult:
    """Implementation of :func:`read_mask` with a precomputed children map."""
    if leaf.node is None:
        raise ValueError("leaf is not traced; use Tape.watch")
    shape = leaf.node.shape
    read = np.zeros(shape, dtype=bool)
    moved = np.zeros(shape, dtype=bool)

    leaf_children = children.get(leaf.node.index, [])

    for child in leaf_children:
        if child.op in INDEXING_OPS:
            region = _indexed_region(shape, child)
            read |= region
        elif child.op in CONSUMING_OPS:
            read[...] = True
        elif child.op in ("index_update", "index_add"):
            for role in _leaf_roles(child, leaf):
                if child.op == "index_update":
                    if role == "target":
                        # the leaf is the "old value"; only the complement
                        # of the updated region survives into the copy
                        moved |= ~_indexed_region(shape, child)
                    else:
                        # the update values are relocated verbatim
                        moved[...] = True
                else:  # index_add
                    if role == "target":
                        # every old value survives (summed at the updated
                        # region, untouched elsewhere): pure movement
                        moved[...] = True
                    else:
                        # the addend's *values* are consumed by the
                        # addition -- a real read, not data movement
                        read[...] = True
        elif child.op in MOVEMENT_OPS:
            moved[...] = True
        else:  # unknown primitive: be conservative
            read[...] = True

    return ActivityResult(tape.watched.get(leaf.node.index), read, moved)


def _leaf_roles(child: Node, leaf: ADArray) -> list[str]:
    """Roles (``"target"``/``"value"``) the leaf plays in an indexed write.

    The roles tuple recorded by :func:`repro.ad.ops.index_update` /
    :func:`~repro.ad.ops.index_add` is aligned with the node's traced
    parents; a leaf may appear in several slots (e.g. ``a[idx] += a``
    spelled functionally).  Tapes recorded before roles existed fall back
    to the historical assumption that the leaf is the target.
    """
    meta = child.meta or {}
    roles = meta.get("roles")
    if roles is None:
        return ["target"]
    return [role for role, parent in zip(roles, child.parents)
            if parent is leaf.node]


def read_masks(tape: Tape, leaves: Iterable[ADArray]) -> list[ActivityResult]:
    """Vector form of :func:`read_mask` for several watched leaves.

    The children map is built once and shared, so analysing many checkpoint
    variables over the same (potentially long) tape stays linear in the tape
    length.
    """
    leaves = list(leaves)
    children = _children_by_parent(tape)
    return [_read_mask_with_children(tape, leaf, children) for leaf in leaves]


def _indexed_region(shape: tuple, node: Node) -> np.ndarray:
    """Boolean mask of the elements selected by an indexing node."""
    mask = np.zeros(shape, dtype=bool)
    meta = node.meta or {}
    if node.op == "take":
        idx = meta.get("indices")
        axis = meta.get("axis")
        if idx is None:
            mask[...] = True
            return mask
        if axis is None:
            mask.reshape(-1)[np.asarray(idx).reshape(-1)] = True
        else:
            sl = [slice(None)] * len(shape)
            sl[axis] = np.asarray(idx).reshape(-1)
            mask[tuple(sl)] = True
        return mask
    index = meta.get("index")
    if index is None:
        mask[...] = True
        return mask
    try:
        mask[index] = True
    except (IndexError, TypeError):  # exotic index expression: be conservative
        mask[...] = True
    return mask
