"""Activity (read-set) analysis over a recorded AD tape.

The paper determines criticality with derivatives: an element with
``d(output)/d(element) == 0`` is uncritical.  A cheaper, derivative-free
criterion is *activity*: an element is live if its value is **read directly
from the watched leaf** by a computational or indexing primitive between the
restart point and the end of the run.

This first-touch read set is an approximation of criticality in both
directions.  It over-approximates when a whole extracted block is marked
read even though only a sub-slice of it later feeds the output (MG's
residual), and it under-approximates when a value is only consumed *after*
travelling through a data-movement primitive (an element copied into the
next iteration's state and read there), because movement chains are not
followed.  The AD analysis of :mod:`repro.core.criticality` has neither
problem, which is exactly the paper's argument for using derivatives; this
module exists as the cheap baseline the ablation experiments compare
against.

Because the tape already records every primitive together with its traced
parents (and, for indexing primitives, the index expression -- see
``Node.meta``), the activity analysis is a cheap post-processing pass over a
trace that was recorded anyway.  It also covers the variables reverse-mode AD
cannot handle, namely integer data (loop counters, permutation arrays in IS):
those are classified by :mod:`repro.core.criticality` rules, with this module
supplying the read information when the integer array is traced as float.

Two op categories are distinguished:

``CONSUMING``
    primitives whose use of a parent's elements constitutes a real read of
    the *values* (arithmetic, reductions, matmul, comparisons via ``where``,
    gathers feeding computation).

``MOVEMENT``
    primitives that merely relocate or duplicate data (``copy``,
    ``index_update`` of the untouched complement, ``reshape`` ...).  A pure
    data movement does not, by itself, make an element live; whether the
    moved value is live depends on what later consumes it, which the
    element-level analysis intentionally over-approximates by following
    movements transitively.

The two indexed-write primitives are role-sensitive: which category applies
depends on *which operand* the leaf is.  ``index_update(a, idx, b)`` moves
the complement of ``idx`` out of ``a`` (the updated region of ``a`` is
destroyed) and moves all of ``b`` into the copy.  ``index_add(a, idx, b)``
moves all of ``a`` (every old value survives, summed or not) but **reads**
all of ``b`` -- the addend's values are consumed by the addition, not
relocated, so a leaf appearing as the addend is live.  The primitives record
their traced-operand roles in ``Node.meta["roles"]`` for exactly this
distinction.

Sweep modes
-----------
The analysis runs in three modes that produce **bitwise-identical** masks:

* **monolithic** -- :func:`read_masks` over one ``traced_restart`` tape
  (the historical path; O(steps) tape memory, re-traced every run);
* **segmented** -- :func:`segmented_read_masks` traces one iteration at a
  time and composes per-segment masks across boundaries with the same
  chaining trick as :func:`repro.ad.segmented.segmented_gradients`: in the
  monolithic tape, reads accumulate on a boundary value across iterations
  *only* when the very same node object passes through a step untouched
  (an identity pass-through in the next-state dict), so folding the next
  boundary's masks into the pass-through entries of the current segment
  reproduces the monolithic result exactly, with O(1-iteration) tape
  memory and every snapshot schedule of :mod:`repro.ad.schedule`;
* **plan-replayed** -- a :class:`repro.ad.plan.CompiledPlan` records op
  identity, operand roles and index expressions as plain data, so each
  segment's read/movement transfer is derived **once** from the plan
  structure (:func:`plan_transfer`) and replayed on later analyses with no
  tracing at all, falling back to fresh tracing on plan rejects exactly
  like the gradient path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from .tape import Node, Tape
from .tensor import ADArray, value_of

__all__ = [
    "CONSUMING_OPS",
    "MOVEMENT_OPS",
    "SPEC_CONSUMING",
    "SPEC_MOVEMENT",
    "read_mask",
    "read_masks",
    "ActivityResult",
    "masks_from_tape",
    "chain_step_masks",
    "plan_transfer",
    "replay_step_masks",
    "replay_output_masks",
    "segmented_read_masks",
]


#: primitives that consume the values of their traced parents
CONSUMING_OPS = frozenset({
    "add", "subtract", "multiply", "divide", "power", "maximum", "minimum",
    "mod", "negative", "absolute", "sqrt", "exp", "expm1", "log", "log1p",
    "sin", "cos", "tan", "tanh", "sign", "square", "reciprocal", "clip",
    "sum", "mean", "max", "min", "prod", "where",
    "matmul", "stack", "concatenate",
})

#: primitives that only move data around
MOVEMENT_OPS = frozenset({
    "copy", "reshape", "transpose", "swapaxes", "moveaxis", "broadcast_to",
    "squeeze", "expand_dims", "flip", "roll", "pad_zero", "astype",
    "index_update", "index_add", "leaf",
})

#: indexing primitives: they read only the selected subset of the parent
INDEXING_OPS = frozenset({"getitem", "take"})

# -- capture-spec categories (the plan-side mirror of the op sets) ---------
#
# A compiled plan stores each slot's capture spec, whose first field is the
# *spec kind* -- a slightly different vocabulary from tape op names (every
# unary math op shares kind "unary", reductions "max"/"min" share
# "redminmax", "roll" may lower to "roll_flat", ...).  These two sets
# partition the spec kinds of ``repro.ad.plan._EMITTERS`` exactly as
# CONSUMING_OPS/MOVEMENT_OPS partition op names, so a transfer derived from
# a plan categorises every primitive identically to the tape walk.  Ops
# without a capture spec (``mod``, ``take``) can never appear in a compiled
# plan -- their presence rejects the capture and the sweep falls back to
# tracing, where the tape categories apply.

#: spec kinds whose use of a parent's elements is a real read of the values
SPEC_CONSUMING = frozenset({
    "ewbinary", "minmax", "unary", "negative",
    "sum", "mean", "redminmax", "prod", "where",
    "matmul", "matmul_probe", "matmul_multirhs", "concat", "stack",
})

#: spec kinds that only move data around
SPEC_MOVEMENT = frozenset({
    "copy", "astype", "reshape", "transpose", "swapaxes", "moveaxis",
    "broadcast_to", "squeeze", "expand_dims", "flip", "roll", "roll_flat",
    "pad_zero", "leaf",
})


class ActivityResult:
    """Outcome of the activity analysis for one watched leaf.

    Attributes
    ----------
    name:
        The leaf's watch name (may be ``None``).
    read:
        Boolean mask, ``True`` where the element was directly read by a
        consuming or indexing primitive.
    moved:
        Boolean mask, ``True`` where the element was touched only by data
        movement primitives; informational.
    """

    __slots__ = ("name", "read", "moved")

    def __init__(self, name: str | None, read: np.ndarray, moved: np.ndarray):
        self.name = name
        self.read = read
        self.moved = moved

    @property
    def n_read(self) -> int:
        """Number of elements read at least once."""
        return int(self.read.sum())

    @property
    def n_unread(self) -> int:
        """Number of elements never read (candidate uncritical elements)."""
        return int(self.read.size - self.read.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ActivityResult(name={self.name!r}, read={self.n_read}, "
                f"unread={self.n_unread})")


def _children_by_parent(tape: Tape) -> dict[int, list[Node]]:
    """Map each node index to the list of nodes that consume it."""
    children: dict[int, list[Node]] = {}
    for node in tape.nodes:
        for parent in node.parents:
            children.setdefault(parent.index, []).append(node)
    return children


def read_mask(tape: Tape, leaf: ADArray) -> ActivityResult:
    """Compute the read mask of one watched leaf.

    Parameters
    ----------
    tape:
        The tape on which the program was traced.
    leaf:
        A traced array created by :meth:`Tape.watch`.

    Notes
    -----
    The analysis is a first-touch read set: any direct appearance of the
    leaf in a consuming primitive marks the whole accessed region as read,
    and a ``getitem`` of the leaf marks the selected region as read whether
    or not the extracted slice later reaches the output.  This matches how a
    programmer would reason about "participates in computation" in the
    paper's Section V.  Reads of *copies* of the leaf (values surviving a
    ``copy`` or the untouched complement of an ``index_update``) are not
    chased -- see the module docstring for the consequences.  The only
    movement primitive handled specially is ``index_update`` (the
    copy-on-write behind ``__setitem__``): the overwritten region is neither
    read nor moved, because the old values there are destroyed.
    """
    return _read_mask_with_children(tape, leaf, _children_by_parent(tape))


def _read_mask_with_children(tape: Tape, leaf: ADArray,
                             children: dict[int, list[Node]]) -> ActivityResult:
    """Implementation of :func:`read_mask` with a precomputed children map."""
    if leaf.node is None:
        raise ValueError("leaf is not traced; use Tape.watch")
    shape = leaf.node.shape
    read = np.zeros(shape, dtype=bool)
    moved = np.zeros(shape, dtype=bool)

    leaf_children = children.get(leaf.node.index, [])

    for child in leaf_children:
        if child.op in INDEXING_OPS:
            region = _indexed_region(shape, child)
            read |= region
        elif child.op in CONSUMING_OPS:
            read[...] = True
        elif child.op in ("index_update", "index_add"):
            for role in _leaf_roles(child, leaf):
                if child.op == "index_update":
                    if role == "target":
                        # the leaf is the "old value"; only the complement
                        # of the updated region survives into the copy
                        moved |= ~_indexed_region(shape, child)
                    else:
                        # the update values are relocated verbatim
                        moved[...] = True
                else:  # index_add
                    if role == "target":
                        # every old value survives (summed at the updated
                        # region, untouched elsewhere): pure movement
                        moved[...] = True
                    else:
                        # the addend's *values* are consumed by the
                        # addition -- a real read, not data movement
                        read[...] = True
        elif child.op in MOVEMENT_OPS:
            moved[...] = True
        else:  # unknown primitive: be conservative
            read[...] = True

    return ActivityResult(tape.watched.get(leaf.node.index), read, moved)


def _leaf_roles(child: Node, leaf: ADArray) -> list[str]:
    """Roles (``"target"``/``"value"``) the leaf plays in an indexed write.

    The roles tuple recorded by :func:`repro.ad.ops.index_update` /
    :func:`~repro.ad.ops.index_add` is aligned with the node's traced
    parents; a leaf may appear in several slots (e.g. ``a[idx] += a``
    spelled functionally).  Tapes recorded before roles existed fall back
    to the historical assumption that the leaf is the target.
    """
    meta = child.meta or {}
    roles = meta.get("roles")
    if roles is None:
        return ["target"]
    return [role for role, parent in zip(roles, child.parents)
            if parent is leaf.node]


def read_masks(tape: Tape, leaves: Iterable[ADArray]) -> list[ActivityResult]:
    """Vector form of :func:`read_mask` for several watched leaves.

    The children map is built once and shared, so analysing many checkpoint
    variables over the same (potentially long) tape stays linear in the tape
    length.
    """
    leaves = list(leaves)
    children = _children_by_parent(tape)
    return [_read_mask_with_children(tape, leaf, children) for leaf in leaves]


def _indexed_region(shape: tuple, node: Node) -> np.ndarray:
    """Boolean mask of the elements selected by an indexing node."""
    mask = np.zeros(shape, dtype=bool)
    meta = node.meta or {}
    if node.op == "take":
        idx = meta.get("indices")
        axis = meta.get("axis")
        if idx is None:
            mask[...] = True
            return mask
        if axis is None:
            mask.reshape(-1)[np.asarray(idx).reshape(-1)] = True
        else:
            sl = [slice(None)] * len(shape)
            sl[axis] = np.asarray(idx).reshape(-1)
            mask[tuple(sl)] = True
        return mask
    return _region_from_index(shape, meta.get("index"))


def _region_from_index(shape: tuple, index: Any) -> np.ndarray:
    """Boolean mask of the elements a plain index expression selects.

    Shared by the tape walk (``Node.meta["index"]``) and the plan transfer
    (the capture spec's index field); with an unbatched sweep the two store
    the *same* expression, so both paths select identical regions.
    """
    mask = np.zeros(shape, dtype=bool)
    if index is None:
        mask[...] = True
        return mask
    try:
        mask[index] = True
    except (IndexError, TypeError):  # exotic index expression: be conservative
        mask[...] = True
    return mask


# -- segment chaining (the tape-traced path) --------------------------------

def masks_from_tape(tape: Tape, leaves: Mapping[str, ADArray],
                    chain: Sequence[str]) -> dict[str, "ActivityResult"]:
    """Per-key read/moved masks of one traced segment, keyed by chain key."""
    results = read_masks(tape, [leaves[key] for key in chain])
    return {key: ActivityResult(key, res.read, res.moved)
            for key, res in zip(chain, results)}


def chain_step_masks(tape: Tape, leaves: Mapping[str, ADArray],
                     next_state: Mapping[str, Any], chain: Sequence[str],
                     prev: Mapping[str, "ActivityResult"]
                     ) -> dict[str, "ActivityResult"]:
    """Fold the next boundary's masks through one traced iteration.

    In the monolithic tape a boundary value keeps collecting reads across
    later iterations only when it reaches the next boundary as the *same*
    node object -- an identity pass-through in the next-state dict.  Any
    primitive in between (even a pure ``copy``) produces a new node, and the
    monolithic walk does not chase reads of that derived node back to the
    leaf (the documented movement under-approximation).  So the exact
    cross-boundary composition is: take this segment's own masks, then, for
    every next-state entry that *is* one of this segment's leaves, also
    inherit that entry's masks from the next boundary.
    """
    masks = masks_from_tape(tape, leaves, chain)
    owner = {id(leaves[key].node): key for key in chain
             if leaves[key].node is not None}
    for out_key in chain:
        produced = next_state.get(out_key)
        if isinstance(produced, ADArray) and produced.node is not None:
            in_key = owner.get(id(produced.node))
            if in_key is not None:
                inherited = prev[out_key]
                masks[in_key].read |= inherited.read
                masks[in_key].moved |= inherited.moved
        # a derived or constant next-state entry severs the chain: reads of
        # it in later iterations never reach this boundary's leaf, exactly
        # as on the monolithic tape
    return masks


# -- plan-derived transfer (the replay path) --------------------------------

class PlanActivityTransfer:
    """Static activity transfer of one compiled plan's segment.

    ``read``/``moved`` hold, per chain key, the mask this segment
    contributes on its own; ``passes`` maps each next-state chain key that
    is an identity pass-through of a leaf back to that leaf's key.  Derived
    once per plan (cached on the plan) and applied per replay by two mask
    copies plus the pass-through ORs -- no tracing, no graph walk.
    """

    __slots__ = ("read", "moved", "passes")

    def __init__(self, read: dict[str, np.ndarray],
                 moved: dict[str, np.ndarray],
                 passes: dict[str, str]) -> None:
        self.read = read
        self.moved = moved
        self.passes = passes


def plan_transfer(plan) -> PlanActivityTransfer:
    """Derive (and cache) a plan's activity transfer from its structure.

    Walks the plan's typed IR (:class:`repro.ad.ir.PlanIR`) exactly as
    :func:`read_mask` walks a tape: every instruction whose parents include
    a watched leaf slot dispatches on its spec kind through the same
    category rules the tape walk applies to op names.  The index
    expressions and traced-operand roles needed for
    ``getitem``/``index_update``/``index_add`` are all present in the specs
    as plain data.  The walk covers the **full** instruction list -- dead
    instructions the optimisation passes skip at execution time still
    touched their operands in the traced program, so they contribute to
    the masks identically in ``plan_optimize="fuse"`` and ``"off"``.
    """
    cached = getattr(plan, "_activity_transfer", None)
    if cached is not None:
        return cached

    ir = plan.ir
    owner = {slot: key for key, slot in zip(ir.watch, ir.leaf_slots)}
    read = {key: np.zeros(ir.instrs[slot].shape, dtype=bool)
            for key, slot in zip(ir.watch, ir.leaf_slots)}
    moved = {key: np.zeros(ir.instrs[slot].shape, dtype=bool)
             for key, slot in zip(ir.watch, ir.leaf_slots)}

    for instr in ir.instrs:
        spec, parents = instr.spec, instr.parents
        kind = instr.kind
        if kind == "leaf":
            continue
        for pos, parent in enumerate(parents):
            key = owner.get(parent)
            if key is None:
                continue
            shape = ir.instrs[parent].shape
            if kind == "getitem":
                read[key] |= _region_from_index(shape, spec[1])
            elif kind in ("index_update", "index_add"):
                # spec fields: (kind, idx, a_traced, b_traced, ...); the
                # parents tuple lists the traced operands in (target, value)
                # order, so the role follows from the position -- the same
                # alignment Node.meta["roles"] records for the tape walk
                roles = (("target",) if spec[2] else ()) \
                    + (("value",) if spec[3] else ())
                role = roles[pos]
                if kind == "index_update":
                    if role == "target":
                        moved[key] |= ~_region_from_index(shape, spec[1])
                    else:
                        moved[key][...] = True
                else:  # index_add
                    if role == "target":
                        moved[key][...] = True
                    else:
                        read[key][...] = True
            elif kind in SPEC_CONSUMING:
                read[key][...] = True
            elif kind in SPEC_MOVEMENT:
                moved[key][...] = True
            else:  # unknown spec kind: be conservative, like the tape walk
                read[key][...] = True

    passes: dict[str, str] = {}
    if ir.kind == "step":
        for out_key in ir.watch:
            slot = ir.seed_slots.get(out_key)
            if slot is not None:
                in_key = owner.get(slot)
                if in_key is not None:
                    passes[out_key] = in_key

    transfer = PlanActivityTransfer(read, moved, passes)
    plan._activity_transfer = transfer
    return transfer


def replay_step_masks(plan, prev: Mapping[str, "ActivityResult"]
                      ) -> dict[str, "ActivityResult"]:
    """Apply a step plan's transfer: segment masks + pass-through folds."""
    transfer = plan_transfer(plan)
    masks = {key: ActivityResult(key, transfer.read[key].copy(),
                                 transfer.moved[key].copy())
             for key in plan.watch}
    for out_key, in_key in transfer.passes.items():
        inherited = prev[out_key]
        masks[in_key].read |= inherited.read
        masks[in_key].moved |= inherited.moved
    return masks


def replay_output_masks(plan) -> dict[str, "ActivityResult"]:
    """Apply an output plan's transfer (the chain's seed: nothing to fold)."""
    transfer = plan_transfer(plan)
    return {key: ActivityResult(key, transfer.read[key].copy(),
                                transfer.moved[key].copy())
            for key in plan.watch}


# -- the segmented driver ---------------------------------------------------

def segmented_read_masks(bench, state: Mapping[str, Any],
                         watch: Sequence[str] | None = None,
                         steps: int | None = None,
                         stats=None,
                         snapshot_schedule: str | None = None,
                         snapshot_budget: int | None = None,
                         spill_dir: str | Path | None = None,
                         trace_cache: str | None = None,
                         plan_cache=None,
                         plan_optimize: str | None = None,
                         executor: str | None = None
                         ) -> dict[str, "ActivityResult"]:
    """Activity masks of the restart, one iteration's tape at a time.

    Drop-in replacement for the monolithic ``traced_restart`` +
    :func:`read_masks` pair with bitwise-identical results: traces (or
    plan-replays) one iteration per segment and composes the per-segment
    masks across boundaries via :func:`chain_step_masks`, so peak tape
    memory is O(1 iteration) and the sweep inherits every snapshot schedule
    and the trace-once/replay-many plan cache of the gradient path.

    Parameters mirror :func:`repro.ad.segmented.segmented_gradients`
    (``snapshot_schedule``/``snapshot_budget``/``spill_dir`` select the
    boundary retention policy, ``trace_cache="plan"`` replays compiled
    transfers, ``plan_cache`` shares plans across analyses,
    ``plan_optimize``/``executor`` configure how a freshly created cache
    lowers and runs its plans -- ignored when ``plan_cache`` is supplied);
    ``stats`` additionally collects the activity telemetry fields of
    :class:`~repro.ad.segmented.SweepStats`.

    Returns a dict mapping each watched key to its
    :class:`ActivityResult`.  Like the gradient sweep, only floating-point
    state entries are chained; a watched non-float entry comes back with
    all-False masks (the analyzer routes integer variables to rules, never
    here).
    """
    from .plan import (DEFAULT_EXECUTOR, DEFAULT_PLAN_OPTIMIZE,
                       DEFAULT_TRACE_CACHE, TRACE_CACHES, PlanCache)
    from .schedule import DEFAULT_SNAPSHOT_SCHEDULE, make_schedule, \
        snapshot_state
    from .segmented import _default_steps, float_state_keys

    if snapshot_schedule is None:
        snapshot_schedule = DEFAULT_SNAPSHOT_SCHEDULE
    if trace_cache is None:
        trace_cache = DEFAULT_TRACE_CACHE
    if plan_optimize is None:
        plan_optimize = DEFAULT_PLAN_OPTIMIZE
    if executor is None:
        executor = DEFAULT_EXECUTOR

    for hook in ("traced_step", "traced_output"):
        if not callable(getattr(bench, hook, None)):
            raise TypeError(
                f"benchmark {getattr(bench, 'name', bench)!r} does not "
                f"expose {hook}(); the segmented sweep needs the "
                f"per-iteration tracing API (use sweep='monolithic')")

    state = {key: value_of(value) for key, value in state.items()}
    if watch is None:
        watch = bench.default_watch_keys() if callable(
            getattr(bench, "default_watch_keys", None)) \
            else float_state_keys(state)
    watch = list(watch)
    for key in watch:
        if key not in state:
            raise KeyError(f"cannot watch unknown state entry {key!r}")

    if steps is None:
        steps = _default_steps(bench, state)
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if trace_cache not in TRACE_CACHES:
        raise ValueError(f"unknown trace_cache {trace_cache!r}; "
                         f"choose from {TRACE_CACHES}")

    # chain every float entry, not just the requested keys: an identity
    # pass-through may run via an unwatched auxiliary (see segmented's docs)
    chain = float_state_keys(state)

    planner = out_planner = cache = plan_base = None
    if trace_cache == "plan":
        cache = plan_cache if plan_cache is not None \
            else PlanCache(plan_optimize=plan_optimize, executor=executor)
        plan_base = cache.counters()
        planner = cache.planner(bench, "step", chain)
        out_planner = cache.planner(bench, "output", chain)
    advance = planner.advance if planner is not None \
        else (lambda s: bench.run(s, 1))

    schedule = make_schedule(snapshot_schedule, steps=steps,
                             advance=advance,
                             budget=snapshot_budget, spill_dir=spill_dir,
                             bench=bench)
    try:
        # -- forward pass: schedule-owned snapshots at every boundary ------
        current = snapshot_state(state)
        schedule.record(0, current)
        for t in range(1, steps + 1):
            current = advance(current)
            schedule.record(t, current)
        del current

        # -- output segment: the chain's seed ------------------------------
        last = schedule.fetch(steps)
        if out_planner is not None:
            masks = out_planner.output_activity(last, stats=stats)
        else:
            tape, leaves, _out = bench.traced_output(last, watch=chain)
            if stats is not None:
                stats.observe(tape)
                stats.activity_retraces += 1
            masks = masks_from_tape(tape, leaves, chain)
            del tape, leaves
        if stats is not None:
            stats.activity_segments += 1
        del last

        # -- reverse walk: one iteration's masks (or replay) at a time -----
        for k in range(steps - 1, -1, -1):
            boundary = schedule.fetch(k)
            if planner is not None:
                masks = planner.step_activity(boundary, masks, stats=stats)
            else:
                tape, leaves, next_state = bench.traced_step(boundary,
                                                             watch=chain)
                if stats is not None:
                    stats.observe(tape)
                    stats.activity_retraces += 1
                masks = chain_step_masks(tape, leaves, next_state, chain,
                                         masks)
                del tape, leaves, next_state
            if stats is not None:
                stats.activity_segments += 1
            del boundary

        if stats is not None:
            # the resident mask payload is fixed for the whole walk: one
            # read + one moved mask per chained key
            stats.activity_peak_mask_nbytes = max(
                stats.activity_peak_mask_nbytes,
                sum(res.read.nbytes + res.moved.nbytes
                    for res in masks.values()))
    finally:
        if stats is not None:
            stats.observe_schedule(schedule)
            stats.trace_cache = trace_cache
            if cache is not None:
                stats.observe_plan(cache, since=plan_base)
        schedule.close()

    def _empty(key: str) -> ActivityResult:
        shape = np.shape(state[key])
        return ActivityResult(key, np.zeros(shape, dtype=bool),
                              np.zeros(shape, dtype=bool))

    return {key: masks[key] if key in masks else _empty(key)
            for key in watch}
