"""Typed instruction IR for compiled replay plans.

The middle layer of the capture -> IR -> passes -> executor pipeline
(:mod:`repro.ad.plan` captures, :mod:`repro.ad.passes` optimises,
:mod:`repro.ad.exec` runs).  A :class:`PlanIR` is a *typed, validated,
serialisable* description of one captured program: a flat list of
:class:`Instr` in topological (slot) order plus the program-level wiring
(leaf slots, seed slots, output slot, next-state assembly rules).

Keeping the IR as plain data -- no closures, no numpy scalars hidden in
tuples -- is what allows the downstream layers to stay honest:

* the optimisation passes can reason about producers/consumers without
  executing anything;
* the activity transfer (:mod:`repro.ad.activity`) derives read/move masks
  from the same instruction list the executor runs, so the two can never
  drift apart;
* a plan can be round-tripped through :func:`to_payload` /
  :func:`from_payload` (dict-of-JSON-plus-tagged-arrays), which pins the
  "serialisable" claim in the tests and opens the door to cross-process
  plan shipping later.

Slot numbering is **identical** to the captured tape's node numbering and
is never renumbered by any pass: the monolithic activity walk and the
dead-slot analysis both key off original slot indices, so eliminating an
instruction removes it from the executable list while every surviving
reference stays stable.
"""

from __future__ import annotations

import base64
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

__all__ = ["Instr", "PlanIR", "lower_program", "validate_ir",
           "to_payload", "from_payload", "IRValidationError"]


class IRValidationError(ValueError):
    """A structurally inconsistent :class:`PlanIR`."""


class Instr:
    """One typed instruction: ``slot <- kind(parents...; spec)``.

    Attributes
    ----------
    slot:
        Output slot (== the captured tape node index).
    kind:
        Spec kind (``"ewbinary"``, ``"leaf"``, ``"reshape"``, ...); the key
        into the executor's emitter table.
    parents:
        Input slots, in the operand order the emitter expects.
    spec:
        The full captured spec tuple (kind first), carrying constants and
        geometry decisions.  Opaque to the IR, typed by ``kind``.
    shape, dtype:
        Output geometry (dtype as a numpy dtype str, e.g. ``"<f8"``).
    """

    __slots__ = ("slot", "kind", "parents", "spec", "shape", "dtype")

    def __init__(self, slot: int, kind: str, parents: tuple[int, ...],
                 spec: tuple, shape: tuple[int, ...], dtype: str) -> None:
        self.slot = slot
        self.kind = kind
        self.parents = parents
        self.spec = spec
        self.shape = shape
        self.dtype = dtype

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Instr({self.slot}, {self.kind!r}, parents={self.parents}, "
                f"shape={self.shape})")


class PlanIR:
    """One lowered program: typed instructions plus program wiring.

    Attributes
    ----------
    kind:
        ``"step"`` or ``"output"`` (which replay entry points apply).
    n_probes:
        Probe-batch count of the captured trace (``None`` = unbatched).
    watch:
        The chained state keys, in sweep order.
    leaf_slots:
        ``watch[i]`` feeds ``leaf_slots[i]``.
    instrs:
        All instructions in slot order, **including** leaves and dead
        slots; ``instrs[i].slot == i`` always holds.
    out_slot:
        Traced scalar output slot (output kind; ``None`` = untraced).
    seed_slots:
        Chain key -> producing slot (step kind; ``None`` = untraced entry).
    concrete:
        Next-state assembly rules of the concrete replay (``None`` =
        concrete replay unsafe), verbatim from ``plan._concrete_rules``.
    """

    __slots__ = ("kind", "n_probes", "watch", "leaf_slots", "instrs",
                 "out_slot", "seed_slots", "concrete")

    def __init__(self, kind: str, n_probes: int | None,
                 watch: tuple[str, ...], leaf_slots: tuple[int, ...],
                 instrs: list[Instr], out_slot: int | None,
                 seed_slots: dict[str, int | None],
                 concrete: list[tuple] | None) -> None:
        self.kind = kind
        self.n_probes = n_probes
        self.watch = watch
        self.leaf_slots = leaf_slots
        self.instrs = instrs
        self.out_slot = out_slot
        self.seed_slots = seed_slots
        self.concrete = concrete

    @property
    def n_slots(self) -> int:
        """Total slot count (== captured tape length)."""
        return len(self.instrs)

    def consumers(self) -> list[list[int]]:
        """Per-slot list of consuming instruction slots (in slot order)."""
        uses: list[list[int]] = [[] for _ in range(self.n_slots)]
        for instr in self.instrs:
            for p in instr.parents:
                uses[p].append(instr.slot)
        return uses


def lower_program(program, concrete: list[tuple] | None) -> PlanIR:
    """Lower one agreed :class:`~repro.ad.plan.CaptureProgram` to IR."""
    instrs = [Instr(slot, node.spec[0], node.parents, node.spec,
                    node.shape, node.dtype)
              for slot, node in enumerate(program.nodes)]
    seed_slots: dict[str, int | None] = {}
    if program.kind == "step":
        for key in program.watch:
            tag, payload = program.out_entries.get(key, ("const", None))
            seed_slots[key] = payload if tag == "slot" else None
    ir = PlanIR(program.kind, program.n_probes, tuple(program.watch),
                tuple(program.leaf_slots), instrs, program.out_slot,
                seed_slots, concrete)
    validate_ir(ir)
    return ir


def validate_ir(ir: PlanIR) -> None:
    """Raise :class:`IRValidationError` on structural inconsistencies.

    Checks exactly the invariants the passes and executors rely on: dense
    slot numbering, topological parent order (single assignment comes for
    free from density), leaf integrity, and in-range program wiring.
    """
    n = ir.n_slots
    if ir.kind not in ("step", "output"):
        raise IRValidationError(f"unknown program kind {ir.kind!r}")
    if len(ir.watch) != len(ir.leaf_slots):
        raise IRValidationError(
            f"{len(ir.watch)} watch keys but {len(ir.leaf_slots)} leaf slots")
    leaf_set = set(ir.leaf_slots)
    for i, instr in enumerate(ir.instrs):
        if instr.slot != i:
            raise IRValidationError(
                f"instruction {i} declares slot {instr.slot} "
                f"(slots must be dense and ordered)")
        if instr.spec[0] != instr.kind:
            raise IRValidationError(
                f"slot {i}: kind {instr.kind!r} disagrees with spec tag "
                f"{instr.spec[0]!r}")
        if instr.kind == "leaf":
            if instr.parents:
                raise IRValidationError(f"leaf slot {i} has parents")
        elif i in leaf_set:
            raise IRValidationError(
                f"slot {i} is a watched leaf but has kind {instr.kind!r}")
        for p in instr.parents:
            if not 0 <= p < i:
                raise IRValidationError(
                    f"slot {i} consumes slot {p}, violating topological "
                    f"order")
    for slot in ir.leaf_slots:
        if not 0 <= slot < n:
            raise IRValidationError(f"leaf slot {slot} out of range")
    if ir.out_slot is not None and not 0 <= ir.out_slot < n:
        raise IRValidationError(f"out slot {ir.out_slot} out of range")
    for key, slot in ir.seed_slots.items():
        if slot is not None and not 0 <= slot < n:
            raise IRValidationError(
                f"seed slot {slot} of chain key {key!r} out of range")


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------
#
# Spec payloads hold python scalars, tuples, slices, strings, None and
# (rarely) ndarrays / numpy scalars.  Everything is encoded into a tagged
# JSON-compatible tree; ndarrays go through base64 of the raw bytes, which
# keeps the round trip bitwise (-0.0 and NaN payloads survive).

def _encode(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # NaN/inf are not valid JSON scalars; tag every float so the
        # decoder can rebuild non-finite and signed-zero values bitwise
        return {"__t": "f", "v": np.float64(obj).tobytes().hex()}
    if isinstance(obj, np.ndarray):
        return {"__t": "nd", "dtype": obj.dtype.str,
                "shape": list(obj.shape),
                "data": base64.b64encode(
                    np.ascontiguousarray(obj).tobytes()).decode("ascii")}
    if isinstance(obj, np.generic):
        return {"__t": "ns", "dtype": obj.dtype.str,
                "data": base64.b64encode(obj.tobytes()).decode("ascii")}
    if isinstance(obj, tuple):
        return {"__t": "t", "v": [_encode(x) for x in obj]}
    if isinstance(obj, list):
        return {"__t": "l", "v": [_encode(x) for x in obj]}
    if isinstance(obj, slice):
        return {"__t": "sl", "v": [_encode(obj.start), _encode(obj.stop),
                                   _encode(obj.step)]}
    if isinstance(obj, dict):
        return {"__t": "d", "v": [[_encode(k), _encode(v)]
                                  for k, v in obj.items()]}
    if obj is Ellipsis:
        # getitem specs use ``...`` for trailing-axis selections
        return {"__t": "e"}
    raise TypeError(f"cannot serialise spec payload of type {type(obj)!r}")


def _decode(obj: Any) -> Any:
    if not isinstance(obj, dict):
        return obj
    tag = obj["__t"]
    if tag == "f":
        return float(np.frombuffer(bytes.fromhex(obj["v"]),
                                   dtype=np.float64)[0])
    if tag == "nd":
        arr = np.frombuffer(base64.b64decode(obj["data"]),
                            dtype=np.dtype(obj["dtype"]))
        return arr.reshape(tuple(obj["shape"])).copy()
    if tag == "ns":
        return np.frombuffer(base64.b64decode(obj["data"]),
                             dtype=np.dtype(obj["dtype"]))[0]
    if tag == "t":
        return tuple(_decode(x) for x in obj["v"])
    if tag == "l":
        return [_decode(x) for x in obj["v"]]
    if tag == "sl":
        return slice(*(_decode(x) for x in obj["v"]))
    if tag == "d":
        return {_decode(k): _decode(v) for k, v in obj["v"]}
    if tag == "e":
        return Ellipsis
    raise ValueError(f"unknown payload tag {tag!r}")


def to_payload(ir: PlanIR) -> dict:
    """JSON-compatible dict encoding of ``ir`` (bitwise round trip)."""
    return {
        "version": 1,
        "kind": ir.kind,
        "n_probes": ir.n_probes,
        "watch": list(ir.watch),
        "leaf_slots": list(ir.leaf_slots),
        "out_slot": ir.out_slot,
        "seed_slots": [[key, slot] for key, slot in ir.seed_slots.items()],
        "concrete": None if ir.concrete is None
        else [_encode(tuple(rule)) for rule in ir.concrete],
        "instrs": [{"kind": instr.kind,
                    "parents": list(instr.parents),
                    "spec": _encode(instr.spec),
                    "shape": list(instr.shape),
                    "dtype": instr.dtype}
                   for instr in ir.instrs],
    }


def from_payload(payload: Mapping[str, Any]) -> PlanIR:
    """Rebuild a validated :class:`PlanIR` from :func:`to_payload` output."""
    if payload.get("version") != 1:
        raise ValueError(f"unknown plan IR payload version "
                         f"{payload.get('version')!r}")
    instrs = [Instr(slot, rec["kind"], tuple(rec["parents"]),
                    _decode(rec["spec"]), tuple(rec["shape"]), rec["dtype"])
              for slot, rec in enumerate(payload["instrs"])]
    concrete = payload["concrete"]
    if concrete is not None:
        concrete = [tuple(_decode(rule)) for rule in concrete]
    ir = PlanIR(payload["kind"], payload["n_probes"],
                tuple(payload["watch"]), tuple(payload["leaf_slots"]),
                instrs, payload["out_slot"],
                {key: slot for key, slot in payload["seed_slots"]},
                concrete)
    validate_ir(ir)
    return ir
