"""Pluggable snapshot schedules for the segmented sweeps.

The segmented sweeps (:mod:`repro.ad.segmented`, :mod:`repro.ad.probes`,
and the chained activity analysis of
:func:`repro.ad.activity.segmented_read_masks` -- all three share this
module unchanged) bound the *tape* to one iteration, but they still have to
remember the concrete state at every main-loop boundary so each segment can
be re-traced during the reverse walk.  Stored naively that costs O(steps x state) memory
-- the next cap on analysable problem sizes after the tape itself.  This
module makes the retention policy pluggable:

``"all"`` (the default)
    Keep every boundary snapshot in memory.  Fastest reverse walk, memory
    O(steps x state) -- exactly the original behaviour.

``"binomial"``
    Griewank & Walther's *revolve* schedule: keep only O(log steps)
    snapshots in memory -- placed by the exact binomial tables
    (:func:`optimal_replay_cost`) -- and recompute the missing boundaries
    forward from the nearest kept one during the reverse walk, re-filling
    freed slots with the binomial splits of the gap being replayed.
    Memory O(budget x state) for a budget that defaults to ~log2(steps);
    the replay work meets the revolve optimum for the budget and is
    counted in the schedule's ``recomputed_steps`` telemetry (surfaced
    through :class:`~repro.ad.segmented.SweepStats`).

``"spill"``
    Write every boundary through the :mod:`repro.ckpt` writer to a scratch
    directory and read it back (through the :mod:`repro.ckpt` reader) when
    the reverse walk needs it.  Resident memory is O(1) in the step count
    -- one fetched snapshot plus the background write queue's bounded
    copies -- and disk holds the rest.  Truncated or missing spill files are detected by the
    container format's size checks and raised as
    :class:`~repro.ckpt.format.CheckpointFormatError` -- never deserialised
    into garbage -- and the scratch directory is removed on :meth:`close`
    (the sweeps call it from a ``finally`` block, so cleanup happens on
    success and on exception alike).

Access protocol (what the sweeps guarantee and the policies exploit):
:meth:`~SnapshotSchedule.record` is called once per boundary ``k = 0 ..
steps`` in increasing order during the forward pass; :meth:`fetch` is called
once per boundary in **strictly decreasing** order (``steps`` first for the
output segment, then ``steps-1 .. 0``); :meth:`close` is always called
last.  Because access is strictly decreasing, a fetched boundary -- and
every boundary above it -- is dead and its slot can be reused.

All three policies hand out snapshots holding the *same bits* the forward
pass produced (copies for "all"/"binomial", a byte-exact container
round-trip for "spill"; "binomial" recomputes with the same concrete numpy
calls), so the chained gradients are bitwise-identical across schedules --
pinned for all eight NPB ports by ``tests/ad/test_schedule.py``.

Every snapshot is a *real copy* of the state (:func:`snapshot_state`): a
benchmark whose ``run`` mutates arrays in place must not be able to corrupt
earlier boundaries through aliasing, and a kept or spilled snapshot has to
own its buffers anyway.
"""

from __future__ import annotations

import math
import queue
import shutil
import tempfile
import threading
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from .tensor import ADArray, value_of

__all__ = [
    "SNAPSHOT_SCHEDULES",
    "DEFAULT_SNAPSHOT_SCHEDULE",
    "SnapshotSchedule",
    "BinomialSnapshots",
    "SpillSnapshots",
    "make_schedule",
    "snapshot_state",
    "state_nbytes",
    "default_snapshot_budget",
    "optimal_replay_cost",
]

#: recognised snapshot-retention policies of the segmented sweep
SNAPSHOT_SCHEDULES = ("all", "binomial", "spill")

#: the policy used when none is requested (the original behaviour)
DEFAULT_SNAPSHOT_SCHEDULE = "all"


def snapshot_state(state: Mapping[str, Any]) -> dict[str, Any]:
    """Deep copy of a concrete state dict.

    Array entries (float *and* integer -- an in-place kernel may mutate
    either) are copied; scalars are immutable and pass through *unchanged*
    (a Python ``int`` stays an ``int``, never a 0-d array).  AD wrappers
    are stripped, so the snapshot is always plain numpy data.
    """
    out: dict[str, Any] = {}
    for key, val in state.items():
        if isinstance(val, ADArray):
            val = val.value
        if isinstance(val, np.ndarray):
            out[key] = np.array(val, copy=True)
        else:
            out[key] = val
    return out


def state_nbytes(state: Mapping[str, Any]) -> int:
    """Bytes of array/scalar payload one state snapshot holds resident."""
    total = 0
    for val in state.values():
        total += np.asarray(value_of(val)).nbytes
    return total


def default_snapshot_budget(steps: int) -> int:
    """In-memory snapshot budget of the binomial schedule: O(log steps)."""
    return max(2, int(math.ceil(math.log2(steps + 1))) + 1)


@lru_cache(maxsize=None)
def optimal_replay_cost(length: int, slots: int) -> int:
    """Minimal forward replays to serve one segment's reverse fetches.

    The segment spans ``length`` boundaries above a stored base; every
    boundary strictly between base and top is fetched once in decreasing
    order (the top itself is handed out by the caller), and ``slots``
    snapshots may be stored inside the segment while replaying.  This is
    the Griewank-Walther binomial checkpointing optimum, expressed as the
    dynamic program their closed form solves:

    ``cost(l, c) = min over m of  m + cost(l - m, c - 1) + cost(m, c)``

    -- advance ``m`` steps to place the next snapshot, reverse the upper
    part with one slot fewer, then the lower part with the slot back.
    ``tests/ad/test_schedule.py`` pins the DP against the closed-form
    binomial counts ``r*l - beta(c + 1, r - 1)``.
    """
    if length <= 1:
        return 0
    if slots <= 0:
        # no interior snapshots: every fetch replays from the base
        return length * (length - 1) // 2
    best = None
    for m in range(1, length):
        cost = m + optimal_replay_cost(length - m, slots - 1) \
            + optimal_replay_cost(m, slots)
        if best is None or cost < best:
            best = cost
    return best


@lru_cache(maxsize=None)
def _optimal_split(length: int, slots: int) -> int:
    """Offset of the next snapshot inside a ``length``-step segment.

    The smallest argmin of the :func:`optimal_replay_cost` recursion;
    ``0`` when no snapshot should (or can) be placed.
    """
    if length <= 1 or slots <= 0:
        return 0
    best, best_m = None, 0
    for m in range(1, length):
        cost = m + optimal_replay_cost(length - m, slots - 1) \
            + optimal_replay_cost(m, slots)
        if best is None or cost < best:
            best, best_m = cost, m
    return best_m


@lru_cache(maxsize=None)
def _forward_plan(length: int, budget: int) -> tuple[int, tuple[int, ...]]:
    """Optimal forward-pass snapshot chain and its total replay cost.

    The forward pass stores snapshots for free as it passes every
    boundary, so its placement problem differs from the in-replay split:
    chain element ``i`` (counted from the base) leaves the segment above
    it ``budget - 2 - i`` free replay slots, and up to ``budget - 3``
    interior elements may be placed.  Returns ``(total_replays, chain)``
    with chain offsets ascending from the base -- together with the
    :func:`_optimal_split` refills this meets the exact protocol optimum
    (pinned against an exhaustive search in ``tests/ad/test_schedule.py``).
    """

    @lru_cache(maxsize=None)
    def best(l: int, i: int) -> tuple[int, int]:
        free = budget - 2 - i
        cost, split = optimal_replay_cost(l, free), 0
        if i < budget - 3:
            for m in range(1, l):
                c = optimal_replay_cost(m, free) + best(l - m, i + 1)[0]
                if c < cost:
                    cost, split = c, m
        return cost, split

    chain: list[int] = []
    remaining, i, base = length, 0, 0
    total = best(length, 0)[0]
    while True:
        split = best(remaining, i)[1]
        if split <= 0:
            break
        base += split
        chain.append(base)
        remaining -= split
        i += 1
    return total, tuple(chain)


class SnapshotSchedule:
    """Keep-everything boundary store (policy ``"all"``) and policy base.

    Subclasses override :meth:`record` / :meth:`fetch` to retain fewer
    snapshots; the telemetry counters below are maintained by the shared
    ``_keep``/``_drop`` helpers so every policy reports through the same
    meter (:meth:`repro.ad.segmented.SweepStats.observe_schedule`).

    Attributes
    ----------
    peak_snapshots:
        Largest number of simultaneously resident in-memory snapshots.
    peak_snapshot_nbytes:
        Largest resident in-memory snapshot payload, in bytes.
    recomputed_steps:
        Forward iterations re-run to rebuild missing boundaries (binomial).
    spilled_nbytes:
        Bytes written to the spill scratch directory (spill).
    """

    policy = "all"

    def __init__(self, steps: int) -> None:
        self.steps = int(steps)
        self._kept: dict[int, dict[str, Any]] = {}
        self._resident_nbytes = 0
        self.peak_snapshots = 0
        self.peak_snapshot_nbytes = 0
        self.recomputed_steps = 0
        self.spilled_nbytes = 0

    # -- shared retention helpers --------------------------------------
    def _keep(self, k: int, state: Mapping[str, Any]) -> None:
        snap = snapshot_state(state)
        self._kept[k] = snap
        self._resident_nbytes += state_nbytes(snap)
        self.peak_snapshots = max(self.peak_snapshots, len(self._kept))
        self.peak_snapshot_nbytes = max(self.peak_snapshot_nbytes,
                                        self._resident_nbytes)

    def _drop(self, k: int) -> None:
        snap = self._kept.pop(k, None)
        if snap is not None:
            self._resident_nbytes -= state_nbytes(snap)

    def _take(self, k: int) -> dict[str, Any]:
        snap = self._kept.pop(k)
        self._resident_nbytes -= state_nbytes(snap)
        return snap

    def _drop_above(self, k: int) -> None:
        # strictly decreasing access: boundaries above ``k`` are dead
        for dead in [b for b in self._kept if b > k]:
            self._drop(dead)

    # -- the schedule protocol -----------------------------------------
    def record(self, k: int, state: Mapping[str, Any]) -> None:
        """Store the boundary-``k`` snapshot (called in increasing ``k``)."""
        self._keep(k, state)

    def fetch(self, k: int) -> dict[str, Any]:
        """Hand out boundary ``k`` (called once, in decreasing ``k``)."""
        self._drop_above(k)
        return self._take(k)

    def close(self) -> None:
        """Release every retained snapshot (and any scratch storage)."""
        self._kept.clear()
        self._resident_nbytes = 0


class BinomialSnapshots(SnapshotSchedule):
    """Revolve-optimal schedule: O(log steps) snapshots, recompute the rest.

    The forward pass keeps boundary 0, boundary ``steps`` (consumed first
    by the output segment) and the interior chain the exact
    Griewank-Walther binomial tables prescribe (:func:`optimal_replay_cost`
    / :func:`_optimal_split`).  When the reverse walk asks for a boundary
    that was not kept, the state is recomputed forward from the nearest
    kept boundary below it with ``advance``; slots freed by the walk's
    descent are re-filled with the same binomial splits of the gap being
    replayed, so the total replay count meets the revolve optimum for the
    schedule's slot accounting (pinned by ``tests/ad/test_schedule.py``)
    instead of the even-split + bisection heuristic's O(steps log steps).

    Parameters
    ----------
    steps:
        Number of main-loop boundaries minus one (boundaries ``0..steps``).
    advance:
        ``advance(state) -> state`` running exactly one concrete iteration;
        it receives a private copy and may mutate it freely.
    budget:
        Maximum number of *schedule-resident* states -- kept snapshots plus
        the replay working copy -- at any instant (>= 2); ``None`` uses
        :func:`default_snapshot_budget`.  The sweep's own forward running
        state is outside this cap (and outside the telemetry): it exists
        identically under every policy, so excluding it everywhere keeps
        cross-policy comparisons apples-to-apples.
    """

    policy = "binomial"

    def __init__(self, steps: int,
                 advance: Callable[[dict[str, Any]], dict[str, Any]],
                 budget: int | None = None) -> None:
        super().__init__(steps)
        if budget is None:
            budget = default_snapshot_budget(self.steps)
        budget = int(budget)
        if budget < 2:
            raise ValueError("snapshot budget must be at least 2 "
                             "(boundary 0 plus one working slot)")
        self.budget = budget
        self._advance = advance
        self._plan = self._placement(self.steps, budget)

    @staticmethod
    def _chain_positions(lo: int, hi: int, free: int) -> frozenset[int]:
        """Revolve-optimal snapshot chain strictly inside ``(lo, hi)``.

        The replayed gap is the tail of a segment reaching one past ``hi``
        (boundary ``hi + 1`` was consumed immediately before the miss), so
        the Griewank-Walther split is taken for length ``hi - lo + 1``;
        the recursion then descends into the *upper* part with one slot
        fewer -- exactly the nested state an optimal reverse walk holds.
        """
        keep: set[int] = set()
        while free > 0 and hi - lo > 1:
            m = _optimal_split(hi - lo + 1, free)
            if m <= 0 or lo + m >= hi:
                # a split at the consumed top boundary stores nothing useful
                break
            keep.add(lo + m)
            lo += m
            free -= 1
        return frozenset(keep)

    @staticmethod
    def _placement(steps: int, budget: int) -> frozenset[int]:
        """Boundaries kept during the forward pass.

        Boundary 0 (fetched last) and ``steps`` (fetched first) are always
        kept; up to ``budget - 3`` further slots hold the chain
        :func:`_forward_plan` prescribes.  One slot stays unplaced so the
        topmost gap has a free refill slot the moment ``steps`` pops.
        """
        if steps <= 0:
            return frozenset({0, steps})
        return frozenset({0, steps} | set(_forward_plan(steps, budget)[1]))

    def _refill_positions(self, j: int, k: int, free: int) -> frozenset[int]:
        """Revolve-optimal refill of the replayed gap ``(j, k)``.

        ``k`` itself is excluded: it is handed to the caller and dead right
        after, so storing it would waste a slot.
        """
        return self._chain_positions(j, k, min(free, k - j - 1))

    def record(self, k: int, state: Mapping[str, Any]) -> None:
        if k in self._plan:
            self._keep(k, state)

    def fetch(self, k: int) -> dict[str, Any]:
        self._drop_above(k)
        if k in self._kept:
            return self._take(k)
        j = max(b for b in self._kept if b < k)
        # one budget slot stays reserved for the replay's working copy, so
        # kept snapshots + the in-flight state never exceed the budget
        free = self.budget - len(self._kept) - 1
        targets = self._refill_positions(j, k, free)
        current = snapshot_state(self._kept[j])
        for t in range(j + 1, k + 1):
            current = self._advance(current)
            self.recomputed_steps += 1
            if t in targets:
                self._keep(t, current)
            # meter the working copy alongside the kept set (the spill
            # schedule meters its handed-out snapshot the same way)
            self.peak_snapshots = max(self.peak_snapshots,
                                      len(self._kept) + 1)
            self.peak_snapshot_nbytes = max(
                self.peak_snapshot_nbytes,
                self._resident_nbytes + state_nbytes(current))
        # ``current`` is private to this replay (seeded from a copy, and
        # ``_keep`` stores copies), so it can be handed out directly
        return current


class SpillSnapshots(SnapshotSchedule):
    """On-disk schedule: boundaries round-trip through :mod:`repro.ckpt`.

    Every recorded boundary is written as a *full* checkpoint container to a
    private scratch directory (a fresh ``mkdtemp`` inside ``directory``, or
    the system temp dir); :meth:`fetch` reads it back through the checkpoint
    reader and deletes the file, so resident memory is bounded by one
    fetched snapshot plus the bounded write queue's in-flight copies
    (``_QUEUE_DEPTH + 2``; exactly one snapshot with ``async_writes=False``)
    and at most ``steps + 1`` containers live on disk.  :meth:`close`
    removes the whole scratch directory.

    A truncated, corrupted or missing spill file surfaces as
    :class:`~repro.ckpt.format.CheckpointFormatError` (the container format
    validates magic, header and per-record byte counts), never as silently
    wrong state.

    Scalar round-trip convention: boundaries are materialised with the
    reader's ``exact_scalars`` mode -- 0-d integer records come back as
    ``int`` (convenient for loop counters, and exact), every other 0-d
    record as a numpy scalar of its *declared* dtype with the exact stored
    bits.  The reader's default float64 coercion would make a float32
    scalar trace at a different precision than the in-memory schedules
    (and retype bools), breaking cross-schedule bitwise identity.

    Asynchronous writes: by default (``async_writes=True``) the container
    writes run on a single background worker thread fed by a bounded
    queue, overlapping the spill I/O with the next segment's concrete
    forward step instead of stalling between segments.  ``record`` hands
    the worker a private deep copy, so the caller may mutate its state
    freely; the first ``fetch`` joins the queue before reading anything
    back, and a failed write re-raises its
    :class:`~repro.ckpt.format.CheckpointFormatError` at the next
    ``record``/``fetch``/``close`` -- the same error type, just deferred
    to the synchronisation point.
    """

    policy = "spill"

    #: bounded write queue: caps the extra resident copies async mode holds
    _QUEUE_DEPTH = 4

    def __init__(self, steps: int, directory: str | Path | None = None,
                 bench: Any = None, async_writes: bool = True) -> None:
        from repro.ckpt.format import CheckpointFormatError

        super().__init__(steps)
        self._bench = bench
        try:
            if directory is not None:
                Path(directory).mkdir(parents=True, exist_ok=True)
            self.directory = Path(tempfile.mkdtemp(prefix="repro-spill-",
                                                   dir=directory))
        except OSError as exc:
            # construction failures are spill failures too: wrapped so
            # callers can tell them apart from unrelated OSErrors
            raise CheckpointFormatError(
                f"cannot create spill scratch directory under "
                f"{directory if directory is not None else 'the system temp dir'}: "
                f"{exc}") from exc
        self._files: dict[int, Path] = {}
        self._async = bool(async_writes)
        self._queue: queue.Queue | None = None
        self._worker: threading.Thread | None = None
        self._write_error: BaseException | None = None
        #: queued-but-unwritten copies (async) -- metered as resident;
        #: updated from both the caller and the writer thread, so the
        #: read-modify-write must be locked or the counters drift
        self._pending = 0
        self._pending_nbytes = 0
        self._pending_lock = threading.Lock()

    def _path(self, k: int) -> Path:
        return self.directory / f"boundary-{k:06d}.ckpt"

    # -- background writer ---------------------------------------------
    def _ensure_worker(self) -> None:
        if self._worker is not None:
            return
        self._queue = queue.Queue(maxsize=self._QUEUE_DEPTH)
        self._worker = threading.Thread(target=self._drain_writes,
                                        name="repro-spill-writer",
                                        daemon=True)
        self._worker.start()

    def _drain_writes(self) -> None:
        assert self._queue is not None
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                k, state, nbytes = item
                if self._write_error is None:
                    try:
                        self._write_one(k, state)
                    except BaseException as exc:  # noqa: BLE001 - deferred
                        # re-raised at the next synchronisation point;
                        # later queued writes are skipped (fail fast)
                        self._write_error = exc
                with self._pending_lock:
                    self._pending -= 1
                    self._pending_nbytes -= nbytes
            finally:
                self._queue.task_done()

    def _write_one(self, k: int, state: Mapping[str, Any]) -> None:
        from repro.ckpt.format import CheckpointFormatError
        from repro.ckpt.writer import write_full_checkpoint

        try:
            written = write_full_checkpoint(self._path(k), self._bench,
                                            state, step=k)
        except OSError as exc:
            # surface spill I/O failures under the schedule's one error
            # type, so callers can tell them apart from unrelated OSErrors
            # (e.g. an allocation failure elsewhere in the sweep)
            raise CheckpointFormatError(
                f"cannot spill boundary {k} to {self._path(k)}: "
                f"{exc}") from exc
        self._files[k] = written.path
        self.spilled_nbytes += written.nbytes

    def flush(self) -> None:
        """Wait for every queued write; re-raise a deferred write error.

        ``fetch`` and ``close`` flush implicitly; call this directly only
        to synchronise with the scratch directory from outside (tests,
        external inspection).
        """
        if self._queue is not None:
            self._queue.join()
        if self._write_error is not None:
            error, self._write_error = self._write_error, None
            raise error

    _flush = flush

    def record(self, k: int, state: Mapping[str, Any]) -> None:
        if not self._async:
            self._write_one(k, state)
            return
        self._ensure_worker()
        if self._write_error is not None:
            self._flush()
        # the worker outlives this call: hand it a private copy so the
        # caller's state (the sweep's running ``current``) stays mutable
        snap = snapshot_state(state)
        nbytes = state_nbytes(snap)
        with self._pending_lock:
            self._pending += 1
            self._pending_nbytes += nbytes
            self.peak_snapshots = max(self.peak_snapshots, self._pending)
            self.peak_snapshot_nbytes = max(self.peak_snapshot_nbytes,
                                            self._pending_nbytes)
        self._queue.put((k, snap, nbytes))

    def fetch(self, k: int) -> dict[str, Any]:
        from repro.ckpt.format import CheckpointFormatError
        from repro.ckpt.reader import read_checkpoint

        self._flush()
        for dead in [b for b in self._files if b > k]:
            self._files.pop(dead).unlink(missing_ok=True)
        path = self._files.pop(k, None)
        if path is None or not path.is_file():
            raise CheckpointFormatError(
                f"spilled snapshot of boundary {k} is missing from "
                f"{self.directory} (interrupted spill or external cleanup)")
        try:
            loaded = read_checkpoint(path)
        except OSError as exc:
            raise CheckpointFormatError(
                f"cannot read spilled boundary {k} from {path}: "
                f"{exc}") from exc
        if loaded.step != k:
            raise CheckpointFormatError(
                f"spill file {path} holds boundary {loaded.step}, "
                f"expected boundary {k}")
        # exact_scalars: the default float64 scalar coercion would retype
        # bools and narrow wider floats, breaking cross-schedule bitwise
        # identity; integer records still come back as ``int`` (exact)
        state = loaded.materialize(exact_scalars=True)
        path.unlink(missing_ok=True)
        self.peak_snapshots = max(self.peak_snapshots, 1)
        self.peak_snapshot_nbytes = max(self.peak_snapshot_nbytes,
                                        state_nbytes(state))
        return state

    def close(self) -> None:
        # join the writer before removing its target directory, and
        # re-raise a deferred write error so a failed spill can never be
        # mistaken for a clean sweep (the sweeps call close() last)
        try:
            if self._worker is not None:
                self._flush()
        finally:
            if self._queue is not None:
                self._queue.put(None)
                self._worker.join()
                self._queue = None
                self._worker = None
            super().close()
            self._files.clear()
            shutil.rmtree(self.directory, ignore_errors=True)


def make_schedule(policy: str, *, steps: int,
                  advance: Callable[[dict[str, Any]], dict[str, Any]]
                  | None = None,
                  budget: int | None = None,
                  spill_dir: str | Path | None = None,
                  bench: Any = None,
                  spill_async: bool = True) -> SnapshotSchedule:
    """Instantiate the snapshot schedule for one segmented sweep.

    Parameters
    ----------
    policy:
        One of :data:`SNAPSHOT_SCHEDULES`.
    steps:
        Number of main-loop iterations the sweep covers.
    advance:
        One-iteration concrete stepper, required by ``"binomial"`` (ignored
        by the other policies).
    budget:
        In-memory snapshot budget of ``"binomial"`` (``None`` = O(log
        steps) default); ignored by the other policies.
    spill_dir:
        Parent directory of ``"spill"``'s private scratch directory
        (``None`` = the system temp dir); ignored by the other policies.
    bench:
        Benchmark whose metadata labels the spill containers (optional).
    spill_async:
        Whether ``"spill"`` overlaps its container writes with the next
        segment on a background worker thread (the default); ``False``
        forces the synchronous writes (the pre-async behaviour, and the
        baseline the spill benchmark compares against).
    """
    if policy not in SNAPSHOT_SCHEDULES:
        raise ValueError(f"unknown snapshot schedule {policy!r}; "
                         f"choose from {SNAPSHOT_SCHEDULES}")
    if policy == "binomial":
        if advance is None:
            raise ValueError("the binomial schedule needs an advance() "
                             "stepper to recompute dropped boundaries")
        return BinomialSnapshots(steps, advance, budget=budget)
    if policy == "spill":
        return SpillSnapshots(steps, directory=spill_dir, bench=bench,
                              async_writes=spill_async)
    return SnapshotSchedule(steps)
