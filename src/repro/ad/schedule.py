"""Pluggable snapshot schedules for the segmented reverse sweep.

The segmented sweep (:mod:`repro.ad.segmented`, :mod:`repro.ad.probes`)
bounds the *tape* to one iteration, but it still has to remember the
concrete state at every main-loop boundary so each segment can be re-traced
during the reverse walk.  Stored naively that costs O(steps x state) memory
-- the next cap on analysable problem sizes after the tape itself.  This
module makes the retention policy pluggable:

``"all"`` (the default)
    Keep every boundary snapshot in memory.  Fastest reverse walk, memory
    O(steps x state) -- exactly the original behaviour.

``"binomial"``
    Griewank & Walther's *revolve* idea: keep only O(log steps) snapshots in
    memory and recompute the missing boundaries forward from the nearest
    kept one during the reverse walk, re-filling freed slots with bisection
    midpoints as the walk descends.  Memory O(budget x state) for a budget
    that defaults to ~log2(steps); the extra forward work is counted in the
    schedule's ``recomputed_steps`` telemetry (surfaced through
    :class:`~repro.ad.segmented.SweepStats`).

``"spill"``
    Write every boundary through the :mod:`repro.ckpt` writer to a scratch
    directory and read it back (through the :mod:`repro.ckpt` reader) when
    the reverse walk needs it.  Resident memory is O(1 snapshot); disk holds
    the rest.  Truncated or missing spill files are detected by the
    container format's size checks and raised as
    :class:`~repro.ckpt.format.CheckpointFormatError` -- never deserialised
    into garbage -- and the scratch directory is removed on :meth:`close`
    (the sweeps call it from a ``finally`` block, so cleanup happens on
    success and on exception alike).

Access protocol (what the sweeps guarantee and the policies exploit):
:meth:`~SnapshotSchedule.record` is called once per boundary ``k = 0 ..
steps`` in increasing order during the forward pass; :meth:`fetch` is called
once per boundary in **strictly decreasing** order (``steps`` first for the
output segment, then ``steps-1 .. 0``); :meth:`close` is always called
last.  Because access is strictly decreasing, a fetched boundary -- and
every boundary above it -- is dead and its slot can be reused.

All three policies hand out snapshots holding the *same bits* the forward
pass produced (copies for "all"/"binomial", a byte-exact container
round-trip for "spill"; "binomial" recomputes with the same concrete numpy
calls), so the chained gradients are bitwise-identical across schedules --
pinned for all eight NPB ports by ``tests/ad/test_schedule.py``.

Every snapshot is a *real copy* of the state (:func:`snapshot_state`): a
benchmark whose ``run`` mutates arrays in place must not be able to corrupt
earlier boundaries through aliasing, and a kept or spilled snapshot has to
own its buffers anyway.
"""

from __future__ import annotations

import math
import shutil
import tempfile
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from .tensor import ADArray, value_of

__all__ = [
    "SNAPSHOT_SCHEDULES",
    "DEFAULT_SNAPSHOT_SCHEDULE",
    "SnapshotSchedule",
    "BinomialSnapshots",
    "SpillSnapshots",
    "make_schedule",
    "snapshot_state",
    "state_nbytes",
    "default_snapshot_budget",
]

#: recognised snapshot-retention policies of the segmented sweep
SNAPSHOT_SCHEDULES = ("all", "binomial", "spill")

#: the policy used when none is requested (the original behaviour)
DEFAULT_SNAPSHOT_SCHEDULE = "all"


def snapshot_state(state: Mapping[str, Any]) -> dict[str, Any]:
    """Deep copy of a concrete state dict.

    Array entries (float *and* integer -- an in-place kernel may mutate
    either) are copied; scalars are immutable and pass through *unchanged*
    (a Python ``int`` stays an ``int``, never a 0-d array).  AD wrappers
    are stripped, so the snapshot is always plain numpy data.
    """
    out: dict[str, Any] = {}
    for key, val in state.items():
        if isinstance(val, ADArray):
            val = val.value
        if isinstance(val, np.ndarray):
            out[key] = np.array(val, copy=True)
        else:
            out[key] = val
    return out


def state_nbytes(state: Mapping[str, Any]) -> int:
    """Bytes of array/scalar payload one state snapshot holds resident."""
    total = 0
    for val in state.values():
        total += np.asarray(value_of(val)).nbytes
    return total


def default_snapshot_budget(steps: int) -> int:
    """In-memory snapshot budget of the binomial schedule: O(log steps)."""
    return max(2, int(math.ceil(math.log2(steps + 1))) + 1)


class SnapshotSchedule:
    """Keep-everything boundary store (policy ``"all"``) and policy base.

    Subclasses override :meth:`record` / :meth:`fetch` to retain fewer
    snapshots; the telemetry counters below are maintained by the shared
    ``_keep``/``_drop`` helpers so every policy reports through the same
    meter (:meth:`repro.ad.segmented.SweepStats.observe_schedule`).

    Attributes
    ----------
    peak_snapshots:
        Largest number of simultaneously resident in-memory snapshots.
    peak_snapshot_nbytes:
        Largest resident in-memory snapshot payload, in bytes.
    recomputed_steps:
        Forward iterations re-run to rebuild missing boundaries (binomial).
    spilled_nbytes:
        Bytes written to the spill scratch directory (spill).
    """

    policy = "all"

    def __init__(self, steps: int) -> None:
        self.steps = int(steps)
        self._kept: dict[int, dict[str, Any]] = {}
        self._resident_nbytes = 0
        self.peak_snapshots = 0
        self.peak_snapshot_nbytes = 0
        self.recomputed_steps = 0
        self.spilled_nbytes = 0

    # -- shared retention helpers --------------------------------------
    def _keep(self, k: int, state: Mapping[str, Any]) -> None:
        snap = snapshot_state(state)
        self._kept[k] = snap
        self._resident_nbytes += state_nbytes(snap)
        self.peak_snapshots = max(self.peak_snapshots, len(self._kept))
        self.peak_snapshot_nbytes = max(self.peak_snapshot_nbytes,
                                        self._resident_nbytes)

    def _drop(self, k: int) -> None:
        snap = self._kept.pop(k, None)
        if snap is not None:
            self._resident_nbytes -= state_nbytes(snap)

    def _take(self, k: int) -> dict[str, Any]:
        snap = self._kept.pop(k)
        self._resident_nbytes -= state_nbytes(snap)
        return snap

    def _drop_above(self, k: int) -> None:
        # strictly decreasing access: boundaries above ``k`` are dead
        for dead in [b for b in self._kept if b > k]:
            self._drop(dead)

    # -- the schedule protocol -----------------------------------------
    def record(self, k: int, state: Mapping[str, Any]) -> None:
        """Store the boundary-``k`` snapshot (called in increasing ``k``)."""
        self._keep(k, state)

    def fetch(self, k: int) -> dict[str, Any]:
        """Hand out boundary ``k`` (called once, in decreasing ``k``)."""
        self._drop_above(k)
        return self._take(k)

    def close(self) -> None:
        """Release every retained snapshot (and any scratch storage)."""
        self._kept.clear()
        self._resident_nbytes = 0


class BinomialSnapshots(SnapshotSchedule):
    """Revolve-style schedule: O(log steps) snapshots, recompute the rest.

    The forward pass keeps boundary 0, boundary ``steps`` (consumed first by
    the output segment) and ``budget - 2`` evenly spread interior boundaries.
    When the reverse walk asks for a boundary that was not kept, the state is
    recomputed forward from the nearest kept boundary below it with
    ``advance``; slots freed by the walk's descent are re-filled with evenly
    split positions of the gap being replayed (bisection refinement), so
    each gap is replayed O(log gap) times rather than once per contained
    boundary.

    Parameters
    ----------
    steps:
        Number of main-loop boundaries minus one (boundaries ``0..steps``).
    advance:
        ``advance(state) -> state`` running exactly one concrete iteration;
        it receives a private copy and may mutate it freely.
    budget:
        Maximum number of *schedule-resident* states -- kept snapshots plus
        the replay working copy -- at any instant (>= 2); ``None`` uses
        :func:`default_snapshot_budget`.  The sweep's own forward running
        state is outside this cap (and outside the telemetry): it exists
        identically under every policy, so excluding it everywhere keeps
        cross-policy comparisons apples-to-apples.
    """

    policy = "binomial"

    def __init__(self, steps: int,
                 advance: Callable[[dict[str, Any]], dict[str, Any]],
                 budget: int | None = None) -> None:
        super().__init__(steps)
        if budget is None:
            budget = default_snapshot_budget(self.steps)
        budget = int(budget)
        if budget < 2:
            raise ValueError("snapshot budget must be at least 2 "
                             "(boundary 0 plus one working slot)")
        self.budget = budget
        self._advance = advance
        self._plan = self._placement(self.steps, budget)

    @staticmethod
    def _placement(steps: int, budget: int) -> frozenset[int]:
        """Boundaries kept during the forward pass.

        Boundary 0 (fetched last) and ``steps`` (fetched first) are always
        kept; ``budget - 3`` further slots split the interior evenly -- the
        coarse level the reverse walk's bisection refines.  One slot stays
        unplaced: filling all of them would leave the topmost gap with zero
        free refill slots after ``steps`` pops (its replay would degrade to
        O(gap^2) instead of bisecting like every later gap).
        """
        keep = {0, steps}
        interior = budget - 3
        for i in range(1, interior + 1):
            keep.add((steps * i) // (interior + 1))
        return frozenset(keep)

    def _refill_positions(self, j: int, k: int, free: int) -> frozenset[int]:
        """Even split of the replayed gap ``(j, k)`` over ``free`` slots.

        ``k`` itself is excluded: it is handed to the caller and dead right
        after, so storing it would waste a slot.
        """
        gap = k - j
        n = min(free, gap - 1)
        if n <= 0:
            return frozenset()
        return frozenset({j + (gap * i) // (n + 1)
                          for i in range(1, n + 1)} - {j, k})

    def record(self, k: int, state: Mapping[str, Any]) -> None:
        if k in self._plan:
            self._keep(k, state)

    def fetch(self, k: int) -> dict[str, Any]:
        self._drop_above(k)
        if k in self._kept:
            return self._take(k)
        j = max(b for b in self._kept if b < k)
        # one budget slot stays reserved for the replay's working copy, so
        # kept snapshots + the in-flight state never exceed the budget
        free = self.budget - len(self._kept) - 1
        targets = self._refill_positions(j, k, free)
        current = snapshot_state(self._kept[j])
        for t in range(j + 1, k + 1):
            current = self._advance(current)
            self.recomputed_steps += 1
            if t in targets:
                self._keep(t, current)
            # meter the working copy alongside the kept set (the spill
            # schedule meters its handed-out snapshot the same way)
            self.peak_snapshots = max(self.peak_snapshots,
                                      len(self._kept) + 1)
            self.peak_snapshot_nbytes = max(
                self.peak_snapshot_nbytes,
                self._resident_nbytes + state_nbytes(current))
        # ``current`` is private to this replay (seeded from a copy, and
        # ``_keep`` stores copies), so it can be handed out directly
        return current


class SpillSnapshots(SnapshotSchedule):
    """On-disk schedule: boundaries round-trip through :mod:`repro.ckpt`.

    Every recorded boundary is written as a *full* checkpoint container to a
    private scratch directory (a fresh ``mkdtemp`` inside ``directory``, or
    the system temp dir); :meth:`fetch` reads it back through the checkpoint
    reader and deletes the file, so at most one snapshot is resident in
    memory and at most ``steps + 1`` containers on disk.  :meth:`close`
    removes the whole scratch directory.

    A truncated, corrupted or missing spill file surfaces as
    :class:`~repro.ckpt.format.CheckpointFormatError` (the container format
    validates magic, header and per-record byte counts), never as silently
    wrong state.

    Scalar round-trip convention: boundaries are materialised with the
    reader's ``exact_scalars`` mode -- 0-d integer records come back as
    ``int`` (convenient for loop counters, and exact), every other 0-d
    record as a numpy scalar of its *declared* dtype with the exact stored
    bits.  The reader's default float64 coercion would make a float32
    scalar trace at a different precision than the in-memory schedules
    (and retype bools), breaking cross-schedule bitwise identity.
    """

    policy = "spill"

    def __init__(self, steps: int, directory: str | Path | None = None,
                 bench: Any = None) -> None:
        from repro.ckpt.format import CheckpointFormatError

        super().__init__(steps)
        self._bench = bench
        try:
            if directory is not None:
                Path(directory).mkdir(parents=True, exist_ok=True)
            self.directory = Path(tempfile.mkdtemp(prefix="repro-spill-",
                                                   dir=directory))
        except OSError as exc:
            # construction failures are spill failures too: wrapped so
            # callers can tell them apart from unrelated OSErrors
            raise CheckpointFormatError(
                f"cannot create spill scratch directory under "
                f"{directory if directory is not None else 'the system temp dir'}: "
                f"{exc}") from exc
        self._files: dict[int, Path] = {}

    def _path(self, k: int) -> Path:
        return self.directory / f"boundary-{k:06d}.ckpt"

    def record(self, k: int, state: Mapping[str, Any]) -> None:
        from repro.ckpt.format import CheckpointFormatError
        from repro.ckpt.writer import write_full_checkpoint

        try:
            written = write_full_checkpoint(self._path(k), self._bench,
                                            state, step=k)
        except OSError as exc:
            # surface spill I/O failures under the schedule's one error
            # type, so callers can tell them apart from unrelated OSErrors
            # (e.g. an allocation failure elsewhere in the sweep)
            raise CheckpointFormatError(
                f"cannot spill boundary {k} to {self._path(k)}: "
                f"{exc}") from exc
        self._files[k] = written.path
        self.spilled_nbytes += written.nbytes

    def fetch(self, k: int) -> dict[str, Any]:
        from repro.ckpt.format import CheckpointFormatError
        from repro.ckpt.reader import read_checkpoint

        for dead in [b for b in self._files if b > k]:
            self._files.pop(dead).unlink(missing_ok=True)
        path = self._files.pop(k, None)
        if path is None or not path.is_file():
            raise CheckpointFormatError(
                f"spilled snapshot of boundary {k} is missing from "
                f"{self.directory} (interrupted spill or external cleanup)")
        try:
            loaded = read_checkpoint(path)
        except OSError as exc:
            raise CheckpointFormatError(
                f"cannot read spilled boundary {k} from {path}: "
                f"{exc}") from exc
        if loaded.step != k:
            raise CheckpointFormatError(
                f"spill file {path} holds boundary {loaded.step}, "
                f"expected boundary {k}")
        # exact_scalars: the default float64 scalar coercion would retype
        # bools and narrow wider floats, breaking cross-schedule bitwise
        # identity; integer records still come back as ``int`` (exact)
        state = loaded.materialize(exact_scalars=True)
        path.unlink(missing_ok=True)
        self.peak_snapshots = max(self.peak_snapshots, 1)
        self.peak_snapshot_nbytes = max(self.peak_snapshot_nbytes,
                                        state_nbytes(state))
        return state

    def close(self) -> None:
        super().close()
        self._files.clear()
        shutil.rmtree(self.directory, ignore_errors=True)


def make_schedule(policy: str, *, steps: int,
                  advance: Callable[[dict[str, Any]], dict[str, Any]]
                  | None = None,
                  budget: int | None = None,
                  spill_dir: str | Path | None = None,
                  bench: Any = None) -> SnapshotSchedule:
    """Instantiate the snapshot schedule for one segmented sweep.

    Parameters
    ----------
    policy:
        One of :data:`SNAPSHOT_SCHEDULES`.
    steps:
        Number of main-loop iterations the sweep covers.
    advance:
        One-iteration concrete stepper, required by ``"binomial"`` (ignored
        by the other policies).
    budget:
        In-memory snapshot budget of ``"binomial"`` (``None`` = O(log
        steps) default); ignored by the other policies.
    spill_dir:
        Parent directory of ``"spill"``'s private scratch directory
        (``None`` = the system temp dir); ignored by the other policies.
    bench:
        Benchmark whose metadata labels the spill containers (optional).
    """
    if policy not in SNAPSHOT_SCHEDULES:
        raise ValueError(f"unknown snapshot schedule {policy!r}; "
                         f"choose from {SNAPSHOT_SCHEDULES}")
    if policy == "binomial":
        if advance is None:
            raise ValueError("the binomial schedule needs an advance() "
                             "stepper to recompute dropped boundaries")
        return BinomialSnapshots(steps, advance, budget=budget)
    if policy == "spill":
        return SpillSnapshots(steps, directory=spill_dir, bench=bench)
    return SnapshotSchedule(steps)
