"""Reverse sweep: propagate cotangents backwards through a recorded tape.

This module provides the low-level :func:`backward` routine (operating on an
explicit :class:`~repro.ad.tape.Tape`) and the convenience functional API
:func:`grad` / :func:`value_and_grad` used throughout the tests and the
criticality analysis.

The reverse sweep visits the tape once, from the output node down to node 0,
maintaining a dictionary of gradient buffers keyed by node index.  Memory is
bounded by the live cotangents; buffers are released (popped) as soon as a
node has been processed.  Following the engine-wide convention, a watched
input element whose gradient buffer is never touched has derivative exactly
``0.0`` -- the signal the checkpoint pruning analysis looks for.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from .tape import Tape
from .tensor import ADArray, value_of

__all__ = ["backward", "backward_from_seeds", "grad", "value_and_grad",
           "gradient"]


def _run_sweep(tape: Tape, grads: dict[int, np.ndarray],
               owned: dict[int, bool], start_index: int) -> None:
    """Propagate the seeded cotangents in ``grads`` down to the leaves.

    ``grads``/``owned`` are updated in place; after the sweep they hold one
    buffer per *leaf* node that received a cotangent, with ``owned`` marking
    buffers private to this sweep (safe to hand out without copying).

    The compiled replay plans (:mod:`repro.ad.plan`) mirror this loop --
    visit order, accumulation arithmetic and the ownership discipline --
    bit for bit; a semantic change here must be reflected there (the
    plan-vs-tracer bitwise tests in ``tests/ad/test_plan.py`` catch a
    divergence).
    """
    for index in range(start_index, -1, -1):
        if index not in grads:
            continue
        g = grads.pop(index)
        g_owned = owned.pop(index, False)
        node = tape.nodes[index]
        if not node.parents:
            # leaf: stash the final gradient (and its ownership) back so
            # inputs can read it after the sweep
            grads[index] = g
            owned[index] = g_owned
            continue
        parent_grads = node.vjp(g)
        if len(parent_grads) != len(node.parents):  # pragma: no cover - guard
            raise RuntimeError(
                f"primitive {node.op!r} returned {len(parent_grads)} "
                f"cotangents for {len(node.parents)} traced parents")
        for parent, pg in zip(node.parents, parent_grads):
            pidx = parent.index
            if pidx in grads:
                if owned.get(pidx, False):
                    grads[pidx] += pg
                else:
                    grads[pidx] = grads[pidx] + pg
                    owned[pidx] = True
            else:
                grads[pidx] = pg
                owned[pidx] = False


def _collect_results(grads: dict[int, np.ndarray], owned: dict[int, bool],
                     inputs: Sequence[ADArray]) -> list[np.ndarray]:
    """Read the leaf gradients for ``inputs`` out of a finished sweep.

    Buffers that are not owned by the sweep may alias arrays captured by vjp
    closures (a primitive's saved operand, or a view of the caller's seed),
    so the caller mutating a returned gradient could corrupt a later sweep
    over the same tape; such buffers are defensively copied exactly once.
    """
    results: list[np.ndarray] = []
    for x in inputs:
        if not isinstance(x, ADArray) or x.node is None:
            raise ValueError("inputs must be traced ADArrays (use Tape.watch)")
        idx = x.node.index
        g = grads.get(idx)
        if g is None:
            g = np.zeros(x.node.shape, dtype=np.float64)
        elif not owned.get(idx, False):
            g = np.array(g, dtype=np.float64, copy=True)
            # duplicate inputs share the single defensive copy
            grads[idx] = g
            owned[idx] = True
        results.append(np.asarray(g, dtype=np.float64).reshape(x.node.shape))
    return results


def backward(tape: Tape, output: ADArray, inputs: Sequence[ADArray],
             seed: np.ndarray | float | None = None,
             strict: bool = True) -> list[np.ndarray]:
    """Run the reverse sweep and return gradients for ``inputs``.

    Parameters
    ----------
    tape:
        The tape on which ``output`` and ``inputs`` were recorded.
    output:
        Traced array whose (summed) value is differentiated.  For a faithful
        reproduction of the paper's analysis the output is the scalar
        verification quantity of an NPB kernel.
    inputs:
        Traced leaf arrays created with :meth:`Tape.watch`.
    seed:
        Initial cotangent for ``output``.  Defaults to ``1.0`` broadcast to
        the output shape, i.e. the gradient of ``sum(output)``.
    strict:
        When true, raise :class:`ValueError` if ``output`` is not traced on
        ``tape`` (e.g. the function under analysis never touched a watched
        input).

    Returns
    -------
    list of numpy.ndarray
        One gradient array per input, each with the input's shape.  Inputs
        that do not influence the output get an all-zero gradient.
    """
    if not isinstance(output, ADArray) or output.node is None:
        if strict:
            raise ValueError(
                "output is not a traced ADArray; the differentiated function "
                "never touched a watched input")
        return [np.zeros(value_of(x).shape, dtype=np.float64) for x in inputs]

    out_node = output.node
    if out_node.index >= len(tape.nodes) or tape.nodes[out_node.index] is not out_node:
        raise ValueError("output was recorded on a different tape")

    if seed is None:
        seed_arr = np.ones(out_node.shape, dtype=np.float64)
    else:
        seed_arr = np.broadcast_to(np.asarray(seed, dtype=np.float64),
                                   out_node.shape).copy()

    # gradient buffers keyed by node index; ``owned`` tracks whether the
    # buffer is private to this sweep and may be updated in place.
    grads: dict[int, np.ndarray] = {out_node.index: seed_arr}
    owned: dict[int, bool] = {out_node.index: True}

    _run_sweep(tape, grads, owned, out_node.index)
    return _collect_results(grads, owned, inputs)


def backward_from_seeds(tape: Tape,
                        seeds: Sequence[tuple[ADArray, np.ndarray]],
                        inputs: Sequence[ADArray]) -> list[np.ndarray]:
    """Reverse sweep seeded at several traced outputs at once.

    This is the multi-output counterpart of :func:`backward` used by the
    segmented sweep (:mod:`repro.ad.segmented`): instead of differentiating
    one scalar, every ``(output, cotangent)`` pair in ``seeds`` injects its
    cotangent at the output's node and a single sweep propagates the sum of
    all of them down to the leaves -- exactly the chain-rule contraction
    ``J^T @ c`` of one recorded segment.

    Parameters
    ----------
    tape:
        The tape on which the seeded outputs and ``inputs`` were recorded.
    seeds:
        Pairs of a traced output and its incoming cotangent (broadcastable
        to the output's shape).  Seeding the same node twice accumulates.
        Caller-provided cotangents are copied, never mutated.
    inputs:
        Traced leaf arrays whose gradients are returned (zeros for leaves
        no seeded output depends on).
    """
    grads: dict[int, np.ndarray] = {}
    owned: dict[int, bool] = {}
    start_index = -1
    for output, cotangent in seeds:
        if not isinstance(output, ADArray) or output.node is None:
            raise ValueError("seeded outputs must be traced ADArrays")
        node = output.node
        if node.index >= len(tape.nodes) or tape.nodes[node.index] is not node:
            raise ValueError("a seeded output was recorded on a different "
                             "tape")
        seed_arr = np.broadcast_to(
            np.asarray(cotangent, dtype=np.float64), node.shape)
        if node.index in grads:
            grads[node.index] = grads[node.index] + seed_arr
        else:
            grads[node.index] = np.array(seed_arr, dtype=np.float64,
                                         copy=True)
        owned[node.index] = True
        start_index = max(start_index, node.index)

    _run_sweep(tape, grads, owned, start_index)
    return _collect_results(grads, owned, inputs)


def gradient(output: ADArray, inputs: Sequence[ADArray],
             seed: np.ndarray | float | None = None) -> list[np.ndarray]:
    """Gradient of ``output`` w.r.t. ``inputs`` using the output's own tape."""
    if not isinstance(output, ADArray) or output.tape is None:
        raise ValueError("output is not attached to a tape")
    return backward(output.tape, output, list(inputs), seed=seed)


def grad(fun: Callable, argnums: int | Sequence[int] = 0) -> Callable:
    """Return a function computing the gradient of ``fun``.

    ``fun`` must accept numpy arrays (or scalars) and return a scalar.  The
    returned callable evaluates the gradient with respect to the positional
    argument(s) selected by ``argnums``, mirroring the familiar JAX/autograd
    API so the test-suite can express derivative checks concisely.
    """
    single = isinstance(argnums, int)
    selected = (argnums,) if single else tuple(argnums)

    def grad_fun(*args, **kwargs):
        with Tape() as tape:
            traced_args = list(args)
            watched = []
            for i in selected:
                watched.append(tape.watch(np.asarray(args[i], dtype=np.float64),
                                          name=f"arg{i}"))
                traced_args[i] = watched[-1]
            out = fun(*traced_args, **kwargs)
        grads = backward(tape, out, watched)
        if single:
            g = grads[0]
            return g if np.ndim(args[selected[0]]) else float(g)
        return tuple(grads)

    return grad_fun


def value_and_grad(fun: Callable, argnums: int | Sequence[int] = 0) -> Callable:
    """Like :func:`grad`, but also return the function value."""
    single = isinstance(argnums, int)
    selected = (argnums,) if single else tuple(argnums)

    def vag_fun(*args, **kwargs):
        with Tape() as tape:
            traced_args = list(args)
            watched = []
            for i in selected:
                watched.append(tape.watch(np.asarray(args[i], dtype=np.float64),
                                          name=f"arg{i}"))
                traced_args[i] = watched[-1]
            out = fun(*traced_args, **kwargs)
        grads = backward(tape, out, watched)
        value = float(value_of(out)) if np.ndim(value_of(out)) == 0 \
            else value_of(out)
        if single:
            g = grads[0]
            return value, (g if np.ndim(args[selected[0]]) else float(g))
        return value, tuple(grads)

    return vag_fun
