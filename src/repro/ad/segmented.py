"""Segmented reverse sweep: bound tape memory to a single iteration.

The monolithic AD path (:meth:`repro.npb.base.NPBBenchmark.traced_restart` +
:func:`repro.ad.reverse.backward`) records every primitive of *all* remaining
main-loop iterations on one tape before sweeping it, so peak tape memory
grows linearly with the number of remaining steps.  That linear growth is
what caps the analysable problem sizes.

This module implements the standard fix -- checkpointing the reverse sweep at
iteration granularity (Griewank's *revolve* idea, at its simplest schedule):

1. run the remaining iterations **forward on concrete numpy state**, keeping
   the (cheap) state snapshot at every iteration boundary;
2. trace only the final output reduction and sweep it, producing the
   cotangent of every state entry of the last boundary;
3. walk the boundaries backwards: re-trace *one* iteration, seed the traced
   next-state entries with the chained cotangents
   (:func:`repro.ad.reverse.backward_from_seeds`), sweep, and free the tape
   before tracing the previous iteration.

Peak tape memory is therefore O(1 iteration) instead of O(remaining steps),
while stored snapshots cost O(steps x state) -- for the NPB kernels the
state is orders of magnitude smaller than one iteration's tape.

Bitwise equivalence
-------------------
The chained sweep reproduces the monolithic gradients **bit for bit**, not
just approximately:

* the concrete forward values at every boundary equal the traced forward
  values (the ops compute with the same numpy calls either way);
* the tape is append-only and swept in strictly decreasing node order, so
  all cotangent contributions from later iterations accumulate into a
  boundary value *before* any same-iteration contribution -- which is
  exactly the order in which the segmented sweep applies them: the chained
  seed first, then the segment's own contributions;
* seeds are injected by buffer copy and in-place addition, the same float
  operations the monolithic sweep performs.

``tests/ad/test_segmented.py`` pins the bitwise identity of both the
gradients and the criticality masks for all eight NPB ports.

Every floating-point entry of the state dict is chained across segment
boundaries -- not only the keys the caller asked for -- because a dependence
may flow through an auxiliary float entry (e.g. LU's recomputed ``rho_i``)
even when that entry itself is not under analysis.  Integer entries advance
concretely, exactly as in the monolithic trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from .reverse import backward, backward_from_seeds
from .tape import Tape
from .tensor import ADArray, value_of

__all__ = ["SweepStats", "float_state_keys", "segmented_gradients"]


@dataclass
class SweepStats:
    """Peak/total tape telemetry of one (segmented or monolithic) sweep.

    Pass an instance to :func:`segmented_gradients` to observe how large the
    per-segment tapes actually get; :meth:`observe` also works on the single
    tape of a monolithic sweep, so the memory benchmark
    (``benchmarks/test_segmented_memory.py``) reports both sides with the
    same meter.
    """

    #: number of tapes observed (segments + the output segment)
    n_segments: int = 0
    #: largest node count of any single observed tape
    peak_nodes: int = 0
    #: largest gradient-buffer footprint estimate of any single tape (bytes)
    peak_nbytes: int = 0
    #: node count summed over all observed tapes
    total_nodes: int = 0
    #: per-segment node counts, in observation order (output segment first
    #: for a segmented sweep)
    segment_nodes: list[int] = field(default_factory=list)

    def observe(self, tape: Tape) -> None:
        """Record one tape's size before it is freed."""
        nodes = len(tape)
        self.n_segments += 1
        self.total_nodes += nodes
        self.segment_nodes.append(nodes)
        self.peak_nodes = max(self.peak_nodes, nodes)
        self.peak_nbytes = max(self.peak_nbytes, tape.nbytes())


def float_state_keys(state: Mapping[str, Any]) -> list[str]:
    """Keys of every floating-point entry of ``state``, in dict order.

    These are the entries the segmented sweep must chain cotangents for;
    integer entries (loop counters, key arrays) carry no derivative and pass
    between segments concretely.
    """
    keys: list[str] = []
    for key, value in state.items():
        arr = np.asarray(value_of(value))
        if np.issubdtype(arr.dtype, np.floating):
            keys.append(key)
    return keys


def _default_steps(bench, state: Mapping[str, Any]) -> int:
    """Remaining iterations implied by the state's step counter."""
    default = getattr(bench, "_default_remaining_steps", None)
    if callable(default):
        return int(default(state))
    return 1


def segmented_gradients(bench, state: Mapping[str, Any],
                        watch: Sequence[str] | None = None,
                        steps: int | None = None,
                        stats: SweepStats | None = None
                        ) -> dict[str, np.ndarray]:
    """Gradients of the restart output w.r.t. ``watch``, one tape at a time.

    Drop-in replacement for the monolithic ``traced_restart`` + ``backward``
    pair: returns the derivative of the benchmark's scalar verification
    output (after ``steps`` more iterations) with respect to every watched
    entry of ``state``, but never materialises more than one iteration's
    tape.

    Parameters
    ----------
    bench:
        A benchmark exposing the per-iteration tracing API
        (:meth:`~repro.npb.base.NPBBenchmark.traced_step` /
        :meth:`~repro.npb.base.NPBBenchmark.traced_output`).
    state:
        Concrete checkpoint state the analysis is based on.
    watch:
        State keys to return gradients for; defaults to the benchmark's
        default watch list (every float component of every checkpoint
        variable).  Internally every float entry of the state dict is
        chained regardless, so cross-iteration dependences through
        unwatched auxiliaries are never severed.
    steps:
        Remaining iterations to analyse; ``None`` derives them from the
        state's step counter (the monolithic default).
    stats:
        Optional :class:`SweepStats` collector observing every segment tape.

    Returns
    -------
    dict mapping each watched key to its gradient array (float64, the
    entry's shape).
    """
    for hook in ("traced_step", "traced_output"):
        if not callable(getattr(bench, hook, None)):
            raise TypeError(
                f"benchmark {getattr(bench, 'name', bench)!r} does not "
                f"expose {hook}(); the segmented sweep needs the "
                f"per-iteration tracing API (use sweep='monolithic')")

    state = {key: value_of(value) for key, value in state.items()}
    if watch is None:
        watch = bench.default_watch_keys() if callable(
            getattr(bench, "default_watch_keys", None)) \
            else float_state_keys(state)
    watch = list(watch)
    for key in watch:
        if key not in state:
            raise KeyError(f"cannot watch unknown state entry {key!r}")

    if steps is None:
        steps = _default_steps(bench, state)
    if steps < 0:
        raise ValueError("steps must be non-negative")

    # -- forward pass: concrete snapshots at every iteration boundary ------
    boundaries: list[dict[str, Any]] = [dict(state)]
    current = dict(state)
    for _ in range(steps):
        current = bench.run(current, 1)
        boundaries.append({key: value_of(val)
                           for key, val in current.items()})

    # chain every float entry, not just the requested keys (see module docs)
    chain = float_state_keys(boundaries[0])

    # -- output segment: trace and sweep only the final reduction ----------
    tape, leaves, out = bench.traced_output(boundaries[-1], watch=chain)
    if stats is not None:
        stats.observe(tape)
    if isinstance(out, ADArray) and out.node is not None:
        grads = backward(tape, out, [leaves[key] for key in chain],
                         strict=False)
        cotangents = dict(zip(chain, grads))
    else:
        # the output never touched a watched input (the monolithic
        # strict=False case): every gradient is exactly zero
        cotangents = {key: np.zeros(np.shape(boundaries[-1][key]),
                                    dtype=np.float64) for key in chain}
    del tape, leaves, out

    # -- reverse walk: one iteration's tape at a time ----------------------
    for k in range(steps - 1, -1, -1):
        tape, leaves, next_state = bench.traced_step(boundaries[k],
                                                     watch=chain)
        if stats is not None:
            stats.observe(tape)
        seeds: list[tuple[ADArray, np.ndarray]] = []
        for key in chain:
            produced = next_state.get(key)
            if isinstance(produced, ADArray) and produced.node is not None:
                seeds.append((produced, cotangents[key]))
            # a next-state entry that is a plain constant does not depend on
            # this segment's inputs; its cotangent dies here, exactly as it
            # would on the monolithic tape
        grads = backward_from_seeds(tape, seeds,
                                    [leaves[key] for key in chain])
        cotangents = dict(zip(chain, grads))
        del tape, leaves, next_state

    return {key: np.asarray(cotangents[key], dtype=np.float64)
            if key in cotangents
            else np.zeros(np.shape(state[key]), dtype=np.float64)
            for key in watch}
