"""Segmented reverse sweep: bound tape memory to a single iteration.

The monolithic AD path (:meth:`repro.npb.base.NPBBenchmark.traced_restart` +
:func:`repro.ad.reverse.backward`) records every primitive of *all* remaining
main-loop iterations on one tape before sweeping it, so peak tape memory
grows linearly with the number of remaining steps.  That linear growth is
what caps the analysable problem sizes.

This module implements the standard fix -- checkpointing the reverse sweep at
iteration granularity (Griewank's *revolve* idea, at its simplest schedule):

1. run the remaining iterations **forward on concrete numpy state**, keeping
   the (cheap) state snapshot at every iteration boundary;
2. trace only the final output reduction and sweep it, producing the
   cotangent of every state entry of the last boundary;
3. walk the boundaries backwards: re-trace *one* iteration, seed the traced
   next-state entries with the chained cotangents
   (:func:`repro.ad.reverse.backward_from_seeds`), sweep, and free the tape
   before tracing the previous iteration.

Peak tape memory is therefore O(1 iteration) instead of O(remaining steps).
The boundary snapshots themselves are held by a pluggable
:mod:`repro.ad.schedule`: ``snapshot_schedule="all"`` (the default) keeps
every boundary in memory (O(steps x state) -- for the NPB kernels the state
is orders of magnitude smaller than one iteration's tape),
``"binomial"`` keeps O(log steps) snapshots and recomputes the rest forward
from the nearest kept boundary (revolve-style), and ``"spill"`` writes the
boundaries through the :mod:`repro.ckpt` writer/reader to a scratch
directory so only one snapshot is ever resident.

Bitwise equivalence
-------------------
The chained sweep reproduces the monolithic gradients **bit for bit**, not
just approximately:

* the concrete forward values at every boundary equal the traced forward
  values (the ops compute with the same numpy calls either way);
* the tape is append-only and swept in strictly decreasing node order, so
  all cotangent contributions from later iterations accumulate into a
  boundary value *before* any same-iteration contribution -- which is
  exactly the order in which the segmented sweep applies them: the chained
  seed first, then the segment's own contributions;
* seeds are injected by buffer copy and in-place addition, the same float
  operations the monolithic sweep performs.

``tests/ad/test_segmented.py`` pins the bitwise identity of both the
gradients and the criticality masks for all eight NPB ports.

Every floating-point entry of the state dict is chained across segment
boundaries -- not only the keys the caller asked for -- because a dependence
may flow through an auxiliary float entry (e.g. LU's recomputed ``rho_i``)
even when that entry itself is not under analysis.  Integer entries advance
concretely, exactly as in the monolithic trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from .plan import (DEFAULT_EXECUTOR, DEFAULT_PLAN_OPTIMIZE,
                   DEFAULT_TRACE_CACHE, TRACE_CACHES, PlanCache)
from .reverse import backward, backward_from_seeds
from .schedule import (DEFAULT_SNAPSHOT_SCHEDULE, SnapshotSchedule,
                       make_schedule, snapshot_state)
from .tape import Tape
from .tensor import ADArray, value_of

__all__ = ["SweepStats", "float_state_keys", "gradient_dtype",
           "cast_gradient", "segmented_gradients"]


@dataclass
class SweepStats:
    """Peak/total tape telemetry of one (segmented or monolithic) sweep.

    Pass an instance to :func:`segmented_gradients` to observe how large the
    per-segment tapes actually get; :meth:`observe` also works on the single
    tape of a monolithic sweep, so the memory benchmark
    (``benchmarks/test_segmented_memory.py``) reports both sides with the
    same meter.
    """

    #: number of tapes observed (segments + the output segment)
    n_segments: int = 0
    #: largest node count of any single observed tape
    peak_nodes: int = 0
    #: largest gradient-buffer footprint estimate of any single tape (bytes)
    peak_nbytes: int = 0
    #: node count summed over all observed tapes
    total_nodes: int = 0
    #: per-segment node counts, in observation order (output segment first
    #: for a segmented sweep)
    segment_nodes: list[int] = field(default_factory=list)
    #: snapshot-schedule policy of the observed sweep ("" = none observed)
    snapshot_policy: str = ""
    #: largest number of simultaneously resident boundary snapshots
    peak_snapshots: int = 0
    #: largest resident boundary-snapshot payload of the sweep (bytes)
    peak_snapshot_nbytes: int = 0
    #: forward iterations re-run to rebuild dropped boundaries (binomial)
    recomputed_steps: int = 0
    #: bytes written to the spill scratch directory (spill)
    spilled_nbytes: int = 0
    #: trace-cache policy of the observed sweep ("" = none observed)
    trace_cache: str = ""
    #: traced segments served by a compiled replay plan (no tracer run)
    plan_hits: int = 0
    #: traced segments that ran the tracer (plan capture or fallback)
    plan_misses: int = 0
    #: replay plans compiled from matching captures
    plan_compiles: int = 0
    #: plan-cache entries rejected (unsupported op, divergence, error)
    plan_rejects: int = 0
    #: concrete forward steps replayed instead of running the benchmark
    plan_forward_replays: int = 0
    #: fine-tier plans evicted by the cache's LRU bound
    plan_fine_evictions: int = 0
    #: largest slot count of any compiled plan's reusable arena
    plan_arena_slots: int = 0
    #: largest gradient-buffer footprint estimate of any plan arena (bytes)
    plan_arena_nbytes: int = 0
    #: largest liveness-packed arena footprint estimate (bytes; same meter
    #: as ``plan_arena_nbytes``, after dead-slot elimination, view sharing
    #: and lifetime coalescing)
    plan_arena_nbytes_packed: int = 0
    #: most primitives any compiled plan runs inside fused kernels
    plan_fused_ops: int = 0
    #: most dead instructions eliminated from any compiled plan
    plan_eliminated_slots: int = 0
    #: executor actually serving the observed plan cache ("" = none)
    executor_kind: str = ""
    #: segments processed by a segmented activity (read-set) sweep
    activity_segments: int = 0
    #: activity segments served by a plan-derived transfer (no tracer run)
    activity_plan_replays: int = 0
    #: activity segments that ran the tracer (plan capture or fallback)
    activity_retraces: int = 0
    #: largest resident read/moved mask payload of an activity sweep (bytes)
    activity_peak_mask_nbytes: int = 0
    #: forward passes run by a tangent (JVP) sweep
    tangent_passes: int = 0
    #: tangent directions carried across all passes of a tangent sweep
    tangent_directions: int = 0
    #: largest resident (value + stacked tangent) state of any pass (bytes)
    tangent_peak_state_nbytes: int = 0

    def observe(self, tape: Tape) -> None:
        """Record one tape's size before it is freed."""
        nodes = len(tape)
        self.n_segments += 1
        self.total_nodes += nodes
        self.segment_nodes.append(nodes)
        self.peak_nodes = max(self.peak_nodes, nodes)
        self.peak_nbytes = max(self.peak_nbytes, tape.nbytes())

    def observe_plan_segment(self, n_slots: int, nbytes: int) -> None:
        """Record one *replayed* segment with the tape meter's semantics.

        A replayed segment has no tape, but its plan's slot count and
        gradient-buffer estimate are exactly what the equivalent tape would
        report, so replays and traces stay comparable on one meter.
        """
        self.n_segments += 1
        self.total_nodes += n_slots
        self.segment_nodes.append(n_slots)
        self.peak_nodes = max(self.peak_nodes, n_slots)
        self.peak_nbytes = max(self.peak_nbytes, nbytes)

    def observe_plan(self, cache: "PlanCache",
                     since: dict | None = None) -> None:
        """Fold one sweep's plan-cache telemetry in.

        ``since`` is a :meth:`PlanCache.counters` snapshot taken when the
        sweep started; passing it makes the fold a *delta*, so a plan cache
        shared across sweeps (the analyzer's per-analysis cache) is never
        double-counted.
        """
        counts = cache.counters()
        base = since or {}
        self.plan_hits += counts["hits"] - base.get("hits", 0)
        self.plan_misses += counts["misses"] - base.get("misses", 0)
        self.plan_compiles += counts["compiles"] - base.get("compiles", 0)
        self.plan_rejects += counts["rejects"] - base.get("rejects", 0)
        self.plan_forward_replays += (counts["forward_replays"]
                                      - base.get("forward_replays", 0))
        self.plan_fine_evictions += (counts["fine_evictions"]
                                     - base.get("fine_evictions", 0))
        self.plan_arena_slots = max(self.plan_arena_slots,
                                    cache.arena_slots)
        self.plan_arena_nbytes = max(self.plan_arena_nbytes,
                                     cache.arena_nbytes)
        self.plan_arena_nbytes_packed = max(self.plan_arena_nbytes_packed,
                                            cache.arena_nbytes_packed)
        self.plan_fused_ops = max(self.plan_fused_ops, cache.fused_ops)
        self.plan_eliminated_slots = max(self.plan_eliminated_slots,
                                         cache.eliminated_slots)
        self.executor_kind = cache.executor_kind

    def observe_schedule(self, *schedules: SnapshotSchedule) -> None:
        """Fold one sweep's snapshot-schedule telemetry in.

        The batched probe sweep keeps one schedule per probe and their
        *kept* snapshots are resident simultaneously, so per-schedule peaks
        *add* before being folded into this collector's running maximum.
        For the binomial schedule this sum is a conservative upper bound:
        the per-probe replay working copies are created sequentially (one
        probe's fetch completes before the next begins), so up to
        ``n_probes - 1`` transient working copies counted here never
        actually coexist.
        """
        if not schedules:
            return
        self.snapshot_policy = schedules[0].policy
        self.peak_snapshots = max(
            self.peak_snapshots, sum(s.peak_snapshots for s in schedules))
        self.peak_snapshot_nbytes = max(
            self.peak_snapshot_nbytes,
            sum(s.peak_snapshot_nbytes for s in schedules))
        self.recomputed_steps += sum(s.recomputed_steps for s in schedules)
        self.spilled_nbytes += sum(s.spilled_nbytes for s in schedules)

    def observe_tangent(self, n_directions: int, peak_nbytes: int) -> None:
        """Record one forward (tangent) pass of a JVP sweep.

        A tangent pass has no tape at all; its meter is the resident
        (value + stacked tangent) state payload, which is what replaces the
        reverse sweep's tape/snapshot footprint.
        """
        self.tangent_passes += 1
        self.tangent_directions += n_directions
        self.tangent_peak_state_nbytes = max(self.tangent_peak_state_nbytes,
                                             peak_nbytes)


def float_state_keys(state: Mapping[str, Any]) -> list[str]:
    """Keys of every floating-point entry of ``state``, in dict order.

    These are the entries the segmented sweep must chain cotangents for;
    integer entries (loop counters, key arrays) carry no derivative and pass
    between segments concretely.
    """
    keys: list[str] = []
    for key, value in state.items():
        arr = np.asarray(value_of(value))
        if np.issubdtype(arr.dtype, np.floating):
            keys.append(key)
    return keys


def gradient_dtype(value: Any) -> np.dtype:
    """Dtype a returned gradient of state entry ``value`` must carry.

    Floating entries keep their declared precision -- a float32 variable's
    gradient comes back as float32, exactly as ``_perturb_state`` preserves
    the dtype of probed states -- and everything else (integer entries a
    caller explicitly watched) reports in float64.
    """
    dtype = np.asarray(value_of(value)).dtype
    if np.issubdtype(dtype, np.floating):
        return dtype
    return np.dtype(np.float64)


def cast_gradient(grad: Any, dtype: np.dtype | type) -> np.ndarray:
    """Cast a gradient to its entry's declared dtype, zero-pattern safely.

    The sweeps compute in float64; narrowing to a declared float32 could
    flush a tiny-but-nonzero derivative to exactly ``0.0``, silently
    flipping a critical element to uncritical -- the one error class the
    criticality criterion ("derivative exactly 0") must never make.  Values
    the narrow dtype cannot distinguish from zero are clamped to its
    smallest subnormal instead, preserving sign and, above all, the
    nonzero pattern.
    """
    grad = np.asarray(grad)
    out = np.asarray(grad, dtype=dtype)
    if out.dtype != grad.dtype and np.issubdtype(out.dtype, np.floating) \
            and np.issubdtype(grad.dtype, np.floating):
        wide = np.asarray(grad, dtype=np.float64)
        flushed = (out == 0.0) & (wide != 0.0)
        if np.any(flushed):
            tiny = np.finfo(out.dtype).smallest_subnormal
            out = np.where(flushed,
                           np.copysign(tiny, wide).astype(out.dtype), out)
    return out


def _default_steps(bench, state: Mapping[str, Any]) -> int:
    """Remaining iterations implied by the state's step counter."""
    default = getattr(bench, "_default_remaining_steps", None)
    if callable(default):
        return int(default(state))
    return 1


def segmented_gradients(bench, state: Mapping[str, Any],
                        watch: Sequence[str] | None = None,
                        steps: int | None = None,
                        stats: SweepStats | None = None,
                        snapshot_schedule: str = DEFAULT_SNAPSHOT_SCHEDULE,
                        snapshot_budget: int | None = None,
                        spill_dir: str | Path | None = None,
                        trace_cache: str = DEFAULT_TRACE_CACHE,
                        plan_cache: PlanCache | None = None,
                        plan_optimize: str | None = None,
                        executor: str | None = None
                        ) -> dict[str, np.ndarray]:
    """Gradients of the restart output w.r.t. ``watch``, one tape at a time.

    Drop-in replacement for the monolithic ``traced_restart`` + ``backward``
    pair: returns the derivative of the benchmark's scalar verification
    output (after ``steps`` more iterations) with respect to every watched
    entry of ``state``, but never materialises more than one iteration's
    tape.

    Parameters
    ----------
    bench:
        A benchmark exposing the per-iteration tracing API
        (:meth:`~repro.npb.base.NPBBenchmark.traced_step` /
        :meth:`~repro.npb.base.NPBBenchmark.traced_output`).
    state:
        Concrete checkpoint state the analysis is based on.
    watch:
        State keys to return gradients for; defaults to the benchmark's
        default watch list (every float component of every checkpoint
        variable).  Internally every float entry of the state dict is
        chained regardless, so cross-iteration dependences through
        unwatched auxiliaries are never severed.
    steps:
        Remaining iterations to analyse; ``None`` derives them from the
        state's step counter (the monolithic default).
    stats:
        Optional :class:`SweepStats` collector observing every segment tape
        (and the snapshot schedule's telemetry).
    snapshot_schedule:
        Boundary-snapshot retention policy (:mod:`repro.ad.schedule`):
        ``"all"`` (default, O(steps) resident snapshots), ``"binomial"``
        (O(log steps) resident, recompute the rest) or ``"spill"``
        (O(1) resident, boundaries on disk).  All three produce
        bitwise-identical gradients.
    snapshot_budget:
        In-memory snapshot budget of the ``"binomial"`` schedule (``None``
        = ~log2(steps)); ignored by the other policies.
    spill_dir:
        Parent directory for the ``"spill"`` schedule's scratch directory
        (``None`` = system temp dir); the scratch directory is private to
        this sweep and removed on return *and* on exception.
    trace_cache:
        ``"plan"`` (default) records each step structure once, compiles it
        to a replay plan (:mod:`repro.ad.plan`) and replays the plan for
        further segments, forward refills and later sweeps --
        bitwise-identical gradients, no repeated tracing; ``"off"`` traces
        every segment afresh (the pre-plan behaviour).
    plan_cache:
        Optional :class:`~repro.ad.plan.PlanCache` shared across sweeps
        (the criticality analyzer shares one per analysis, so per-probe
        sweeps and repeated analyses replay each other's plans); ``None``
        uses a private cache for this sweep.
    plan_optimize:
        IR optimisation policy of a freshly created plan cache
        (:data:`repro.ad.passes.PLAN_OPTIMIZES`): ``"fuse"`` (default)
        fuses elementwise/unary chains, eliminates dead slots and packs
        the arena; ``"off"`` interprets every captured primitive
        unoptimised.  Ignored when ``plan_cache`` is supplied (the cache
        already fixed its policy).
    executor:
        Plan executor of a freshly created plan cache
        (:data:`repro.ad.exec.EXECUTORS`): ``"interp"`` (default) or
        ``"numba"`` (silently falls back to the interpreter when numba is
        not installed).  Ignored when ``plan_cache`` is supplied.

    Returns
    -------
    dict mapping each watched key to its gradient array (the entry's shape,
    in the entry's declared floating dtype -- float32 state entries get
    float32 gradients).
    """
    for hook in ("traced_step", "traced_output"):
        if not callable(getattr(bench, hook, None)):
            raise TypeError(
                f"benchmark {getattr(bench, 'name', bench)!r} does not "
                f"expose {hook}(); the segmented sweep needs the "
                f"per-iteration tracing API (use sweep='monolithic')")

    state = {key: value_of(value) for key, value in state.items()}
    if watch is None:
        watch = bench.default_watch_keys() if callable(
            getattr(bench, "default_watch_keys", None)) \
            else float_state_keys(state)
    watch = list(watch)
    for key in watch:
        if key not in state:
            raise KeyError(f"cannot watch unknown state entry {key!r}")

    if steps is None:
        steps = _default_steps(bench, state)
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if trace_cache not in TRACE_CACHES:
        raise ValueError(f"unknown trace_cache {trace_cache!r}; "
                         f"choose from {TRACE_CACHES}")

    # chain every float entry, not just the requested keys (see module docs)
    chain = float_state_keys(state)

    planner = out_planner = cache = plan_base = None
    if trace_cache == "plan":
        cache = plan_cache if plan_cache is not None \
            else PlanCache(
                plan_optimize=plan_optimize if plan_optimize is not None
                else DEFAULT_PLAN_OPTIMIZE,
                executor=executor if executor is not None
                else DEFAULT_EXECUTOR)
        plan_base = cache.counters()
        planner = cache.planner(bench, "step", chain)
        out_planner = cache.planner(bench, "output", chain)
    advance = planner.advance if planner is not None \
        else (lambda s: bench.run(s, 1))

    schedule = make_schedule(snapshot_schedule, steps=steps,
                             advance=advance,
                             budget=snapshot_budget, spill_dir=spill_dir,
                             bench=bench)
    try:
        # -- forward pass: schedule-owned snapshots at every boundary ------
        # ``record`` copies every array entry, so a benchmark whose ``run``
        # mutates arrays in place cannot corrupt earlier boundaries through
        # aliasing; the initial copy also shields the caller's state.
        # With a warm plan cache the advance itself is a concrete plan
        # replay instead of a benchmark run.
        current = snapshot_state(state)
        schedule.record(0, current)
        for t in range(1, steps + 1):
            current = advance(current)
            schedule.record(t, current)
        del current

        # -- output segment: trace and sweep only the final reduction -----
        last = schedule.fetch(steps)
        if out_planner is not None:
            cotangents = out_planner.output_cotangents(last, stats=stats)
        else:
            tape, leaves, out = bench.traced_output(last, watch=chain)
            if stats is not None:
                stats.observe(tape)
            if isinstance(out, ADArray) and out.node is not None:
                grads = backward(tape, out, [leaves[key] for key in chain],
                                 strict=False)
                cotangents = dict(zip(chain, grads))
            else:
                cotangents = None
            del tape, leaves, out
        if cotangents is None:
            # the output never touched a watched input (the monolithic
            # strict=False case): every gradient is exactly zero
            cotangents = {key: np.zeros(np.shape(last[key]),
                                        dtype=gradient_dtype(state[key]))
                          for key in chain}
        del last

        # -- reverse walk: one iteration's tape (or plan replay) at a time -
        for k in range(steps - 1, -1, -1):
            boundary = schedule.fetch(k)
            if planner is not None:
                cotangents = planner.step_cotangents(boundary, cotangents,
                                                     stats=stats)
                del boundary
                continue
            tape, leaves, next_state = bench.traced_step(boundary,
                                                         watch=chain)
            if stats is not None:
                stats.observe(tape)
            seeds: list[tuple[ADArray, np.ndarray]] = []
            for key in chain:
                produced = next_state.get(key)
                if isinstance(produced, ADArray) and produced.node is not None:
                    seeds.append((produced, cotangents[key]))
                # a next-state entry that is a plain constant does not depend
                # on this segment's inputs; its cotangent dies here, exactly
                # as it would on the monolithic tape
            grads = backward_from_seeds(tape, seeds,
                                        [leaves[key] for key in chain])
            cotangents = dict(zip(chain, grads))
            del tape, leaves, next_state, boundary
    finally:
        if stats is not None:
            stats.observe_schedule(schedule)
            stats.trace_cache = trace_cache
            if cache is not None:
                stats.observe_plan(cache, since=plan_base)
        schedule.close()

    # each gradient reports in its entry's declared floating dtype: casting
    # everything to float64 would silently upcast float32 variables (the
    # drift class _perturb_state guards against on the probing side)
    return {key: cast_gradient(cotangents[key], gradient_dtype(state[key]))
            if key in cotangents
            else np.zeros(np.shape(state[key]),
                          dtype=gradient_dtype(state[key]))
            for key in watch}
