"""Forward-mode automatic differentiation with dual numbers.

The reproduction's primary engine is the reverse-mode tape in
:mod:`repro.ad.reverse` (one sweep gives the derivative of the scalar output
with respect to *every* element, which is what the checkpoint analysis
needs).  Forward mode is provided as an independent implementation used to
cross-validate the reverse-mode results on small problems: for a function
``f`` and direction ``v``, ``jvp(f, x, v)`` must equal ``dot(grad f(x), v)``.

:class:`Dual` carries ``(value, tangent)`` pairs of numpy arrays and
overloads the arithmetic operators used by the synthetic validation
functions.  It is intentionally *not* wired into the big NPB kernels -- the
point is that it shares no code with the reverse-mode engine, so agreement
between the two is meaningful evidence of correctness, alongside the finite
difference checks in :mod:`repro.ad.checks`.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

__all__ = ["Dual", "jvp", "directional_derivative"]


def _val(x: Any) -> np.ndarray:
    return x.value if isinstance(x, Dual) else np.asarray(x)


def _tan(x: Any, like: np.ndarray) -> np.ndarray:
    if isinstance(x, Dual):
        return x.tangent
    return np.zeros_like(np.asarray(like, dtype=np.float64))


class Dual:
    """A (value, tangent) pair supporting elementwise arithmetic.

    Both members are numpy arrays of identical shape.  Operations combine the
    values exactly as numpy would and propagate tangents with the chain rule.
    """

    __slots__ = ("value", "tangent")

    __array_priority__ = 150.0

    def __init__(self, value, tangent=None) -> None:
        self.value = np.asarray(value, dtype=np.float64)
        if tangent is None:
            tangent = np.zeros_like(self.value)
        self.tangent = np.asarray(tangent, dtype=np.float64)
        if self.tangent.shape != self.value.shape:
            self.tangent = np.broadcast_to(self.tangent, self.value.shape).copy()

    # -- metadata --------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.value.shape

    @property
    def size(self) -> int:
        return self.value.size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Dual(shape={self.value.shape})"

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other):
        return Dual(self.value + _val(other),
                    self.tangent + _tan(other, _val(other)))

    __radd__ = __add__

    def __sub__(self, other):
        return Dual(self.value - _val(other),
                    self.tangent - _tan(other, _val(other)))

    def __rsub__(self, other):
        return Dual(_val(other) - self.value,
                    _tan(other, _val(other)) - self.tangent)

    def __mul__(self, other):
        ov, ot = _val(other), _tan(other, _val(other))
        return Dual(self.value * ov, self.tangent * ov + self.value * ot)

    __rmul__ = __mul__

    def __truediv__(self, other):
        ov, ot = _val(other), _tan(other, _val(other))
        return Dual(self.value / ov,
                    self.tangent / ov - self.value * ot / (ov * ov))

    def __rtruediv__(self, other):
        ov, ot = _val(other), _tan(other, _val(other))
        return Dual(ov / self.value,
                    ot / self.value - ov * self.tangent / (self.value ** 2))

    def __pow__(self, exponent):
        if isinstance(exponent, Dual):
            raise TypeError("dual exponents are not supported in forward mode")
        e = float(exponent)
        return Dual(self.value ** e,
                    e * self.value ** (e - 1.0) * self.tangent)

    def __neg__(self):
        return Dual(-self.value, -self.tangent)

    def __abs__(self):
        return Dual(np.abs(self.value), np.sign(self.value) * self.tangent)

    def __matmul__(self, other):
        ov, ot = _val(other), _tan(other, _val(other))
        return Dual(self.value @ ov, self.tangent @ ov + self.value @ ot)

    def __rmatmul__(self, other):
        ov, ot = _val(other), _tan(other, _val(other))
        return Dual(ov @ self.value, ot @ self.value + ov @ self.tangent)

    # -- indexing and reductions -----------------------------------------
    def __getitem__(self, index):
        return Dual(self.value[index], self.tangent[index])

    def sum(self, axis=None):
        return Dual(self.value.sum(axis=axis), self.tangent.sum(axis=axis))

    def mean(self, axis=None):
        return Dual(self.value.mean(axis=axis), self.tangent.mean(axis=axis))

    def reshape(self, *shape):
        return Dual(self.value.reshape(*shape), self.tangent.reshape(*shape))

    def ravel(self):
        return Dual(self.value.ravel(), self.tangent.ravel())

    # -- elementwise functions -------------------------------------------
    def sqrt(self):
        v = np.sqrt(self.value)
        return Dual(v, 0.5 / v * self.tangent)

    def exp(self):
        v = np.exp(self.value)
        return Dual(v, v * self.tangent)

    def log(self):
        return Dual(np.log(self.value), self.tangent / self.value)

    def sin(self):
        return Dual(np.sin(self.value), np.cos(self.value) * self.tangent)

    def cos(self):
        return Dual(np.cos(self.value), -np.sin(self.value) * self.tangent)


# module-level helpers so validation functions can be written generically ---

def sqrt(x):
    """``sqrt`` working on Dual or plain arrays."""
    return x.sqrt() if isinstance(x, Dual) else np.sqrt(x)


def exp(x):
    """``exp`` working on Dual or plain arrays."""
    return x.exp() if isinstance(x, Dual) else np.exp(x)


def log(x):
    """``log`` working on Dual or plain arrays."""
    return x.log() if isinstance(x, Dual) else np.log(x)


def sin(x):
    """``sin`` working on Dual or plain arrays."""
    return x.sin() if isinstance(x, Dual) else np.sin(x)


def cos(x):
    """``cos`` working on Dual or plain arrays."""
    return x.cos() if isinstance(x, Dual) else np.cos(x)


def sum(x, axis=None):  # noqa: A001 - mirrors numpy naming
    """``sum`` working on Dual or plain arrays."""
    return x.sum(axis=axis) if isinstance(x, Dual) else np.sum(x, axis=axis)


def jvp(fun: Callable, x: np.ndarray, v: np.ndarray) -> float:
    """Jacobian-vector product of a scalar function ``fun`` at ``x`` along ``v``.

    ``fun`` must be written against the Dual-compatible helpers of this
    module (or plain operators).  Returns the scalar directional derivative.
    """
    x = np.asarray(x, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    out = fun(Dual(x, v))
    if isinstance(out, Dual):
        if out.value.size != 1:
            raise ValueError("jvp expects a scalar-valued function")
        return float(out.tangent)
    # function ignored its input entirely -> zero derivative
    return 0.0


def directional_derivative(fun: Callable, x: np.ndarray, v: np.ndarray) -> float:
    """Alias of :func:`jvp` with a name matching the maths literature."""
    return jvp(fun, x, v)
