"""Forward-mode automatic differentiation with dual numbers.

The reproduction's primary engine is the reverse-mode tape in
:mod:`repro.ad.reverse` (one sweep gives the derivative of the scalar output
with respect to *every* element, which is what the checkpoint analysis
needs).  Forward mode is provided as an independent implementation used to
cross-validate the reverse-mode results on small problems: for a function
``f`` and direction ``v``, ``jvp(f, x, v)`` must equal ``dot(grad f(x), v)``.

:class:`Dual` carries ``(value, tangent)`` pairs of numpy arrays and
overloads the arithmetic operators used by the synthetic validation
functions.  It is intentionally *not* wired into the big NPB kernels -- the
point is that it shares no code with the reverse-mode engine, so agreement
between the two is meaningful evidence of correctness, alongside the finite
difference checks in :mod:`repro.ad.checks`.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

__all__ = ["Dual", "jvp", "directional_derivative",
           "maximum", "minimum", "clip", "where"]


def _float_dtype(dtype) -> np.dtype:
    """The floating dtype derivatives are carried in for a given value dtype.

    Mirrors the ``gradient_dtype`` convention of the reverse sweeps: a
    declared floating dtype (float32, float64, ...) is preserved; anything
    else (ints, bools) promotes to float64 working precision.
    """
    dtype = np.dtype(dtype)
    return dtype if dtype.kind == "f" else np.dtype(np.float64)


def _val(x: Any) -> Any:
    if isinstance(x, Dual):
        return x.value
    if isinstance(x, (bool, int, float)):
        # keep Python scalars unwrapped so numpy's value-based promotion
        # applies: float32 Dual + 1.0 stays float32, exactly as for ndarrays
        return x
    return np.asarray(x)


def _tan(x: Any, like: Any) -> np.ndarray:
    if isinstance(x, Dual):
        return x.tangent
    like = np.asarray(like)
    return np.zeros(like.shape, dtype=_float_dtype(like.dtype))


class Dual:
    """A (value, tangent) pair supporting elementwise arithmetic.

    Both members are numpy arrays of identical shape.  Operations combine the
    values exactly as numpy would and propagate tangents with the chain rule.
    """

    __slots__ = ("value", "tangent")

    __array_priority__ = 150.0

    def __init__(self, value, tangent=None) -> None:
        value = np.asarray(value)
        # preserve a declared floating dtype (float32 stays float32);
        # non-float input promotes to float64 working precision
        self.value = np.asarray(value, dtype=_float_dtype(value.dtype))
        if tangent is None:
            tangent = np.zeros_like(self.value)
        self.tangent = np.asarray(tangent, dtype=self.value.dtype)
        if self.tangent.shape != self.value.shape:
            self.tangent = np.broadcast_to(self.tangent, self.value.shape).copy()

    # -- metadata --------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.value.shape

    @property
    def size(self) -> int:
        return self.value.size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Dual(shape={self.value.shape})"

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other):
        return Dual(self.value + _val(other),
                    self.tangent + _tan(other, _val(other)))

    __radd__ = __add__

    def __sub__(self, other):
        return Dual(self.value - _val(other),
                    self.tangent - _tan(other, _val(other)))

    def __rsub__(self, other):
        return Dual(_val(other) - self.value,
                    _tan(other, _val(other)) - self.tangent)

    def __mul__(self, other):
        ov, ot = _val(other), _tan(other, _val(other))
        return Dual(self.value * ov, self.tangent * ov + self.value * ot)

    __rmul__ = __mul__

    def __truediv__(self, other):
        ov, ot = _val(other), _tan(other, _val(other))
        return Dual(self.value / ov,
                    self.tangent / ov - self.value * ot / (ov * ov))

    def __rtruediv__(self, other):
        ov, ot = _val(other), _tan(other, _val(other))
        return Dual(ov / self.value,
                    ot / self.value - ov * self.tangent / (self.value ** 2))

    def __pow__(self, exponent):
        if isinstance(exponent, Dual):
            raise TypeError("dual exponents are not supported in forward mode")
        e = float(exponent)
        # e * v**(e-1) overflows to inf (and then nan after multiplying a
        # zero tangent) at v == 0 for fractional exponents; the subgradient
        # convention at the kink is 0, matching the finite one-sided limit
        # of e * v**(e-1) * t for t == 0
        with np.errstate(divide="ignore", invalid="ignore"):
            d = e * self.value ** (e - 1.0)
        d = np.where((self.value == 0.0) & ~np.isfinite(d), 0.0, d)
        return Dual(self.value ** e, d * self.tangent)

    def __neg__(self):
        return Dual(-self.value, -self.tangent)

    def __abs__(self):
        return Dual(np.abs(self.value), np.sign(self.value) * self.tangent)

    def __matmul__(self, other):
        ov, ot = _val(other), _tan(other, _val(other))
        return Dual(self.value @ ov, self.tangent @ ov + self.value @ ot)

    def __rmatmul__(self, other):
        ov, ot = _val(other), _tan(other, _val(other))
        return Dual(ov @ self.value, ot @ self.value + ov @ self.tangent)

    # -- indexing and reductions -----------------------------------------
    def __getitem__(self, index):
        return Dual(self.value[index], self.tangent[index])

    def sum(self, axis=None):
        return Dual(self.value.sum(axis=axis), self.tangent.sum(axis=axis))

    def mean(self, axis=None):
        return Dual(self.value.mean(axis=axis), self.tangent.mean(axis=axis))

    def reshape(self, *shape):
        return Dual(self.value.reshape(*shape), self.tangent.reshape(*shape))

    def ravel(self):
        return Dual(self.value.ravel(), self.tangent.ravel())

    # -- elementwise functions -------------------------------------------
    def sqrt(self):
        v = np.sqrt(self.value)
        return Dual(v, 0.5 / v * self.tangent)

    def exp(self):
        v = np.exp(self.value)
        return Dual(v, v * self.tangent)

    def log(self):
        return Dual(np.log(self.value), self.tangent / self.value)

    def sin(self):
        return Dual(np.sin(self.value), np.cos(self.value) * self.tangent)

    def cos(self):
        return Dual(np.cos(self.value), -np.sin(self.value) * self.tangent)

    # -- piecewise functions (ops.py subgradient conventions) ------------
    def maximum(self, other):
        """Elementwise maximum; ties send the tangent to ``self``
        (the ``av >= bv`` mask of ``repro.ad.ops.MINMAX_RULES``)."""
        return maximum(self, other)

    def minimum(self, other):
        """Elementwise minimum; ties send the tangent to ``self``
        (the ``av <= bv`` mask of ``repro.ad.ops.MINMAX_RULES``)."""
        return minimum(self, other)

    def clip(self, lo, hi):
        """Clamp to ``[lo, hi]``; the tangent passes only strictly inside
        or exactly on the bounds (the inclusive mask of ``ops.clip``)."""
        inside = (self.value >= lo) & (self.value <= hi)
        return Dual(np.clip(self.value, lo, hi),
                    self.tangent * inside.astype(self.value.dtype))


# module-level helpers so validation functions can be written generically ---

def sqrt(x):
    """``sqrt`` working on Dual or plain arrays."""
    return x.sqrt() if isinstance(x, Dual) else np.sqrt(x)


def exp(x):
    """``exp`` working on Dual or plain arrays."""
    return x.exp() if isinstance(x, Dual) else np.exp(x)


def log(x):
    """``log`` working on Dual or plain arrays."""
    return x.log() if isinstance(x, Dual) else np.log(x)


def sin(x):
    """``sin`` working on Dual or plain arrays."""
    return x.sin() if isinstance(x, Dual) else np.sin(x)


def cos(x):
    """``cos`` working on Dual or plain arrays."""
    return x.cos() if isinstance(x, Dual) else np.cos(x)


def sum(x, axis=None):  # noqa: A001 - mirrors numpy naming
    """``sum`` working on Dual or plain arrays."""
    return x.sum(axis=axis) if isinstance(x, Dual) else np.sum(x, axis=axis)


def maximum(a, b):
    """Elementwise maximum on Dual or plain arrays.

    Ties send the tangent to the first operand -- the same ``av >= bv``
    mask :data:`repro.ad.ops.MINMAX_RULES` uses for the reverse cotangent,
    so forward and reverse subgradients agree bitwise at ties.
    """
    if not (isinstance(a, Dual) or isinstance(b, Dual)):
        return np.maximum(a, b)
    av, bv = _val(a), _val(b)
    mask = av >= bv
    return Dual(np.maximum(av, bv),
                _tan(a, av) * mask + _tan(b, bv) * ~mask)


def minimum(a, b):
    """Elementwise minimum on Dual or plain arrays (ties to the first
    operand via the ``av <= bv`` mask, as in ``repro.ad.ops``)."""
    if not (isinstance(a, Dual) or isinstance(b, Dual)):
        return np.minimum(a, b)
    av, bv = _val(a), _val(b)
    mask = av <= bv
    return Dual(np.minimum(av, bv),
                _tan(a, av) * mask + _tan(b, bv) * ~mask)


def clip(x, lo, hi):
    """``clip`` working on Dual or plain arrays (inclusive-bounds mask)."""
    return x.clip(lo, hi) if isinstance(x, Dual) else np.clip(x, lo, hi)


def where(cond, a, b):
    """Elementwise select on Dual or plain arrays.

    The condition is treated as non-differentiable (it contributes no
    tangent), exactly as in ``repro.ad.ops.where``.
    """
    cv = _val(cond).astype(bool)
    if not (isinstance(a, Dual) or isinstance(b, Dual)):
        return np.where(cv, a, b)
    av, bv = _val(a), _val(b)
    return Dual(np.where(cv, av, bv),
                _tan(a, av) * cv + _tan(b, bv) * ~cv)


def jvp(fun: Callable, x: np.ndarray, v: np.ndarray) -> float:
    """Jacobian-vector product of a scalar function ``fun`` at ``x`` along ``v``.

    ``fun`` must be written against the Dual-compatible helpers of this
    module (or plain operators).  Returns the scalar directional derivative.
    """
    x = np.asarray(x)
    x = np.asarray(x, dtype=_float_dtype(x.dtype))
    v = np.asarray(v, dtype=x.dtype)
    out = fun(Dual(x, v))
    if isinstance(out, Dual):
        if out.value.size != 1:
            raise ValueError(
                f"jvp expects a scalar-valued function; got output shape "
                f"{out.value.shape}")
        return float(out.tangent)
    # function ignored its input entirely -> zero derivative
    return 0.0


def directional_derivative(fun: Callable, x: np.ndarray, v: np.ndarray) -> float:
    """Alias of :func:`jvp` with a name matching the maths literature.

    Unlike the permissive :func:`jvp` (whose tangent broadcasts), a
    directional derivative is only defined for a direction in the point's
    own space, so ``x`` and ``v`` must have identical shapes.
    """
    if np.shape(x) != np.shape(v):
        raise ValueError(
            f"direction shape {np.shape(v)} does not match point shape "
            f"{np.shape(x)}")
    return jvp(fun, x, v)
