"""Multi-seed gradient probing.

A single reverse-mode sweep evaluated at one program state can, in rare
cases, report a zero derivative for an element that *does* influence the
output: the influence may pass through a factor that happens to be zero at
that particular state (``d(a*b)/da == b`` is zero whenever ``b`` is zero), or
two paths may cancel exactly.  The paper evaluates at the benchmark's natural
state and accepts this risk (its Section V observes that every uncritical
element it found was genuinely never used); this module provides the
robustness extension discussed in DESIGN.md: probe the gradient at several
perturbed states and declare an element uncritical only if its derivative is
zero at *every* probe.

The union of nonzero masks converges quickly: structural zeros (elements the
code never reads) stay zero for every probe, while coincidental zeros move.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["probe_nonzero_mask", "ProbeResult"]


class ProbeResult:
    """Aggregate of a multi-seed probing run.

    Attributes
    ----------
    nonzero:
        Boolean mask -- ``True`` where any probe produced a nonzero
        derivative (i.e. the element is critical).
    per_probe_counts:
        Number of nonzero entries observed at each probe, useful to see the
        union converging.
    n_probes:
        Number of gradient evaluations performed.
    """

    __slots__ = ("nonzero", "per_probe_counts", "n_probes")

    def __init__(self, nonzero: np.ndarray, per_probe_counts: list[int]):
        self.nonzero = nonzero
        self.per_probe_counts = per_probe_counts
        self.n_probes = len(per_probe_counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ProbeResult(n_probes={self.n_probes}, "
                f"critical={int(self.nonzero.sum())}/{self.nonzero.size})")


def probe_nonzero_mask(grad_fn: Callable[[np.ndarray], np.ndarray],
                       base_state: np.ndarray,
                       n_probes: int = 3,
                       relative_scale: float = 1e-3,
                       rng: np.random.Generator | None = None,
                       perturb: Callable[[np.ndarray, np.random.Generator], np.ndarray] | None = None,
                       ) -> ProbeResult:
    """OR together nonzero-gradient masks evaluated at perturbed states.

    Parameters
    ----------
    grad_fn:
        Function mapping a state array to the gradient array of the scalar
        output with respect to that state (same shape as the state).
    base_state:
        The natural program state (e.g. the checkpointed variable value at
        the restart point).  Probe 0 always uses this state unperturbed so a
        single-probe call reproduces the paper's method exactly.
    n_probes:
        Total number of gradient evaluations (>= 1).
    relative_scale:
        Magnitude of the random perturbation relative to the RMS of the base
        state (with an absolute floor for all-zero states).
    rng:
        Random generator for reproducibility.
    perturb:
        Optional custom perturbation ``f(state, rng) -> state``; overrides
        the default additive Gaussian noise.

    Returns
    -------
    ProbeResult
        The union nonzero mask and per-probe counts.
    """
    if n_probes < 1:
        raise ValueError("n_probes must be at least 1")
    base_state = np.asarray(base_state, dtype=np.float64)
    rng = rng or np.random.default_rng(2024)

    rms = float(np.sqrt(np.mean(base_state ** 2)))
    scale = relative_scale * (rms if rms > 0 else 1.0)

    nonzero = np.zeros(base_state.shape, dtype=bool)
    counts: list[int] = []
    for probe in range(n_probes):
        if probe == 0:
            state = base_state
        elif perturb is not None:
            state = perturb(base_state, rng)
        else:
            state = base_state + scale * rng.standard_normal(base_state.shape)
        g = np.asarray(grad_fn(state), dtype=np.float64)
        if g.shape != base_state.shape:
            raise ValueError(
                f"grad_fn returned shape {g.shape}, expected {base_state.shape}")
        mask = g != 0.0
        nonzero |= mask
        counts.append(int(mask.sum()))
    return ProbeResult(nonzero, counts)
