"""Verification utilities for the AD engine.

The paper's method is only as trustworthy as the AD tool behind it, so this
module provides the machinery used by the test-suite (and available to
library users) to validate gradients:

* :func:`finite_difference_grad` -- central finite differences, the
  independent numerical reference.
* :func:`check_gradient` -- compare reverse-mode gradients against finite
  differences on a random subset of elements.
* :func:`check_against_forward` -- compare reverse-mode directional
  derivatives against the independent forward-mode (dual number) engine.
* :func:`zero_pattern_agreement` -- compare the *exact-zero pattern* of a
  reverse-mode gradient against finite differences, which is the property the
  checkpoint analysis actually consumes.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import forward
from .reverse import grad as reverse_grad

__all__ = [
    "finite_difference_grad",
    "check_gradient",
    "check_against_forward",
    "zero_pattern_agreement",
    "GradientCheckResult",
]


class GradientCheckResult:
    """Summary of a gradient comparison.

    Attributes
    ----------
    max_abs_error:
        Largest absolute difference over the checked elements.
    max_rel_error:
        Largest relative difference (with an absolute floor) over the
        checked elements.
    n_checked:
        Number of elements compared.
    passed:
        Whether both error measures are below the requested tolerances.
    """

    __slots__ = ("max_abs_error", "max_rel_error", "n_checked", "passed")

    def __init__(self, max_abs_error: float, max_rel_error: float,
                 n_checked: int, passed: bool) -> None:
        self.max_abs_error = max_abs_error
        self.max_rel_error = max_rel_error
        self.n_checked = n_checked
        self.passed = passed

    def __bool__(self) -> bool:
        return self.passed

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"GradientCheckResult(passed={self.passed}, "
                f"max_abs={self.max_abs_error:.3e}, "
                f"max_rel={self.max_rel_error:.3e}, n={self.n_checked})")


def finite_difference_grad(fun: Callable[[np.ndarray], float], x: np.ndarray,
                           eps: float = 1e-6,
                           indices: Sequence[tuple] | None = None) -> np.ndarray:
    """Central finite-difference gradient of a scalar function.

    Parameters
    ----------
    fun:
        Scalar function of one numpy array.
    x:
        Point at which to differentiate.
    eps:
        Step size (scaled per element by ``max(1, |x_i|)``).
    indices:
        Optional subset of flat element positions to evaluate; the remaining
        entries of the returned array are ``NaN``.  Essential for large
        inputs where a full finite-difference sweep would require
        ``2 * x.size`` function evaluations.
    """
    x = np.asarray(x, dtype=np.float64)
    g = np.full(x.shape, np.nan, dtype=np.float64)
    flat_x = x.reshape(-1)
    flat_g = g.reshape(-1)
    if indices is None:
        positions = range(flat_x.size)
    else:
        positions = [int(np.ravel_multi_index(i, x.shape))
                     if isinstance(i, tuple) else int(i) for i in indices]
    for pos in positions:
        h = eps * max(1.0, abs(flat_x[pos]))
        xp = flat_x.copy()
        xm = flat_x.copy()
        xp[pos] += h
        xm[pos] -= h
        fp = float(fun(xp.reshape(x.shape)))
        fm = float(fun(xm.reshape(x.shape)))
        flat_g[pos] = (fp - fm) / (2.0 * h)
    return g


def check_gradient(fun: Callable[[np.ndarray], float], x: np.ndarray,
                   n_samples: int = 20, eps: float = 1e-6,
                   atol: float = 1e-5, rtol: float = 1e-4,
                   rng: np.random.Generator | None = None) -> GradientCheckResult:
    """Compare the reverse-mode gradient of ``fun`` with finite differences.

    A random subset of ``n_samples`` elements is checked (all elements when
    the input is small).  Returns a :class:`GradientCheckResult`; the check
    passes when every compared element satisfies
    ``|ad - fd| <= atol + rtol * |fd|``.
    """
    x = np.asarray(x, dtype=np.float64)
    rng = rng or np.random.default_rng(0)
    ad_grad = np.asarray(reverse_grad(fun)(x), dtype=np.float64)

    n = x.size
    if n <= n_samples:
        flat_positions = np.arange(n)
    else:
        flat_positions = rng.choice(n, size=n_samples, replace=False)
    fd_grad = finite_difference_grad(fun, x, eps=eps, indices=flat_positions)

    ad_flat = ad_grad.reshape(-1)[flat_positions]
    fd_flat = fd_grad.reshape(-1)[flat_positions]
    abs_err = np.abs(ad_flat - fd_flat)
    rel_err = abs_err / np.maximum(np.abs(fd_flat), 1e-12)
    passed = bool(np.all(abs_err <= atol + rtol * np.abs(fd_flat)))
    return GradientCheckResult(float(abs_err.max(initial=0.0)),
                               float(rel_err.max(initial=0.0)),
                               int(len(flat_positions)), passed)


def check_against_forward(reverse_fun: Callable[[np.ndarray], float],
                          forward_fun: Callable, x: np.ndarray,
                          n_directions: int = 5, atol: float = 1e-8,
                          rtol: float = 1e-6,
                          rng: np.random.Generator | None = None) -> GradientCheckResult:
    """Cross-validate reverse mode against the dual-number forward mode.

    ``reverse_fun`` is written against :mod:`repro.ad.ops`;  ``forward_fun``
    is the same mathematical function written against
    :mod:`repro.ad.forward` helpers.  For random unit directions ``v`` the
    identity ``jvp(f, x, v) == dot(grad f(x), v)`` must hold.
    """
    x = np.asarray(x, dtype=np.float64)
    rng = rng or np.random.default_rng(0)
    g = np.asarray(reverse_grad(reverse_fun)(x), dtype=np.float64)

    max_abs = 0.0
    max_rel = 0.0
    ok = True
    for _ in range(n_directions):
        v = rng.standard_normal(x.shape)
        v /= np.linalg.norm(v.reshape(-1)) or 1.0
        jvp_fwd = forward.jvp(forward_fun, x, v)
        jvp_rev = float(np.vdot(g, v))
        err = abs(jvp_fwd - jvp_rev)
        rel = err / max(abs(jvp_fwd), 1e-12)
        max_abs = max(max_abs, err)
        max_rel = max(max_rel, rel)
        if err > atol + rtol * abs(jvp_fwd):
            ok = False
    return GradientCheckResult(max_abs, max_rel, n_directions, ok)


def zero_pattern_agreement(fun: Callable[[np.ndarray], float], x: np.ndarray,
                           n_samples: int = 50, eps: float = 1e-5,
                           fd_tol: float = 1e-10,
                           rng: np.random.Generator | None = None) -> float:
    """Fraction of sampled elements whose zero/nonzero classification agrees.

    This checks the property the checkpoint analysis relies on: an element
    with an exactly-zero reverse-mode derivative should also show a
    (numerically) zero finite-difference derivative, and vice versa.
    Returns the agreement fraction in ``[0, 1]``.
    """
    x = np.asarray(x, dtype=np.float64)
    rng = rng or np.random.default_rng(0)
    ad_grad = np.asarray(reverse_grad(fun)(x), dtype=np.float64)

    n = x.size
    if n <= n_samples:
        flat_positions = np.arange(n)
    else:
        flat_positions = rng.choice(n, size=n_samples, replace=False)
    fd_grad = finite_difference_grad(fun, x, eps=eps, indices=flat_positions)

    ad_zero = ad_grad.reshape(-1)[flat_positions] == 0.0
    fd_zero = np.abs(fd_grad.reshape(-1)[flat_positions]) <= fd_tol
    return float(np.mean(ad_zero == fd_zero))
