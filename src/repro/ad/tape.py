"""Tape (Wengert list) machinery for reverse-mode automatic differentiation.

The AD engine in :mod:`repro.ad` mirrors, at array granularity, what Enzyme
does at LLVM-IR granularity in the paper: the *forward sweep* records every
primitive operation executed together with enough information to later run
the *reverse sweep* and obtain the derivative of a scalar output with respect
to every element of every watched input array.

A :class:`Tape` is a linear record (a Wengert list) of :class:`Node` objects.
Each node corresponds to one primitive array operation (``add``, ``matmul``,
``getitem`` ...).  Nodes reference their parent nodes, forming a DAG that is
already topologically ordered because the list is append-only and operations
can only consume values that already exist.

Typical usage (normally hidden behind :func:`repro.ad.reverse.gradient`)::

    with Tape() as tape:
        x = tape.watch(np.ones(10), name="x")
        y = (x * 3.0).sum()
    grads = tape.gradient(y, [x])

Design notes
------------
* The tape stores *array-level* operations, not element-level ones, so the
  memory cost is proportional to the number of primitive calls, not to the
  number of floating point operations.  One reverse sweep yields the
  gradient with respect to **all** elements of **all** watched inputs -- the
  property the paper relies on to scrutinise every element of a checkpoint
  variable in a single AD pass.
* Nodes hold a ``vjp`` callable (vector-Jacobian product) produced by the
  primitive that created them.  Constants (plain numpy arrays or scalars)
  never appear as nodes; their gradient is simply discarded.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Node",
    "Tape",
    "get_active_tape",
    "push_tape",
    "pop_tape",
    "no_tape",
]


class Node:
    """A single recorded primitive operation.

    Parameters
    ----------
    op:
        Human readable primitive name (``"mul"``, ``"getitem"`` ...).  Used
        only for debugging and tape statistics.
    parents:
        The :class:`Node` objects whose outputs feed this operation.  Only
        *traced* inputs appear here; constant operands are captured inside
        the ``vjp`` closure instead.
    vjp:
        Callable mapping the incoming cotangent (gradient of the final
        output with respect to this node's output) to a tuple of cotangents
        aligned with ``parents``.
    shape, dtype:
        Shape and dtype of the node's output value, kept for gradient buffer
        allocation during the reverse sweep.
    meta:
        Optional primitive-specific metadata (e.g. the index expression of a
        ``getitem``).  Consumed by the activity analysis in
        :mod:`repro.ad.activity`, never by the reverse sweep itself.
    """

    __slots__ = ("op", "parents", "vjp", "shape", "dtype", "index", "meta")

    def __init__(
        self,
        op: str,
        parents: Sequence["Node"],
        vjp: Callable[[np.ndarray], tuple],
        shape: tuple,
        dtype: np.dtype,
        index: int,
        meta: dict | None = None,
    ) -> None:
        self.op = op
        self.parents = tuple(parents)
        self.vjp = vjp
        self.shape = shape
        self.dtype = dtype
        self.index = index
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Node(#{self.index}, op={self.op!r}, shape={self.shape}, "
            f"nparents={len(self.parents)})"
        )


class _TapeStack(threading.local):
    """Thread-local stack of active tapes (innermost last)."""

    def __init__(self) -> None:
        self.stack: list["Tape | None"] = []


_TAPES = _TapeStack()


def get_active_tape() -> "Tape | None":
    """Return the innermost active tape, or ``None`` when not tracing."""
    if not _TAPES.stack:
        return None
    return _TAPES.stack[-1]


def push_tape(tape: "Tape | None") -> None:
    """Push ``tape`` (or ``None`` to suspend tracing) onto the active stack."""
    _TAPES.stack.append(tape)


def pop_tape() -> "Tape | None":
    """Pop and return the innermost entry of the active tape stack."""
    return _TAPES.stack.pop()


class no_tape:
    """Context manager that temporarily disables tracing.

    Useful for auxiliary computations (diagnostics, convergence monitors)
    inside a traced kernel whose derivatives are irrelevant.
    """

    def __enter__(self) -> None:
        push_tape(None)

    def __exit__(self, *exc: Any) -> None:
        pop_tape()


class Tape:
    """Records primitive operations for a later reverse sweep.

    The tape also owns the *watched inputs*: arrays whose element-wise
    derivatives the caller wants.  :meth:`watch` wraps a plain numpy array
    into a traced :class:`repro.ad.tensor.ADArray` rooted at a leaf node.
    """

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        self.watched: dict[int, str] = {}  # node index -> name
        self._entered = False

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "Tape":
        push_tape(self)
        self._entered = True
        return self

    def __exit__(self, *exc: Any) -> None:
        pop_tape()
        self._entered = False

    # -- recording -------------------------------------------------------
    def add_node(
        self,
        op: str,
        parents: Sequence[Node],
        vjp: Callable[[np.ndarray], tuple],
        shape: tuple,
        dtype: np.dtype,
        meta: dict | None = None,
    ) -> Node:
        """Append a new node to the tape and return it.

        Node indices are dense and append-only; the replay-plan capture
        (:mod:`repro.ad.plan`) relies on them as stable buffer-slot ids,
        so nodes must never be reordered or removed from a live tape.
        """
        node = Node(op, parents, vjp, shape, dtype, index=len(self.nodes),
                    meta=meta)
        self.nodes.append(node)
        return node

    def leaf(self, shape: tuple, dtype: np.dtype, name: str | None = None) -> Node:
        """Create a leaf (input) node with no parents."""
        node = self.add_node("leaf", (), _leaf_vjp, shape, dtype)
        if name is not None:
            self.watched[node.index] = name
        return node

    def watch(self, value: np.ndarray, name: str | None = None):
        """Wrap ``value`` in a traced :class:`ADArray` rooted at a new leaf.

        Returns the traced array; its gradient can be queried after the
        reverse sweep with :meth:`gradient`.
        """
        from .tensor import ADArray  # local import to avoid cycle

        # Derivatives only make sense for floating point data; integer
        # checkpoint variables (loop counters, index arrays) are handled by
        # the activity analysis / criticality rules instead of the tape.
        arr = np.array(value, dtype=np.float64, copy=True)
        node = self.leaf(arr.shape, arr.dtype, name=name)
        return ADArray(arr, node=node, tape=self)

    # -- reverse sweep ---------------------------------------------------
    def gradient(self, output, inputs: Iterable, strict: bool = True):
        """Convenience wrapper around :func:`repro.ad.reverse.backward`.

        Parameters
        ----------
        output:
            A traced scalar :class:`ADArray` (or an array that will be
            summed) produced while this tape was active.
        inputs:
            Traced arrays previously created with :meth:`watch`.
        strict:
            When true, raise if ``output`` is not connected to this tape.
        """
        from .reverse import backward

        return backward(self, output, list(inputs), strict=strict)

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def op_counts(self) -> dict[str, int]:
        """Return a histogram of primitive names recorded on the tape."""
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def nbytes(self) -> int:
        """Rough upper bound of the memory held by node output shapes.

        This estimates the *gradient buffer* footprint of a reverse sweep
        (one float64 buffer per node), which is the dominant cost.
        """
        total = 0
        for node in self.nodes:
            total += int(np.prod(node.shape, dtype=np.int64)) * 8
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tape(nodes={len(self.nodes)}, watched={len(self.watched)})"


def _leaf_vjp(g: np.ndarray) -> tuple:
    """Leaves have no parents; their VJP propagates nothing."""
    return ()
