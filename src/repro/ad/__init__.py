"""Reverse-mode automatic differentiation engine (the "mini-Enzyme" substrate).

The paper uses Enzyme (LLVM-level reverse-mode AD) to compute the derivative
of an application's output with respect to every element of its checkpoint
variables.  This package provides the equivalent capability for the Python
ports of the NPB benchmarks:

* :class:`~repro.ad.tape.Tape` / :class:`~repro.ad.tensor.ADArray` -- record
  array-level primitives during a forward run.
* :mod:`repro.ad.ops` -- the primitive library and numpy-like facade the
  kernels are written against.
* :mod:`repro.ad.reverse` -- the reverse sweep (``grad``, ``value_and_grad``).
* :mod:`repro.ad.segmented` -- iteration-granular (checkpointed) reverse
  sweep: one main-loop iteration's tape at a time, peak memory O(1
  iteration) instead of O(remaining steps).
* :mod:`repro.ad.schedule` -- pluggable boundary-snapshot schedules for the
  segmented sweeps: keep-all, revolve-style binomial (O(log steps) resident
  snapshots plus recomputation) and on-disk spill through the
  :mod:`repro.ckpt` writer/reader.
* :mod:`repro.ad.probes` -- batched multi-probe sweeps: the base state and
  all perturbed probe states stacked along a leading probe axis, one traced
  forward and one reverse sweep yielding every probe's gradients at once
  (in both monolithic and segmented modes).
* :mod:`repro.ad.dual` / :mod:`repro.ad.tangent` -- the production
  forward-mode (JVP) engine: :class:`~repro.ad.dual.TangentArray` state with
  a stacked tangent axis (one slice per direction) pushed through the same
  primitive rule tables by the benchmark's plain ``run`` loop, no tape at
  all; :func:`~repro.ad.tangent.tangent_gradients` is the drop-in
  forward-mode counterpart of ``segmented_gradients``.
* :mod:`repro.ad.forward` -- an independent dual-number forward mode used for
  cross-validation.
* :mod:`repro.ad.activity` -- read-set (liveness) analysis over a recorded
  tape, the conservative baseline and the handler for integer variables.
* :mod:`repro.ad.checks` -- finite-difference and forward/reverse agreement
  checks.
* :mod:`repro.ad.seeding` -- multi-seed probing to separate structural zeros
  from coincidental zeros.

Quick example::

    import numpy as np
    from repro import ad

    def f(x):
        return ad.ops.sum(x[:3] * x[:3])      # only the first 3 elements used

    g = ad.grad(f)(np.arange(5.0))
    # g == [0, 2, 4, 0, 0]: elements 3 and 4 are "uncritical"
"""

from . import activity, checks, dual, forward, ops, probes, reverse, \
    schedule, seeding, segmented, tangent
from .dual import TangentArray
from .ops import *  # noqa: F401,F403 - re-export the numpy-like facade
from .probes import (ProbeBatchingError, batched_gradients, probe_axis,
                     segmented_batched_gradients)
from .reverse import (backward, backward_from_seeds, grad, gradient,
                      value_and_grad)
from .schedule import (SNAPSHOT_SCHEDULES, BinomialSnapshots,
                       SnapshotSchedule, SpillSnapshots, make_schedule)
from .segmented import SweepStats, segmented_gradients
from .tangent import tangent_gradients
from .tape import Tape, no_tape
from .tensor import ADArray, is_traced, value_of

__all__ = [
    "Tape",
    "ADArray",
    "TangentArray",
    "tangent_gradients",
    "no_tape",
    "is_traced",
    "value_of",
    "backward",
    "backward_from_seeds",
    "grad",
    "gradient",
    "value_and_grad",
    "segmented_gradients",
    "SweepStats",
    "SNAPSHOT_SCHEDULES",
    "SnapshotSchedule",
    "BinomialSnapshots",
    "SpillSnapshots",
    "make_schedule",
    "schedule",
    "batched_gradients",
    "segmented_batched_gradients",
    "probe_axis",
    "ProbeBatchingError",
    "ops",
    "probes",
    "reverse",
    "dual",
    "tangent",
    "forward",
    "activity",
    "checks",
    "seeding",
    "segmented",
]
