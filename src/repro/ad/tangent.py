"""Forward-mode (JVP) tangent sweep over the NPB restart computation.

The third production engine next to the monolithic reverse sweep
(:func:`repro.npb.base.NPBBenchmark.traced_restart` + ``backward``) and the
segmented reverse sweep (:func:`repro.ad.segmented.segmented_gradients`).
Every probe of the criticality analysis is a directional derivative, and a
directional derivative needs *no tape at all*: the benchmark's own ``run``
loop is executed on :class:`~repro.ad.dual.TangentArray` state, which pushes
a *stacked tangent axis* -- one slice per direction -- forward through the
primitive library.  Peak memory is a single (value, tangent) state,
independent of how many loop iterations are differentiated through; no
segmentation, snapshot schedule or replay plan is involved.

Cost model versus the reverse sweeps: one forward pass carries up to
``max_directions`` directions at ``O(n_directions)`` state memory, and the
full gradient of a scalar output with respect to ``D`` watched elements
needs ``ceil(D / max_directions)`` passes -- forward mode pays per *input*
element where reverse mode pays per *loop iteration* of tape.  The
crossover is measured in ``benchmarks/test_tangent_sweep.py``.

The gradients agree with the reverse sweeps on the criticality criterion:
both modes share the primitive rule tables of :mod:`repro.ad.ops`, so
structural zeros (the "uncritical" pattern) are produced by the same
conventions and the resulting masks match bitwise (pinned for all eight NPB
ports in ``tests/ad/test_tangent.py``).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from .dual import TangentArray
from .segmented import (SweepStats, _default_steps, cast_gradient,
                        float_state_keys, gradient_dtype)
from .tensor import value_of

__all__ = ["tangent_gradients"]


def _tangent_state_nbytes(state: Mapping[str, Any]) -> int:
    """Resident payload of a tangent-mode state dict (values + tangents)."""
    total = 0
    for value in state.values():
        if isinstance(value, TangentArray):
            total += value.value.nbytes + value.tangent.nbytes
        else:
            total += np.asarray(value_of(value)).nbytes
    return total


def tangent_gradients(bench, state: Mapping[str, Any],
                      watch: Sequence[str] | None = None,
                      steps: int | None = None,
                      stats: SweepStats | None = None,
                      max_directions: int | None = None
                      ) -> dict[str, np.ndarray]:
    """Gradients of the restart output w.r.t. ``watch``, without any tape.

    Drop-in replacement for ``segmented_gradients`` built on forward mode:
    returns the derivative of the benchmark's scalar verification output
    (after ``steps`` more iterations) with respect to every watched entry
    of ``state``, computed by seeding one identity tangent direction per
    watched element and running the benchmark's plain ``run`` loop on
    stacked-tangent state.  Nothing is ever recorded on a tape.

    Parameters
    ----------
    bench:
        A benchmark exposing the concrete restart API (``run(state, n)``
        advancing a state dict and ``output(state)`` reducing it to the
        scalar verification quantity) -- the base NPB surface, no tracing
        hooks required.
    state:
        Concrete checkpoint state the analysis is based on.
    watch:
        State keys to return gradients for; defaults to the benchmark's
        default watch list (every float component of every checkpoint
        variable).
    steps:
        Remaining iterations to analyse; ``None`` derives them from the
        state's step counter (the monolithic default).
    stats:
        Optional :class:`SweepStats` collector; each forward pass reports
        its direction count and peak resident state payload through
        :meth:`SweepStats.observe_tangent`.
    max_directions:
        Upper bound on the directions stacked into one forward pass
        (``None`` = all watched elements in a single pass).  Tangent memory
        scales linearly with the stack width, so capping it trades passes
        for peak footprint; every chunking produces bitwise-identical
        gradients (the stacked axis never mixes directions).

    Returns
    -------
    dict mapping each watched key to its gradient array (the entry's shape,
    in the entry's declared floating dtype -- float32 state entries get
    float32 gradients).
    """
    for hook in ("run", "output"):
        if not callable(getattr(bench, hook, None)):
            raise TypeError(
                f"benchmark {getattr(bench, 'name', bench)!r} does not "
                f"expose {hook}(); the tangent sweep needs the concrete "
                f"restart API (run/output)")

    state = {key: value_of(value) for key, value in state.items()}
    if watch is None:
        watch = bench.default_watch_keys() if callable(
            getattr(bench, "default_watch_keys", None)) \
            else float_state_keys(state)
    watch = list(watch)
    for key in watch:
        if key not in state:
            raise KeyError(f"cannot watch unknown state entry {key!r}")

    if steps is None:
        steps = _default_steps(bench, state)
    if steps < 0:
        raise ValueError("steps must be non-negative")

    # Watched primals get the Tape.watch cast (float64 working precision,
    # fresh copy) so every data-dependent branch and tie mask sees exactly
    # the values the reverse sweep's watched leaves see.
    primals = {key: np.array(state[key], dtype=np.float64, copy=True)
               for key in watch}
    offsets: dict[str, int] = {}
    total = 0
    for key in watch:
        offsets[key] = total
        total += primals[key].size

    flat_grads = {key: np.zeros(primals[key].size, dtype=np.float64)
                  for key in watch}
    if max_directions is None or max_directions >= total:
        max_directions = max(total, 1)
    if max_directions < 1:
        raise ValueError("max_directions must be positive")

    for start in range(0, total, max_directions):
        nc = min(max_directions, total - start)
        current = dict(state)
        for key in watch:
            p = primals[key]
            tangent = np.zeros((nc,) + p.shape, dtype=np.float64)
            lo = max(start, offsets[key])
            hi = min(start + nc, offsets[key] + p.size)
            if lo < hi:
                rows = np.arange(lo - start, hi - start)
                cols = np.arange(lo - offsets[key], hi - offsets[key])
                tangent.reshape(nc, -1)[rows, cols] = 1.0
            current[key] = TangentArray(np.array(p, copy=True), tangent)
        peak = _tangent_state_nbytes(current)
        for _ in range(steps):
            current = bench.run(current, 1)
            peak = max(peak, _tangent_state_nbytes(current))
        out = bench.output(current)
        if isinstance(out, TangentArray):
            if out.shape != ():
                raise ValueError(
                    f"tangent sweep expects a scalar output; got output "
                    f"shape {out.shape}")
            chunk = np.asarray(out.tangent, dtype=np.float64).reshape(nc)
        else:
            # the output never touched a tangent entry: all-zero derivative
            chunk = np.zeros(nc, dtype=np.float64)
        for key in watch:
            lo = max(start, offsets[key])
            hi = min(start + nc, offsets[key] + primals[key].size)
            if lo < hi:
                flat_grads[key][lo - offsets[key]:hi - offsets[key]] = \
                    chunk[lo - start:hi - start]
        if stats is not None:
            stats.observe_tangent(nc, peak)

    return {key: cast_gradient(
                flat_grads[key].reshape(np.shape(state[key])),
                gradient_dtype(state[key]))
            for key in watch}

