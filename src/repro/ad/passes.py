"""Deterministic optimisation passes over the plan IR.

The middle stage of the capture -> IR -> passes -> executor pipeline.
Given a validated :class:`~repro.ad.ir.PlanIR`, :func:`optimize_ir` derives
a :class:`PlanLayout` -- which instructions actually execute, which runs of
elementwise/unary instructions fuse into single kernels, and how slot
lifetimes pack into a smaller arena.  The passes are pure analyses: they
never reorder or rewrite instructions (slot numbering is sacred, see
:mod:`repro.ad.ir`), so the executor's program remains bit-for-bit the
captured program and every derived analysis (activity transfer, concrete
replay) keeps working off the full instruction list.

Passes (``plan_optimize="fuse"``, the default):

**Dead-slot elimination.**  An instruction is live when it is an ancestor
of a gradient root (the traced output, a chained seed slot) or of a value
the plan hands out (a concrete next-state slot, a watched leaf).  Dead
instructions are simply not executed; they receive and contribute no
gradients in the reverse sweep (they are not ancestors of any seed), so
dropping them cannot change a single bit of any gradient or mask.

**Elementwise/unary chain fusion.**  A maximal run of consecutive *live*
fusable instructions (``ewbinary`` / ``minmax`` / ``unary`` /
``negative``) where each interior member is consumed exactly once -- by
the next member -- and is not protected (not a leaf, seed, output or
concrete slot) collapses into one generated kernel.  Bitwise safety is
positional: because the members occupy consecutive live slots, the unfused
reverse sweep evaluates exactly the group's VJPs between the last and
first member with no interloper, so the fused VJP can replicate its
evaluation and accumulation order literally (see
:mod:`repro.ad.exec`).

**Liveness-driven arena packing.**  Slot lifetimes -- definition to last
use, extended through views and pinned open by VJP-retained operands --
are coalesced with a linear-scan over non-overlapping intervals of equal
geometry.  The packed footprint is reported as
``nbytes_estimate_packed`` (same 8-bytes-per-element meter as the
existing ``nbytes_estimate``, so the two are directly comparable) and the
executor maps provably-disjoint fused outputs onto shared preallocated
buffers.

``plan_optimize="off"`` disables all three (the pre-refactor behaviour):
every instruction runs unfused, nothing is packed.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .ir import PlanIR

__all__ = ["PLAN_OPTIMIZES", "DEFAULT_PLAN_OPTIMIZE", "PlanLayout",
           "optimize_ir"]

#: recognised plan-optimisation policies
PLAN_OPTIMIZES = ("fuse", "off")

#: the policy used when none is requested
DEFAULT_PLAN_OPTIMIZE = "fuse"

#: instruction kinds the chain-fusion pass may place in a group
FUSABLE_KINDS = frozenset({"ewbinary", "minmax", "unary", "negative"})

#: kinds whose VJP closure retains the forward *operand* values (so the
#: operand's storage stays live until the reverse sweep)
RETAINS_INPUT_KINDS = frozenset({"ewbinary", "unary", "prod", "redminmax",
                                 "matmul", "matmul_probe"})

#: kinds whose VJP retains their *own output* value
RETAINS_OWN_OUTPUT = frozenset({"unary", "redminmax", "prod"})

#: kinds whose interpreter kernel returns a numpy view of the parent's
#: storage (their output owns no bytes; their uses extend the parent's
#: lifetime); ``getitem`` joins conditionally (basic indexing)
_VIEW_KINDS = frozenset({"reshape", "transpose", "swapaxes", "moveaxis",
                         "squeeze", "expand_dims", "flip"})


def _is_view(instr) -> bool:
    """May the instruction's output alias its parent's storage?"""
    if instr.kind in _VIEW_KINDS:
        return True
    if instr.kind == "getitem":
        # basic indexing yields a view; ascontiguousarray may return the
        # input unchanged, so even contig getitem can alias -- treat both
        # as views for lifetime purposes (the conservative direction)
        _, _idx, advanced, _contig, _in_shape = instr.spec
        return not advanced
    return False


def _owns_storage(instr) -> bool:
    """Does the instruction's output own fresh bytes (packed-metric view)?"""
    if instr.kind in _VIEW_KINDS:
        return False
    if instr.kind == "getitem":
        _, _idx, advanced, contig, _in_shape = instr.spec
        return bool(advanced or contig)
    return True


class PlanLayout:
    """The passes' verdict on one plan IR.

    Attributes
    ----------
    live:
        Per-slot execution flag (dead instructions are skipped).
    groups:
        Fusion groups as ascending slot lists; all but the last member of
        each group are *interior* (their values exist only inside the
        fused kernel).
    fused_ops:
        Total primitive instructions executing inside fused kernels.
    eliminated_slots:
        Non-leaf instructions removed by dead-slot elimination.
    nbytes_packed:
        Liveness-packed arena footprint estimate (8 bytes/element, the
        same meter as the unpacked ``nbytes_estimate``).
    buffer_of:
        Fused-output slot -> shared-pool id, for outputs whose lifetimes
        the packing pass proved disjoint (same shape and dtype); the
        executor allocates one buffer per pool.
    no_out_buffer:
        Group slots that must never write through a preallocated buffer
        (their value escapes the plan via concrete replay).
    optimized:
        True when the pass pipeline ran (``plan_optimize="fuse"``); the
        executor may then swap singleton kernels for statically
        shape-specialised ones (see ``repro.ad.exec._SPECIALIZED``).
    """

    __slots__ = ("live", "groups", "fused_ops", "eliminated_slots",
                 "nbytes_packed", "buffer_of", "no_out_buffer", "optimized")

    def __init__(self, live: list[bool], groups: list[list[int]],
                 fused_ops: int, eliminated_slots: int, nbytes_packed: int,
                 buffer_of: dict[int, Any], no_out_buffer: set[int],
                 optimized: bool = False) -> None:
        self.live = live
        self.groups = groups
        self.fused_ops = fused_ops
        self.eliminated_slots = eliminated_slots
        self.nbytes_packed = nbytes_packed
        self.buffer_of = buffer_of
        self.no_out_buffer = no_out_buffer
        self.optimized = optimized


def _size8(instr) -> int:
    """Slot footprint under the plan meter (8 bytes per element)."""
    return int(np.prod(instr.shape, dtype=np.int64)) * 8


def _protected_slots(ir: PlanIR) -> tuple[set[int], set[int]]:
    """(protected, concrete-slot targets) of ``ir``.

    Protected slots are gradient roots or value escape points: watched
    leaves, chained seed slots, the traced output, and every slot a
    concrete next-state rule hands out.  They must stay materialised in
    the arena and may never be fused away as interiors.
    """
    concrete_targets: set[int] = set()
    if ir.concrete is not None:
        for rule in ir.concrete:
            if rule[1] == "slot":
                concrete_targets.add(rule[2])
    protected = set(ir.leaf_slots) | concrete_targets
    if ir.out_slot is not None:
        protected.add(ir.out_slot)
    for slot in ir.seed_slots.values():
        if slot is not None:
            protected.add(slot)
    return protected, concrete_targets


def _liveness(ir: PlanIR, roots: set[int]) -> list[bool]:
    """Ancestor closure of ``roots`` over the instruction DAG."""
    live = [False] * ir.n_slots
    for slot in roots:
        live[slot] = True
    for instr in reversed(ir.instrs):
        if live[instr.slot]:
            for p in instr.parents:
                live[p] = True
    return live


def _fusion_groups(ir: PlanIR, live: list[bool],
                   protected: set[int]) -> list[list[int]]:
    """Maximal fusable runs of consecutive live instructions."""
    consumers: list[set[int]] = [set() for _ in range(ir.n_slots)]
    for instr in ir.instrs:
        if live[instr.slot] and instr.kind != "leaf":
            for p in instr.parents:
                consumers[p].add(instr.slot)

    groups: list[list[int]] = []
    chain: list[int] = []

    def flush() -> None:
        if len(chain) >= 2:
            groups.append(list(chain))
        chain.clear()

    for instr in ir.instrs:
        slot = instr.slot
        if not live[slot] or instr.kind == "leaf":
            continue
        fusable = instr.kind in FUSABLE_KINDS
        if chain:
            prev = chain[-1]
            if (fusable and prev in instr.parents
                    and consumers[prev] == {slot}
                    and prev not in protected):
                chain.append(slot)
                continue
            flush()
        if fusable:
            chain.append(slot)
    flush()
    return groups


def _lifetimes(ir: PlanIR, live: list[bool], protected: set[int]
               ) -> tuple[list[int], list[bool]]:
    """Per-slot (last forward use, reverse-retained) with view extension.

    ``last_use[s]`` is the highest slot whose forward execution may read
    ``s``'s storage (through any chain of views); ``retained[s]`` means a
    VJP closure keeps the storage alive until the reverse sweep finishes,
    so its lifetime is effectively unbounded.
    """
    n = ir.n_slots
    last_use = list(range(n))
    retained = [False] * n
    for instr in ir.instrs:
        slot = instr.slot
        if not live[slot] or instr.kind == "leaf":
            continue
        if instr.kind in RETAINS_OWN_OUTPUT:
            retained[slot] = True
        input_retained = instr.kind in RETAINS_INPUT_KINDS
        for p in instr.parents:
            last_use[p] = max(last_use[p], slot)
            if input_retained:
                retained[p] = True
    # views share their parent's storage: a use (or retention) of the view
    # is a use of the parent; descending order resolves view chains
    for instr in reversed(ir.instrs):
        slot = instr.slot
        if not live[slot] or instr.kind == "leaf" or not _is_view(instr):
            continue
        root = instr.parents[0]
        last_use[root] = max(last_use[root], last_use[slot])
        if retained[slot]:
            retained[root] = True
    for slot in protected:
        retained[slot] = True
    return last_use, retained


def _packed_nbytes(ir: PlanIR, live: list[bool], protected: set[int],
                   last_use: list[int], retained: list[bool]) -> int:
    """Linear-scan packed footprint (the ``plan_arena_nbytes_packed`` meter).

    Dead slots cost nothing; views share their parent's storage; pinned
    slots (leaves, protected, VJP-retained) keep a dedicated buffer; the
    remaining materialised slots coalesce by equal element count over
    non-overlapping [def, last-use] intervals.
    """
    pinned_bytes = 0
    transient: list[tuple[int, int, int]] = []  # (def, last_use, nelems)
    for instr in ir.instrs:
        slot = instr.slot
        if not live[slot]:
            continue
        if instr.kind == "leaf":
            pinned_bytes += _size8(instr)
            continue
        if not _owns_storage(instr):
            continue
        if retained[slot] or slot in protected:
            pinned_bytes += _size8(instr)
            continue
        transient.append((slot, last_use[slot],
                          int(np.prod(instr.shape, dtype=np.int64))))

    packed = 0
    free: dict[int, list[int]] = {}   # nelems -> expiry slots of free bufs
    for start, stop, nelems in transient:  # already in def order
        expiries = free.setdefault(nelems, [])
        reused = False
        for i, expiry in enumerate(expiries):
            if expiry < start:
                expiries[i] = stop
                reused = True
                break
        if not reused:
            expiries.append(stop)
            packed += nelems * 8
    return pinned_bytes + packed


def _shared_buffers(ir: PlanIR, groups: list[list[int]],
                    protected: set[int], last_use: list[int],
                    retained: list[bool]) -> dict[int, Any]:
    """Shared-pool assignment for fused outputs with disjoint lifetimes."""
    candidates = [g[-1] for g in groups
                  if not retained[g[-1]] and g[-1] not in protected]
    candidates.sort()
    buffer_of: dict[int, Any] = {}
    pools: dict[tuple, list[list[Any]]] = {}  # key -> [[pool_id, expiry]]
    serial = 0
    for slot in candidates:
        instr = ir.instrs[slot]
        key = (tuple(instr.shape), instr.dtype)
        entries = pools.setdefault(key, [])
        for entry in entries:
            if entry[1] < slot:
                entry[1] = last_use[slot]
                buffer_of[slot] = entry[0]
                break
        else:
            pool_id = (key, serial)
            serial += 1
            entries.append([pool_id, last_use[slot]])
            buffer_of[slot] = pool_id
    return buffer_of


def optimize_ir(ir: PlanIR, optimize: str = DEFAULT_PLAN_OPTIMIZE
                ) -> PlanLayout:
    """Run the deterministic pass pipeline over ``ir``."""
    if optimize not in PLAN_OPTIMIZES:
        raise ValueError(f"unknown plan_optimize {optimize!r}; "
                         f"choose from {PLAN_OPTIMIZES}")
    n = ir.n_slots
    unpacked = sum(_size8(instr) for instr in ir.instrs)
    if optimize == "off":
        return PlanLayout(live=[True] * n, groups=[], fused_ops=0,
                          eliminated_slots=0, nbytes_packed=unpacked,
                          buffer_of={}, no_out_buffer=set(range(n)),
                          optimized=False)

    protected, concrete_targets = _protected_slots(ir)
    live = _liveness(ir, protected)
    eliminated = sum(1 for instr in ir.instrs
                     if not live[instr.slot] and instr.kind != "leaf")
    groups = _fusion_groups(ir, live, protected)
    last_use, retained = _lifetimes(ir, live, protected)
    nbytes_packed = _packed_nbytes(ir, live, protected, last_use, retained)
    buffer_of = _shared_buffers(ir, groups, protected, last_use, retained)
    return PlanLayout(live=live, groups=groups,
                      fused_ops=sum(len(g) for g in groups),
                      eliminated_slots=eliminated,
                      nbytes_packed=min(nbytes_packed, unpacked),
                      buffer_of=buffer_of,
                      no_out_buffer=set(concrete_targets),
                      optimized=True)
