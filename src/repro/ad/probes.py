"""Batched multi-probe sweeps: all probe gradients from a single trace.

The criticality analysis guards against coincidental zero derivatives by
probing the derivative at several perturbed base states and OR-ing the
nonzero masks (``CriticalityAnalyzer(n_probes=...)``).  Executed naively,
``n_probes`` probes cost ``n_probes`` full traced forward runs and reverse
sweeps -- the recording overhead (the expensive, Python-level part of the
tape engine) is paid once per probe even though every probe records the
*same* primitives on slightly different values.

This module amortises that overhead with a **batched probe axis**, in the
spirit of vectorised-trace engines such as ``udiff``'s diff-array container:

1. the base state and all perturbed states are stacked along a new leading
   ``probe`` axis (:func:`stack_states`);
2. **one** traced forward run executes with the probe axis active
   (:func:`probe_axis`); every primitive in :mod:`repro.ad.ops` consults the
   active probe context and broadcasts over the leading axis -- elementwise
   operations are free, while reductions, shape manipulation, indexing and
   ``matmul`` shift their axis/index semantics so the probe axis is never
   reduced, reshaped away or indexed into;
3. **one** reverse sweep propagates cotangent buffers that carry the probe
   axis, yielding the gradients of *all* probes at once.  Probe slices never
   interact (no adjusted primitive mixes data across the leading axis), so
   seeding the batched scalar output with ones is exactly the per-probe
   gradient stack.

Both sweep strategies are supported: :func:`batched_gradients` is the
batched counterpart of ``traced_restart`` + ``backward`` (monolithic tape),
:func:`segmented_batched_gradients` the counterpart of
:func:`repro.ad.segmented.segmented_gradients` -- it snapshots *batched*
boundary states and re-traces one iteration at a time, so peak tape memory
stays O(1 iteration) regardless of the probe count.

Benchmarks whose kernels cannot broadcast over a leading axis (data-
dependent control flow on traced scalars, shape introspection that does not
go through :func:`repro.ad.ops.logical_shape`, ...) raise -- typically a
:class:`ProbeBatchingError` or a numpy shape error -- and the criticality
analyzer falls back to the per-probe loop automatically.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from .plan import DEFAULT_TRACE_CACHE, TRACE_CACHES, PlanCache
from .reverse import backward, backward_from_seeds
from .schedule import (DEFAULT_SNAPSHOT_SCHEDULE, make_schedule,
                       snapshot_state)
from .segmented import (SweepStats, _default_steps, cast_gradient,
                        float_state_keys, gradient_dtype)
from .tensor import ADArray, value_of

__all__ = [
    "ProbeBatchingError",
    "probe_axis",
    "probe_axis_size",
    "stack_states",
    "batched_gradients",
    "segmented_batched_gradients",
]


class ProbeBatchingError(RuntimeError):
    """A primitive (or benchmark) cannot broadcast over the probe axis.

    Raised during batched tracing when an operation would break the
    leading-probe-axis invariant; callers treat it as "use the per-probe
    path instead", never as data corruption.
    """


class _ProbeState(threading.local):
    """Thread-local probe-batch context (``None`` = inactive)."""

    def __init__(self) -> None:
        self.size: int | None = None


_PROBE = _ProbeState()


def probe_axis_size() -> int | None:
    """Size of the active probe axis, or ``None`` outside batched tracing."""
    return _PROBE.size


@contextmanager
def probe_axis(n: int) -> Iterator[None]:
    """Activate probe-batched semantics for all traced primitives.

    While active, every traced array is understood to carry a leading probe
    axis of length ``n``; the primitives in :mod:`repro.ad.ops` adjust their
    axis/index handling so the probe axis is preserved end to end.  Contexts
    do not nest: the probe axis is a property of one whole trace.
    """
    n = int(n)
    if n < 1:
        raise ValueError("probe axis size must be at least 1")
    if _PROBE.size is not None:
        raise ProbeBatchingError("probe-batched traces cannot nest")
    _PROBE.size = n
    try:
        yield
    finally:
        _PROBE.size = None


def stack_states(states: Sequence[Mapping[str, Any]],
                 keys: Sequence[str]) -> dict[str, Any]:
    """Stack ``keys`` of several state dicts along a new leading probe axis.

    Returns a copy of ``states[0]`` whose ``keys`` entries are replaced by
    ``(n_probes,) + shape`` float64 stacks; all other entries (integer
    counters, unperturbed auxiliaries) are shared from the base state,
    exactly as the per-probe path shares them.  The float64 cast mirrors
    :meth:`repro.ad.tape.Tape.watch`, which casts every watched leaf to
    float64 in the per-probe path too -- both strategies trace identical
    float64 values regardless of the state's declared dtypes (the dtype
    preservation in ``_perturb_state`` matters for the *concrete* forward
    runs and the stored state, not for the traced leaves).
    """
    if not states:
        raise ValueError("need at least one probe state")
    stacked = dict(states[0])
    for key in keys:
        parts = []
        for state in states:
            if key not in state:
                raise KeyError(f"probe state is missing entry {key!r}")
            parts.append(np.asarray(value_of(state[key]), dtype=np.float64))
        stacked[key] = np.stack(parts)
    return stacked


def _require_hooks(bench, hooks: Sequence[str]) -> None:
    for hook in hooks:
        if not callable(getattr(bench, hook, None)):
            raise ProbeBatchingError(
                f"benchmark {getattr(bench, 'name', bench)!r} does not "
                f"expose {hook}(); the batched probe sweep needs the "
                f"probe-tracing API (use probe_batching='per-probe')")


def batched_gradients(bench, states: Sequence[Mapping[str, Any]],
                      watch: Sequence[str] | None = None,
                      steps: int | None = None,
                      stats: SweepStats | None = None
                      ) -> dict[str, np.ndarray]:
    """All probes' gradients from one monolithic trace and one sweep.

    Batched counterpart of ``bench.traced_restart`` + ``backward``: the
    states in ``states`` (base state first, perturbed probes after) are
    stacked along a leading probe axis, the remaining computation is traced
    once, and a single reverse sweep returns, for every watched key, the
    stacked gradient array of shape ``(len(states),) + entry_shape`` --
    slice ``[p]`` is bitwise what a separate sweep over ``states[p]`` would
    produce for every primitive whose batched numpy kernel matches its
    unbatched one (all elementwise operations; the NPB kernels' matmul
    shapes are pinned equivalent by ``tests/ad/test_probes.py``).

    Parameters
    ----------
    bench:
        Benchmark exposing ``traced_restart_probes`` (see
        :class:`repro.npb.base.NPBBenchmark`).
    states:
        One concrete state dict per probe; unwatched entries are taken from
        ``states[0]``.
    watch:
        State keys to differentiate; defaults to the benchmark's default
        watch list.
    steps:
        Remaining iterations to analyse (``None`` = the state's default).
    stats:
        Optional :class:`~repro.ad.segmented.SweepStats` observing the tape.
    """
    states = list(states)
    if not states:
        raise ValueError("need at least one probe state")
    _require_hooks(bench, ("traced_restart_probes",))
    tape, leaves, out = bench.traced_restart_probes(states, watch=watch,
                                                    steps=steps)
    if stats is not None:
        stats.observe(tape)
    keys = list(leaves)
    grads = backward(tape, out, [leaves[key] for key in keys], strict=False)
    # same dtype contract as the segmented sweeps: report each gradient in
    # its state entry's declared floating dtype
    return {key: cast_gradient(g, gradient_dtype(states[0][key]))
            for key, g in zip(keys, grads)}


def segmented_batched_gradients(bench, states: Sequence[Mapping[str, Any]],
                                watch: Sequence[str] | None = None,
                                steps: int | None = None,
                                stats: SweepStats | None = None,
                                snapshot_schedule: str =
                                DEFAULT_SNAPSHOT_SCHEDULE,
                                snapshot_budget: int | None = None,
                                spill_dir: str | Path | None = None,
                                trace_cache: str = DEFAULT_TRACE_CACHE,
                                plan_cache: PlanCache | None = None
                                ) -> dict[str, np.ndarray]:
    """All probes' gradients, one *batched* iteration tape at a time.

    Batched counterpart of :func:`repro.ad.segmented.segmented_gradients`:
    the concrete forward runs per probe (cheap, recording-free numpy),
    boundary snapshots are stacked along the probe axis, and each segment is
    re-traced and swept exactly once with batched cotangent buffers.  Peak
    tape memory stays bounded by one iteration's (batched) tape no matter
    how many probes are carried.

    Boundary snapshots are held by one :mod:`repro.ad.schedule` instance per
    probe: ``snapshot_schedule="all"`` keeps every boundary,
    ``"binomial"``/``snapshot_budget`` keeps O(log steps) per probe and
    recomputes the rest, ``"spill"``/``spill_dir`` round-trips the
    boundaries through the :mod:`repro.ckpt` writer/reader -- all with
    bitwise-identical gradients (scratch directories are removed on return
    and on exception).

    Returns a dict mapping each watched key to its stacked gradient array of
    shape ``(len(states),) + entry_shape`` in the entry's declared floating
    dtype.

    ``trace_cache="plan"`` (the default) captures the batched step/output
    structure once, compiles it to a replay plan (:mod:`repro.ad.plan`) and
    replays further segments without tracing; the per-probe concrete
    forward runs additionally replay through the *plain* step plan when a
    shared ``plan_cache`` already holds one.  Gradients are
    bitwise-identical either way.
    """
    states = [{key: value_of(val) for key, val in state.items()}
              for state in states]
    if not states:
        raise ValueError("need at least one probe state")
    _require_hooks(bench, ("traced_step_probes", "traced_output_probes",
                           "run"))
    if trace_cache not in TRACE_CACHES:
        raise ValueError(f"unknown trace_cache {trace_cache!r}; "
                         f"choose from {TRACE_CACHES}")
    base = states[0]

    if watch is None:
        watch = bench.default_watch_keys() if callable(
            getattr(bench, "default_watch_keys", None)) \
            else float_state_keys(base)
    watch = list(watch)
    for key in watch:
        if key not in base:
            raise KeyError(f"cannot watch unknown state entry {key!r}")

    if steps is None:
        steps = _default_steps(bench, base)
    if steps < 0:
        raise ValueError("steps must be non-negative")
    n_probes = len(states)

    # chain every float entry, not just the requested keys (a dependence may
    # flow through an unwatched auxiliary -- see repro.ad.segmented)
    chain = float_state_keys(base)

    planner = out_planner = cache = plan_base = None
    advance = lambda s: bench.run(s, 1)  # noqa: E731 - rebound below
    if trace_cache == "plan":
        cache = plan_cache if plan_cache is not None else PlanCache()
        plan_base = cache.counters()
        planner = cache.planner(bench, "step", chain, n_probes=n_probes)
        out_planner = cache.planner(bench, "output", chain,
                                    n_probes=n_probes)
        # the batched traces cannot serve the per-probe concrete forward,
        # but a *plain* step plan from the same shared cache (a per-probe
        # sweep, an earlier analysis) can
        advance = cache.planner(bench, "step", chain).advance

    # one schedule per probe: the per-probe boundary states are what the
    # schedules store/recompute/spill; stacking happens on fetch.  Built
    # inside the try so a failure partway through construction (e.g. a
    # spill mkdtemp error) still cleans up the schedules already created.
    schedules: list = []
    try:
        for _ in states:
            schedules.append(make_schedule(snapshot_schedule, steps=steps,
                                           advance=advance,
                                           budget=snapshot_budget,
                                           spill_dir=spill_dir, bench=bench))
        # -- forward pass: concrete per-probe runs, schedule-owned ---------
        # snapshots (real copies, so an in-place-mutating ``run`` cannot
        # corrupt earlier boundaries).  The concrete forward is recording-
        # free numpy; the batching win is in the traced segments below,
        # where the per-primitive recording overhead is paid once instead
        # of once per probe.
        for schedule, probe_state in zip(schedules, states):
            current = snapshot_state(probe_state)
            schedule.record(0, current)
            for t in range(1, steps + 1):
                current = advance(current)
                schedule.record(t, current)
            del current

        def stacked_boundary(k: int) -> dict[str, Any]:
            per_probe = [schedule.fetch(k) for schedule in schedules]
            boundary = dict(per_probe[0])
            for key in chain:
                boundary[key] = np.stack(
                    [np.asarray(bounds[key], dtype=np.float64)
                     for bounds in per_probe])
            return boundary

        # -- output segment ------------------------------------------------
        last = stacked_boundary(steps)
        if out_planner is not None:
            cotangents = out_planner.output_cotangents(last, stats=stats)
        else:
            tape, leaves, out = bench.traced_output_probes(last, n_probes,
                                                           watch=chain)
            if stats is not None:
                stats.observe(tape)
            if isinstance(out, ADArray) and out.node is not None:
                grads = backward(tape, out, [leaves[key] for key in chain],
                                 strict=False)
                cotangents = dict(zip(chain, grads))
            else:
                cotangents = None
            del tape, leaves, out
        if cotangents is None:
            cotangents = {key: np.zeros(np.shape(last[key]),
                                        dtype=gradient_dtype(base[key]))
                          for key in chain}
        del last

        # -- reverse walk: one batched iteration tape at a time ------------
        for k in range(steps - 1, -1, -1):
            boundary = stacked_boundary(k)
            if planner is not None:
                cotangents = planner.step_cotangents(boundary, cotangents,
                                                     stats=stats)
                del boundary
                continue
            tape, leaves, next_state = bench.traced_step_probes(
                boundary, n_probes, watch=chain)
            if stats is not None:
                stats.observe(tape)
            seeds: list[tuple[ADArray, np.ndarray]] = []
            for key in chain:
                produced = next_state.get(key)
                if isinstance(produced, ADArray) and produced.node is not None:
                    seeds.append((produced, cotangents[key]))
            grads = backward_from_seeds(tape, seeds,
                                        [leaves[key] for key in chain])
            cotangents = dict(zip(chain, grads))
            del tape, leaves, next_state, boundary
    finally:
        if stats is not None:
            stats.observe_schedule(*schedules)
            stats.trace_cache = trace_cache
            if cache is not None:
                stats.observe_plan(cache, since=plan_base)
        for schedule in schedules:
            schedule.close()

    # preserve each entry's declared floating dtype (no silent float64
    # upcast of float32 variables -- see repro.ad.segmented)
    return {key: cast_gradient(cotangents[key], gradient_dtype(base[key]))
            if key in cotangents
            else np.zeros((n_probes,) + np.shape(base[key]),
                          dtype=gradient_dtype(base[key]))
            for key in watch}
