"""On-disk storage accounting (the measured side of Table III).

:mod:`repro.core.report` predicts checkpoint sizes from element counts; this
module *measures* them by actually writing full and pruned checkpoints with
the homemade library and comparing file sizes.  The Table III experiment
uses the measured numbers, so the container/auxiliary-file overheads are
honestly included in what we report.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.core.analysis import ScrutinyResult

from .writer import write_full_checkpoint, write_pruned_checkpoint

__all__ = ["StorageComparison", "measure_checkpoint_storage"]


@dataclass(frozen=True)
class StorageComparison:
    """Measured checkpoint sizes of one benchmark (one Table III row)."""

    benchmark: str
    full_nbytes: int
    pruned_nbytes: int
    aux_nbytes: int
    full_payload_nbytes: int
    pruned_payload_nbytes: int

    @property
    def saved_fraction(self) -> float:
        """Fraction of checkpoint-file storage saved by pruning."""
        if self.full_nbytes == 0:
            return 0.0
        return 1.0 - self.pruned_nbytes / self.full_nbytes

    @property
    def payload_saved_fraction(self) -> float:
        """Saved fraction over element payload bytes only (no container
        headers) -- the quantity that converges to the uncritical rate."""
        if self.full_payload_nbytes == 0:
            return 0.0
        return 1.0 - self.pruned_payload_nbytes / self.full_payload_nbytes

    @property
    def net_saved_fraction(self) -> float:
        """Saved fraction when the auxiliary file is charged as overhead."""
        if self.full_nbytes == 0:
            return 0.0
        return 1.0 - (self.pruned_nbytes + self.aux_nbytes) / self.full_nbytes

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.benchmark}: full {self.full_nbytes} B -> pruned "
                f"{self.pruned_nbytes} B (+{self.aux_nbytes} B aux), "
                f"{100.0 * self.saved_fraction:.1f}% saved")


def measure_checkpoint_storage(bench, result: ScrutinyResult,
                               directory: str | Path | None = None,
                               keep_files: bool = False) -> StorageComparison:
    """Write a full and a pruned checkpoint of the analysed state and
    compare their on-disk sizes.

    Parameters
    ----------
    bench:
        The benchmark the analysis belongs to.
    result:
        A :class:`~repro.core.analysis.ScrutinyResult` whose ``state`` is the
        checkpointed state and whose ``variables`` drive the pruning.
    directory:
        Where the two checkpoint files (and the auxiliary file) are written;
        ``None`` (the default) measures inside a temporary directory that is
        removed afterwards.
    keep_files:
        When false (the default) the measurement checkpoints are deleted
        after their sizes are read, so repeated Table III runs never
        accumulate stale ``*_full.ckpt`` / ``*_pruned.ckpt`` / aux files
        that could skew a later re-measurement.  Requires an explicit
        ``directory``; combining ``keep_files=True`` with the throwaway
        default tempdir would silently discard the files anyway, so that is
        rejected.
    """
    if directory is None:
        if keep_files:
            raise ValueError("keep_files=True requires an explicit "
                             "directory; the default measures inside a "
                             "temporary directory that is always removed")
        with tempfile.TemporaryDirectory(prefix="repro_storage_") as tmp:
            return _measure_in(bench, result, Path(tmp), keep_files=True)
    return _measure_in(bench, result, Path(directory), keep_files=keep_files)


def _measure_in(bench, result: ScrutinyResult, directory: Path,
                keep_files: bool) -> StorageComparison:
    state = result.state
    if not state:
        raise ValueError("ScrutinyResult carries no state to checkpoint")

    full_path = directory / f"{bench.name.lower()}_full.ckpt"
    pruned_path = directory / f"{bench.name.lower()}_pruned.ckpt"
    full = write_full_checkpoint(full_path, bench, state, step=result.step)
    pruned = write_pruned_checkpoint(pruned_path, bench, state,
                                     result.variables, step=result.step)

    comparison = StorageComparison(
        benchmark=bench.name,
        full_nbytes=full.nbytes,
        pruned_nbytes=pruned.nbytes,
        aux_nbytes=pruned.aux_nbytes,
        full_payload_nbytes=result.full_nbytes,
        pruned_payload_nbytes=result.pruned_nbytes,
    )
    if not keep_files:
        for written in (full, pruned):
            for path in (written.path, written.aux_path):
                if path is not None:
                    Path(path).unlink(missing_ok=True)
    return comparison
