"""The auxiliary region file of pruned checkpoints.

The paper (Section III-B): *"We save the location of critical elements in an
auxiliary file ... The auxiliary file only records the start and end
locations of the region of continuous critical elements."*

This module serialises exactly that: for every pruned state key, the sorted
list of half-open ``[start, stop)`` runs of critical elements over the
flattened array.  Layout::

    +-----------------+---------------------+-------------+---------------+
    | magic (8 bytes) | header length (u64) | JSON header | int64 pairs   |
    +-----------------+---------------------+-------------+---------------+

The header maps each key to the number of its runs; the payload is the
concatenation of all runs as little-endian ``int64`` (start, stop) pairs in
header order.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.regions import (Region, regions_from_array, regions_to_array,
                                validate_regions)

from .format import CheckpointFormatError

__all__ = [
    "AUX_MAGIC",
    "write_aux_file",
    "read_aux_file",
    "aux_payload_nbytes",
]


#: file magic of auxiliary region files
AUX_MAGIC = b"RPAUX001"

_LENGTH_STRUCT = struct.Struct("<Q")


def aux_payload_nbytes(regions_by_key: Mapping[str, Sequence[Region]]) -> int:
    """Payload bytes of the (start, stop) records (16 bytes per run)."""
    return 16 * sum(len(regions) for regions in regions_by_key.values())


def write_aux_file(path: str | Path,
                   regions_by_key: Mapping[str, Sequence[Region]]) -> int:
    """Write the auxiliary file and return its total byte size."""
    path = Path(path)
    keys = list(regions_by_key)
    header = {
        "keys": [{"key": key, "n_regions": len(regions_by_key[key])}
                 for key in keys],
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(AUX_MAGIC)
        fh.write(_LENGTH_STRUCT.pack(len(header_bytes)))
        fh.write(header_bytes)
        for key in keys:
            regions = list(regions_by_key[key])
            validate_regions(regions)
            fh.write(regions_to_array(regions).astype("<i8").tobytes())
    return path.stat().st_size


def read_aux_file(path: str | Path) -> dict[str, list[Region]]:
    """Read an auxiliary file back into per-key region lists."""
    path = Path(path)
    with open(path, "rb") as fh:
        magic = fh.read(len(AUX_MAGIC))
        if magic != AUX_MAGIC:
            raise CheckpointFormatError(
                f"{path} is not an auxiliary region file (bad magic "
                f"{magic!r})")
        (header_len,) = _LENGTH_STRUCT.unpack(fh.read(_LENGTH_STRUCT.size))
        header_bytes = fh.read(header_len)
        if len(header_bytes) != header_len:
            raise CheckpointFormatError(f"{path} is truncated in the header")
        header = json.loads(header_bytes)
        out: dict[str, list[Region]] = {}
        for entry in header["keys"]:
            key = str(entry["key"])
            count = int(entry["n_regions"])
            blob = fh.read(16 * count)
            if len(blob) != 16 * count:
                raise CheckpointFormatError(
                    f"{path} is truncated in the regions of {key!r}")
            pairs = np.frombuffer(blob, dtype="<i8").reshape(count, 2)
            out[key] = regions_from_array(pairs)
    return out
