"""Failure injection and the restart-correctness harness (Section IV-C).

The paper validates the AD analysis by checkpointing only the critical
elements, failing the run, restarting from the pruned checkpoint and letting
the benchmark's own verification phase judge the result: *"In principle, the
uncritical elements should not impact the computation correctness even if
their values are altered by system failures."*

This module provides the pieces of that experiment:

* :class:`SimulatedFailure` -- the exception the main-loop driver raises at
  the configured failure step (standing in for a node crash);
* :func:`corrupt_state` -- overwrite the uncritical (or, for the negative
  control, the critical) elements of a state with garbage, modelling the
  data loss a failure causes in memory regions that were not checkpointed;
* :func:`run_failure_scenario` -- the end-to-end harness: run with periodic
  (pruned or full) checkpoints, fail, rebuild a base state with corrupted
  non-checkpointed data, restart from the latest checkpoint and verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.criticality import VariableCriticality
from repro.npb.base import concrete_state

from .manager import CheckpointManager, run_with_checkpoints
from .restart import RestartOutcome, restore_state

__all__ = [
    "SimulatedFailure",
    "corrupt_state",
    "FailureScenarioResult",
    "run_failure_scenario",
]


class SimulatedFailure(RuntimeError):
    """Raised by the main-loop driver to model a crash at a step boundary."""

    def __init__(self, step: int, state: Mapping[str, Any]) -> None:
        super().__init__(f"simulated failure after main-loop step {step}")
        self.step = int(step)
        self.state = dict(state)


def corrupt_state(state: Mapping[str, Any],
                  criticality: Mapping[str, VariableCriticality],
                  where: str = "uncritical",
                  magnitude: float = 1.0e3,
                  rng: np.random.Generator | None = None) -> dict[str, Any]:
    """Overwrite selected elements of a state copy with garbage.

    Parameters
    ----------
    state:
        The state to corrupt (not modified; a corrupted copy is returned).
    criticality:
        Per-variable criticality masks.
    where:
        ``"uncritical"`` corrupts only uncritical elements (the paper's
        claim: this must not matter), ``"critical"`` corrupts only critical
        elements (the negative control: this must break verification),
        ``"all"`` corrupts everything.
    magnitude:
        Scale of the uniform garbage written into the selected elements.
    rng:
        Source of garbage values (fixed default for reproducibility).
    """
    if where not in ("uncritical", "critical", "all"):
        raise ValueError(f"unknown corruption target {where!r}")
    rng = rng or np.random.default_rng(13)
    corrupted = concrete_state(state)
    for crit in criticality.values():
        if where == "uncritical":
            target = ~crit.mask
        elif where == "critical":
            target = crit.mask
        else:
            target = np.ones_like(crit.mask)
        if not target.any():
            continue
        for key in crit.variable.state_keys():
            if key not in corrupted:
                continue
            arr = np.array(np.asarray(corrupted[key], dtype=np.float64),
                           copy=True)
            if arr.shape != target.shape:
                continue
            garbage = magnitude * (rng.random(arr.shape) - 0.5)
            arr = np.where(target, garbage, arr)
            if np.issubdtype(np.asarray(corrupted[key]).dtype, np.integer):
                corrupted[key] = arr.astype(np.asarray(corrupted[key]).dtype)
            else:
                corrupted[key] = arr
    return corrupted


@dataclass
class FailureScenarioResult:
    """Outcome of one end-to-end failure/restart scenario."""

    benchmark: str
    mode: str
    corrupted: str
    unrecovered: str | None
    fail_step: int
    restart_step: int
    outcome: RestartOutcome

    @property
    def verification_passed(self) -> bool:
        """Did the post-restart verification pass?"""
        return self.outcome.passed

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "PASSED" if self.verification_passed else "FAILED"
        unrecovered = (f", {self.unrecovered} elements left unrecovered"
                       if self.unrecovered else "")
        return (f"{self.benchmark}: {self.mode} checkpoints, failure after "
                f"step {self.fail_step}, corrupted {self.corrupted} "
                f"elements{unrecovered}, restarted at step "
                f"{self.restart_step}: verification {status}")


def run_failure_scenario(bench, directory: str | Path,
                         criticality: Mapping[str, VariableCriticality],
                         interval: int = 1,
                         mode: str = "pruned",
                         fail_at_step: int | None = None,
                         corrupt: str = "uncritical",
                         unrecovered: str | None = None,
                         magnitude: float = 1.0e3,
                         rng: np.random.Generator | None = None
                         ) -> FailureScenarioResult:
    """The Section IV-C experiment for one benchmark.

    Runs ``bench`` with periodic checkpoints of the requested ``mode``,
    injects a failure after ``fail_at_step`` (default: ~3/4 of the run),
    rebuilds a restart base state whose non-checkpointed memory is corrupted
    according to ``corrupt``, restores the latest checkpoint on top of it,
    finishes the run and verifies.

    ``unrecovered`` models a checkpoint that fails to bring back part of the
    state: the named element class (``"critical"`` for the paper's negative
    control) is re-corrupted *after* the restore, so the restart proceeds
    without those values.  The verification is then expected to fail, which
    is exactly the evidence that those elements were critical.
    """
    directory = Path(directory)
    if fail_at_step is None:
        # fail late in the run, but always after at least one checkpoint
        fail_at_step = max((3 * bench.total_steps) // 4, interval + 1)
        fail_at_step = min(fail_at_step, bench.total_steps)
    if fail_at_step <= interval:
        raise ValueError(
            f"failure at step {fail_at_step} happens before the first "
            f"checkpoint (interval {interval}); nothing could be restored")
    manager = CheckpointManager(directory, bench, interval=interval,
                                mode=mode, criticality=criticality)
    try:
        run_with_checkpoints(bench, manager, fail_at_step=fail_at_step)
    except SimulatedFailure:
        pass
    else:  # pragma: no cover - defensive guard
        raise RuntimeError("failure was configured but never triggered")

    latest = manager.latest()
    if latest is None:
        raise RuntimeError(
            f"no checkpoint available before the failure at step "
            f"{fail_at_step}; lower the interval")

    # the restart base: a fresh initial state whose selected elements are
    # garbage -- whatever was not checkpointed cannot be trusted
    base_state = corrupt_state(bench.initial_state(), criticality,
                               where=corrupt, magnitude=magnitude, rng=rng)
    state = restore_state(latest, bench, base_state=base_state)
    if unrecovered is not None:
        state = corrupt_state(state, criticality, where=unrecovered,
                              magnitude=magnitude, rng=rng)
    remaining = max(bench.total_steps - latest.step, 0)
    # replaying from a deliberately corrupted state may legitimately blow up
    # (that is what the negative control demonstrates); keep it quiet
    with np.errstate(all="ignore"):
        final_state = bench.run(state, remaining)
        verification = bench.verify(final_state)
    outcome = RestartOutcome(
        benchmark=bench.name,
        mode=latest.mode,
        restart_step=int(latest.step),
        steps_replayed=int(remaining),
        verification=verification,
        final_state=concrete_state(final_state),
    )
    return FailureScenarioResult(
        benchmark=bench.name,
        mode=mode,
        corrupted=corrupt,
        unrecovered=unrecovered,
        fail_step=int(fail_at_step),
        restart_step=int(latest.step),
        outcome=outcome,
    )
