"""Incremental (delta) checkpointing, composable with criticality pruning.

The paper's related-work section cites page-based incremental checkpointing
(Vasavada et al.) as an orthogonal way of shrinking checkpoints: only write
what changed since the last checkpoint.  This module implements an
element-level version of that idea so the two reductions can be compared
and *combined*:

* :func:`changed_mask` -- which elements of a state differ from the
  previously checkpointed state;
* :func:`write_incremental_checkpoint` -- store only the changed elements
  (optionally intersected with the critical elements of a criticality
  analysis), with the runs recorded in the usual auxiliary file;
* :func:`apply_incremental` / :func:`restore_chain` -- rebuild the state by
  replaying a base checkpoint plus its chain of deltas.

The NPB access patterns make the combination interesting: BT/SP/LU/MG only
ever *write* interior points, so an incremental checkpoint is automatically
close to the pruned one; FT never rewrites its spectrum at all, so after the
first checkpoint the deltas collapse to the accumulator variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.criticality import VariableCriticality
from repro.core.regions import Region, encode_mask

from .auxfile import read_aux_file, write_aux_file
from .format import (CheckpointFormatError, CheckpointHeader, RecordSpec,
                     read_container, write_container)
from .reader import read_checkpoint
from .restart import restore_state
from .writer import WrittenCheckpoint, _as_array, _header_meta, gather_regions

__all__ = [
    "changed_mask",
    "write_incremental_checkpoint",
    "IncrementalDelta",
    "read_incremental_checkpoint",
    "apply_incremental",
    "restore_chain",
]


def changed_mask(previous: Mapping[str, Any], current: Mapping[str, Any],
                 key: str) -> np.ndarray:
    """Boolean mask of the elements of ``key`` that changed between states.

    Comparison is exact (bitwise on the float values): an element whose
    value is reproduced exactly does not need to be rewritten.
    """
    prev = np.asarray(previous[key])
    curr = np.asarray(current[key])
    if prev.shape != curr.shape:
        raise ValueError(f"state entry {key!r} changed shape between "
                         f"checkpoints: {prev.shape} vs {curr.shape}")
    with np.errstate(invalid="ignore"):
        changed = prev != curr
    # NaNs compare unequal to themselves; treat NaN -> NaN as unchanged
    both_nan = _isnan_safe(prev) & _isnan_safe(curr)
    return np.asarray(changed & ~both_nan)


def _isnan_safe(arr: np.ndarray) -> np.ndarray:
    if np.issubdtype(arr.dtype, np.floating):
        return np.isnan(arr)
    return np.zeros(arr.shape, dtype=bool)


def write_incremental_checkpoint(
        path: str | Path, bench, state: Mapping[str, Any],
        previous: Mapping[str, Any],
        criticality: Mapping[str, VariableCriticality] | None = None,
        aux_path: str | Path | None = None,
        step: int | None = None,
        base_step: int | None = None) -> WrittenCheckpoint:
    """Write only the elements that changed since ``previous``.

    Parameters
    ----------
    state, previous:
        The state to checkpoint and the state captured by the previous
        checkpoint in the chain (base or delta).
    criticality:
        Optional criticality analysis; when given, unchanged *and* uncritical
        elements are both excluded (the combined reduction).
    base_step:
        Step of the previous checkpoint in the chain (defaults to
        ``previous``'s step counter when the benchmark exposes one).
    """
    path = Path(path)
    aux_path = Path(aux_path) if aux_path is not None \
        else path.with_name(path.name + ".aux")
    meta = _header_meta(bench, state, step)
    if base_step is None:
        base_step = _header_meta(bench, previous, None)["step"]

    key_masks: dict[str, np.ndarray] = {}
    if criticality:
        for crit in criticality.values():
            for key in crit.variable.state_keys():
                key_masks[key] = crit.mask

    records: list[RecordSpec] = []
    payloads: dict[str, bytes] = {}
    regions_by_key: dict[str, list[Region]] = {}
    for key, value in state.items():
        arr = _as_array(value)
        if key not in previous:
            raise KeyError(f"previous state is missing entry {key!r}")
        if arr.shape == ():
            # scalars (loop counters) are tiny: always store them verbatim
            records.append(RecordSpec(key=key, dtype=arr.dtype.str,
                                      shape=(), pruned=False, offset=0,
                                      nbytes=arr.nbytes, n_stored=1))
            payloads[key] = arr.tobytes()
            continue
        delta = changed_mask(previous, state, key)
        mask = key_masks.get(key)
        if mask is not None:
            delta = delta & mask.reshape(delta.shape)
        regions = encode_mask(delta)
        values = gather_regions(arr, regions)
        regions_by_key[key] = regions
        records.append(RecordSpec(key=key, dtype=arr.dtype.str,
                                  shape=tuple(arr.shape), pruned=True,
                                  offset=0, nbytes=values.nbytes,
                                  n_stored=int(values.size)))
        payloads[key] = values.tobytes()

    header = CheckpointHeader(mode="incremental", records=records, **meta)
    header.extra["aux_file"] = aux_path.name
    header.extra["base_step"] = int(base_step)
    nbytes = write_container(path, header, payloads)
    aux_nbytes = write_aux_file(aux_path, regions_by_key)
    return WrittenCheckpoint(path, "incremental", meta["step"], nbytes,
                             aux_path, aux_nbytes)


@dataclass
class IncrementalDelta:
    """An incremental checkpoint read back from disk."""

    header: CheckpointHeader
    arrays: dict[str, np.ndarray]
    regions: dict[str, list[Region]]
    path: Path

    @property
    def step(self) -> int:
        """Step the delta brings the state up to."""
        return self.header.step

    @property
    def base_step(self) -> int:
        """Step of the checkpoint this delta applies on top of."""
        return int(self.header.extra.get("base_step", -1))


def read_incremental_checkpoint(path: str | Path,
                                aux_path: str | Path | None = None
                                ) -> IncrementalDelta:
    """Read one incremental checkpoint and its auxiliary region file."""
    path = Path(path)
    header, arrays = read_container(path)
    if header.mode != "incremental":
        raise CheckpointFormatError(
            f"{path} is a {header.mode!r} checkpoint, not an incremental "
            f"delta")
    resolved_aux = Path(aux_path) if aux_path is not None \
        else path.with_name(header.extra.get("aux_file", path.name + ".aux"))
    regions = read_aux_file(resolved_aux)
    return IncrementalDelta(header=header, arrays=arrays, regions=regions,
                            path=path)


def apply_incremental(state: Mapping[str, Any],
                      delta: IncrementalDelta) -> dict[str, Any]:
    """Apply one delta to a state dict, returning the updated copy."""
    out: dict[str, Any] = {}
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            out[key] = np.array(value, copy=True)
        else:
            out[key] = value
    for rec in delta.header.records:
        if not rec.pruned:
            flat = delta.arrays[rec.key]
            value = flat.reshape(())[()]
            out[rec.key] = int(value) if np.issubdtype(
                rec.numpy_dtype, np.integer) else np.float64(value)
            continue
        if rec.key not in out:
            raise KeyError(f"state has no entry {rec.key!r} to apply the "
                           f"delta to")
        current_shape = tuple(np.asarray(out[rec.key]).shape)
        if current_shape != tuple(rec.shape):
            raise CheckpointFormatError(
                f"delta record {rec.key!r} has shape {tuple(rec.shape)} but "
                f"the state entry has shape {current_shape}; the delta was "
                f"written against a different problem configuration")
        target = np.asarray(out[rec.key]).reshape(-1)
        values = delta.arrays[rec.key]
        cursor = 0
        for region in delta.regions.get(rec.key, []):
            count = len(region)
            target[region.start:region.stop] = values[cursor:cursor + count]
            cursor += count
        if cursor != values.size:
            raise CheckpointFormatError(
                f"delta record {rec.key!r} holds {values.size} values but "
                f"its regions cover {cursor}")
        out[rec.key] = target.reshape(rec.shape)
    return out


def restore_chain(bench, base_path: str | Path,
                  delta_paths: Sequence[str | Path],
                  base_state: Mapping[str, Any] | None = None
                  ) -> dict[str, Any]:
    """Restore a state from a base checkpoint plus its ordered deltas.

    The base may be a full or pruned checkpoint (pruned bases restore on
    top of ``base_state`` / the benchmark's initial state as usual); each
    delta must chain onto the step reached so far.
    """
    base = read_checkpoint(base_path)
    state = restore_state(base, bench, base_state=base_state)
    reached = base.step
    for delta_path in delta_paths:
        delta = read_incremental_checkpoint(delta_path)
        if delta.base_step != reached:
            raise CheckpointFormatError(
                f"delta {delta.path} applies on top of step "
                f"{delta.base_step}, but the chain is at step {reached}")
        state = apply_incremental(state, delta)
        reached = delta.step
    return state
