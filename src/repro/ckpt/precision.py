"""Mixed-precision checkpoints (the paper's future-work extension).

A mixed-precision checkpoint is a pruned checkpoint whose stored elements
are additionally down-converted according to a
:class:`~repro.core.impact.PrecisionPlan`: high-impact elements keep full
double precision, low-impact elements are stored as single or half
precision, and uncritical elements are dropped entirely.  Every variable
contributes one payload record per storable tier; the per-tier critical
regions go to the same auxiliary file format the pruned checkpoints use,
under the key ``"<state key>@<tier>"``.

Restoring casts every tier back to the state's working precision, so the
restart path of the rest of the library is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.impact import (TIER_DOUBLE, TIER_DTYPES, TIER_HALF,
                               TIER_SINGLE, PrecisionPlan)
from repro.core.regions import Region, encode_mask

from .auxfile import read_aux_file, write_aux_file
from .format import (CheckpointFormatError, CheckpointHeader, RecordSpec,
                     read_container, write_container)
from .writer import WrittenCheckpoint, _as_array, _header_meta, gather_regions

__all__ = [
    "STORABLE_TIERS",
    "tier_key",
    "write_mixed_precision_checkpoint",
    "read_mixed_precision_checkpoint",
    "MixedPrecisionCheckpoint",
]


#: tiers that occupy payload bytes, cheapest first
STORABLE_TIERS = (TIER_HALF, TIER_SINGLE, TIER_DOUBLE)


def tier_key(state_key: str, tier: int) -> str:
    """Record / auxiliary-file key of one (state key, tier) payload."""
    return f"{state_key}@{tier}"


def write_mixed_precision_checkpoint(
        path: str | Path, bench, state: Mapping[str, Any],
        plans: Mapping[str, PrecisionPlan],
        aux_path: str | Path | None = None,
        step: int | None = None) -> WrittenCheckpoint:
    """Write a checkpoint whose elements are stored per the precision plan.

    Variables without a plan (or whose plan keeps every element in double
    precision with nothing dropped) are stored verbatim, like the pruned
    writer does for fully critical variables.
    """
    path = Path(path)
    aux_path = Path(aux_path) if aux_path is not None \
        else path.with_name(path.name + ".aux")
    meta = _header_meta(bench, state, step)

    key_plans: dict[str, PrecisionPlan] = {}
    for plan in plans.values():
        counts = plan.tier_counts()
        lossless_full = (counts[TIER_HALF] == 0 and counts[TIER_SINGLE] == 0
                         and counts[0] == 0)
        if lossless_full:
            continue
        for key in plan.variable.state_keys():
            key_plans[key] = plan

    records: list[RecordSpec] = []
    payloads: dict[str, bytes] = {}
    regions_by_key: dict[str, list[Region]] = {}

    for key, value in state.items():
        arr = _as_array(value)
        plan = key_plans.get(key)
        if plan is None:
            records.append(RecordSpec(key=key, dtype=arr.dtype.str,
                                      shape=tuple(arr.shape), pruned=False,
                                      offset=0, nbytes=arr.nbytes,
                                      n_stored=int(arr.size)))
            payloads[key] = arr.tobytes()
            continue
        if plan.tiers.shape != arr.shape:
            raise ValueError(
                f"precision plan shape {plan.tiers.shape} does not match "
                f"state entry {key!r} of shape {arr.shape}")
        for tier in STORABLE_TIERS:
            mask = plan.tier_mask(tier)
            if not mask.any():
                continue
            regions = encode_mask(mask)
            values = gather_regions(arr, regions).astype(TIER_DTYPES[tier])
            record_name = tier_key(key, tier)
            regions_by_key[record_name] = regions
            records.append(RecordSpec(key=record_name,
                                      dtype=values.dtype.str,
                                      shape=tuple(arr.shape), pruned=True,
                                      offset=0, nbytes=values.nbytes,
                                      n_stored=int(values.size)))
            payloads[record_name] = values.tobytes()

    header = CheckpointHeader(mode="mixed", records=records, **meta)
    header.extra["aux_file"] = aux_path.name
    header.extra["planned_keys"] = sorted(key_plans)
    nbytes = write_container(path, header, payloads)
    aux_nbytes = write_aux_file(aux_path, regions_by_key)
    return WrittenCheckpoint(path, "mixed", meta["step"], nbytes, aux_path,
                             aux_nbytes)


@dataclass
class MixedPrecisionCheckpoint:
    """A mixed-precision checkpoint read back from disk."""

    header: CheckpointHeader
    arrays: dict[str, np.ndarray]
    regions: dict[str, list[Region]]
    path: Path
    aux_path: Path

    @property
    def step(self) -> int:
        """Main-loop step the checkpoint was taken at."""
        return self.header.step

    def materialize(self, base_state: Mapping[str, Any]) -> dict[str, Any]:
        """Rebuild a state dict on top of ``base_state``.

        Stored tiers are cast back to the base entry's dtype; dropped
        elements keep the base values (they are uncritical by construction).
        """
        state: dict[str, Any] = {}
        seen_planned: set[str] = set()
        for rec in self.header.records:
            if not rec.pruned:
                flat = self.arrays[rec.key]
                if rec.shape == ():
                    value = flat.reshape(())[()]
                    state[rec.key] = int(value) if np.issubdtype(
                        rec.numpy_dtype, np.integer) else np.float64(value)
                else:
                    state[rec.key] = flat.reshape(rec.shape)
                continue
            key, _, tier_str = rec.key.rpartition("@")
            if key not in base_state:
                raise ValueError(
                    f"materialising mixed-precision record {rec.key!r} "
                    f"needs a base state providing {key!r}")
            if key not in seen_planned:
                base = np.array(np.asarray(base_state[key],
                                           dtype=np.float64), copy=True)
                if tuple(base.shape) != rec.shape:
                    raise ValueError(
                        f"base state entry {key!r} has shape {base.shape}, "
                        f"checkpoint expects {rec.shape}")
                state[key] = base
                seen_planned.add(key)
            target = state[key]
            flat = target.reshape(-1)
            values = self.arrays[rec.key].astype(np.float64)
            cursor = 0
            for region in self.regions[rec.key]:
                count = len(region)
                flat[region.start:region.stop] = values[cursor:cursor + count]
                cursor += count
            if cursor != values.size:
                raise CheckpointFormatError(
                    f"record {rec.key!r} holds {values.size} values but its "
                    f"regions cover {cursor}")
            del tier_str
        return state


def read_mixed_precision_checkpoint(path: str | Path,
                                    aux_path: str | Path | None = None
                                    ) -> MixedPrecisionCheckpoint:
    """Read a mixed-precision checkpoint and its auxiliary region file."""
    path = Path(path)
    header, arrays = read_container(path)
    if header.mode != "mixed":
        raise CheckpointFormatError(
            f"{path} is a {header.mode!r} checkpoint, not a mixed-precision "
            f"one; use repro.ckpt.read_checkpoint")
    resolved_aux = Path(aux_path) if aux_path is not None \
        else path.with_name(header.extra.get("aux_file", path.name + ".aux"))
    regions = read_aux_file(resolved_aux)
    missing = [rec.key for rec in header.records
               if rec.pruned and rec.key not in regions]
    if missing:
        raise CheckpointFormatError(
            f"auxiliary file {resolved_aux} is missing regions for "
            f"records: {missing}")
    return MixedPrecisionCheckpoint(header=header, arrays=arrays,
                                    regions=regions, path=path,
                                    aux_path=resolved_aux)
