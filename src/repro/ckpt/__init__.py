"""The homemade checkpointing library (paper Section III-B).

Writes conventional *full* checkpoints and *pruned* checkpoints that store
only the critical elements identified by the analysis, with the critical
regions recorded in a small auxiliary file; restores either kind; manages
versioned checkpoint directories; and provides the failure-injection harness
the restart-correctness experiments (Section IV-C) are built on.

Typical use::

    from repro import ckpt
    from repro.core import scrutinize
    from repro.npb import registry

    bench = registry.create("BT")
    result = scrutinize(bench)
    written = ckpt.write_pruned_checkpoint("bt.ckpt", bench, result.state,
                                           result.variables)
    outcome = ckpt.restart_benchmark(bench, written.path)
    assert outcome.passed
"""

from .auxfile import read_aux_file, write_aux_file
from .failure import (FailureScenarioResult, SimulatedFailure, corrupt_state,
                      run_failure_scenario)
from .format import (CheckpointFormatError, CheckpointHeader, RecordSpec,
                     read_container, read_header, write_container)
from .incremental import (IncrementalDelta, apply_incremental, changed_mask,
                           read_incremental_checkpoint, restore_chain,
                           write_incremental_checkpoint)
from .manager import CheckpointManager, run_with_checkpoints
from .precision import (MixedPrecisionCheckpoint,
                        read_mixed_precision_checkpoint,
                        write_mixed_precision_checkpoint)
from .reader import LoadedCheckpoint, read_checkpoint
from .restart import RestartOutcome, restart_benchmark, restore_state
from .storage import StorageComparison, measure_checkpoint_storage
from .writer import (WrittenCheckpoint, write_full_checkpoint,
                     write_pruned_checkpoint)

__all__ = [
    "CheckpointFormatError",
    "CheckpointHeader",
    "RecordSpec",
    "write_container",
    "read_container",
    "read_header",
    "write_aux_file",
    "read_aux_file",
    "WrittenCheckpoint",
    "write_full_checkpoint",
    "write_pruned_checkpoint",
    "LoadedCheckpoint",
    "read_checkpoint",
    "RestartOutcome",
    "restore_state",
    "restart_benchmark",
    "CheckpointManager",
    "run_with_checkpoints",
    "SimulatedFailure",
    "corrupt_state",
    "FailureScenarioResult",
    "run_failure_scenario",
    "StorageComparison",
    "measure_checkpoint_storage",
    "MixedPrecisionCheckpoint",
    "write_mixed_precision_checkpoint",
    "read_mixed_precision_checkpoint",
    "IncrementalDelta",
    "changed_mask",
    "write_incremental_checkpoint",
    "read_incremental_checkpoint",
    "apply_incremental",
    "restore_chain",
]
