"""Versioned checkpoint management.

``CheckpointManager`` owns a checkpoint directory for one benchmark run: it
decides when to write a checkpoint (a fixed main-loop interval, as HPC users
configure in practice), rotates old versions (users "tend to save several
versions of checkpoint files", Section II-A), and finds the latest restorable
version after a failure.  It writes either conventional full checkpoints or
pruned ones driven by a criticality analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.criticality import VariableCriticality

from .reader import LoadedCheckpoint, read_checkpoint
from .writer import (WrittenCheckpoint, write_full_checkpoint,
                     write_pruned_checkpoint)

__all__ = ["CheckpointManager", "run_with_checkpoints"]


class CheckpointManager:
    """Write, rotate and locate checkpoints for one benchmark run.

    Parameters
    ----------
    directory:
        Directory the checkpoint (and auxiliary) files live in; created on
        first use.
    bench:
        The benchmark instance being checkpointed.
    interval:
        Write a checkpoint every ``interval`` main-loop iterations.
    mode:
        ``"full"`` or ``"pruned"``.
    criticality:
        Required for pruned mode: the per-variable criticality masks
        (``ScrutinyResult.variables``).
    keep:
        Number of checkpoint versions to retain (older ones are deleted),
        mimicking multi-version checkpoint retention.
    """

    def __init__(self, directory: str | Path, bench, interval: int = 1,
                 mode: str = "full",
                 criticality: Mapping[str, VariableCriticality] | None = None,
                 keep: int = 3) -> None:
        if mode not in ("full", "pruned"):
            raise ValueError(f"unknown checkpoint mode {mode!r}")
        if mode == "pruned" and criticality is None:
            raise ValueError("pruned mode needs a criticality analysis")
        if interval < 1:
            raise ValueError("checkpoint interval must be positive")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint version")
        self.directory = Path(directory)
        self.bench = bench
        self.interval = int(interval)
        self.mode = mode
        self.criticality = dict(criticality) if criticality else None
        self.keep = int(keep)
        self.written: list[WrittenCheckpoint] = []

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _path_for(self, step: int) -> Path:
        return self.directory / f"{self.bench.name.lower()}_step{step:06d}.ckpt"

    def should_checkpoint(self, step: int) -> bool:
        """True when a checkpoint is due after main-loop iteration ``step``."""
        return step > 0 and step % self.interval == 0

    def checkpoint(self, state: Mapping[str, Any], step: int
                   ) -> WrittenCheckpoint:
        """Write a checkpoint of ``state`` taken after iteration ``step``."""
        path = self._path_for(step)
        if self.mode == "full":
            written = write_full_checkpoint(path, self.bench, state, step=step)
        else:
            written = write_pruned_checkpoint(path, self.bench, state,
                                              self.criticality, step=step)
        self.written.append(written)
        self._rotate()
        return written

    def maybe_checkpoint(self, state: Mapping[str, Any], step: int
                         ) -> WrittenCheckpoint | None:
        """Checkpoint if the interval says so; returns the record or None."""
        if self.should_checkpoint(step):
            return self.checkpoint(state, step)
        return None

    def _rotate(self) -> None:
        """Delete checkpoint versions beyond the retention count."""
        while len(self.written) > self.keep:
            old = self.written.pop(0)
            old.path.unlink(missing_ok=True)
            if old.aux_path is not None:
                old.aux_path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # locating / restoring
    # ------------------------------------------------------------------
    def list_checkpoints(self) -> list[Path]:
        """Checkpoint files currently on disk, oldest first."""
        if not self.directory.exists():
            return []
        return sorted(self.directory.glob(
            f"{self.bench.name.lower()}_step*.ckpt"))

    def latest(self) -> LoadedCheckpoint | None:
        """Load the newest checkpoint on disk, or None when there is none."""
        paths = self.list_checkpoints()
        if not paths:
            return None
        return read_checkpoint(paths[-1])

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def total_nbytes(self) -> int:
        """Bytes currently consumed on disk (checkpoints + auxiliary files)."""
        total = 0
        for path in self.list_checkpoints():
            total += path.stat().st_size
            aux = path.with_name(path.name + ".aux")
            if aux.exists():
                total += aux.stat().st_size
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"CheckpointManager({self.bench.name}, mode={self.mode!r}, "
                f"interval={self.interval}, keep={self.keep})")


def run_with_checkpoints(bench, manager: CheckpointManager,
                         steps: int | None = None,
                         fail_at_step: int | None = None,
                         state: Mapping[str, Any] | None = None,
                         start_step: int = 0) -> dict[str, Any]:
    """Run the benchmark main loop, checkpointing through ``manager``.

    Parameters
    ----------
    bench, manager:
        The benchmark and its checkpoint manager.
    steps:
        Number of iterations to run; defaults to the benchmark's full run.
    fail_at_step:
        When given, raise :class:`repro.ckpt.failure.SimulatedFailure` right
        after completing that iteration (before any further checkpoint) --
        the failure-injection harness uses this to interrupt a run.
    state, start_step:
        Optional starting state / step for resumed runs.

    Returns
    -------
    dict
        The state after the last completed iteration.
    """
    from .failure import SimulatedFailure  # local import to avoid a cycle

    total = bench.total_steps if steps is None else int(steps)
    current = dict(state) if state is not None else bench.initial_state()
    for step in range(start_step + 1, total + 1):
        current = bench._advance(current)
        if fail_at_step is not None and step == fail_at_step:
            raise SimulatedFailure(step=step, state=current)
        manager.maybe_checkpoint(current, step)
    return current
